//! Fidelity attribution: decomposing `log_program_fidelity` into per-gate
//! loss terms with heat provenance.
//!
//! The simulator reports program fidelity as one opaque scalar. This module
//! is the fidelity counterpart of the schedule explainer: it re-runs the
//! physics replay with a **heat-provenance ledger** attached — every update
//! to a chain's motional mode `n̄` is recorded as a tagged
//! [`HeatDeposit`] (background idle heating, split/move/merge pulses,
//! zone reorders, inherited energy shares), each pointing at the operation
//! that deposited it — and then decomposes every gate's log-fidelity loss
//! into a *duration* term (`Γτ`) and a *motional* term (`A(2n̄+1)`), with
//! the motional part blamed back through the ledger onto the shuttles and
//! idle windows that heated the chain.
//!
//! # The two bit-for-bit identities
//!
//! The attribution is trustworthy because it is exact, not approximate:
//!
//! 1. **Log identity** — replaying the recorded [`LossTerm`]s in event
//!    order ([`FidelityAttribution::total_log`]) reproduces the
//!    simulator's `log_program_fidelity` **bit for bit**: the terms are
//!    the simulator's own `ln` summands in the simulator's own
//!    accumulation order.
//! 2. **Ledger identity** — folding a chain's deposits in order
//!    ([`HeatLedger::n_bar_at`]) reproduces the simulator's `n̄` for that
//!    chain at every gate sample point and at program end, **bit for
//!    bit**: the fold applies the exact additions the replay performed
//!    (see [`HeatDeposit`] for the fold rule).
//!
//! Both identities are checked by [`FidelityAttribution::identity_holds`];
//! `muzzle explain --fidelity` hard-errors and `paper_eval fidelity`
//! asserts when either is violated.
//!
//! The ledger observes and never decides: the instrumented replay performs
//! the same arithmetic in the same order as the plain one, so the attached
//! [`SimReport`] is bit-for-bit the uninstrumented report.

use crate::error::SimError;
use crate::fidelity::chain_scaling_factor;
use crate::params::SimParams;
use crate::report::SimReport;
use crate::simulator::{simulate_inner, OpObserver};
use qccd_circuit::{Circuit, GateId, GateQubits};
use qccd_machine::{IonId, MachineSpec, Schedule, TrapId};
use qccd_route::TransportSchedule;
use qccd_timing::TimingModel;
use serde::{Deserialize, Serialize};

/// What kind of physical process deposited heat into a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HeatKind {
    /// Background heating over a trap-local idle+busy interval.
    BackgroundIdle,
    /// The split pulse's own quanta (deposited into the source chain).
    Split,
    /// Transit heating of the shuttled ion (arrives with the merge).
    Move,
    /// The merge pulse's own quanta (deposited into the destination chain).
    Merge,
    /// An intra-trap zone-reorder pulse.
    ZoneReorder,
    /// Energy share carried between chains by a shuttled ion: negative on
    /// the source chain (the departing ion takes its per-ion share),
    /// positive on the destination (the share arrives with the merge).
    InheritedShare,
}

impl HeatKind {
    /// Short lower-case label for tables.
    pub fn label(self) -> &'static str {
        match self {
            HeatKind::BackgroundIdle => "background-idle",
            HeatKind::Split => "split",
            HeatKind::Move => "move",
            HeatKind::Merge => "merge",
            HeatKind::ZoneReorder => "zone-reorder",
            HeatKind::InheritedShare => "inherited-share",
        }
    }
}

/// One labeled summand of a [`HeatDeposit`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeatPart {
    /// The physical process behind this summand.
    pub kind: HeatKind,
    /// Quanta added (negative only for the source side of
    /// [`HeatKind::InheritedShare`]).
    pub quanta: f64,
}

/// One update to a chain's motional mode, as the replay performed it.
///
/// The replay's `n̄` for a chain is recovered by folding its deposits in
/// order with
///
/// ```text
/// n̄ ← n̄ + (part₀ + part₁ + …)        // both folds left-to-right
/// ```
///
/// which is *exactly* the floating-point expression the simulator
/// evaluated — deposits whose source statement updated `n̄` twice (a
/// split's `−share` then `+split_quanta`) are recorded as two deposits, and
/// statements that added one multi-term sum (a merge's
/// `(share + move) + merge`, a zone move's `heat + reorder`) are one
/// deposit with ordered parts. That is what makes [`HeatLedger::n_bar_at`]
/// bit-for-bit, not just close.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeatDeposit {
    /// Timeline time of the depositing operation's end, µs.
    pub t_us: f64,
    /// Sequential index (replay order) of the shuttle hop responsible,
    /// for split/move/merge/share deposits.
    pub shuttle: Option<usize>,
    /// The ion whose shuttle or reorder deposited this, when one did.
    pub ion: Option<IonId>,
    /// Ordered summands (see the fold rule above).
    pub parts: Vec<HeatPart>,
    /// Log-fidelity loss this deposit caused in *downstream* gates on this
    /// chain: `net_quanta × Σ (scaleᵍ · 2Aᵍ)` over every later gate `g`
    /// that sampled the heated `n̄`. Filled by the attribution pass;
    /// negative for the source side of an inherited share (removing
    /// energy *helped* later gates).
    pub blamed_log_loss: f64,
}

impl HeatDeposit {
    /// The deposit's net quanta: its parts folded left-to-right.
    pub fn net_quanta(&self) -> f64 {
        self.parts.iter().fold(0.0f64, |acc, p| acc + p.quanta)
    }
}

/// Per-chain heat provenance: every `n̄` update of the replay, tagged.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct HeatLedger {
    /// Deposits per trap, in replay order.
    pub deposits: Vec<Vec<HeatDeposit>>,
}

impl HeatLedger {
    /// The chain's motional mode after its first `cursor` deposits,
    /// reproduced bit-for-bit by the [`HeatDeposit`] fold rule.
    pub fn n_bar_at(&self, trap: usize, cursor: usize) -> f64 {
        self.deposits[trap][..cursor]
            .iter()
            .fold(0.0f64, |acc, d| acc + d.net_quanta())
    }

    /// The chain's final motional mode (all deposits folded).
    pub fn final_n_bar(&self, trap: usize) -> f64 {
        self.n_bar_at(trap, self.deposits[trap].len())
    }

    /// Total quanta deposited into `trap` by positive contributions
    /// (ignores the negative source side of inherited shares) — a "how
    /// much heat arrived here" figure for tables.
    pub fn gross_quanta(&self, trap: usize) -> f64 {
        self.deposits[trap]
            .iter()
            .flat_map(|d| d.parts.iter())
            .filter(|p| p.quanta > 0.0)
            .map(|p| p.quanta)
            .sum()
    }
}

/// Records deposits (and per-gate ledger cursors) during an instrumented
/// replay. Threaded through `simulate_inner` as an optional side channel;
/// the default `None` path performs no recording at all.
#[derive(Debug, Default)]
pub(crate) struct LedgerRecorder {
    pub(crate) ledger: HeatLedger,
    /// For the i-th replayed gate: how many deposits its trap's ledger
    /// held when the gate sampled `n̄` (its own background deposit
    /// included).
    pub(crate) gate_cursors: Vec<usize>,
    /// Trap of the i-th replayed gate (for cursor bookkeeping).
    pub(crate) gate_traps: Vec<usize>,
    shuttle_seq: usize,
}

impl LedgerRecorder {
    pub(crate) fn new(num_traps: usize) -> Self {
        LedgerRecorder {
            ledger: HeatLedger {
                deposits: vec![Vec::new(); num_traps],
            },
            gate_cursors: Vec::new(),
            gate_traps: Vec::new(),
            shuttle_seq: 0,
        }
    }

    /// Background heating `n̄ += quanta`. Exact-zero deposits are skipped:
    /// `n̄` is never `-0.0` here, so `n̄ + 0.0 == n̄` bit-for-bit.
    pub(crate) fn background(&mut self, trap: usize, quanta: f64, t_us: f64) {
        if quanta == 0.0 {
            return;
        }
        self.ledger.deposits[trap].push(HeatDeposit {
            t_us,
            shuttle: None,
            ion: None,
            parts: vec![HeatPart {
                kind: HeatKind::BackgroundIdle,
                quanta,
            }],
            blamed_log_loss: 0.0,
        });
    }

    /// A split: `n̄ = n̄ − share + split_quanta` on the source chain. Two
    /// deposits, because the statement updates the accumulator twice
    /// (IEEE `a − b` is exactly `a + (−b)`).
    pub(crate) fn split(
        &mut self,
        trap: usize,
        share: f64,
        split_quanta: f64,
        t_us: f64,
        ion: IonId,
    ) {
        let shuttle = Some(self.shuttle_seq);
        self.ledger.deposits[trap].push(HeatDeposit {
            t_us,
            shuttle,
            ion: Some(ion),
            parts: vec![HeatPart {
                kind: HeatKind::InheritedShare,
                quanta: -share,
            }],
            blamed_log_loss: 0.0,
        });
        self.ledger.deposits[trap].push(HeatDeposit {
            t_us,
            shuttle,
            ion: Some(ion),
            parts: vec![HeatPart {
                kind: HeatKind::Split,
                quanta: split_quanta,
            }],
            blamed_log_loss: 0.0,
        });
    }

    /// A merge: `n̄ += (share + move_quanta) + merge_quanta` on the
    /// destination chain — one deposit whose ordered parts fold to the
    /// exact carried-energy sum. Advances the shuttle sequence (split and
    /// merge of one hop share an index).
    pub(crate) fn merge(
        &mut self,
        trap: usize,
        share: f64,
        move_quanta: f64,
        merge_quanta: f64,
        t_us: f64,
        ion: IonId,
    ) {
        self.ledger.deposits[trap].push(HeatDeposit {
            t_us,
            shuttle: Some(self.shuttle_seq),
            ion: Some(ion),
            parts: vec![
                HeatPart {
                    kind: HeatKind::InheritedShare,
                    quanta: share,
                },
                HeatPart {
                    kind: HeatKind::Move,
                    quanta: move_quanta,
                },
                HeatPart {
                    kind: HeatKind::Merge,
                    quanta: merge_quanta,
                },
            ],
            blamed_log_loss: 0.0,
        });
        self.shuttle_seq += 1;
    }

    /// A zone reorder: `n̄ += heat + reorder_quanta` — one two-part
    /// deposit matching the statement's single sum.
    pub(crate) fn zone(
        &mut self,
        trap: usize,
        heat: f64,
        reorder_quanta: f64,
        t_us: f64,
        ion: IonId,
    ) {
        self.ledger.deposits[trap].push(HeatDeposit {
            t_us,
            shuttle: None,
            ion: Some(ion),
            parts: vec![
                HeatPart {
                    kind: HeatKind::BackgroundIdle,
                    quanta: heat,
                },
                HeatPart {
                    kind: HeatKind::ZoneReorder,
                    quanta: reorder_quanta,
                },
            ],
            blamed_log_loss: 0.0,
        });
    }

    /// Marks a gate sampling its trap's `n̄` (call after the gate's
    /// background deposit).
    pub(crate) fn note_gate(&mut self, trap: usize) {
        self.gate_cursors.push(self.ledger.deposits[trap].len());
        self.gate_traps.push(trap);
    }
}

/// One event-ordered summand of `log_program_fidelity`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LossTerm {
    /// A gate's log-fidelity loss, split into its physical causes.
    Gate {
        /// Which circuit gate.
        gate: GateId,
        /// The trap it ran in.
        trap: TrapId,
        /// Start time, µs.
        start_us: f64,
        /// End time, µs.
        end_us: f64,
        /// Ions in the chain when the gate ran (drives `A`).
        chain_len: u32,
        /// Gate duration `τ` under the active timing model, µs.
        tau_us: f64,
        /// The gate's fidelity — the exact value the simulator multiplied
        /// in. `-ln` of this is the term's contribution to the log sum.
        fidelity: f64,
        /// The chain's `n̄` when the gate sampled it.
        n_bar: f64,
        /// Total log loss `−ln F` (`+∞` when the gate saturated at
        /// fidelity 0).
        log_loss: f64,
        /// Share of `log_loss` caused by the duration term `Γτ`.
        duration_loss: f64,
        /// Share of `log_loss` caused by the motional term `A(2n̄+1)`.
        motional_loss: f64,
        /// The motional share's irreducible zero-point part (`n̄ = 0`
        /// would still pay this).
        zero_point_loss: f64,
        /// The motional share's heat-driven part (`2An̄`, scaled) — the
        /// part the ledger blames on depositing operations.
        heat_loss: f64,
        /// Loss per quantum of pre-gate heat (`scale · 2A`): the weight
        /// the blame pass charges deposits preceding this gate.
        heat_weight: f64,
        /// Deposits on `trap`'s ledger when the gate sampled `n̄`
        /// (feeds [`HeatLedger::n_bar_at`] for the ledger identity).
        ledger_cursor: usize,
        /// True when the gate's fidelity clamped to 0 (program fidelity
        /// is then exactly 0 and losses are reported unscaled).
        saturated: bool,
    },
    /// One shuttle hop's fixed transport-pulse loss.
    Shuttle {
        /// Sequential hop index (matches [`HeatDeposit::shuttle`]).
        shuttle: usize,
        /// The moved ion.
        ion: IonId,
        /// Source trap.
        from: TrapId,
        /// Destination trap.
        to: TrapId,
        /// Start time of the hop's transport round, µs.
        start_us: f64,
        /// End time of the hop's transport round, µs.
        end_us: f64,
        /// Log loss `−ln(1 − p_shuttle)` of the hop's pulses.
        log_loss: f64,
    },
}

impl LossTerm {
    /// The term's total log loss.
    pub fn log_loss(&self) -> f64 {
        match *self {
            LossTerm::Gate { log_loss, .. } | LossTerm::Shuttle { log_loss, .. } => log_loss,
        }
    }
}

/// Heat blamed on one shuttle hop, aggregated from the ledger.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShuttleBlame {
    /// Sequential hop index.
    pub shuttle: usize,
    /// The moved ion.
    pub ion: IonId,
    /// Source trap.
    pub from: TrapId,
    /// Destination trap.
    pub to: TrapId,
    /// The hop's fixed transport-pulse log loss.
    pub pulse_log_loss: f64,
    /// Downstream gate log loss blamed on the hop's heat deposits
    /// (split/move/merge quanta and both sides of the inherited share).
    pub heat_log_loss: f64,
}

impl ShuttleBlame {
    /// Pulse loss plus blamed heat loss.
    pub fn total_log_loss(&self) -> f64 {
        self.pulse_log_loss + self.heat_log_loss
    }
}

/// The full decomposition of one replay's `log_program_fidelity`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FidelityAttribution {
    /// The instrumented replay's report — bit-for-bit the plain
    /// simulator's (the ledger observes, never decides).
    pub report: SimReport,
    /// Event-ordered loss terms; see [`Self::total_log`].
    pub terms: Vec<LossTerm>,
    /// The heat-provenance ledger, blame filled in.
    pub ledger: HeatLedger,
    /// Final per-trap motional modes (the replay's own values).
    pub final_n_bar: Vec<f64>,
    /// Sum of every gate's `duration_loss`.
    pub gate_duration_loss: f64,
    /// Sum of every gate's `motional_loss`.
    pub gate_motional_loss: f64,
    /// Sum of every gate's `zero_point_loss`.
    pub gate_zero_point_loss: f64,
    /// Sum of every gate's `heat_loss`.
    pub gate_heat_loss: f64,
    /// Sum of every shuttle hop's pulse log loss.
    pub shuttle_pulse_loss: f64,
    /// Gates whose fidelity clamped to 0 (loss split then unscaled).
    pub saturated_gates: usize,
}

impl FidelityAttribution {
    /// Replays the loss terms in event order with the simulator's exact
    /// fold: `Σ ln F` over gates (any `F ≤ 0` collapses the program to
    /// `−∞`) plus `Σ ln(1 − p_shuttle)` over hops. Equals
    /// `report.log_program_fidelity` bit for bit.
    pub fn total_log(&self) -> f64 {
        let mut sum = 0.0f64;
        let mut zero_fidelity = false;
        for term in &self.terms {
            match *term {
                LossTerm::Gate { fidelity, .. } => {
                    if fidelity <= 0.0 {
                        zero_fidelity = true;
                    } else {
                        sum += fidelity.ln();
                    }
                }
                // Negation is exact: −log_loss is the simulator's
                // `ln(1 − p)` summand, bit for bit.
                LossTerm::Shuttle { log_loss, .. } => sum += -log_loss,
            }
        }
        if zero_fidelity {
            f64::NEG_INFINITY
        } else {
            sum
        }
    }

    /// The log identity: [`Self::total_log`] reproduces the report's
    /// `log_program_fidelity` bit for bit (`−∞` compares equal to `−∞`).
    pub fn log_identity_holds(&self) -> bool {
        self.total_log().to_bits() == self.report.log_program_fidelity.to_bits()
    }

    /// The ledger identity: folding each chain's deposits reproduces the
    /// simulator's `n̄` at every gate sample point and at program end,
    /// bit for bit.
    pub fn ledger_identity_holds(&self) -> bool {
        let gates_ok = self.terms.iter().all(|term| match *term {
            LossTerm::Gate {
                trap,
                n_bar,
                ledger_cursor,
                ..
            } => self.ledger.n_bar_at(trap.index(), ledger_cursor).to_bits() == n_bar.to_bits(),
            LossTerm::Shuttle { .. } => true,
        });
        let finals_ok = self
            .final_n_bar
            .iter()
            .enumerate()
            .all(|(t, &n)| self.ledger.final_n_bar(t).to_bits() == n.to_bits());
        gates_ok && finals_ok
    }

    /// Both identities at once — the attribution's trust anchor.
    pub fn identity_holds(&self) -> bool {
        self.log_identity_holds() && self.ledger_identity_holds()
    }

    /// Total log loss `−log_program_fidelity` (`+∞` on saturation).
    pub fn total_loss(&self) -> f64 {
        -self.report.log_program_fidelity
    }

    /// Duration share of the decomposed loss, in `[0, 1]` (0 when the
    /// program is lossless).
    pub fn duration_share(&self) -> f64 {
        let total = self.gate_duration_loss + self.gate_motional_loss + self.shuttle_pulse_loss;
        if total <= 0.0 {
            return 0.0;
        }
        self.gate_duration_loss / total
    }

    /// Motional share of the decomposed loss, in `[0, 1]`.
    pub fn motional_share(&self) -> f64 {
        let total = self.gate_duration_loss + self.gate_motional_loss + self.shuttle_pulse_loss;
        if total <= 0.0 {
            return 0.0;
        }
        self.gate_motional_loss / total
    }

    /// The `k` worst gate terms by total log loss, ties broken toward the
    /// earlier gate so the ranking is deterministic.
    pub fn worst_gates(&self, k: usize) -> Vec<&LossTerm> {
        let mut gates: Vec<&LossTerm> = self
            .terms
            .iter()
            .filter(|t| matches!(t, LossTerm::Gate { .. }))
            .collect();
        gates.sort_by(|a, b| b.log_loss().total_cmp(&a.log_loss()));
        gates.truncate(k);
        gates
    }

    /// Traps ranked by the gate log loss blamed on heat deposited into
    /// them: `(trap, blamed loss, gross quanta deposited)`, hottest
    /// first, ties toward the lower index.
    pub fn hottest_traps(&self, k: usize) -> Vec<(usize, f64, f64)> {
        let mut traps: Vec<(usize, f64, f64)> = self
            .ledger
            .deposits
            .iter()
            .enumerate()
            .map(|(t, deposits)| {
                let blamed: f64 = deposits.iter().map(|d| d.blamed_log_loss).sum();
                (t, blamed, self.ledger.gross_quanta(t))
            })
            .collect();
        traps.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        traps.truncate(k);
        traps
    }

    /// Shuttle hops ranked by total blamed loss (fixed pulse loss plus
    /// downstream heat loss), costliest first, ties toward the earlier
    /// hop.
    pub fn costliest_shuttles(&self, k: usize) -> Vec<ShuttleBlame> {
        let mut by_hop: Vec<ShuttleBlame> = self
            .terms
            .iter()
            .filter_map(|t| match *t {
                LossTerm::Shuttle {
                    shuttle,
                    ion,
                    from,
                    to,
                    log_loss,
                    ..
                } => Some(ShuttleBlame {
                    shuttle,
                    ion,
                    from,
                    to,
                    pulse_log_loss: log_loss,
                    heat_log_loss: 0.0,
                }),
                LossTerm::Gate { .. } => None,
            })
            .collect();
        for deposits in &self.ledger.deposits {
            for d in deposits {
                if let Some(hop) = d.shuttle {
                    by_hop[hop].heat_log_loss += d.blamed_log_loss;
                }
            }
        }
        by_hop.sort_by(|a, b| {
            b.total_log_loss()
                .total_cmp(&a.total_log_loss())
                .then(a.shuttle.cmp(&b.shuttle))
        });
        by_hop.truncate(k);
        by_hop
    }
}

/// Attributes a serial (uniform-hop) replay — the fidelity counterpart of
/// [`simulate`](crate::simulate).
///
/// # Errors
///
/// Same conditions as [`simulate`](crate::simulate).
pub fn attribute_fidelity(
    schedule: &Schedule,
    circuit: &Circuit,
    spec: &MachineSpec,
    params: &SimParams,
) -> Result<FidelityAttribution, SimError> {
    attribute_inner(schedule, circuit, spec, params, None, None)
}

/// Attributes a timed transport-round replay — the fidelity counterpart
/// of [`simulate_timed`](crate::simulate_timed).
///
/// # Errors
///
/// Same conditions as [`simulate_timed`](crate::simulate_timed).
pub fn attribute_fidelity_timed(
    schedule: &Schedule,
    transport: &TransportSchedule,
    circuit: &Circuit,
    spec: &MachineSpec,
    params: &SimParams,
    model: &TimingModel,
) -> Result<FidelityAttribution, SimError> {
    attribute_inner(
        schedule,
        circuit,
        spec,
        params,
        Some(transport),
        Some(model),
    )
}

fn attribute_inner(
    schedule: &Schedule,
    circuit: &Circuit,
    spec: &MachineSpec,
    params: &SimParams,
    transport: Option<&TransportSchedule>,
    model: Option<&TimingModel>,
) -> Result<FidelityAttribution, SimError> {
    let mut recorder = LedgerRecorder::new(spec.num_traps() as usize);
    let mut events: Vec<OpObserver> = Vec::new();
    let (report, final_n_bar) = simulate_inner(
        schedule,
        circuit,
        spec,
        params,
        transport,
        model,
        Some(&mut recorder),
        &mut |obs| events.push(obs),
    )?;

    // The same default-model fallback the replay applied: τ below must be
    // the duration the fidelity model charged.
    let default_model;
    let model = match model {
        Some(m) => m,
        None => {
            default_model = TimingModel::ideal_from(
                params.one_qubit_gate_us,
                params.two_qubit_gate_base_us,
                params.gate_chain_slowdown,
                params.split_us,
                params.merge_us,
                params.move_us,
            );
            &default_model
        }
    };

    let shuttle_hop_loss = -(1.0 - params.shuttle_infidelity).ln();
    let mut terms = Vec::with_capacity(events.len());
    let mut gate_idx = 0usize;
    let mut shuttle_idx = 0usize;
    let mut gate_duration_loss = 0.0f64;
    let mut gate_motional_loss = 0.0f64;
    let mut gate_zero_point_loss = 0.0f64;
    let mut gate_heat_loss = 0.0f64;
    let mut shuttle_pulse_loss = 0.0f64;
    let mut saturated_gates = 0usize;
    for obs in events {
        match obs {
            OpObserver::Gate {
                gate,
                trap,
                start_us,
                end_us,
                fidelity,
                n_bar,
                chain_len,
            } => {
                let two_qubit = matches!(circuit.gate(gate).qubits, GateQubits::Two(_, _));
                let tau_us = if two_qubit {
                    model.two_qubit_gate_us(chain_len)
                } else {
                    model.one_qubit_gate_us()
                };
                // Linear loss terms of §II-B3: F = 1 − Γτ − A(2n̄+1).
                let duration_term = params.gamma_per_us * tau_us;
                let a = if two_qubit {
                    chain_scaling_factor(params, chain_len)
                } else {
                    0.0
                };
                let motional_term = a * (2.0 * n_bar + 1.0);
                let saturated = fidelity <= 0.0;
                let log_loss = if saturated {
                    f64::INFINITY
                } else {
                    -fidelity.ln()
                };
                // Distribute −ln F over the linear terms proportionally
                // (−ln(1−x) ≥ x, so `scale` ≥ 1 away from saturation).
                // Saturated gates report the unscaled linear terms.
                let denom = duration_term + motional_term;
                let scale = if saturated || denom <= 0.0 {
                    1.0
                } else {
                    log_loss / denom
                };
                let duration_loss = scale * duration_term;
                let motional_loss = scale * motional_term;
                let zero_point_loss = scale * a;
                let heat_weight = scale * 2.0 * a;
                let heat_loss = heat_weight * n_bar;
                if saturated {
                    saturated_gates += 1;
                }
                gate_duration_loss += duration_loss;
                gate_motional_loss += motional_loss;
                gate_zero_point_loss += zero_point_loss;
                gate_heat_loss += heat_loss;
                terms.push(LossTerm::Gate {
                    gate,
                    trap,
                    start_us,
                    end_us,
                    chain_len,
                    tau_us,
                    fidelity,
                    n_bar,
                    log_loss,
                    duration_loss,
                    motional_loss,
                    zero_point_loss,
                    heat_loss,
                    heat_weight,
                    ledger_cursor: recorder.gate_cursors[gate_idx],
                    saturated,
                });
                gate_idx += 1;
            }
            OpObserver::Shuttle {
                ion,
                from,
                to,
                start_us,
                end_us,
                ..
            } => {
                shuttle_pulse_loss += shuttle_hop_loss;
                terms.push(LossTerm::Shuttle {
                    shuttle: shuttle_idx,
                    ion,
                    from,
                    to,
                    start_us,
                    end_us,
                    log_loss: shuttle_hop_loss,
                });
                shuttle_idx += 1;
            }
            OpObserver::ZoneMove { .. } => {}
        }
    }

    // Blame pass: charge each deposit the heat-loss weight of every later
    // gate on its chain. Per trap, gates arrive with non-decreasing
    // ledger cursors, so one backward sweep with a suffix sum is O(D+G).
    let mut ledger = recorder.ledger;
    let mut gates_per_trap: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ledger.deposits.len()];
    for term in &terms {
        if let LossTerm::Gate {
            trap,
            heat_weight,
            ledger_cursor,
            ..
        } = *term
        {
            gates_per_trap[trap.index()].push((ledger_cursor, heat_weight));
        }
    }
    for (t, deposits) in ledger.deposits.iter_mut().enumerate() {
        let gates = &gates_per_trap[t];
        let mut g = gates.len();
        let mut suffix_weight = 0.0f64;
        for (i, d) in deposits.iter_mut().enumerate().rev() {
            // A gate at cursor c sampled deposits [0, c): deposit i feeds
            // it exactly when c > i.
            while g > 0 && gates[g - 1].0 > i {
                suffix_weight += gates[g - 1].1;
                g -= 1;
            }
            d.blamed_log_loss = d.net_quanta() * suffix_weight;
        }
    }

    Ok(FidelityAttribution {
        report,
        terms,
        ledger,
        final_n_bar,
        gate_duration_loss,
        gate_motional_loss,
        gate_zero_point_loss,
        gate_heat_loss,
        shuttle_pulse_loss,
        saturated_gates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use qccd_circuit::{Opcode, Qubit};
    use qccd_machine::{InitialMapping, Operation};

    fn fixture() -> (Circuit, MachineSpec, Schedule) {
        let mut c = Circuit::new(4);
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        c.push_single_qubit(Opcode::Rz, Qubit(2)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(2), Qubit(3)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(2)).unwrap();
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1)])
                .unwrap();
        let schedule = Schedule::new(
            mapping,
            vec![
                Operation::Gate {
                    gate: GateId(0),
                    trap: TrapId(0),
                },
                Operation::Gate {
                    gate: GateId(1),
                    trap: TrapId(1),
                },
                Operation::Gate {
                    gate: GateId(2),
                    trap: TrapId(1),
                },
                Operation::Shuttle {
                    ion: IonId(1),
                    from: TrapId(0),
                    to: TrapId(1),
                },
                Operation::Gate {
                    gate: GateId(3),
                    trap: TrapId(1),
                },
            ],
        );
        (c, spec, schedule)
    }

    #[test]
    fn identities_hold_and_report_matches_plain_replay() {
        let (c, spec, schedule) = fixture();
        let params = SimParams::default();
        let plain = simulate(&schedule, &c, &spec, &params).unwrap();
        let attr = attribute_fidelity(&schedule, &c, &spec, &params).unwrap();
        assert_eq!(attr.report, plain, "attribution observes, never decides");
        assert!(attr.log_identity_holds());
        assert!(attr.ledger_identity_holds());
        assert_eq!(
            attr.total_log().to_bits(),
            plain.log_program_fidelity.to_bits()
        );
    }

    #[test]
    fn terms_cover_every_gate_and_shuttle() {
        let (c, spec, schedule) = fixture();
        let attr = attribute_fidelity(&schedule, &c, &spec, &SimParams::default()).unwrap();
        let gates = attr
            .terms
            .iter()
            .filter(|t| matches!(t, LossTerm::Gate { .. }))
            .count();
        let shuttles = attr
            .terms
            .iter()
            .filter(|t| matches!(t, LossTerm::Shuttle { .. }))
            .count();
        assert_eq!(gates, attr.report.gates);
        assert_eq!(shuttles, attr.report.shuttles);
        assert_eq!(attr.saturated_gates, 0);
    }

    #[test]
    fn one_qubit_gates_pay_duration_only() {
        let (c, spec, schedule) = fixture();
        let attr = attribute_fidelity(&schedule, &c, &spec, &SimParams::default()).unwrap();
        let rz = attr
            .terms
            .iter()
            .find_map(|t| match *t {
                LossTerm::Gate {
                    gate: GateId(1),
                    motional_loss,
                    duration_loss,
                    heat_weight,
                    ..
                } => Some((motional_loss, duration_loss, heat_weight)),
                _ => None,
            })
            .expect("the Rz term exists");
        assert_eq!(rz.0, 0.0, "no motional coupling for 1q gates");
        assert!(rz.1 > 0.0, "Γτ is still paid");
        assert_eq!(rz.2, 0.0);
    }

    #[test]
    fn loss_split_roughly_recovers_total() {
        let (c, spec, schedule) = fixture();
        let attr = attribute_fidelity(&schedule, &c, &spec, &SimParams::default()).unwrap();
        let recomposed =
            attr.gate_duration_loss + attr.gate_motional_loss + attr.shuttle_pulse_loss;
        let total = attr.total_loss();
        assert!(
            (recomposed - total).abs() <= 1e-12 * total.max(1.0),
            "split sums to the total up to float error: {recomposed} vs {total}"
        );
        let shares = attr.duration_share() + attr.motional_share();
        assert!(shares <= 1.0 + 1e-12);
    }

    #[test]
    fn blame_lands_on_the_shuttle_and_idle_windows() {
        let (c, spec, schedule) = fixture();
        let attr = attribute_fidelity(&schedule, &c, &spec, &SimParams::default()).unwrap();
        let hops = attr.costliest_shuttles(10);
        assert_eq!(hops.len(), 1);
        assert!(
            hops[0].heat_log_loss > 0.0,
            "gate 3 runs after the merge, so the hop's heat is blamed"
        );
        // Every deposit's blame sums (approximately) to the heat loss of
        // the gates that sampled it; exactness lives in the identities.
        let blamed: f64 = attr
            .ledger
            .deposits
            .iter()
            .flatten()
            .map(|d| d.blamed_log_loss)
            .sum();
        assert!(
            (blamed - attr.gate_heat_loss).abs() <= 1e-12 * attr.gate_heat_loss.max(1.0),
            "{blamed} vs {}",
            attr.gate_heat_loss
        );
        let hottest = attr.hottest_traps(2);
        assert_eq!(hottest.len(), 2);
        assert!(hottest[0].1 >= hottest[1].1);
    }

    #[test]
    fn worst_gates_rank_by_loss() {
        let (c, spec, schedule) = fixture();
        let attr = attribute_fidelity(&schedule, &c, &spec, &SimParams::default()).unwrap();
        let worst = attr.worst_gates(2);
        assert_eq!(worst.len(), 2);
        assert!(worst[0].log_loss() >= worst[1].log_loss());
        // Gate 3 runs in the post-merge 3-ion chain: it must be the worst.
        assert!(
            matches!(worst[0], LossTerm::Gate { gate, .. } if *gate == GateId(3)),
            "{:?}",
            worst[0]
        );
    }

    #[test]
    fn saturated_gate_collapses_to_neg_infinity_but_identity_holds() {
        let (c, spec, schedule) = fixture();
        let params = SimParams {
            motional_scale_a0: 1.0, // A(2n̄+1) ≥ 1 ⇒ F clamps to 0
            ..SimParams::default()
        };
        let attr = attribute_fidelity(&schedule, &c, &spec, &params).unwrap();
        assert!(attr.saturated_gates > 0);
        assert_eq!(attr.report.log_program_fidelity, f64::NEG_INFINITY);
        assert!(attr.log_identity_holds(), "−∞ matches −∞ bit for bit");
        assert!(attr.ledger_identity_holds());
    }
}
