//! Simulator error type.

use qccd_machine::ValidateScheduleError;
use qccd_timing::LowerError;
use std::error::Error;
use std::fmt;

/// Errors raised by [`simulate`](crate::simulate).
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The schedule failed replay validation against the circuit/machine.
    InvalidSchedule(ValidateScheduleError),
    /// The simulation parameters (or the timing model) contain negative or
    /// non-finite values.
    InvalidParams,
    /// The transport rounds handed to
    /// [`simulate_transport`](crate::simulate_transport) do not match the
    /// schedule's shuttle operations.
    TransportMismatch {
        /// Index of the first schedule operation the rounds disagree with.
        op_index: usize,
    },
    /// Lowering the schedule onto the device clock failed for a reason
    /// other than a transport mismatch (e.g. an illegal hand-built round).
    Timing(LowerError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidSchedule(e) => write!(f, "schedule is not executable: {e}"),
            SimError::InvalidParams => {
                write!(f, "simulation parameters must be finite and non-negative")
            }
            SimError::TransportMismatch { op_index } => write!(
                f,
                "transport rounds disagree with the schedule at operation {op_index}"
            ),
            SimError::Timing(e) => write!(f, "timeline lowering failed: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::InvalidSchedule(e) => Some(e),
            SimError::Timing(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::GateId;

    #[test]
    fn display_and_source() {
        let e = SimError::InvalidSchedule(ValidateScheduleError::MissingGate { gate: GateId(3) });
        assert!(e.to_string().contains("g3"));
        assert!(e.source().is_some());
        assert!(SimError::InvalidParams.source().is_none());
    }
}
