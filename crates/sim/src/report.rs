//! Simulation reports.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The outcome of replaying one schedule through the physical model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Product of all gate fidelities, in `[0, 1]` — the paper's "program
    /// fidelity" (Fig. 8 reports ratios of this between compilers). May
    /// underflow to `0.0` for deep noisy programs; use
    /// [`log_program_fidelity`](Self::log_program_fidelity) for ratios.
    pub program_fidelity: f64,
    /// Natural logarithm of the program fidelity, exact even when the
    /// product itself underflows. `f64::NEG_INFINITY` when any single gate
    /// hit fidelity 0.
    pub log_program_fidelity: f64,
    /// End-to-end execution time: the maximum trap-local clock, µs.
    pub makespan_us: f64,
    /// The timed event timeline's makespan under the active
    /// [`TimingModel`](qccd_timing::TimingModel), µs. Always equals
    /// [`makespan_us`](Self::makespan_us) — the physics replay walks the
    /// same timeline — and is reported separately so timed columns stay
    /// present and comparable across `ideal`/`realistic` runs.
    pub timed_makespan_us: f64,
    /// Shuttle hops replayed.
    pub shuttles: usize,
    /// Transport rounds replayed: equals `shuttles` under serial transport
    /// (one hop at a time); lower under
    /// [`simulate_transport`](crate::simulate_transport) whenever
    /// edge-disjoint hops shared a concurrent round.
    pub shuttle_depth: usize,
    /// Gates replayed.
    pub gates: usize,
    /// Intra-trap zone reorders replayed (multi-zone machines only; always
    /// zero under the default single-zone layout).
    pub zone_moves: usize,
    /// Junction endpoints (topology degree ≥ 3) crossed by all shuttle
    /// hops — the traffic the realistic timing model charges corner/swap
    /// time for.
    pub junction_crossings: usize,
    /// Mean motional mode `n̄` across *all* traps when the program ends — a
    /// direct readout of accumulated shuttle heating. Empty traps count as
    /// cold chains, so this dilutes on sparse machines; see
    /// [`final_mean_motional_mode_occupied`](Self::final_mean_motional_mode_occupied).
    pub final_mean_motional_mode: f64,
    /// Mean motional mode `n̄` over *occupied* chains only (traps holding
    /// at least one ion at program end). Equals
    /// [`final_mean_motional_mode`](Self::final_mean_motional_mode) when
    /// every trap is occupied; `0.0` when none is.
    pub final_mean_motional_mode_occupied: f64,
    /// The worst single gate fidelity observed.
    pub min_gate_fidelity: f64,
}

impl SimReport {
    /// Fidelity improvement of `self` over `other`, as the paper reports it
    /// ("22.68X"): `self.program_fidelity / other.program_fidelity`,
    /// computed in log space so it stays exact when both fidelities
    /// underflow `f64`.
    ///
    /// Returns `f64::INFINITY` if `other` has truly zero fidelity (a gate
    /// at fidelity 0) and `self` does not; `1.0` if both are zero.
    pub fn fidelity_improvement_over(&self, other: &SimReport) -> f64 {
        match (
            self.log_program_fidelity.is_infinite(),
            other.log_program_fidelity.is_infinite(),
        ) {
            (true, true) => 1.0,
            (false, true) => f64::INFINITY,
            (true, false) => 0.0,
            (false, false) => (self.log_program_fidelity - other.log_program_fidelity).exp(),
        }
    }

    /// The improvement as a log10 ("orders of magnitude"), convenient for
    /// plotting Fig. 8 when ratios overflow.
    pub fn fidelity_improvement_log10(&self, other: &SimReport) -> f64 {
        (self.log_program_fidelity - other.log_program_fidelity) / std::f64::consts::LN_10
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fidelity {:.3e}, makespan {:.1} us (timed {:.1} us), {} shuttles, {} gates, {} zone moves, final n̄ {:.2}",
            self.program_fidelity,
            self.makespan_us,
            self.timed_makespan_us,
            self.shuttles,
            self.gates,
            self.zone_moves,
            self.final_mean_motional_mode
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(fidelity: f64) -> SimReport {
        SimReport {
            program_fidelity: fidelity,
            log_program_fidelity: if fidelity == 0.0 {
                f64::NEG_INFINITY
            } else {
                fidelity.ln()
            },
            makespan_us: 100.0,
            timed_makespan_us: 100.0,
            shuttles: 1,
            shuttle_depth: 1,
            gates: 2,
            zone_moves: 0,
            junction_crossings: 0,
            final_mean_motional_mode: 0.5,
            final_mean_motional_mode_occupied: 0.5,
            min_gate_fidelity: fidelity,
        }
    }

    #[test]
    fn improvement_ratio() {
        let a = report(0.02);
        let b = report(0.001);
        assert!((a.fidelity_improvement_over(&b) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn improvement_handles_zero() {
        let z = report(0.0);
        let a = report(0.5);
        assert_eq!(a.fidelity_improvement_over(&z), f64::INFINITY);
        assert_eq!(z.fidelity_improvement_over(&z), 1.0);
    }

    #[test]
    fn display_is_compact() {
        let s = report(0.25).to_string();
        assert!(s.contains("2.5e-1") || s.contains("2.500e-1"), "{s}");
        assert!(s.contains("1 shuttles"));
        assert!(s.contains("timed 100.0 us"), "{s}");
        assert!(s.contains("0 zone moves"), "{s}");
    }
}
