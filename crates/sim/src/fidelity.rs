//! The analytical gate-fidelity model of §II-B3.

use crate::params::SimParams;

/// The chain-size scaling factor `A = a0 · m / log2(m)` for an `m`-ion
/// chain (§II-B3: "A is a scaling factor that varies as
/// #qubits/log(#qubits)"). Chains shorter than 2 are clamped to 2.
pub fn chain_scaling_factor(params: &SimParams, chain_len: u32) -> f64 {
    let m = f64::from(chain_len.max(2));
    params.motional_scale_a0 * m / m.log2()
}

/// Two-qubit gate fidelity `F = 1 − Γτ − A(2n̄ + 1)`, clamped to `[0, 1]`.
///
/// * `tau_us` — gate duration in µs.
/// * `n_bar` — the chain's motional mode at gate time.
/// * `chain_len` — ions in the chain (drives `A`).
///
/// # Example
///
/// ```
/// use qccd_sim::{two_qubit_gate_fidelity, SimParams};
///
/// let p = SimParams::default();
/// let cold = two_qubit_gate_fidelity(&p, 100.0, 0.0, 4);
/// let hot = two_qubit_gate_fidelity(&p, 100.0, 50.0, 4);
/// assert!(cold > hot, "heated chains degrade gate fidelity");
/// ```
pub fn two_qubit_gate_fidelity(params: &SimParams, tau_us: f64, n_bar: f64, chain_len: u32) -> f64 {
    let a = chain_scaling_factor(params, chain_len);
    let f = 1.0 - params.gamma_per_us * tau_us - a * (2.0 * n_bar + 1.0);
    f.clamp(0.0, 1.0)
}

/// Single-qubit gate fidelity `F = 1 − Γτ` (no motional coupling term —
/// single-qubit rotations do not drive the shared motional bus).
pub fn one_qubit_gate_fidelity(params: &SimParams, tau_us: f64) -> f64 {
    (1.0 - params.gamma_per_us * tau_us).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_decreases_with_heat() {
        let p = SimParams::default();
        let f0 = two_qubit_gate_fidelity(&p, 100.0, 0.0, 4);
        let f1 = two_qubit_gate_fidelity(&p, 100.0, 10.0, 4);
        let f2 = two_qubit_gate_fidelity(&p, 100.0, 100.0, 4);
        assert!(f0 > f1 && f1 > f2);
    }

    #[test]
    fn fidelity_decreases_with_chain_length() {
        let p = SimParams::default();
        // m/log2(m) grows for m >= 3.
        let short = two_qubit_gate_fidelity(&p, 100.0, 5.0, 4);
        let long = two_qubit_gate_fidelity(&p, 100.0, 5.0, 16);
        assert!(short > long);
    }

    #[test]
    fn fidelity_clamped_to_unit_interval() {
        let p = SimParams::default();
        let f = two_qubit_gate_fidelity(&p, 1e12, 1e12, 17);
        assert_eq!(f, 0.0);
        let f = two_qubit_gate_fidelity(&p, 0.0, 0.0, 2);
        assert!(f <= 1.0 && f > 0.99);
    }

    #[test]
    fn scaling_factor_matches_formula() {
        let p = SimParams::default();
        let a4 = chain_scaling_factor(&p, 4);
        assert!((a4 - p.motional_scale_a0 * 4.0 / 2.0).abs() < 1e-12);
        // Clamps below 2 (log2(1) = 0 would divide by zero).
        assert_eq!(chain_scaling_factor(&p, 1), chain_scaling_factor(&p, 2));
    }

    #[test]
    fn one_qubit_fidelity_is_time_only() {
        let p = SimParams::default();
        assert!(one_qubit_gate_fidelity(&p, 10.0) > one_qubit_gate_fidelity(&p, 1000.0));
    }
}
