//! Simulation parameters: operation durations, heating, fidelity scaling.

use serde::{Deserialize, Serialize};

/// Physical-model constants for the simulator.
///
/// Defaults are calibrated-plausible figures for surface-electrode
/// trapped-ion systems, in the ranges published by Murali et al. (ISCA'20)
/// and the experimental papers they calibrate against (\[9\], \[10\] in the
/// paper). The paper itself omits the exact values "for brevity"; every
/// knob is exposed here so alternative calibrations are one struct away.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// Single-qubit gate duration, µs.
    pub one_qubit_gate_us: f64,
    /// Two-qubit MS-gate base duration at chain length 2, µs.
    pub two_qubit_gate_base_us: f64,
    /// Fractional two-qubit gate slowdown per extra ion in the chain
    /// (longer chains have softer motional modes → slower gates).
    pub gate_chain_slowdown: f64,
    /// Chain split duration, µs (Fig. 3 SPLIT step).
    pub split_us: f64,
    /// Chain merge duration, µs (Fig. 3 MERGE step).
    pub merge_us: f64,
    /// Ion transit duration per shuttle-path segment, µs (Fig. 3 MOVE step).
    pub move_us: f64,
    /// Background heating rate of a chain, quanta per second of trap-local
    /// time (the `Γτ` driver).
    pub background_heating_quanta_per_s: f64,
    /// Motional quanta deposited into the *source* chain by one
    /// split-and-depart (Fig. 3: splitting disturbs the remaining chain).
    pub split_heating_quanta: f64,
    /// Motional quanta added to the shuttled ion per transit segment
    /// (Fig. 3 MOVE: "q\[a1\] energy ^"); delivered to the destination chain
    /// at merge.
    pub move_heating_quanta: f64,
    /// Motional quanta deposited into the *destination* chain by one
    /// move-and-merge (Fig. 3: "Merging q\[a1\] increases chain-1's energy").
    pub merge_heating_quanta: f64,
    /// Motional quanta deposited into a chain by one intra-trap zone
    /// reorder (multi-zone machines only; zone moves never occur under the
    /// default single-zone layout).
    pub zone_move_heating_quanta: f64,
    /// Trap background error rate Γ, per µs, in the gate-fidelity model
    /// `F = 1 − Γτ − A(2n̄+1)`.
    pub gamma_per_us: f64,
    /// Infidelity of one complete shuttle hop (split + move + merge) as a
    /// direct multiplicative cost on program fidelity — transport pulses
    /// are lossy operations in their own right, before any heating effect.
    pub shuttle_infidelity: f64,
    /// Base scale of the motional-coupling factor `A`; the effective
    /// factor is `a0 · m / log2(m)` for an `m`-ion chain (§II-B3: "A is a
    /// scaling factor that varies as #qubits/log(#qubits)").
    pub motional_scale_a0: f64,
}

impl SimParams {
    /// The default calibration used throughout the evaluation harness.
    pub fn new() -> Self {
        SimParams {
            one_qubit_gate_us: 10.0,
            two_qubit_gate_base_us: 100.0,
            gate_chain_slowdown: 0.05,
            split_us: 80.0,
            merge_us: 80.0,
            move_us: 5.0,
            background_heating_quanta_per_s: 5.0,
            split_heating_quanta: 0.2,
            move_heating_quanta: 0.1,
            merge_heating_quanta: 0.4,
            zone_move_heating_quanta: 0.05,
            gamma_per_us: 1e-6,
            shuttle_infidelity: 3.5e-3,
            motional_scale_a0: 1.5e-6,
        }
    }

    /// Duration of a two-qubit gate in an `m`-ion chain, µs.
    pub fn two_qubit_gate_us(&self, chain_len: u32) -> f64 {
        let extra = chain_len.saturating_sub(2) as f64;
        self.two_qubit_gate_base_us * (1.0 + self.gate_chain_slowdown * extra)
    }

    /// Duration of one shuttle hop (split + move + merge), µs.
    pub fn shuttle_hop_us(&self) -> f64 {
        self.split_us + self.move_us + self.merge_us
    }

    /// Validates that all parameters are finite and non-negative (and the
    /// per-hop shuttle infidelity below 1).
    pub fn is_valid(&self) -> bool {
        if self.shuttle_infidelity.partial_cmp(&1.0) != Some(std::cmp::Ordering::Less) {
            return false;
        }
        let fields = [
            self.one_qubit_gate_us,
            self.two_qubit_gate_base_us,
            self.gate_chain_slowdown,
            self.split_us,
            self.merge_us,
            self.move_us,
            self.background_heating_quanta_per_s,
            self.split_heating_quanta,
            self.move_heating_quanta,
            self.merge_heating_quanta,
            self.zone_move_heating_quanta,
            self.gamma_per_us,
            self.shuttle_infidelity,
            self.motional_scale_a0,
        ];
        fields.iter().all(|v| v.is_finite() && *v >= 0.0)
    }
}

impl Default for SimParams {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid() {
        assert!(SimParams::default().is_valid());
    }

    #[test]
    fn gate_time_grows_with_chain_length() {
        let p = SimParams::default();
        assert_eq!(p.two_qubit_gate_us(2), 100.0);
        assert!(p.two_qubit_gate_us(10) > p.two_qubit_gate_us(5));
        // Chain length below 2 clamps to the base duration.
        assert_eq!(p.two_qubit_gate_us(1), 100.0);
    }

    #[test]
    fn shuttle_hop_time_sums_steps() {
        let p = SimParams::default();
        assert_eq!(p.shuttle_hop_us(), 80.0 + 5.0 + 80.0);
    }

    #[test]
    fn invalid_params_detected() {
        let mut p = SimParams {
            gamma_per_us: -1.0,
            ..SimParams::default()
        };
        assert!(!p.is_valid());
        p.gamma_per_us = f64::NAN;
        assert!(!p.is_valid());
    }
}
