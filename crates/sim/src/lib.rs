//! Fidelity and timing simulator for compiled QCCD schedules.
//!
//! Replays a [`Schedule`](qccd_machine::Schedule) against the machine model
//! of the paper (§II-B), tracking:
//!
//! * **per-trap clocks** — gates inside a trap are serial, traps run in
//!   parallel (§II-B1); a shuttle occupies both endpoint traps;
//! * **per-chain motional mode `n̄`** — background heating accrues with
//!   trap-local time, and every shuttle's SPLIT/MOVE/MERGE steps deposit
//!   quanta into the source and destination chains (Fig. 3);
//! * **per-gate fidelity** — the analytical model of §II-B3,
//!   `F = 1 − Γτ − A(2n̄ + 1)` with `A ∝ m / log2(m)` for an `m`-ion chain.
//!
//! Program fidelity is the product of all gate fidelities, so reducing
//! shuttles (which curbs `n̄`) directly improves the reported number —
//! the mechanism behind Fig. 8 of the paper.
//!
//! The constants in [`SimParams`] are calibrated-plausible trapped-ion
//! figures (documented per field); the paper inherits its exact values from
//! the QCCDSim code base and omits them "for brevity", so absolute
//! fidelities here are not comparable to the authors' — improvement
//! *ratios* between two compilations of the same circuit are.
//!
//! # Example
//!
//! ```
//! use qccd_circuit::generators::qft;
//! use qccd_core::{compile, CompilerConfig};
//! use qccd_machine::MachineSpec;
//! use qccd_sim::{simulate, SimParams};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = qft(12);
//! let spec = MachineSpec::linear(2, 10, 2)?;
//! let compiled = compile(&circuit, &spec, &CompilerConfig::optimized())?;
//! let report = simulate(&compiled.schedule, &circuit, &spec, &SimParams::default())?;
//! assert!(report.program_fidelity > 0.0 && report.program_fidelity <= 1.0);
//! # Ok(())
//! # }
//! ```

mod attribution;
mod error;
mod fidelity;
mod params;
mod report;
mod simulator;
mod trace;

pub use attribution::{
    attribute_fidelity, attribute_fidelity_timed, FidelityAttribution, HeatDeposit, HeatKind,
    HeatLedger, HeatPart, LossTerm, ShuttleBlame,
};
pub use error::SimError;
pub use fidelity::{chain_scaling_factor, one_qubit_gate_fidelity, two_qubit_gate_fidelity};
pub use params::SimParams;
pub use report::SimReport;
pub use simulator::{simulate, simulate_timed, simulate_transport};
pub use trace::{simulate_traced, SimTrace, TraceRecord, TrapUtilization};

// The timing model shapes every timed replay; re-export it so simulator
// users need not depend on `qccd-timing` directly.
pub use qccd_timing::{Timeline, TimingModel};
