//! Detailed simulation traces: per-operation records and per-trap
//! utilization, for debugging compilations and plotting heat/fidelity
//! timelines.

use crate::error::SimError;
use crate::params::SimParams;
use crate::report::SimReport;
use crate::simulator::{simulate_inner, OpObserver};
use qccd_circuit::{Circuit, GateId};
use qccd_machine::{IonId, MachineSpec, Schedule, TrapId};
use serde::{Deserialize, Serialize};

/// One traced operation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceRecord {
    /// A gate execution.
    Gate {
        /// Which circuit gate ran.
        gate: GateId,
        /// The trap it ran in.
        trap: TrapId,
        /// Start time, µs.
        start_us: f64,
        /// End time, µs.
        end_us: f64,
        /// The gate's fidelity under the §II-B3 model.
        fidelity: f64,
        /// The chain's motional mode when the gate ran.
        n_bar: f64,
        /// Ions in the chain when the gate ran.
        chain_len: u32,
    },
    /// A shuttle hop (split + move + merge).
    Shuttle {
        /// The moved ion.
        ion: IonId,
        /// Source trap.
        from: TrapId,
        /// Destination trap.
        to: TrapId,
        /// Start time, µs.
        start_us: f64,
        /// End time, µs.
        end_us: f64,
        /// Destination chain's motional mode after the merge.
        dest_n_bar_after: f64,
    },
    /// An intra-trap zone reorder (multi-zone machines only).
    ZoneMove {
        /// The reordered ion.
        ion: IonId,
        /// The trap it happens in.
        trap: TrapId,
        /// Start time, µs.
        start_us: f64,
        /// End time, µs.
        end_us: f64,
    },
}

impl TraceRecord {
    /// Start time of the record, µs.
    pub fn start_us(&self) -> f64 {
        match *self {
            TraceRecord::Gate { start_us, .. }
            | TraceRecord::Shuttle { start_us, .. }
            | TraceRecord::ZoneMove { start_us, .. } => start_us,
        }
    }

    /// End time of the record, µs.
    pub fn end_us(&self) -> f64 {
        match *self {
            TraceRecord::Gate { end_us, .. }
            | TraceRecord::Shuttle { end_us, .. }
            | TraceRecord::ZoneMove { end_us, .. } => end_us,
        }
    }
}

/// Per-trap usage summary.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TrapUtilization {
    /// Gates executed in this trap.
    pub gates: usize,
    /// Shuttle hops departing from this trap.
    pub departures: usize,
    /// Shuttle hops arriving at this trap.
    pub arrivals: usize,
    /// Intra-trap zone reorders in this trap.
    pub zone_moves: usize,
    /// Busy time (gates + shuttle participation), µs.
    pub busy_us: f64,
    /// The chain's motional mode at program end.
    pub final_n_bar: f64,
}

/// A full simulation trace: the summary report plus per-op records and
/// per-trap utilization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimTrace {
    /// The aggregate report (identical to [`simulate`](crate::simulate)'s).
    pub report: SimReport,
    /// Per-operation records in schedule order.
    pub records: Vec<TraceRecord>,
    /// Per-trap usage, indexed by trap id.
    pub utilization: Vec<TrapUtilization>,
}

impl SimTrace {
    /// The records of gates whose fidelity fell below `threshold` — the
    /// first places to look when a compilation underperforms.
    pub fn worst_gates(&self, threshold: f64) -> Vec<&TraceRecord> {
        self.records
            .iter()
            .filter(|r| matches!(r, TraceRecord::Gate { fidelity, .. } if *fidelity < threshold))
            .collect()
    }

    /// The busiest trap: `(trap index, busy_us)`, or `None` when the
    /// machine has no traps. Ties keep the lowest trap index, so the
    /// answer is deterministic for symmetric schedules.
    pub fn hottest_trap(&self) -> Option<(usize, f64)> {
        self.utilization
            .iter()
            .enumerate()
            .max_by(|(ia, a), (ib, b)| a.busy_us.total_cmp(&b.busy_us).then(ib.cmp(ia)))
            .map(|(t, u)| (t, u.busy_us))
    }

    /// Total idle fraction of the machine: 1 − mean(busy) / makespan.
    pub fn idle_fraction(&self) -> f64 {
        if self.report.makespan_us <= 0.0 || self.utilization.is_empty() {
            return 0.0;
        }
        let mean_busy =
            self.utilization.iter().map(|u| u.busy_us).sum::<f64>() / self.utilization.len() as f64;
        (1.0 - mean_busy / self.report.makespan_us).clamp(0.0, 1.0)
    }
}

/// Like [`simulate`](crate::simulate) but additionally returns per-op
/// records and per-trap utilization.
///
/// # Errors
///
/// Same conditions as [`simulate`](crate::simulate).
pub fn simulate_traced(
    schedule: &Schedule,
    circuit: &Circuit,
    spec: &MachineSpec,
    params: &SimParams,
) -> Result<SimTrace, SimError> {
    let mut records = Vec::with_capacity(schedule.operations.len());
    let mut utilization = vec![TrapUtilization::default(); spec.num_traps() as usize];
    let (report, final_n_bar) = simulate_inner(
        schedule,
        circuit,
        spec,
        params,
        None,
        None,
        None,
        &mut |obs: OpObserver| match obs {
            OpObserver::Gate {
                gate,
                trap,
                start_us,
                end_us,
                fidelity,
                n_bar,
                chain_len,
            } => {
                records.push(TraceRecord::Gate {
                    gate,
                    trap,
                    start_us,
                    end_us,
                    fidelity,
                    n_bar,
                    chain_len,
                });
                let u = &mut utilization[trap.index()];
                u.gates += 1;
                u.busy_us += end_us - start_us;
            }
            OpObserver::Shuttle {
                ion,
                from,
                to,
                start_us,
                end_us,
                dest_n_bar_after,
            } => {
                records.push(TraceRecord::Shuttle {
                    ion,
                    from,
                    to,
                    start_us,
                    end_us,
                    dest_n_bar_after,
                });
                utilization[from.index()].departures += 1;
                utilization[from.index()].busy_us += end_us - start_us;
                utilization[to.index()].arrivals += 1;
                utilization[to.index()].busy_us += end_us - start_us;
            }
            OpObserver::ZoneMove {
                ion,
                trap,
                start_us,
                end_us,
            } => {
                records.push(TraceRecord::ZoneMove {
                    ion,
                    trap,
                    start_us,
                    end_us,
                });
                let u = &mut utilization[trap.index()];
                u.zone_moves += 1;
                u.busy_us += end_us - start_us;
            }
        },
    )?;
    for (t, u) in utilization.iter_mut().enumerate() {
        u.final_n_bar = final_n_bar[t];
    }
    Ok(SimTrace {
        report,
        records,
        utilization,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use qccd_circuit::{Opcode, Qubit};
    use qccd_machine::{InitialMapping, Operation};

    fn fixture() -> (Circuit, MachineSpec, Schedule) {
        let mut c = Circuit::new(4);
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(2), Qubit(3)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(2)).unwrap();
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1)])
                .unwrap();
        let schedule = Schedule::new(
            mapping,
            vec![
                Operation::Gate {
                    gate: GateId(0),
                    trap: TrapId(0),
                },
                Operation::Gate {
                    gate: GateId(1),
                    trap: TrapId(1),
                },
                Operation::Shuttle {
                    ion: IonId(1),
                    from: TrapId(0),
                    to: TrapId(1),
                },
                Operation::Gate {
                    gate: GateId(2),
                    trap: TrapId(1),
                },
            ],
        );
        (c, spec, schedule)
    }

    #[test]
    fn trace_report_matches_plain_simulation() {
        let (c, spec, schedule) = fixture();
        let params = SimParams::default();
        let plain = simulate(&schedule, &c, &spec, &params).unwrap();
        let traced = simulate_traced(&schedule, &c, &spec, &params).unwrap();
        assert_eq!(traced.report, plain);
        assert_eq!(traced.records.len(), 4);
    }

    #[test]
    fn trace_records_are_time_ordered_per_trap() {
        let (c, spec, schedule) = fixture();
        let traced = simulate_traced(&schedule, &c, &spec, &SimParams::default()).unwrap();
        for r in &traced.records {
            assert!(r.end_us() >= r.start_us());
            assert!(r.end_us() <= traced.report.makespan_us + 1e-9);
        }
    }

    #[test]
    fn utilization_counts_ops() {
        let (c, spec, schedule) = fixture();
        let traced = simulate_traced(&schedule, &c, &spec, &SimParams::default()).unwrap();
        assert_eq!(traced.utilization[0].gates, 1);
        assert_eq!(traced.utilization[1].gates, 2);
        assert_eq!(traced.utilization[0].departures, 1);
        assert_eq!(traced.utilization[1].arrivals, 1);
        let idle = traced.idle_fraction();
        assert!((0.0..=1.0).contains(&idle));
    }

    #[test]
    fn hottest_trap_is_the_busiest_and_ties_go_low() {
        let (c, spec, schedule) = fixture();
        let traced = simulate_traced(&schedule, &c, &spec, &SimParams::default()).unwrap();
        // Trap 1 runs two gates plus the shuttle merge; trap 0 runs one
        // gate plus the shuttle split — trap 1 must win.
        let (trap, busy) = traced.hottest_trap().unwrap();
        assert_eq!(trap, 1);
        assert_eq!(busy, traced.utilization[1].busy_us);
        assert!(busy >= traced.utilization[0].busy_us);

        let empty = SimTrace {
            report: traced.report,
            records: Vec::new(),
            utilization: Vec::new(),
        };
        assert!(empty.hottest_trap().is_none());

        let tied = SimTrace {
            report: traced.report,
            records: Vec::new(),
            utilization: vec![TrapUtilization::default(); 3],
        };
        assert_eq!(tied.hottest_trap(), Some((0, 0.0)));
    }

    #[test]
    fn worst_gates_filter() {
        let (c, spec, schedule) = fixture();
        let traced = simulate_traced(&schedule, &c, &spec, &SimParams::default()).unwrap();
        assert!(traced.worst_gates(0.0).is_empty());
        assert_eq!(traced.worst_gates(1.1).len(), 3, "all gates below 1.1");
    }
}
