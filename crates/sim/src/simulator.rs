//! Schedule replay: timed event timelines, chain heating, program fidelity.
//!
//! Since the `qccd-timing` subsystem landed, the simulator no longer keeps
//! its own ad-hoc clock arithmetic: the schedule is first lowered into a
//! validated ASAP [`Timeline`](qccd_timing::Timeline) (per-trap and
//! per-edge resource intervals, critical-path round durations, synthesized
//! zone moves), and the physics replay walks the timeline's events to
//! accumulate heating and fidelity.

use crate::attribution::LedgerRecorder;
use crate::error::SimError;
use crate::fidelity::{one_qubit_gate_fidelity, two_qubit_gate_fidelity};
use crate::params::SimParams;
use crate::report::SimReport;
use qccd_circuit::{Circuit, GateId, GateQubits};
use qccd_machine::{IonId, MachineSpec, Schedule, TrapId};
use qccd_route::TransportSchedule;
use qccd_timing::{LowerError, TimelineEvent, TimingModel};

/// Distribution of `1 − F` per replayed gate, in parts per billion
/// (`--profile` surfaces count/mean/p50/p99).
static GATE_INFIDELITY: qccd_obs::Histogram = qccd_obs::Histogram::new("sim.gate_infidelity");

/// Distribution of the chain's `n̄` per replayed gate, in milliquanta.
static GATE_NBAR: qccd_obs::Histogram = qccd_obs::Histogram::new("sim.gate_nbar");

/// Event passed to the trace observer for every replayed operation.
/// See [`simulate_traced`](crate::simulate_traced) for the public surface.
#[derive(Debug, Clone, Copy)]
pub(crate) enum OpObserver {
    Gate {
        gate: GateId,
        trap: TrapId,
        start_us: f64,
        end_us: f64,
        fidelity: f64,
        n_bar: f64,
        chain_len: u32,
    },
    Shuttle {
        ion: IonId,
        from: TrapId,
        to: TrapId,
        start_us: f64,
        end_us: f64,
        dest_n_bar_after: f64,
    },
    ZoneMove {
        ion: IonId,
        trap: TrapId,
        start_us: f64,
        end_us: f64,
    },
}

/// Replays `schedule` through the physical model and reports program
/// fidelity and makespan.
///
/// The schedule is first replay-validated (legal shuttles, co-located gate
/// operands, dependency order), then lowered into an ASAP event timeline
/// under the *uniform-hop* timing model built from `params`' duration
/// fields — the historical per-hop replay, preserved bit-for-bit.
/// Simulation then tracks:
///
/// * a clock per trap (serial in-trap execution, parallel across traps;
///   a shuttle hop occupies both endpoint traps for its full
///   split+move+merge duration);
/// * an availability time per qubit (a gate cannot start before the gates
///   feeding it have finished, even across traps);
/// * a motional mode `n̄` per chain, fed by background heating (per
///   trap-local elapsed time) and by shuttle split/merge quanta.
///
/// # Errors
///
/// * [`SimError::InvalidSchedule`] — the schedule does not execute
///   `circuit` legally on `spec`.
/// * [`SimError::InvalidParams`] — `params` contains negative or
///   non-finite values.
pub fn simulate(
    schedule: &Schedule,
    circuit: &Circuit,
    spec: &MachineSpec,
    params: &SimParams,
) -> Result<SimReport, SimError> {
    simulate_inner(
        schedule,
        circuit,
        spec,
        params,
        None,
        None,
        None,
        &mut |_| {},
    )
    .map(|(report, _)| report)
}

/// Replays `schedule` with its shuttle traffic executed as the concurrent
/// rounds of `transport` instead of one hop at a time.
///
/// Every round occupies all its member traps for one round duration — its
/// moves split, fly and merge simultaneously on disjoint shuttle-path
/// segments — so transport time scales with the schedule's *depth*
/// (`transport.depth()`, reported as
/// [`shuttle_depth`](SimReport::shuttle_depth)) rather than its raw shuttle
/// count. Heating physics is unchanged: each member move still deposits
/// its split/move/merge quanta.
///
/// # Errors
///
/// As [`simulate`], plus [`SimError::TransportMismatch`] if the rounds do
/// not cover the schedule's shuttle operations.
pub fn simulate_transport(
    schedule: &Schedule,
    transport: &TransportSchedule,
    circuit: &Circuit,
    spec: &MachineSpec,
    params: &SimParams,
) -> Result<SimReport, SimError> {
    simulate_inner(
        schedule,
        circuit,
        spec,
        params,
        Some(transport),
        None,
        None,
        &mut |_| {},
    )
    .map(|(report, _)| report)
}

/// Replays `schedule`'s transport rounds under an explicit device
/// [`TimingModel`] instead of the uniform-hop model: linear-segment
/// transit, junction corner/swap costs, critical-path round durations, and
/// timed intra-trap zone moves on multi-zone machines all shape the
/// timeline the physics replay consumes.
///
/// `params` still supplies the *error* physics (heating rates and quanta,
/// Γ, motional coupling); its duration fields are ignored in favour of
/// `model`. With [`TimingModel::ideal`] and default parameters this
/// reproduces [`simulate_transport`] exactly.
///
/// # Errors
///
/// As [`simulate_transport`], plus [`SimError::InvalidParams`] if `model`
/// has non-finite or negative constants.
pub fn simulate_timed(
    schedule: &Schedule,
    transport: &TransportSchedule,
    circuit: &Circuit,
    spec: &MachineSpec,
    params: &SimParams,
    model: &TimingModel,
) -> Result<SimReport, SimError> {
    simulate_inner(
        schedule,
        circuit,
        spec,
        params,
        Some(transport),
        Some(model),
        None,
        &mut |_| {},
    )
    .map(|(report, _)| report)
}

/// Core replay loop shared by [`simulate`], [`simulate_transport`],
/// [`simulate_timed`], [`simulate_traced`](crate::simulate_traced) and
/// [`attribute_fidelity`](crate::attribute_fidelity). Returns the report
/// plus the final per-trap motional modes.
///
/// When `ledger` is given, every `n̄` update is additionally recorded as a
/// tagged heat deposit. The recording is a pure side channel — the replay
/// arithmetic is identical with or without it, so reports stay bit for
/// bit.
#[allow(clippy::too_many_arguments)]
pub(crate) fn simulate_inner(
    schedule: &Schedule,
    circuit: &Circuit,
    spec: &MachineSpec,
    params: &SimParams,
    transport: Option<&TransportSchedule>,
    model: Option<&TimingModel>,
    mut ledger: Option<&mut LedgerRecorder>,
    observer: &mut dyn FnMut(OpObserver),
) -> Result<(SimReport, Vec<f64>), SimError> {
    if !params.is_valid() {
        return Err(SimError::InvalidParams);
    }
    schedule
        .validate(circuit, spec)
        .map_err(SimError::InvalidSchedule)?;

    // The device clock: lower the schedule onto a validated ASAP timeline.
    // Without an explicit model this is the uniform-hop model carrying the
    // params' historical duration fields.
    let default_model;
    let model = match model {
        Some(m) => m,
        None => {
            default_model = TimingModel::ideal_from(
                params.one_qubit_gate_us,
                params.two_qubit_gate_base_us,
                params.gate_chain_slowdown,
                params.split_us,
                params.merge_us,
                params.move_us,
            );
            &default_model
        }
    };
    let timeline =
        qccd_timing::lower(schedule, transport, circuit, spec, model).map_err(|e| match e {
            LowerError::TransportMismatch { op_index } => SimError::TransportMismatch { op_index },
            LowerError::InvalidModel => SimError::InvalidParams,
            other => SimError::Timing(other),
        })?;

    let num_traps = spec.num_traps() as usize;
    let mut clock = vec![0.0f64; num_traps]; // µs, per trap
    let mut n_bar = vec![0.0f64; num_traps]; // motional mode per chain

    // Chain occupancy per trap, maintained across shuttles so the report
    // can average `n̄` over *occupied* chains only.
    let mut occupancy = vec![0u32; num_traps];
    for ion in 0..schedule.initial_mapping.num_ions() {
        occupancy[schedule.initial_mapping.trap_of(IonId(ion)).index()] += 1;
    }

    // Energy carried by an ion in transit (Fig. 3: "MOVE ... q[a1] energy ^").
    let mut carried = vec![0.0f64; schedule.initial_mapping.num_ions() as usize];

    let mut fidelity_log_sum = 0.0f64; // sum of ln(F); exp at the end
    let mut zero_fidelity = false;
    let mut min_gate_fidelity = 1.0f64;
    let mut gates = 0usize;
    let mut shuttles = 0usize;
    let mut shuttle_depth = 0usize;
    let heat_rate_per_us = params.background_heating_quanta_per_s * 1e-6;

    for event in &timeline.events {
        match event {
            TimelineEvent::Gate {
                gate,
                trap,
                chain_len,
                start_us,
                end_us,
            } => {
                let g = circuit.gate(*gate);
                let t = trap.index();
                let tau = match g.qubits {
                    GateQubits::One(_) => model.one_qubit_gate_us(),
                    GateQubits::Two(_, _) => model.two_qubit_gate_us(*chain_len),
                };
                // Background heating for the idle + busy interval, then
                // the fidelity sampled at the heated n̄.
                let heat = heat_rate_per_us * (end_us - clock[t]).max(0.0);
                n_bar[t] += heat;
                if let Some(lr) = ledger.as_deref_mut() {
                    lr.background(t, heat, *end_us);
                    lr.note_gate(t);
                }
                let fidelity = match g.qubits {
                    GateQubits::One(_) => one_qubit_gate_fidelity(params, tau),
                    GateQubits::Two(_, _) => {
                        two_qubit_gate_fidelity(params, tau, n_bar[t], *chain_len)
                    }
                };
                clock[t] = *end_us;
                if qccd_obs::is_enabled() {
                    GATE_INFIDELITY.record(((1.0 - fidelity) * 1e9) as u64);
                    GATE_NBAR.record((n_bar[t] * 1e3) as u64);
                }
                observer(OpObserver::Gate {
                    gate: g.id,
                    trap: *trap,
                    start_us: *start_us,
                    end_us: *end_us,
                    fidelity,
                    n_bar: n_bar[t],
                    chain_len: *chain_len,
                });
                gates += 1;
                min_gate_fidelity = min_gate_fidelity.min(fidelity);
                if fidelity <= 0.0 {
                    zero_fidelity = true;
                } else {
                    fidelity_log_sum += fidelity.ln();
                }
            }
            TimelineEvent::TransportRound {
                moves,
                involved,
                start_us,
                end_us,
            } => {
                shuttle_depth += 1;
                // Background heating up to `end` on every involved chain.
                for t in involved {
                    let t = t.index();
                    let heat = heat_rate_per_us * (end_us - clock[t]).max(0.0);
                    n_bar[t] += heat;
                    if let Some(lr) = ledger.as_deref_mut() {
                        lr.background(t, heat, *end_us);
                    }
                }
                for m in moves {
                    let (fi, ti) = (m.from.index(), m.to.index());
                    // Fig. 3 energy transport:
                    //   SPLIT — the departing ion carries its per-ion share
                    //   of the chain's motional energy ("Split reduces
                    //   chain-0's energy"), while the split pulse itself
                    //   deposits quanta into the remaining chain.
                    let m_src = f64::from(m.src_occupancy).max(1.0);
                    let share = n_bar[fi] / m_src;
                    n_bar[fi] = n_bar[fi] - share + params.split_heating_quanta;
                    //   MOVE — transit adds energy to the shuttled ion.
                    carried[m.ion.index()] += share + params.move_heating_quanta;
                    //   MERGE — the arriving ion's energy joins the
                    //   destination chain plus the merge pulse ("Merging
                    //   q[a1] increases chain-1's energy").
                    n_bar[ti] += carried[m.ion.index()] + params.merge_heating_quanta;
                    carried[m.ion.index()] = 0.0;
                    if let Some(lr) = ledger.as_deref_mut() {
                        lr.split(fi, share, params.split_heating_quanta, *end_us, m.ion);
                        lr.merge(
                            ti,
                            share,
                            params.move_heating_quanta,
                            params.merge_heating_quanta,
                            *end_us,
                            m.ion,
                        );
                    }
                    occupancy[fi] = occupancy[fi].saturating_sub(1);
                    occupancy[ti] += 1;
                    // The transport pulses themselves are lossy operations.
                    fidelity_log_sum += (1.0 - params.shuttle_infidelity).ln();
                    observer(OpObserver::Shuttle {
                        ion: m.ion,
                        from: m.from,
                        to: m.to,
                        start_us: *start_us,
                        end_us: *end_us,
                        dest_n_bar_after: n_bar[ti],
                    });
                    shuttles += 1;
                }
                for t in involved {
                    clock[t.index()] = *end_us;
                }
            }
            TimelineEvent::ZoneMove {
                ion,
                trap,
                start_us,
                end_us,
            } => {
                // An intra-trap reorder: the chain idles (background
                // heating) and the reorder pulse deposits its own quanta.
                let t = trap.index();
                let heat = heat_rate_per_us * (end_us - clock[t]).max(0.0);
                n_bar[t] += heat + params.zone_move_heating_quanta;
                if let Some(lr) = ledger.as_deref_mut() {
                    lr.zone(t, heat, params.zone_move_heating_quanta, *end_us, *ion);
                }
                clock[t] = *end_us;
                observer(OpObserver::ZoneMove {
                    ion: *ion,
                    trap: *trap,
                    start_us: *start_us,
                    end_us: *end_us,
                });
            }
        }
    }

    let (program_fidelity, log_program_fidelity) = if zero_fidelity {
        (0.0, f64::NEG_INFINITY)
    } else {
        (fidelity_log_sum.exp(), fidelity_log_sum)
    };
    let makespan_us = clock.iter().copied().fold(0.0f64, f64::max);
    let final_mean_motional_mode = if num_traps == 0 {
        0.0
    } else {
        n_bar.iter().sum::<f64>() / num_traps as f64
    };
    // The occupied-chain mean: empty traps carry no chain, so averaging
    // them in dilutes the heating figure on sparse machines.
    let occupied = occupancy.iter().filter(|&&o| o > 0).count();
    let final_mean_motional_mode_occupied = if occupied == 0 {
        0.0
    } else {
        n_bar
            .iter()
            .zip(&occupancy)
            .filter(|&(_, &o)| o > 0)
            .map(|(n, _)| n)
            .sum::<f64>()
            / occupied as f64
    };

    Ok((
        SimReport {
            program_fidelity,
            log_program_fidelity,
            makespan_us,
            timed_makespan_us: timeline.makespan_us,
            shuttles,
            shuttle_depth,
            gates,
            zone_moves: timeline.zone_moves,
            junction_crossings: timeline.junction_crossings,
            final_mean_motional_mode,
            final_mean_motional_mode_occupied,
            min_gate_fidelity,
        },
        n_bar,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::{GateId, Opcode, Qubit};
    use qccd_machine::{InitialMapping, Operation, TrapId};

    fn two_trap_fixture() -> (Circuit, MachineSpec, InitialMapping) {
        let mut c = Circuit::new(4);
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(2), Qubit(3)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(2)).unwrap();
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1)])
                .unwrap();
        (c, spec, mapping)
    }

    fn schedule_with_shuttle(mapping: InitialMapping) -> Schedule {
        Schedule::new(
            mapping,
            vec![
                Operation::Gate {
                    gate: GateId(0),
                    trap: TrapId(0),
                },
                Operation::Gate {
                    gate: GateId(1),
                    trap: TrapId(1),
                },
                Operation::Shuttle {
                    ion: IonId(1),
                    from: TrapId(0),
                    to: TrapId(1),
                },
                Operation::Gate {
                    gate: GateId(2),
                    trap: TrapId(1),
                },
            ],
        )
    }

    #[test]
    fn basic_replay_counts_and_bounds() {
        let (c, spec, mapping) = two_trap_fixture();
        let report = simulate(
            &schedule_with_shuttle(mapping),
            &c,
            &spec,
            &SimParams::default(),
        )
        .unwrap();
        assert_eq!(report.gates, 3);
        assert_eq!(report.shuttles, 1);
        assert_eq!(report.zone_moves, 0, "single-zone traps never reorder");
        assert_eq!(report.junction_crossings, 0, "a line has no junctions");
        assert!(report.program_fidelity > 0.0 && report.program_fidelity < 1.0);
        assert!(report.min_gate_fidelity <= 1.0);
        assert!(
            report.final_mean_motional_mode > 0.0,
            "shuttle must heat chains"
        );
        assert_eq!(
            report.timed_makespan_us, report.makespan_us,
            "timeline and clock replay must agree exactly"
        );
    }

    #[test]
    fn parallel_traps_overlap_in_time() {
        // Gates 0 and 1 run in different traps concurrently: the makespan
        // must be far less than the serial sum.
        let (c, spec, mapping) = two_trap_fixture();
        let report = simulate(
            &schedule_with_shuttle(mapping),
            &c,
            &spec,
            &SimParams::default(),
        )
        .unwrap();
        let p = SimParams::default();
        let serial = 2.0 * p.two_qubit_gate_us(2) + p.shuttle_hop_us() + p.two_qubit_gate_us(3);
        assert!(report.makespan_us < serial);
        // And at least gate + shuttle + gate on the critical path.
        let critical = p.two_qubit_gate_us(2) + p.shuttle_hop_us();
        assert!(report.makespan_us > critical);
    }

    #[test]
    fn more_shuttles_means_lower_fidelity() {
        // Same circuit, same final placement — but the second schedule
        // ping-pongs an ion before the last gate.
        let (c, spec, mapping) = two_trap_fixture();
        let lean = schedule_with_shuttle(mapping.clone());
        let mut ops = lean.operations.clone();
        ops.insert(
            2,
            Operation::Shuttle {
                ion: IonId(2),
                from: TrapId(1),
                to: TrapId(0),
            },
        );
        ops.insert(
            3,
            Operation::Shuttle {
                ion: IonId(2),
                from: TrapId(0),
                to: TrapId(1),
            },
        );
        let wasteful = Schedule::new(mapping, ops);
        let p = SimParams::default();
        let lean_report = simulate(&lean, &c, &spec, &p).unwrap();
        let wasteful_report = simulate(&wasteful, &c, &spec, &p).unwrap();
        assert!(
            lean_report.program_fidelity > wasteful_report.program_fidelity,
            "extra shuttles must strictly reduce program fidelity"
        );
        assert!(lean_report.makespan_us < wasteful_report.makespan_us);
        assert!(wasteful_report.fidelity_improvement_over(&lean_report) < 1.0);
    }

    #[test]
    fn invalid_schedule_rejected() {
        let (c, spec, mapping) = two_trap_fixture();
        let bad = Schedule::new(mapping, vec![]); // misses every gate
        assert!(matches!(
            simulate(&bad, &c, &spec, &SimParams::default()),
            Err(SimError::InvalidSchedule(_))
        ));
    }

    #[test]
    fn invalid_params_rejected() {
        let (c, spec, mapping) = two_trap_fixture();
        let p = SimParams {
            move_us: f64::INFINITY,
            ..SimParams::default()
        };
        assert_eq!(
            simulate(&schedule_with_shuttle(mapping), &c, &spec, &p),
            Err(SimError::InvalidParams)
        );
    }

    #[test]
    fn invalid_timing_model_rejected() {
        let (c, spec, mapping) = two_trap_fixture();
        let schedule = schedule_with_shuttle(mapping);
        let transport = TransportSchedule::pack_serial(&schedule);
        let mut model = TimingModel::realistic();
        model.junction_cross_us = -1.0;
        assert_eq!(
            simulate_timed(
                &schedule,
                &transport,
                &c,
                &spec,
                &SimParams::default(),
                &model
            ),
            Err(SimError::InvalidParams)
        );
    }

    #[test]
    fn empty_schedule_is_perfect() {
        let c = Circuit::new(2);
        let spec = MachineSpec::linear(1, 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 2).unwrap();
        let report = simulate(
            &Schedule::new(mapping, vec![]),
            &c,
            &spec,
            &SimParams::default(),
        )
        .unwrap();
        assert_eq!(report.program_fidelity, 1.0);
        assert_eq!(report.makespan_us, 0.0);
        assert_eq!(report.final_mean_motional_mode, 0.0);
    }

    #[test]
    fn transport_rounds_compress_makespan_and_depth() {
        use qccd_route::{TransportRound, TransportSchedule};
        // L3, no gates: a pipelined pair — ion 2 leaves T1 for T2 while
        // ion 1 enters T1 from T0. Serial replay serialises them on T1's
        // clock (2 hop durations); one concurrent round takes 1.
        let c = Circuit::new(4);
        let spec = MachineSpec::linear(3, 4, 1).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1)])
                .unwrap();
        let hops = [
            (IonId(2), TrapId(1), TrapId(2)),
            (IonId(1), TrapId(0), TrapId(1)),
        ];
        let ops = hops
            .iter()
            .map(|&(ion, from, to)| Operation::Shuttle { ion, from, to })
            .collect();
        let schedule = Schedule::new(mapping, ops);
        let params = SimParams::default();
        let serial = simulate(&schedule, &c, &spec, &params).unwrap();
        assert_eq!(serial.shuttle_depth, 2, "serial: one round per hop");
        assert!((serial.makespan_us - 2.0 * params.shuttle_hop_us()).abs() < 1e-9);

        let transport = TransportSchedule {
            rounds: vec![TransportRound {
                moves: hops
                    .iter()
                    .map(|&(ion, from, to)| qccd_machine::ShuttleMove { ion, from, to })
                    .collect(),
            }],
        };
        let concurrent = simulate_transport(&schedule, &transport, &c, &spec, &params).unwrap();
        assert_eq!(concurrent.shuttle_depth, 1, "one concurrent round");
        assert_eq!(concurrent.shuttles, 2);
        assert!((concurrent.makespan_us - params.shuttle_hop_us()).abs() < 1e-9);
        // Per-move split/move/merge quanta are identical, but background
        // heating accrues with elapsed time — halving the transport time
        // strictly reduces accumulated heat (and so improves fidelity).
        assert!(concurrent.final_mean_motional_mode < serial.final_mean_motional_mode);
        assert!(concurrent.program_fidelity >= serial.program_fidelity);
    }

    #[test]
    fn timed_replay_with_ideal_model_matches_uniform_replay() {
        let (c, spec, mapping) = two_trap_fixture();
        let schedule = schedule_with_shuttle(mapping);
        let transport = TransportSchedule::pack_serial(&schedule);
        let params = SimParams::default();
        let uniform = simulate(&schedule, &c, &spec, &params).unwrap();
        let timed = simulate_timed(
            &schedule,
            &transport,
            &c,
            &spec,
            &params,
            &TimingModel::ideal(),
        )
        .unwrap();
        assert_eq!(timed, uniform, "ideal timing is bit-for-bit the old replay");
    }

    #[test]
    fn realistic_model_stretches_makespan_and_heating() {
        let (c, spec, mapping) = two_trap_fixture();
        let schedule = schedule_with_shuttle(mapping);
        let transport = TransportSchedule::pack_serial(&schedule);
        let params = SimParams::default();
        let ideal = simulate_timed(
            &schedule,
            &transport,
            &c,
            &spec,
            &params,
            &TimingModel::ideal(),
        )
        .unwrap();
        let realistic = simulate_timed(
            &schedule,
            &transport,
            &c,
            &spec,
            &params,
            &TimingModel::realistic(),
        )
        .unwrap();
        assert!(realistic.timed_makespan_us > ideal.timed_makespan_us);
        assert!(
            realistic.final_mean_motional_mode > ideal.final_mean_motional_mode,
            "longer transport accrues more background heating"
        );
        assert!(realistic.program_fidelity < ideal.program_fidelity);
    }

    #[test]
    fn transport_mismatch_is_rejected() {
        use qccd_route::{TransportRound, TransportSchedule};
        let (c, spec, mapping) = two_trap_fixture();
        let schedule = schedule_with_shuttle(mapping);
        let wrong = TransportSchedule {
            rounds: vec![TransportRound {
                moves: vec![qccd_machine::ShuttleMove {
                    ion: IonId(3),
                    from: TrapId(1),
                    to: TrapId(0),
                }],
            }],
        };
        assert!(matches!(
            simulate_transport(&schedule, &wrong, &c, &spec, &SimParams::default()),
            Err(SimError::TransportMismatch { .. })
        ));
    }

    #[test]
    fn transport_rejects_empty_rounds() {
        use qccd_route::{TransportRound, TransportSchedule};
        let (c, spec, mapping) = two_trap_fixture();
        let schedule = schedule_with_shuttle(mapping);
        let mut padded = TransportSchedule::pack_serial(&schedule);
        padded.rounds.insert(0, TransportRound { moves: vec![] });
        assert!(matches!(
            simulate_transport(&schedule, &padded, &c, &spec, &SimParams::default()),
            Err(SimError::TransportMismatch { .. })
        ));
    }

    #[test]
    fn dependency_forces_serialization_across_traps() {
        // Gate 2 depends on gates 0 and 1 via qubits 1 and 2; it cannot
        // start before both finish even though it runs in trap T1.
        let (c, spec, mapping) = two_trap_fixture();
        let report = simulate(
            &schedule_with_shuttle(mapping),
            &c,
            &spec,
            &SimParams::default(),
        )
        .unwrap();
        let p = SimParams::default();
        // Critical path: gate0 (ion 1 busy) -> shuttle -> gate2.
        let expect = p.two_qubit_gate_us(2) + p.shuttle_hop_us() + p.two_qubit_gate_us(3);
        assert!((report.makespan_us - expect).abs() < 1e-9);
    }

    #[test]
    fn zone_moves_heat_and_slow_multi_zone_machines() {
        use qccd_machine::ZoneLayout;
        // One trap split 2+1+1: the gate's operands start outside the gate
        // zone, so the timed replay inserts zone moves.
        let spec = MachineSpec::linear(1, 4, 1)
            .unwrap()
            .with_zone_layout(ZoneLayout::new(2, 1, 1).unwrap())
            .unwrap();
        let mapping = InitialMapping::round_robin(&spec, 3).unwrap();
        let mut c = Circuit::new(3);
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(2)).unwrap();
        let schedule = Schedule::new(
            mapping,
            vec![Operation::Gate {
                gate: GateId(0),
                trap: TrapId(0),
            }],
        );
        let transport = TransportSchedule::pack_serial(&schedule);
        let params = SimParams::default();
        let report = simulate_timed(
            &schedule,
            &transport,
            &c,
            &spec,
            &params,
            &TimingModel::realistic(),
        )
        .unwrap();
        // Promoting ion 2 to the chain front displaces ion 1 out of the
        // 2-slot gate zone, so a second reorder is required.
        assert_eq!(report.zone_moves, 2);
        let m = TimingModel::realistic();
        let expect = 2.0 * m.zone_move_us() + m.two_qubit_gate_us(3);
        assert!((report.timed_makespan_us - expect).abs() < 1e-9);
        assert!(
            report.final_mean_motional_mode >= params.zone_move_heating_quanta,
            "the reorder pulse deposits quanta"
        );
    }
}
