//! Timed event timelines and their resource-interval validator.

use qccd_circuit::GateId;
use qccd_machine::{IonId, TrapId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// One shuttle move as a member of a timed transport round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedMove {
    /// The moved ion.
    pub ion: IonId,
    /// Source trap.
    pub from: TrapId,
    /// Destination trap.
    pub to: TrapId,
    /// Occupancy of `from` immediately before this move's SPLIT, in the
    /// round's application order (the physics replay divides the source
    /// chain's motional energy by this).
    pub src_occupancy: u32,
    /// Junction endpoints (topology degree ≥ 3) this hop negotiates.
    pub junctions: u32,
}

impl TimedMove {
    /// The move's shuttle-path segment in canonical (low, high) order.
    pub fn segment(&self) -> (TrapId, TrapId) {
        if self.from.0 <= self.to.0 {
            (self.from, self.to)
        } else {
            (self.to, self.from)
        }
    }
}

/// One event on the device timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TimelineEvent {
    /// A gate execution occupying its trap for `[start_us, end_us)`.
    Gate {
        /// The circuit gate.
        gate: GateId,
        /// The trap it runs in.
        trap: TrapId,
        /// Ions in the chain when the gate runs (sets its duration).
        chain_len: u32,
        /// Start time, µs.
        start_us: f64,
        /// End time, µs.
        end_us: f64,
    },
    /// One concurrent transport round: every member move splits, flies and
    /// merges within `[start_us, end_us)`, occupying its shuttle-path
    /// segment and both endpoint traps. The round's duration is its
    /// critical path — the slowest member hop.
    TransportRound {
        /// Member moves in application (departures-first) order.
        moves: Vec<TimedMove>,
        /// Every trap the round occupies, deduplicated.
        involved: Vec<TrapId>,
        /// Start time, µs.
        start_us: f64,
        /// End time, µs.
        end_us: f64,
    },
    /// An intra-trap zone reorder bringing `ion` into the gate zone.
    ZoneMove {
        /// The reordered ion.
        ion: IonId,
        /// The trap it happens in.
        trap: TrapId,
        /// Start time, µs.
        start_us: f64,
        /// End time, µs.
        end_us: f64,
    },
}

impl TimelineEvent {
    /// Start time of the event, µs.
    pub fn start_us(&self) -> f64 {
        match *self {
            TimelineEvent::Gate { start_us, .. }
            | TimelineEvent::TransportRound { start_us, .. }
            | TimelineEvent::ZoneMove { start_us, .. } => start_us,
        }
    }

    /// End time of the event, µs.
    pub fn end_us(&self) -> f64 {
        match *self {
            TimelineEvent::Gate { end_us, .. }
            | TimelineEvent::TransportRound { end_us, .. }
            | TimelineEvent::ZoneMove { end_us, .. } => end_us,
        }
    }
}

/// A compiled program lowered onto the device clock: every gate, transport
/// round and zone move with explicit start/end times, ASAP-scheduled under
/// a [`TimingModel`](crate::TimingModel).
///
/// Produced by [`lower`](crate::lower); consumed by `qccd-sim` for
/// makespan/heating/fidelity and by reporting layers for timed columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Events in schedule order.
    pub events: Vec<TimelineEvent>,
    /// End-to-end execution time: the latest event end, µs.
    pub makespan_us: f64,
    /// Gate events.
    pub gates: usize,
    /// Total shuttle moves across all rounds.
    pub shuttles: usize,
    /// Transport rounds (the schedule's transport depth).
    pub shuttle_depth: usize,
    /// Intra-trap zone reorders synthesized for multi-zone traps.
    pub zone_moves: usize,
    /// Total junction endpoints crossed by all shuttle moves.
    pub junction_crossings: usize,
}

impl Timeline {
    /// Checks the timeline's resource intervals: on every trap and every
    /// shuttle-path segment, event intervals must be non-overlapping (they
    /// may touch), and every event must have a non-negative duration no
    /// later than the recorded makespan.
    ///
    /// # Errors
    ///
    /// The first violated rule, as a [`TimelineError`].
    pub fn validate(&self) -> Result<(), TimelineError> {
        let mut trap_busy: HashMap<TrapId, Vec<(f64, f64)>> = HashMap::new();
        let mut edge_busy: HashMap<(TrapId, TrapId), Vec<(f64, f64)>> = HashMap::new();
        for (index, event) in self.events.iter().enumerate() {
            let (start, end) = (event.start_us(), event.end_us());
            if !(start.is_finite() && end.is_finite()) || end < start {
                return Err(TimelineError::BadInterval { index });
            }
            if end > self.makespan_us {
                return Err(TimelineError::EventPastMakespan { index });
            }
            match event {
                TimelineEvent::Gate { trap, .. } | TimelineEvent::ZoneMove { trap, .. } => {
                    trap_busy.entry(*trap).or_default().push((start, end));
                }
                TimelineEvent::TransportRound {
                    moves, involved, ..
                } => {
                    for t in involved {
                        trap_busy.entry(*t).or_default().push((start, end));
                    }
                    for m in moves {
                        edge_busy.entry(m.segment()).or_default().push((start, end));
                    }
                }
            }
        }
        for (trap, intervals) in &mut trap_busy {
            if let Some((first_end_us, second_start_us)) = find_overlap(intervals) {
                return Err(TimelineError::TrapOverlap {
                    trap: *trap,
                    first_end_us,
                    second_start_us,
                });
            }
        }
        for (&(a, b), intervals) in &mut edge_busy {
            if let Some((first_end_us, second_start_us)) = find_overlap(intervals) {
                return Err(TimelineError::EdgeOverlap {
                    a,
                    b,
                    first_end_us,
                    second_start_us,
                });
            }
        }
        Ok(())
    }

    /// Total time a given trap is busy (gates + transport + zone moves), µs.
    ///
    /// Rescans every event; callers needing more than one trap should use
    /// the single-pass [`trap_busy_all`](Timeline::trap_busy_all) instead
    /// (a unit test pins the two paths equal bit-for-bit).
    pub fn trap_busy_us(&self, trap: TrapId) -> f64 {
        self.events
            .iter()
            .filter(|e| match e {
                TimelineEvent::Gate { trap: t, .. } | TimelineEvent::ZoneMove { trap: t, .. } => {
                    *t == trap
                }
                TimelineEvent::TransportRound { involved, .. } => involved.contains(&trap),
            })
            .map(|e| e.end_us() - e.start_us())
            .sum()
    }

    /// Busy time of **all** traps in one pass over the events, µs, indexed
    /// by trap. The result covers `num_traps` entries (extended if an
    /// event references a higher trap index). Each trap's entry equals
    /// [`trap_busy_us`](Timeline::trap_busy_us) bit-for-bit: events are
    /// accumulated in the same order that path visits them.
    pub fn trap_busy_all(&self, num_traps: usize) -> Vec<f64> {
        let span = self.events.iter().fold(num_traps, |acc, e| match e {
            TimelineEvent::Gate { trap, .. } | TimelineEvent::ZoneMove { trap, .. } => {
                acc.max(trap.index() + 1)
            }
            TimelineEvent::TransportRound { involved, .. } => {
                involved.iter().fold(acc, |acc, t| acc.max(t.index() + 1))
            }
        });
        let mut busy = vec![0.0f64; span];
        for event in &self.events {
            let dur = event.end_us() - event.start_us();
            match event {
                TimelineEvent::Gate { trap, .. } | TimelineEvent::ZoneMove { trap, .. } => {
                    busy[trap.index()] += dur;
                }
                TimelineEvent::TransportRound { involved, .. } => {
                    for t in involved {
                        busy[t.index()] += dur;
                    }
                }
            }
        }
        busy
    }
}

/// Finds the first pair of strictly overlapping intervals after sorting by
/// start; returns `(earlier end, later start)` of the clash.
fn find_overlap(intervals: &mut [(f64, f64)]) -> Option<(f64, f64)> {
    intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("validated finite"));
    intervals
        .windows(2)
        .find(|w| w[1].0 < w[0].1)
        .map(|w| (w[0].1, w[1].0))
}

/// A violated timeline invariant, reported by [`Timeline::validate`].
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineError {
    /// An event has a non-finite or negative-length interval.
    BadInterval {
        /// Index of the offending event.
        index: usize,
    },
    /// An event ends after the timeline's recorded makespan.
    EventPastMakespan {
        /// Index of the offending event.
        index: usize,
    },
    /// Two events overlap on one trap resource.
    TrapOverlap {
        /// The double-booked trap.
        trap: TrapId,
        /// End of the earlier event, µs.
        first_end_us: f64,
        /// Start of the overlapping later event, µs.
        second_start_us: f64,
    },
    /// Two rounds overlap on one shuttle-path segment.
    EdgeOverlap {
        /// First endpoint of the contested segment.
        a: TrapId,
        /// Second endpoint of the contested segment.
        b: TrapId,
        /// End of the earlier round, µs.
        first_end_us: f64,
        /// Start of the overlapping later round, µs.
        second_start_us: f64,
    },
}

impl fmt::Display for TimelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimelineError::BadInterval { index } => {
                write!(f, "event {index} has a non-finite or negative interval")
            }
            TimelineError::EventPastMakespan { index } => {
                write!(f, "event {index} ends after the recorded makespan")
            }
            TimelineError::TrapOverlap {
                trap,
                first_end_us,
                second_start_us,
            } => write!(
                f,
                "trap {trap} double-booked: event starting at {second_start_us} us overlaps one ending at {first_end_us} us"
            ),
            TimelineError::EdgeOverlap {
                a,
                b,
                first_end_us,
                second_start_us,
            } => write!(
                f,
                "segment {a} — {b} double-booked: round starting at {second_start_us} us overlaps one ending at {first_end_us} us"
            ),
        }
    }
}

impl Error for TimelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(trap: u32, start: f64, end: f64) -> TimelineEvent {
        TimelineEvent::Gate {
            gate: GateId(0),
            trap: TrapId(trap),
            chain_len: 2,
            start_us: start,
            end_us: end,
        }
    }

    fn round(from: u32, to: u32, start: f64, end: f64) -> TimelineEvent {
        TimelineEvent::TransportRound {
            moves: vec![TimedMove {
                ion: IonId(0),
                from: TrapId(from),
                to: TrapId(to),
                src_occupancy: 1,
                junctions: 0,
            }],
            involved: vec![TrapId(from), TrapId(to)],
            start_us: start,
            end_us: end,
        }
    }

    fn timeline(events: Vec<TimelineEvent>) -> Timeline {
        let makespan_us = events.iter().map(|e| e.end_us()).fold(0.0, f64::max);
        Timeline {
            events,
            makespan_us,
            gates: 0,
            shuttles: 0,
            shuttle_depth: 0,
            zone_moves: 0,
            junction_crossings: 0,
        }
    }

    #[test]
    fn disjoint_and_touching_intervals_validate() {
        let t = timeline(vec![
            gate(0, 0.0, 100.0),
            gate(1, 50.0, 150.0),  // different trap: overlap fine
            gate(0, 100.0, 200.0), // touching is fine
            round(0, 1, 200.0, 365.0),
        ]);
        t.validate().unwrap();
        assert_eq!(t.makespan_us, 365.0);
        assert!((t.trap_busy_us(TrapId(0)) - 365.0).abs() < 1e-9);
    }

    #[test]
    fn trap_overlap_detected() {
        let t = timeline(vec![gate(0, 0.0, 100.0), gate(0, 99.0, 150.0)]);
        assert_eq!(
            t.validate().unwrap_err(),
            TimelineError::TrapOverlap {
                trap: TrapId(0),
                first_end_us: 100.0,
                second_start_us: 99.0
            }
        );
    }

    #[test]
    fn edge_overlap_detected() {
        // Rounds on the same segment at overlapping times, sharing no trap
        // booking mistake... they do share traps too, so test edges via
        // distinct trap sets is impossible — assert the error mentions a
        // resource clash at all.
        let t = timeline(vec![round(0, 1, 0.0, 165.0), round(1, 0, 100.0, 265.0)]);
        assert!(t.validate().is_err());
    }

    #[test]
    fn edge_overlap_variant_reported() {
        // Overlapping rounds normally trip the trap check first (a
        // segment's endpoints are always involved traps), so hand-build
        // rounds that share segment (0, 1) while booking disjoint traps:
        // only the edge check can fire.
        let mut a = round(0, 1, 0.0, 165.0);
        let mut b = round(1, 0, 100.0, 265.0);
        if let TimelineEvent::TransportRound { involved, .. } = &mut a {
            *involved = vec![TrapId(2)];
        }
        if let TimelineEvent::TransportRound { involved, .. } = &mut b {
            *involved = vec![TrapId(3)];
        }
        let t = timeline(vec![a, b]);
        assert_eq!(
            t.validate().unwrap_err(),
            TimelineError::EdgeOverlap {
                a: TrapId(0),
                b: TrapId(1),
                first_end_us: 165.0,
                second_start_us: 100.0
            }
        );
    }

    #[test]
    fn non_finite_interval_detected() {
        let t = timeline(vec![gate(0, 0.0, f64::NAN)]);
        assert_eq!(
            t.validate().unwrap_err(),
            TimelineError::BadInterval { index: 0 }
        );
        let t = timeline(vec![gate(0, f64::INFINITY, f64::INFINITY)]);
        assert_eq!(
            t.validate().unwrap_err(),
            TimelineError::BadInterval { index: 0 }
        );
    }

    #[test]
    fn every_error_variant_displays_its_resource() {
        let cases: Vec<(TimelineError, &str)> = vec![
            (TimelineError::BadInterval { index: 3 }, "event 3"),
            (TimelineError::EventPastMakespan { index: 7 }, "event 7"),
            (
                TimelineError::TrapOverlap {
                    trap: TrapId(2),
                    first_end_us: 10.0,
                    second_start_us: 5.0,
                },
                "trap T2",
            ),
            (
                TimelineError::EdgeOverlap {
                    a: TrapId(0),
                    b: TrapId(1),
                    first_end_us: 10.0,
                    second_start_us: 5.0,
                },
                "segment T0",
            ),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err} missing {needle:?}");
        }
    }

    #[test]
    fn trap_busy_all_pins_equality_to_per_trap_rescan() {
        let t = timeline(vec![
            gate(0, 0.0, 100.0),
            gate(1, 50.0, 150.0),
            gate(0, 100.0, 200.0),
            round(0, 1, 200.0, 365.0),
        ]);
        let busy = t.trap_busy_all(2);
        assert_eq!(busy.len(), 2);
        for trap in 0..2u32 {
            assert_eq!(
                busy[trap as usize],
                t.trap_busy_us(TrapId(trap)),
                "single-pass accessor diverged from the rescan path on trap {trap}"
            );
        }
        // The result extends past `num_traps` when events reference
        // higher trap ids, and pads untouched traps with zero.
        assert_eq!(t.trap_busy_all(0).len(), 2);
        assert_eq!(t.trap_busy_all(4).len(), 4);
        assert_eq!(t.trap_busy_all(4)[3], 0.0);
    }

    #[test]
    fn bad_intervals_detected() {
        let t = timeline(vec![gate(0, 100.0, 50.0)]);
        assert_eq!(
            t.validate().unwrap_err(),
            TimelineError::BadInterval { index: 0 }
        );
        let mut t = timeline(vec![gate(0, 0.0, 100.0)]);
        t.makespan_us = 50.0;
        assert_eq!(
            t.validate().unwrap_err(),
            TimelineError::EventPastMakespan { index: 0 }
        );
    }
}
