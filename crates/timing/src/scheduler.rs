//! ASAP lowering of a compiled schedule onto the device clock.
//!
//! [`lower`] runs the whole schedule in one pass. The fold it runs is also
//! exposed as the resumable [`LowerState`], so callers that repeatedly
//! re-lower *perturbed* schedules — the `qccd-pack` transport optimizer
//! scores every candidate rewrite on the device clock — can checkpoint the
//! fold at a chunk boundary (clone the state) and re-lower only the suffix
//! instead of paying a full O(n) `lower` per candidate.

use crate::model::TimingModel;
use crate::timeline::{TimedMove, Timeline, TimelineEvent};
use qccd_circuit::{Circuit, GateQubits};
use qccd_machine::{
    InitialMapping, IonId, MachineError, MachineSpec, MachineState, Operation, Schedule, TrapId,
};
use qccd_route::{TransportRound, TransportSchedule};
use std::error::Error;
use std::fmt;

/// Lowers a compiled `schedule` into a validated ASAP [`Timeline`] under
/// `model`.
///
/// The scheduler replays the machine state and assigns every operation the
/// earliest start compatible with its resources:
///
/// * a **gate** starts when its trap is free and every operand qubit's
///   prior operations have finished; it occupies the trap for the model's
///   (chain-length-dependent) gate duration;
/// * a **transport round** — taken from `transport`, or one synthetic
///   single-hop round per shuttle op when `transport` is `None` — starts
///   when all its member traps are free and all member ions are available,
///   and lasts its *critical path*: the slowest member hop (split +
///   segment transit + junction corners + merge). All member segments and
///   endpoint traps are occupied for the full round;
/// * a **zone move** is synthesized before a gate whenever an operand ion
///   sits outside its trap's gate zone (multi-zone layouts only): the ion
///   is reordered to the chain front at the model's zone-move cost.
///
/// Under [`TimingModel::ideal`] this reproduces the historical uniform-hop
/// simulator's clock arithmetic bit-for-bit.
///
/// `schedule` must already be replay-valid against `circuit`/`spec` (as
/// every [`compile`](../qccd_core/fn.compile.html) result is); lowering
/// only re-checks what it must replay (shuttle legality, transport-round
/// coverage).
///
/// # Errors
///
/// * [`LowerError::InvalidModel`] — `model` has non-finite or negative
///   constants.
/// * [`LowerError::TransportMismatch`] — `transport`'s rounds do not cover
///   the schedule's shuttle operations (wrong moves, empty rounds, rounds
///   spanning a gate, or leftover rounds).
/// * [`LowerError::Machine`] — a shuttle replay violated machine rules.
/// * [`LowerError::StalledRound`] — a round's moves could not be applied
///   in any order (an illegal hand-built round).
pub fn lower(
    schedule: &Schedule,
    transport: Option<&TransportSchedule>,
    circuit: &Circuit,
    spec: &MachineSpec,
    model: &TimingModel,
) -> Result<Timeline, LowerError> {
    let _phase = qccd_obs::span("lowering");
    let mut state = LowerState::new(&schedule.initial_mapping, spec, model)?;
    let mut events: Vec<TimelineEvent> = Vec::with_capacity(schedule.operations.len());
    state.advance(
        &schedule.operations,
        transport.map(|t| t.rounds.as_slice()),
        circuit,
        spec,
        &mut events,
    )?;
    Ok(state.finish(events))
}

/// The resumable ASAP-lowering fold behind [`lower`].
///
/// `LowerState` carries everything the lowering loop threads between
/// operations — the replayed [`MachineState`], the per-trap device clocks,
/// the per-qubit availability times, and the event counters — but **not**
/// the accumulated events, which the caller owns. This makes a checkpoint a
/// cheap `clone()` (O(ions + traps), independent of how many events the
/// prefix produced), so a transport optimizer can:
///
/// 1. [`advance`](LowerState::advance) through the accepted prefix once,
/// 2. clone the state at a candidate's chunk boundary,
/// 3. advance the clone through the candidate suffix and compare
///    [`makespan_us`](LowerState::makespan_us) — an O(suffix) score instead
///    of an O(n) full re-lower.
///
/// Chunk boundaries must not split a transport round, and each `advance`
/// call's `transport` slice must cover exactly its chunk's shuttle
/// operations. Chunking a schedule at such boundaries is *bit-for-bit*
/// equivalent to one whole-schedule [`lower`] call: the fold is a left
/// fold, and the chunk boundary carries its entire state.
#[derive(Debug, Clone)]
pub struct LowerState {
    pub(crate) model: TimingModel,
    pub(crate) state: MachineState,
    /// Per-trap device clock, µs.
    pub(crate) clock: Vec<f64>,
    /// Per-qubit availability time, µs.
    pub(crate) avail: Vec<f64>,
    gates: usize,
    shuttles: usize,
    shuttle_depth: usize,
    zone_moves: usize,
    junction_crossings: usize,
}

impl LowerState {
    /// Starts the fold at time zero with every ion at its initial trap.
    ///
    /// # Errors
    ///
    /// * [`LowerError::InvalidModel`] — `model` has non-finite or negative
    ///   constants.
    /// * [`LowerError::Machine`] — `mapping` does not fit `spec`.
    pub fn new(
        mapping: &InitialMapping,
        spec: &MachineSpec,
        model: &TimingModel,
    ) -> Result<Self, LowerError> {
        if !model.is_valid() {
            return Err(LowerError::InvalidModel);
        }
        let state = MachineState::with_mapping(spec, mapping).map_err(LowerError::Machine)?;
        let num_traps = spec.num_traps() as usize;
        let num_ions = state.num_ions() as usize;
        Ok(LowerState {
            model: *model,
            state,
            clock: vec![0.0; num_traps],
            avail: vec![0.0; num_ions],
            gates: 0,
            shuttles: 0,
            shuttle_depth: 0,
            zone_moves: 0,
            junction_crossings: 0,
        })
    }

    /// The fold's makespan so far: the latest per-trap clock, µs.
    pub fn makespan_us(&self) -> f64 {
        self.clock.iter().copied().fold(0.0f64, f64::max)
    }

    /// Per-trap device clocks so far, µs.
    ///
    /// ASAP lowering is monotone in these (every event start is a max over
    /// a subset of clocks and availabilities), so a state whose clocks and
    /// availabilities are all ≤ another's can only produce an equal or
    /// earlier makespan for any shared suffix — the comparison a local
    /// rewrite optimizer needs to accept a candidate without re-lowering
    /// the whole tail.
    pub fn trap_clocks(&self) -> &[f64] {
        &self.clock
    }

    /// Per-qubit availability times so far, µs.
    pub fn ion_avail(&self) -> &[f64] {
        &self.avail
    }

    /// The replayed machine state after every operation advanced so far.
    pub fn machine(&self) -> &MachineState {
        &self.state
    }

    /// Checkpoints the fold: an independent copy that can advance through
    /// a *speculative* suffix without disturbing this state. Rolling back
    /// is dropping the checkpointed copy — the original fold never moved.
    ///
    /// This is the accessor pair a compile-loop objective needs: advance
    /// the real state through committed operations, [`checkpoint`] before
    /// every open decision, [`score_ops`](LowerState::score_ops) each
    /// candidate on the copy, commit the winner, drop the rest.
    ///
    /// [`checkpoint`]: LowerState::checkpoint
    pub fn checkpoint(&self) -> LowerState {
        self.clone()
    }

    /// Scores a candidate suffix without committing it: advances a
    /// checkpointed copy through `ops` (each shuttle as a synthetic
    /// single-hop round, as in transport-less [`lower`]) and returns the
    /// copy's projected makespan, µs.
    ///
    /// Returns `None` when the suffix does not replay legally from here
    /// (e.g. a speculative hop into a trap that is full at this point of
    /// the fold) — the candidate is infeasible as priced and the caller
    /// should score it as unboundedly late or fall back.
    pub fn score_ops(
        &self,
        ops: &[Operation],
        circuit: &Circuit,
        spec: &MachineSpec,
    ) -> Option<f64> {
        let mut copy = self.checkpoint();
        let mut scratch = Vec::new();
        copy.advance(ops, None, circuit, spec, &mut scratch).ok()?;
        Some(copy.makespan_us())
    }

    /// Transport rounds lowered so far (the fold's shuttle depth).
    pub fn shuttle_depth(&self) -> usize {
        self.shuttle_depth
    }

    /// Advances the fold through one chunk of operations, appending the
    /// timed events to `events`.
    ///
    /// With `Some(rounds)`, the chunk's shuttle operations are grouped into
    /// exactly those rounds (in order, none spanning a gate, none left
    /// over); with `None`, each shuttle op becomes one synthetic single-hop
    /// round. A gate-free run must not be split across `advance` calls
    /// mid-round; splitting at round boundaries is fine.
    ///
    /// On error the state is left partially advanced and must be discarded.
    ///
    /// # Errors
    ///
    /// As [`lower`]; `op_index` in [`LowerError::TransportMismatch`] is
    /// relative to this chunk's `ops`.
    pub fn advance(
        &mut self,
        ops: &[Operation],
        transport: Option<&[TransportRound]>,
        circuit: &Circuit,
        spec: &MachineSpec,
        events: &mut Vec<TimelineEvent>,
    ) -> Result<(), LowerError> {
        let topology = spec.topology();
        let model = self.model;
        let mut round_idx = 0usize;
        let mut i = 0usize;
        while i < ops.len() {
            match ops[i] {
                Operation::Gate { gate, trap } => {
                    let g = circuit.gate(gate);
                    let t = trap.index();
                    // Multi-zone traps: operands outside the gate zone need an
                    // explicit timed reorder first. Promoting one operand to
                    // the chain front shifts the others back, so it can push an
                    // already-checked operand out again — iterate until every
                    // operand is *simultaneously* gate-ready (the gate zone
                    // holds ≥ 2 ions by validation, so this settles in at most
                    // a few passes). Never fires under the default single-zone
                    // layout.
                    if !spec.zone_layout().is_single() {
                        loop {
                            let mut promoted = false;
                            for q in g.qubits.iter() {
                                let ion = IonId::from(q);
                                if self.state.promote_to_gate_zone(ion) {
                                    let start = self.clock[t].max(self.avail[ion.index()]);
                                    let end = start + model.zone_move_us();
                                    self.clock[t] = end;
                                    self.avail[ion.index()] = end;
                                    self.zone_moves += 1;
                                    events.push(TimelineEvent::ZoneMove {
                                        ion,
                                        trap,
                                        start_us: start,
                                        end_us: end,
                                    });
                                    promoted = true;
                                }
                            }
                            if !promoted {
                                break;
                            }
                        }
                    }
                    let chain_len = self.state.occupancy(trap);
                    let tau = match g.qubits {
                        GateQubits::One(_) => model.one_qubit_gate_us(),
                        GateQubits::Two(_, _) => model.two_qubit_gate_us(chain_len),
                    };
                    let start = g
                        .qubits
                        .iter()
                        .map(|q| self.avail[q.index()])
                        .fold(self.clock[t], f64::max);
                    let end = start + tau;
                    self.clock[t] = end;
                    for q in g.qubits.iter() {
                        self.avail[q.index()] = end;
                    }
                    self.gates += 1;
                    events.push(TimelineEvent::Gate {
                        gate,
                        trap,
                        chain_len,
                        start_us: start,
                        end_us: end,
                    });
                    i += 1;
                }
                Operation::Shuttle { .. } => {
                    // The gate-free run of consecutive shuttle ops starting here.
                    let run_start = i;
                    let mut run_len = 0usize;
                    while matches!(
                        ops.get(run_start + run_len),
                        Some(Operation::Shuttle { .. })
                    ) {
                        run_len += 1;
                    }
                    // Multiset of the run's moves still awaiting a round.
                    let mut remaining: Vec<Option<(IonId, TrapId, TrapId)>> = ops
                        [run_start..run_start + run_len]
                        .iter()
                        .map(|op| match *op {
                            Operation::Shuttle { ion, from, to } => Some((ion, from, to)),
                            Operation::Gate { .. } => unreachable!("run members are shuttles"),
                        })
                        .collect();
                    let mut consumed = 0usize;
                    while consumed < run_len {
                        // This round's member moves: from the transport
                        // schedule, or one synthetic single-hop round.
                        let members: Vec<(IonId, TrapId, TrapId)> = match transport {
                            None => {
                                let m = remaining[consumed].take().expect("consumed in order");
                                vec![m]
                            }
                            Some(rounds) => {
                                let round =
                                    rounds.get(round_idx).ok_or(LowerError::TransportMismatch {
                                        op_index: run_start + consumed,
                                    })?;
                                if round.moves.is_empty() {
                                    return Err(LowerError::TransportMismatch {
                                        op_index: run_start + consumed,
                                    });
                                }
                                round_idx += 1;
                                let mut taken = Vec::with_capacity(round.moves.len());
                                for m in &round.moves {
                                    let want = (m.ion, m.from, m.to);
                                    let slot = remaining
                                        .iter_mut()
                                        .find(|slot| **slot == Some(want))
                                        .ok_or(LowerError::TransportMismatch {
                                            op_index: run_start + consumed,
                                        })?;
                                    *slot = None;
                                    taken.push(want);
                                }
                                taken
                            }
                        };

                        // Apply the members with departures-first retry: a move
                        // blocked by a full trap waits for a same-round
                        // departure to free it. In-order rounds (the strict
                        // packers) always apply on the first pass, preserving
                        // the historical per-move occupancy reads.
                        let mut timed: Vec<TimedMove> = Vec::with_capacity(members.len());
                        let mut pending: Vec<(IonId, TrapId, TrapId)> = members.clone();
                        while !pending.is_empty() {
                            let mut progressed = false;
                            let mut still: Vec<(IonId, TrapId, TrapId)> = Vec::new();
                            for (ion, from, to) in pending {
                                let src_occupancy = self.state.occupancy(from);
                                match self.state.shuttle(ion, to) {
                                    Ok(()) => {
                                        let junctions =
                                            TimingModel::junctions_crossed(topology, from, to);
                                        self.junction_crossings += junctions as usize;
                                        timed.push(TimedMove {
                                            ion,
                                            from,
                                            to,
                                            src_occupancy,
                                            junctions,
                                        });
                                        progressed = true;
                                    }
                                    Err(MachineError::TrapFull { .. }) => {
                                        still.push((ion, from, to))
                                    }
                                    Err(e) => return Err(LowerError::Machine(e)),
                                }
                            }
                            if !progressed {
                                return Err(LowerError::StalledRound {
                                    round: self.shuttle_depth,
                                });
                            }
                            pending = still;
                        }

                        // ASAP timing: the round starts when every member trap
                        // is free and every member ion's dependencies resolved;
                        // it lasts its critical-path hop.
                        let mut involved: Vec<usize> = Vec::with_capacity(2 * members.len());
                        for &(_, from, to) in &members {
                            for t in [from.index(), to.index()] {
                                if !involved.contains(&t) {
                                    involved.push(t);
                                }
                            }
                        }
                        let tau = timed
                            .iter()
                            .map(|m| model.hop_us(m.junctions))
                            .fold(0.0f64, f64::max);
                        let start = members
                            .iter()
                            .map(|&(ion, _, _)| self.avail[ion.index()])
                            .chain(involved.iter().map(|&t| self.clock[t]))
                            .fold(0.0f64, f64::max);
                        let end = start + tau;
                        for &(ion, _, _) in &members {
                            self.avail[ion.index()] = end;
                        }
                        for &t in &involved {
                            self.clock[t] = end;
                        }
                        self.shuttles += members.len();
                        self.shuttle_depth += 1;
                        consumed += members.len();
                        events.push(TimelineEvent::TransportRound {
                            moves: timed,
                            involved: involved.into_iter().map(|t| TrapId(t as u32)).collect(),
                            start_us: start,
                            end_us: end,
                        });
                    }
                    i = run_start + run_len;
                }
            }
        }
        if let Some(rounds) = transport {
            if round_idx != rounds.len() {
                return Err(LowerError::TransportMismatch {
                    op_index: ops.len(),
                });
            }
        }
        Ok(())
    }

    /// Finishes the fold, packaging the accumulated `events` and counters
    /// into a [`Timeline`].
    pub fn finish(self, events: Vec<TimelineEvent>) -> Timeline {
        let makespan_us = self.makespan_us();
        Timeline {
            events,
            makespan_us,
            gates: self.gates,
            shuttles: self.shuttles,
            shuttle_depth: self.shuttle_depth,
            zone_moves: self.zone_moves,
            junction_crossings: self.junction_crossings,
        }
    }
}

/// Errors raised by [`lower`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// The timing model has non-finite or negative constants.
    InvalidModel,
    /// A machine-level rule was violated while replaying the schedule.
    Machine(MachineError),
    /// The transport rounds do not cover the schedule's shuttle operations.
    TransportMismatch {
        /// Index of the first schedule operation the rounds disagree with.
        op_index: usize,
    },
    /// A round's moves could not be applied in any order.
    StalledRound {
        /// Index of the stalled round.
        round: usize,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::InvalidModel => {
                write!(f, "timing model constants must be finite and non-negative")
            }
            LowerError::Machine(e) => write!(f, "illegal schedule replay: {e}"),
            LowerError::TransportMismatch { op_index } => write!(
                f,
                "transport rounds disagree with the schedule at operation {op_index}"
            ),
            LowerError::StalledRound { round } => {
                write!(f, "transport round {round} cannot be applied in any order")
            }
        }
    }
}

impl Error for LowerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LowerError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::{GateId, Opcode, Qubit};
    use qccd_machine::{InitialMapping, TrapTopology, ZoneLayout};
    use qccd_route::{TransportRound, TransportSchedule};

    fn sh(ion: u32, from: u32, to: u32) -> Operation {
        Operation::Shuttle {
            ion: IonId(ion),
            from: TrapId(from),
            to: TrapId(to),
        }
    }

    fn two_trap_fixture() -> (Circuit, MachineSpec, Schedule) {
        let mut c = Circuit::new(4);
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(2), Qubit(3)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(2)).unwrap();
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1)])
                .unwrap();
        let schedule = Schedule::new(
            mapping,
            vec![
                Operation::Gate {
                    gate: GateId(0),
                    trap: TrapId(0),
                },
                Operation::Gate {
                    gate: GateId(1),
                    trap: TrapId(1),
                },
                sh(1, 0, 1),
                Operation::Gate {
                    gate: GateId(2),
                    trap: TrapId(1),
                },
            ],
        );
        (c, spec, schedule)
    }

    #[test]
    fn ideal_lowering_matches_uniform_clock_arithmetic() {
        let (c, spec, schedule) = two_trap_fixture();
        let model = TimingModel::ideal();
        let timeline = lower(&schedule, None, &c, &spec, &model).unwrap();
        timeline.validate().unwrap();
        assert_eq!(timeline.gates, 3);
        assert_eq!(timeline.shuttles, 1);
        assert_eq!(timeline.shuttle_depth, 1);
        assert_eq!(timeline.zone_moves, 0);
        assert_eq!(timeline.junction_crossings, 0);
        // Critical path: gate0 (100) + hop (165) + gate2 (3-ion chain, 105).
        let expect = model.two_qubit_gate_us(2) + model.hop_us(0) + model.two_qubit_gate_us(3);
        assert!((timeline.makespan_us - expect).abs() < 1e-9);
    }

    #[test]
    fn chunked_advance_is_bit_for_bit_identical_to_lower() {
        let (c, spec, schedule) = two_trap_fixture();
        let model = TimingModel::realistic();
        let full = lower(&schedule, None, &c, &spec, &model).unwrap();
        // Advance one operation at a time — the finest legal chunking for
        // synthetic single-hop rounds.
        let mut state = LowerState::new(&schedule.initial_mapping, &spec, &model).unwrap();
        let mut events = Vec::new();
        for op in &schedule.operations {
            state
                .advance(std::slice::from_ref(op), None, &c, &spec, &mut events)
                .unwrap();
        }
        let chunked = state.finish(events);
        assert_eq!(chunked, full, "chunked fold must equal the one-shot fold");
    }

    #[test]
    fn checkpoint_clone_resumes_independently() {
        let (c, spec, schedule) = two_trap_fixture();
        let model = TimingModel::ideal();
        let mut state = LowerState::new(&schedule.initial_mapping, &spec, &model).unwrap();
        let mut events = Vec::new();
        // Advance through the first two gates, checkpoint, then lower the
        // suffix twice from the same checkpoint.
        state
            .advance(&schedule.operations[..2], None, &c, &spec, &mut events)
            .unwrap();
        let checkpoint = state.clone();
        let prefix_events = events.clone();

        let mut a = checkpoint.clone();
        let mut ev_a = prefix_events.clone();
        a.advance(&schedule.operations[2..], None, &c, &spec, &mut ev_a)
            .unwrap();
        let mut b = checkpoint;
        let mut ev_b = prefix_events;
        b.advance(&schedule.operations[2..], None, &c, &spec, &mut ev_b)
            .unwrap();
        let full = lower(&schedule, None, &c, &spec, &model).unwrap();
        assert_eq!(a.finish(ev_a), full);
        assert_eq!(b.finish(ev_b), full);
    }

    #[test]
    fn score_ops_is_speculative_and_side_effect_free() {
        let (c, spec, schedule) = two_trap_fixture();
        let model = TimingModel::realistic();
        let mut state = LowerState::new(&schedule.initial_mapping, &spec, &model).unwrap();
        let mut events = Vec::new();
        state
            .advance(&schedule.operations[..2], None, &c, &spec, &mut events)
            .unwrap();
        let before = state.checkpoint();
        // Scoring the real suffix matches committing it on a copy...
        let scored = state
            .score_ops(&schedule.operations[2..], &c, &spec)
            .expect("legal suffix scores");
        let full = lower(&schedule, None, &c, &spec, &model).unwrap();
        assert_eq!(scored, full.makespan_us);
        // ...and leaves the original fold untouched, bit-for-bit.
        assert_eq!(state.trap_clocks(), before.trap_clocks());
        assert_eq!(state.ion_avail(), before.ion_avail());
        assert_eq!(state.makespan_us(), before.makespan_us());
        // An illegal speculative hop (ion 0 into its own trap's twin with
        // a bogus source) scores as None instead of corrupting the fold.
        let bogus = [sh(0, 1, 0)];
        assert_eq!(state.score_ops(&bogus, &c, &spec), None);
        assert_eq!(state.trap_clocks(), before.trap_clocks());
    }

    #[test]
    fn concurrent_round_costs_its_critical_path() {
        // L3 corridor: two pipelined hops share one round.
        let c = Circuit::new(4);
        let spec = MachineSpec::linear(3, 4, 1).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1)])
                .unwrap();
        let schedule = Schedule::new(mapping, vec![sh(2, 1, 2), sh(1, 0, 1)]);
        let transport = TransportSchedule {
            rounds: vec![TransportRound {
                moves: vec![
                    qccd_machine::ShuttleMove {
                        ion: IonId(2),
                        from: TrapId(1),
                        to: TrapId(2),
                    },
                    qccd_machine::ShuttleMove {
                        ion: IonId(1),
                        from: TrapId(0),
                        to: TrapId(1),
                    },
                ],
            }],
        };
        let model = TimingModel::ideal();
        let timeline = lower(&schedule, Some(&transport), &c, &spec, &model).unwrap();
        timeline.validate().unwrap();
        assert_eq!(timeline.shuttle_depth, 1);
        assert!((timeline.makespan_us - model.hop_us(0)).abs() < 1e-9);
    }

    #[test]
    fn junction_hops_stretch_realistic_rounds() {
        // 3x3 grid: hop into the centre crosses two junction endpoints.
        let spec = MachineSpec::new(qccd_machine::TrapTopology::grid(3, 3), 4, 1).unwrap();
        let mapping = InitialMapping::from_traps(&spec, vec![TrapId(1)]).unwrap();
        let c = Circuit::new(1);
        let schedule = Schedule::new(mapping, vec![sh(0, 1, 4)]);
        let ideal = lower(&schedule, None, &c, &spec, &TimingModel::ideal()).unwrap();
        let realistic = lower(&schedule, None, &c, &spec, &TimingModel::realistic()).unwrap();
        assert_eq!(realistic.junction_crossings, 2);
        let m = TimingModel::realistic();
        assert!((realistic.makespan_us - m.hop_us(2)).abs() < 1e-9);
        assert!(realistic.makespan_us > ideal.makespan_us);
    }

    #[test]
    fn zone_moves_are_synthesized_for_multi_zone_traps() {
        // One trap, 2-slot gate zone: ions 2 and 3 start outside it, so the
        // gate on (2, 3) needs two timed reorders first.
        let spec = MachineSpec::linear(1, 6, 1)
            .unwrap()
            .with_zone_layout(ZoneLayout::new(2, 3, 1).unwrap())
            .unwrap();
        let mapping = InitialMapping::round_robin(&spec, 4).unwrap();
        let mut c = Circuit::new(4);
        c.push_two_qubit(Opcode::Ms, Qubit(2), Qubit(3)).unwrap();
        let schedule = Schedule::new(
            mapping,
            vec![Operation::Gate {
                gate: GateId(0),
                trap: TrapId(0),
            }],
        );
        let model = TimingModel::realistic();
        let timeline = lower(&schedule, None, &c, &spec, &model).unwrap();
        timeline.validate().unwrap();
        assert_eq!(timeline.zone_moves, 2);
        let expect = 2.0 * model.zone_move_us() + model.two_qubit_gate_us(4);
        assert!((timeline.makespan_us - expect).abs() < 1e-9);

        // The ideal model charges zone moves nothing.
        let ideal = lower(&schedule, None, &c, &spec, &TimingModel::ideal()).unwrap();
        assert_eq!(ideal.zone_moves, 2);
        let ideal_expect = TimingModel::ideal().two_qubit_gate_us(4);
        assert!((ideal.makespan_us - ideal_expect).abs() < 1e-9);
    }

    #[test]
    fn zone_promotion_displacement_is_recharged() {
        // Gate zone of 2, chain [x, A, B] with a gate on (A, B): A starts
        // inside the zone, but promoting B to the chain front pushes A
        // out, so the scheduler must charge a second reorder and end with
        // both operands gate-ready.
        let spec = MachineSpec::linear(1, 4, 1)
            .unwrap()
            .with_zone_layout(ZoneLayout::new(2, 1, 1).unwrap())
            .unwrap();
        let mapping = InitialMapping::round_robin(&spec, 3).unwrap();
        let mut c = Circuit::new(3);
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(2)).unwrap();
        let schedule = Schedule::new(
            mapping,
            vec![Operation::Gate {
                gate: GateId(0),
                trap: TrapId(0),
            }],
        );
        let model = TimingModel::realistic();
        let timeline = lower(&schedule, None, &c, &spec, &model).unwrap();
        timeline.validate().unwrap();
        assert_eq!(timeline.zone_moves, 2, "B's promotion displaces A");
        let expect = 2.0 * model.zone_move_us() + model.two_qubit_gate_us(3);
        assert!((timeline.makespan_us - expect).abs() < 1e-9);
    }

    #[test]
    fn reordered_rounds_lower_with_departures_first_retry() {
        // T1 (capacity 2) is full; the round moves ion 0 into T1 while
        // ion 2 leaves — listed arrival-first to force the retry pass.
        let spec = MachineSpec::linear(3, 2, 0).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(1), TrapId(1), TrapId(2)])
                .unwrap();
        let c = Circuit::new(4);
        let schedule = Schedule::new(mapping, vec![sh(2, 1, 2), sh(0, 0, 1)]);
        let transport = TransportSchedule {
            rounds: vec![TransportRound {
                moves: vec![
                    qccd_machine::ShuttleMove {
                        ion: IonId(0),
                        from: TrapId(0),
                        to: TrapId(1),
                    },
                    qccd_machine::ShuttleMove {
                        ion: IonId(2),
                        from: TrapId(1),
                        to: TrapId(2),
                    },
                ],
            }],
        };
        let timeline = lower(
            &schedule,
            Some(&transport),
            &c,
            &spec,
            &TimingModel::ideal(),
        )
        .unwrap();
        timeline.validate().unwrap();
        assert_eq!(timeline.shuttle_depth, 1);
        // Application order is departures-first: ion 2 out, then ion 0 in.
        match &timeline.events[0] {
            TimelineEvent::TransportRound { moves, .. } => {
                assert_eq!(moves[0].ion, IonId(2));
                assert_eq!(moves[1].ion, IonId(0));
            }
            other => panic!("expected a round, got {other:?}"),
        }
    }

    #[test]
    fn transport_mismatches_are_rejected() {
        let (c, spec, schedule) = two_trap_fixture();
        let model = TimingModel::ideal();
        // Wrong move.
        let wrong = TransportSchedule {
            rounds: vec![TransportRound {
                moves: vec![qccd_machine::ShuttleMove {
                    ion: IonId(3),
                    from: TrapId(1),
                    to: TrapId(0),
                }],
            }],
        };
        assert!(matches!(
            lower(&schedule, Some(&wrong), &c, &spec, &model),
            Err(LowerError::TransportMismatch { .. })
        ));
        // Empty round.
        let empty = TransportSchedule {
            rounds: vec![
                TransportRound { moves: vec![] },
                TransportRound {
                    moves: vec![qccd_machine::ShuttleMove {
                        ion: IonId(1),
                        from: TrapId(0),
                        to: TrapId(1),
                    }],
                },
            ],
        };
        assert!(matches!(
            lower(&schedule, Some(&empty), &c, &spec, &model),
            Err(LowerError::TransportMismatch { .. })
        ));
        // Leftover rounds.
        let extra = TransportSchedule {
            rounds: vec![
                TransportRound {
                    moves: vec![qccd_machine::ShuttleMove {
                        ion: IonId(1),
                        from: TrapId(0),
                        to: TrapId(1),
                    }],
                },
                TransportRound {
                    moves: vec![qccd_machine::ShuttleMove {
                        ion: IonId(1),
                        from: TrapId(1),
                        to: TrapId(0),
                    }],
                },
            ],
        };
        assert!(matches!(
            lower(&schedule, Some(&extra), &c, &spec, &model),
            Err(LowerError::TransportMismatch { .. })
        ));
    }

    #[test]
    fn invalid_model_rejected() {
        let (c, spec, schedule) = two_trap_fixture();
        let mut model = TimingModel::ideal();
        model.split_us = f64::INFINITY;
        assert_eq!(
            lower(&schedule, None, &c, &spec, &model),
            Err(LowerError::InvalidModel)
        );
    }

    #[test]
    fn score_ops_empty_and_single_op_suffixes() {
        // Empty suffix: the projection is the fold's own makespan, and
        // scoring never disturbs the state.
        let (c, spec, schedule) = two_trap_fixture();
        let model = TimingModel::realistic();
        let mut state = LowerState::new(&schedule.initial_mapping, &spec, &model).unwrap();
        assert_eq!(state.score_ops(&[], &c, &spec), Some(0.0));
        let mut events = Vec::new();
        state
            .advance(&schedule.operations, None, &c, &spec, &mut events)
            .unwrap();
        let committed = state.makespan_us();
        assert_eq!(state.score_ops(&[], &c, &spec), Some(committed));
        // Single-op suffixes: one hop projects exactly one round past the
        // fold (ion 1 sits in T1 after the replay); one repeated gate
        // projects one more gate on T1's clock.
        let hop = state.score_ops(&[sh(1, 1, 0)], &c, &spec).unwrap();
        assert!((hop - (committed + model.hop_us(0))).abs() < 1e-9);
        let gate = state
            .score_ops(
                &[Operation::Gate {
                    gate: GateId(2),
                    trap: TrapId(1),
                }],
                &c,
                &spec,
            )
            .unwrap();
        assert!(gate > committed);
        // Speculation left the committed fold untouched.
        assert_eq!(state.makespan_us(), committed);
        assert_eq!(state.score_ops(&[], &c, &spec), Some(committed));
    }

    #[test]
    fn score_ops_prices_zone_reorder_only_suffixes() {
        // A gate whose operands are already co-located but outside the
        // 2-slot gate zone: the suffix emits no shuttles, only timed zone
        // reorders ahead of the gate — the checkpoint copy must charge
        // them exactly as `lower` does.
        let spec = MachineSpec::linear(1, 6, 1)
            .unwrap()
            .with_zone_layout(ZoneLayout::new(2, 3, 1).unwrap())
            .unwrap();
        let mapping = InitialMapping::round_robin(&spec, 4).unwrap();
        let mut c = Circuit::new(4);
        c.push_two_qubit(Opcode::Ms, Qubit(2), Qubit(3)).unwrap();
        let ops = [Operation::Gate {
            gate: GateId(0),
            trap: TrapId(0),
        }];
        let model = TimingModel::realistic();
        let state = LowerState::new(&mapping, &spec, &model).unwrap();
        let scored = state.score_ops(&ops, &c, &spec).unwrap();
        let expect = 2.0 * model.zone_move_us() + model.two_qubit_gate_us(4);
        assert!((scored - expect).abs() < 1e-9);
        // The fold itself never moved: re-scoring reproduces the figure.
        assert_eq!(state.score_ops(&ops, &c, &spec), Some(scored));
        assert_eq!(state.makespan_us(), 0.0);
    }

    #[test]
    fn score_ops_candidates_through_a_junction_trap() {
        // 3×3 grid, centre trap T4 has degree 4: a candidate crossing it
        // pays junction corner/swap time under the realistic model and
        // nothing under the ideal model — checkpoint scoring must price
        // both exactly.
        let spec = MachineSpec::new(TrapTopology::grid(3, 3), 4, 1).unwrap();
        let mapping = InitialMapping::from_traps(&spec, vec![TrapId(1)]).unwrap();
        let c = Circuit::new(1);
        let walk = [sh(0, 1, 4), sh(0, 4, 7)];
        for model in [TimingModel::ideal(), TimingModel::realistic()] {
            let state = LowerState::new(&mapping, &spec, &model).unwrap();
            let scored = state.score_ops(&walk, &c, &spec).unwrap();
            // T1, T4 and T7 all have degree ≥ 3: each hop crosses two
            // junction endpoints — exactly what the full lower charges.
            let schedule = Schedule::new(mapping.clone(), walk.to_vec());
            let full = lower(&schedule, None, &c, &spec, &model).unwrap();
            assert_eq!(scored.to_bits(), full.makespan_us.to_bits());
            assert_eq!(full.junction_crossings, 4);
        }
        // Realistic junction crossings are strictly costlier than the
        // junction-free two-hop walk from the same state.
        let model = TimingModel::realistic();
        let state = LowerState::new(&mapping, &spec, &model).unwrap();
        let through_junction = state.score_ops(&walk, &c, &spec).unwrap();
        let along_edge = state
            .score_ops(&[sh(0, 1, 0), sh(0, 0, 3)], &c, &spec)
            .unwrap();
        assert!(through_junction > along_edge);
    }
}
