//! ASAP lowering of a compiled schedule onto the device clock.

use crate::model::TimingModel;
use crate::timeline::{TimedMove, Timeline, TimelineEvent};
use qccd_circuit::{Circuit, GateQubits};
use qccd_machine::{IonId, MachineError, MachineSpec, MachineState, Operation, Schedule, TrapId};
use qccd_route::TransportSchedule;
use std::error::Error;
use std::fmt;

/// Lowers a compiled `schedule` into a validated ASAP [`Timeline`] under
/// `model`.
///
/// The scheduler replays the machine state and assigns every operation the
/// earliest start compatible with its resources:
///
/// * a **gate** starts when its trap is free and every operand qubit's
///   prior operations have finished; it occupies the trap for the model's
///   (chain-length-dependent) gate duration;
/// * a **transport round** — taken from `transport`, or one synthetic
///   single-hop round per shuttle op when `transport` is `None` — starts
///   when all its member traps are free and all member ions are available,
///   and lasts its *critical path*: the slowest member hop (split +
///   segment transit + junction corners + merge). All member segments and
///   endpoint traps are occupied for the full round;
/// * a **zone move** is synthesized before a gate whenever an operand ion
///   sits outside its trap's gate zone (multi-zone layouts only): the ion
///   is reordered to the chain front at the model's zone-move cost.
///
/// Under [`TimingModel::ideal`] this reproduces the historical uniform-hop
/// simulator's clock arithmetic bit-for-bit.
///
/// `schedule` must already be replay-valid against `circuit`/`spec` (as
/// every [`compile`](../qccd_core/fn.compile.html) result is); lowering
/// only re-checks what it must replay (shuttle legality, transport-round
/// coverage).
///
/// # Errors
///
/// * [`LowerError::InvalidModel`] — `model` has non-finite or negative
///   constants.
/// * [`LowerError::TransportMismatch`] — `transport`'s rounds do not cover
///   the schedule's shuttle operations (wrong moves, empty rounds, rounds
///   spanning a gate, or leftover rounds).
/// * [`LowerError::Machine`] — a shuttle replay violated machine rules.
/// * [`LowerError::StalledRound`] — a round's moves could not be applied
///   in any order (an illegal hand-built round).
pub fn lower(
    schedule: &Schedule,
    transport: Option<&TransportSchedule>,
    circuit: &Circuit,
    spec: &MachineSpec,
    model: &TimingModel,
) -> Result<Timeline, LowerError> {
    if !model.is_valid() {
        return Err(LowerError::InvalidModel);
    }
    let mut state =
        MachineState::with_mapping(spec, &schedule.initial_mapping).map_err(LowerError::Machine)?;
    let num_traps = spec.num_traps() as usize;
    let topology = spec.topology();
    let mut clock = vec![0.0f64; num_traps]; // µs, per trap
    let mut avail = vec![0.0f64; state.num_ions() as usize]; // per qubit, µs

    let mut events: Vec<TimelineEvent> = Vec::with_capacity(schedule.operations.len());
    let mut gates = 0usize;
    let mut shuttles = 0usize;
    let mut shuttle_depth = 0usize;
    let mut zone_moves = 0usize;
    let mut junction_crossings = 0usize;

    let ops = &schedule.operations;
    let mut round_idx = 0usize;
    let mut i = 0usize;
    while i < ops.len() {
        match ops[i] {
            Operation::Gate { gate, trap } => {
                let g = circuit.gate(gate);
                let t = trap.index();
                // Multi-zone traps: operands outside the gate zone need an
                // explicit timed reorder first. Promoting one operand to
                // the chain front shifts the others back, so it can push an
                // already-checked operand out again — iterate until every
                // operand is *simultaneously* gate-ready (the gate zone
                // holds ≥ 2 ions by validation, so this settles in at most
                // a few passes). Never fires under the default single-zone
                // layout.
                if !spec.zone_layout().is_single() {
                    loop {
                        let mut promoted = false;
                        for q in g.qubits.iter() {
                            let ion = IonId::from(q);
                            if state.promote_to_gate_zone(ion) {
                                let start = clock[t].max(avail[ion.index()]);
                                let end = start + model.zone_move_us();
                                clock[t] = end;
                                avail[ion.index()] = end;
                                zone_moves += 1;
                                events.push(TimelineEvent::ZoneMove {
                                    ion,
                                    trap,
                                    start_us: start,
                                    end_us: end,
                                });
                                promoted = true;
                            }
                        }
                        if !promoted {
                            break;
                        }
                    }
                }
                let chain_len = state.occupancy(trap);
                let tau = match g.qubits {
                    GateQubits::One(_) => model.one_qubit_gate_us(),
                    GateQubits::Two(_, _) => model.two_qubit_gate_us(chain_len),
                };
                let start = g
                    .qubits
                    .iter()
                    .map(|q| avail[q.index()])
                    .fold(clock[t], f64::max);
                let end = start + tau;
                clock[t] = end;
                for q in g.qubits.iter() {
                    avail[q.index()] = end;
                }
                gates += 1;
                events.push(TimelineEvent::Gate {
                    gate,
                    trap,
                    chain_len,
                    start_us: start,
                    end_us: end,
                });
                i += 1;
            }
            Operation::Shuttle { .. } => {
                // The gate-free run of consecutive shuttle ops starting here.
                let run_start = i;
                let mut run_len = 0usize;
                while matches!(
                    ops.get(run_start + run_len),
                    Some(Operation::Shuttle { .. })
                ) {
                    run_len += 1;
                }
                // Multiset of the run's moves still awaiting a round.
                let mut remaining: Vec<Option<(IonId, TrapId, TrapId)>> = ops
                    [run_start..run_start + run_len]
                    .iter()
                    .map(|op| match *op {
                        Operation::Shuttle { ion, from, to } => Some((ion, from, to)),
                        Operation::Gate { .. } => unreachable!("run members are shuttles"),
                    })
                    .collect();
                let mut consumed = 0usize;
                while consumed < run_len {
                    // This round's member moves: from the transport
                    // schedule, or one synthetic single-hop round.
                    let members: Vec<(IonId, TrapId, TrapId)> = match transport {
                        None => {
                            let m = remaining[consumed].take().expect("consumed in order");
                            vec![m]
                        }
                        Some(t) => {
                            let round =
                                t.rounds
                                    .get(round_idx)
                                    .ok_or(LowerError::TransportMismatch {
                                        op_index: run_start + consumed,
                                    })?;
                            if round.moves.is_empty() {
                                return Err(LowerError::TransportMismatch {
                                    op_index: run_start + consumed,
                                });
                            }
                            round_idx += 1;
                            let mut taken = Vec::with_capacity(round.moves.len());
                            for m in &round.moves {
                                let want = (m.ion, m.from, m.to);
                                let slot = remaining
                                    .iter_mut()
                                    .find(|slot| **slot == Some(want))
                                    .ok_or(LowerError::TransportMismatch {
                                    op_index: run_start + consumed,
                                })?;
                                *slot = None;
                                taken.push(want);
                            }
                            taken
                        }
                    };

                    // Apply the members with departures-first retry: a move
                    // blocked by a full trap waits for a same-round
                    // departure to free it. In-order rounds (the strict
                    // packers) always apply on the first pass, preserving
                    // the historical per-move occupancy reads.
                    let mut timed: Vec<TimedMove> = Vec::with_capacity(members.len());
                    let mut pending: Vec<(IonId, TrapId, TrapId)> = members.clone();
                    while !pending.is_empty() {
                        let mut progressed = false;
                        let mut still: Vec<(IonId, TrapId, TrapId)> = Vec::new();
                        for (ion, from, to) in pending {
                            let src_occupancy = state.occupancy(from);
                            match state.shuttle(ion, to) {
                                Ok(()) => {
                                    let junctions =
                                        TimingModel::junctions_crossed(topology, from, to);
                                    junction_crossings += junctions as usize;
                                    timed.push(TimedMove {
                                        ion,
                                        from,
                                        to,
                                        src_occupancy,
                                        junctions,
                                    });
                                    progressed = true;
                                }
                                Err(MachineError::TrapFull { .. }) => still.push((ion, from, to)),
                                Err(e) => return Err(LowerError::Machine(e)),
                            }
                        }
                        if !progressed {
                            return Err(LowerError::StalledRound {
                                round: shuttle_depth,
                            });
                        }
                        pending = still;
                    }

                    // ASAP timing: the round starts when every member trap
                    // is free and every member ion's dependencies resolved;
                    // it lasts its critical-path hop.
                    let mut involved: Vec<usize> = Vec::with_capacity(2 * members.len());
                    for &(_, from, to) in &members {
                        for t in [from.index(), to.index()] {
                            if !involved.contains(&t) {
                                involved.push(t);
                            }
                        }
                    }
                    let tau = timed
                        .iter()
                        .map(|m| model.hop_us(m.junctions))
                        .fold(0.0f64, f64::max);
                    let start = members
                        .iter()
                        .map(|&(ion, _, _)| avail[ion.index()])
                        .chain(involved.iter().map(|&t| clock[t]))
                        .fold(0.0f64, f64::max);
                    let end = start + tau;
                    for &(ion, _, _) in &members {
                        avail[ion.index()] = end;
                    }
                    for &t in &involved {
                        clock[t] = end;
                    }
                    shuttles += members.len();
                    shuttle_depth += 1;
                    consumed += members.len();
                    events.push(TimelineEvent::TransportRound {
                        moves: timed,
                        involved: involved.into_iter().map(|t| TrapId(t as u32)).collect(),
                        start_us: start,
                        end_us: end,
                    });
                }
                i = run_start + run_len;
            }
        }
    }
    if let Some(t) = transport {
        if round_idx != t.rounds.len() {
            return Err(LowerError::TransportMismatch {
                op_index: ops.len(),
            });
        }
    }

    let makespan_us = clock.iter().copied().fold(0.0f64, f64::max);
    Ok(Timeline {
        events,
        makespan_us,
        gates,
        shuttles,
        shuttle_depth,
        zone_moves,
        junction_crossings,
    })
}

/// Errors raised by [`lower`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// The timing model has non-finite or negative constants.
    InvalidModel,
    /// A machine-level rule was violated while replaying the schedule.
    Machine(MachineError),
    /// The transport rounds do not cover the schedule's shuttle operations.
    TransportMismatch {
        /// Index of the first schedule operation the rounds disagree with.
        op_index: usize,
    },
    /// A round's moves could not be applied in any order.
    StalledRound {
        /// Index of the stalled round.
        round: usize,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::InvalidModel => {
                write!(f, "timing model constants must be finite and non-negative")
            }
            LowerError::Machine(e) => write!(f, "illegal schedule replay: {e}"),
            LowerError::TransportMismatch { op_index } => write!(
                f,
                "transport rounds disagree with the schedule at operation {op_index}"
            ),
            LowerError::StalledRound { round } => {
                write!(f, "transport round {round} cannot be applied in any order")
            }
        }
    }
}

impl Error for LowerError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LowerError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::{GateId, Opcode, Qubit};
    use qccd_machine::{InitialMapping, ZoneLayout};
    use qccd_route::{TransportRound, TransportSchedule};

    fn sh(ion: u32, from: u32, to: u32) -> Operation {
        Operation::Shuttle {
            ion: IonId(ion),
            from: TrapId(from),
            to: TrapId(to),
        }
    }

    fn two_trap_fixture() -> (Circuit, MachineSpec, Schedule) {
        let mut c = Circuit::new(4);
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(2), Qubit(3)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(2)).unwrap();
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1)])
                .unwrap();
        let schedule = Schedule::new(
            mapping,
            vec![
                Operation::Gate {
                    gate: GateId(0),
                    trap: TrapId(0),
                },
                Operation::Gate {
                    gate: GateId(1),
                    trap: TrapId(1),
                },
                sh(1, 0, 1),
                Operation::Gate {
                    gate: GateId(2),
                    trap: TrapId(1),
                },
            ],
        );
        (c, spec, schedule)
    }

    #[test]
    fn ideal_lowering_matches_uniform_clock_arithmetic() {
        let (c, spec, schedule) = two_trap_fixture();
        let model = TimingModel::ideal();
        let timeline = lower(&schedule, None, &c, &spec, &model).unwrap();
        timeline.validate().unwrap();
        assert_eq!(timeline.gates, 3);
        assert_eq!(timeline.shuttles, 1);
        assert_eq!(timeline.shuttle_depth, 1);
        assert_eq!(timeline.zone_moves, 0);
        assert_eq!(timeline.junction_crossings, 0);
        // Critical path: gate0 (100) + hop (165) + gate2 (3-ion chain, 105).
        let expect = model.two_qubit_gate_us(2) + model.hop_us(0) + model.two_qubit_gate_us(3);
        assert!((timeline.makespan_us - expect).abs() < 1e-9);
    }

    #[test]
    fn concurrent_round_costs_its_critical_path() {
        // L3 corridor: two pipelined hops share one round.
        let c = Circuit::new(4);
        let spec = MachineSpec::linear(3, 4, 1).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1)])
                .unwrap();
        let schedule = Schedule::new(mapping, vec![sh(2, 1, 2), sh(1, 0, 1)]);
        let transport = TransportSchedule {
            rounds: vec![TransportRound {
                moves: vec![
                    qccd_machine::ShuttleMove {
                        ion: IonId(2),
                        from: TrapId(1),
                        to: TrapId(2),
                    },
                    qccd_machine::ShuttleMove {
                        ion: IonId(1),
                        from: TrapId(0),
                        to: TrapId(1),
                    },
                ],
            }],
        };
        let model = TimingModel::ideal();
        let timeline = lower(&schedule, Some(&transport), &c, &spec, &model).unwrap();
        timeline.validate().unwrap();
        assert_eq!(timeline.shuttle_depth, 1);
        assert!((timeline.makespan_us - model.hop_us(0)).abs() < 1e-9);
    }

    #[test]
    fn junction_hops_stretch_realistic_rounds() {
        // 3x3 grid: hop into the centre crosses two junction endpoints.
        let spec = MachineSpec::new(qccd_machine::TrapTopology::grid(3, 3), 4, 1).unwrap();
        let mapping = InitialMapping::from_traps(&spec, vec![TrapId(1)]).unwrap();
        let c = Circuit::new(1);
        let schedule = Schedule::new(mapping, vec![sh(0, 1, 4)]);
        let ideal = lower(&schedule, None, &c, &spec, &TimingModel::ideal()).unwrap();
        let realistic = lower(&schedule, None, &c, &spec, &TimingModel::realistic()).unwrap();
        assert_eq!(realistic.junction_crossings, 2);
        let m = TimingModel::realistic();
        assert!((realistic.makespan_us - m.hop_us(2)).abs() < 1e-9);
        assert!(realistic.makespan_us > ideal.makespan_us);
    }

    #[test]
    fn zone_moves_are_synthesized_for_multi_zone_traps() {
        // One trap, 2-slot gate zone: ions 2 and 3 start outside it, so the
        // gate on (2, 3) needs two timed reorders first.
        let spec = MachineSpec::linear(1, 6, 1)
            .unwrap()
            .with_zone_layout(ZoneLayout::new(2, 3, 1).unwrap())
            .unwrap();
        let mapping = InitialMapping::round_robin(&spec, 4).unwrap();
        let mut c = Circuit::new(4);
        c.push_two_qubit(Opcode::Ms, Qubit(2), Qubit(3)).unwrap();
        let schedule = Schedule::new(
            mapping,
            vec![Operation::Gate {
                gate: GateId(0),
                trap: TrapId(0),
            }],
        );
        let model = TimingModel::realistic();
        let timeline = lower(&schedule, None, &c, &spec, &model).unwrap();
        timeline.validate().unwrap();
        assert_eq!(timeline.zone_moves, 2);
        let expect = 2.0 * model.zone_move_us() + model.two_qubit_gate_us(4);
        assert!((timeline.makespan_us - expect).abs() < 1e-9);

        // The ideal model charges zone moves nothing.
        let ideal = lower(&schedule, None, &c, &spec, &TimingModel::ideal()).unwrap();
        assert_eq!(ideal.zone_moves, 2);
        let ideal_expect = TimingModel::ideal().two_qubit_gate_us(4);
        assert!((ideal.makespan_us - ideal_expect).abs() < 1e-9);
    }

    #[test]
    fn zone_promotion_displacement_is_recharged() {
        // Gate zone of 2, chain [x, A, B] with a gate on (A, B): A starts
        // inside the zone, but promoting B to the chain front pushes A
        // out, so the scheduler must charge a second reorder and end with
        // both operands gate-ready.
        let spec = MachineSpec::linear(1, 4, 1)
            .unwrap()
            .with_zone_layout(ZoneLayout::new(2, 1, 1).unwrap())
            .unwrap();
        let mapping = InitialMapping::round_robin(&spec, 3).unwrap();
        let mut c = Circuit::new(3);
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(2)).unwrap();
        let schedule = Schedule::new(
            mapping,
            vec![Operation::Gate {
                gate: GateId(0),
                trap: TrapId(0),
            }],
        );
        let model = TimingModel::realistic();
        let timeline = lower(&schedule, None, &c, &spec, &model).unwrap();
        timeline.validate().unwrap();
        assert_eq!(timeline.zone_moves, 2, "B's promotion displaces A");
        let expect = 2.0 * model.zone_move_us() + model.two_qubit_gate_us(3);
        assert!((timeline.makespan_us - expect).abs() < 1e-9);
    }

    #[test]
    fn reordered_rounds_lower_with_departures_first_retry() {
        // T1 (capacity 2) is full; the round moves ion 0 into T1 while
        // ion 2 leaves — listed arrival-first to force the retry pass.
        let spec = MachineSpec::linear(3, 2, 0).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(1), TrapId(1), TrapId(2)])
                .unwrap();
        let c = Circuit::new(4);
        let schedule = Schedule::new(mapping, vec![sh(2, 1, 2), sh(0, 0, 1)]);
        let transport = TransportSchedule {
            rounds: vec![TransportRound {
                moves: vec![
                    qccd_machine::ShuttleMove {
                        ion: IonId(0),
                        from: TrapId(0),
                        to: TrapId(1),
                    },
                    qccd_machine::ShuttleMove {
                        ion: IonId(2),
                        from: TrapId(1),
                        to: TrapId(2),
                    },
                ],
            }],
        };
        let timeline = lower(
            &schedule,
            Some(&transport),
            &c,
            &spec,
            &TimingModel::ideal(),
        )
        .unwrap();
        timeline.validate().unwrap();
        assert_eq!(timeline.shuttle_depth, 1);
        // Application order is departures-first: ion 2 out, then ion 0 in.
        match &timeline.events[0] {
            TimelineEvent::TransportRound { moves, .. } => {
                assert_eq!(moves[0].ion, IonId(2));
                assert_eq!(moves[1].ion, IonId(0));
            }
            other => panic!("expected a round, got {other:?}"),
        }
    }

    #[test]
    fn transport_mismatches_are_rejected() {
        let (c, spec, schedule) = two_trap_fixture();
        let model = TimingModel::ideal();
        // Wrong move.
        let wrong = TransportSchedule {
            rounds: vec![TransportRound {
                moves: vec![qccd_machine::ShuttleMove {
                    ion: IonId(3),
                    from: TrapId(1),
                    to: TrapId(0),
                }],
            }],
        };
        assert!(matches!(
            lower(&schedule, Some(&wrong), &c, &spec, &model),
            Err(LowerError::TransportMismatch { .. })
        ));
        // Empty round.
        let empty = TransportSchedule {
            rounds: vec![
                TransportRound { moves: vec![] },
                TransportRound {
                    moves: vec![qccd_machine::ShuttleMove {
                        ion: IonId(1),
                        from: TrapId(0),
                        to: TrapId(1),
                    }],
                },
            ],
        };
        assert!(matches!(
            lower(&schedule, Some(&empty), &c, &spec, &model),
            Err(LowerError::TransportMismatch { .. })
        ));
        // Leftover rounds.
        let extra = TransportSchedule {
            rounds: vec![
                TransportRound {
                    moves: vec![qccd_machine::ShuttleMove {
                        ion: IonId(1),
                        from: TrapId(0),
                        to: TrapId(1),
                    }],
                },
                TransportRound {
                    moves: vec![qccd_machine::ShuttleMove {
                        ion: IonId(1),
                        from: TrapId(1),
                        to: TrapId(0),
                    }],
                },
            ],
        };
        assert!(matches!(
            lower(&schedule, Some(&extra), &c, &spec, &model),
            Err(LowerError::TransportMismatch { .. })
        ));
    }

    #[test]
    fn invalid_model_rejected() {
        let (c, spec, schedule) = two_trap_fixture();
        let mut model = TimingModel::ideal();
        model.split_us = f64::INFINITY;
        assert_eq!(
            lower(&schedule, None, &c, &spec, &model),
            Err(LowerError::InvalidModel)
        );
    }
}
