//! Schedule-level explanation: critical-path extraction, per-event blame,
//! exact makespan attribution, and per-trap/per-edge utilization reports
//! over a lowered [`Timeline`].
//!
//! The ASAP scheduler ([`lower`](crate::lower)) starts every event at the
//! maximum of its resource frontiers — per-trap clocks and per-ion
//! availabilities — and every frontier value is itself some earlier
//! event's end time (or 0 at the origin). The frontier that *attains* the
//! maximum therefore ends bit-for-bit where the bound event starts:
//! following the binding frontier backwards from the event that ends at
//! `makespan_us` yields a contiguous chain of events covering
//! `[0, makespan_us]` with no gaps. That chain is the schedule's critical
//! path, and each step carries a [`Blame`] naming the resource class that
//! bound its start.
//!
//! [`critical_path`] reconstructs the chain by replaying the scheduler's
//! fold over the recorded events (same candidate order, same
//! keep-the-accumulator-on-ties `f64::max` semantics), so it needs no
//! timing model — only the circuit, to resolve gate operands.
//! [`attribute_makespan`] then decomposes the chain by op kind — gate /
//! flight / split-merge / junction / zone-move / idle-wait — such that the
//! six segments, summed in the fixed order of
//! [`MakespanAttribution::total_us`], equal `makespan_us` **bit-for-bit**:
//! idle-wait is constructed as the exact remainder `makespan − partial`,
//! and since the chain covers the makespan the partial sum is within a
//! factor two of the makespan, so the subtraction is exact (Sterbenz) and
//! adding it back reproduces `makespan_us` exactly.

use crate::model::TimingModel;
use crate::timeline::{Timeline, TimelineEvent};
use qccd_circuit::Circuit;
use qccd_machine::TrapId;

/// The resource class that bound an event's start, classified by the kind
/// of the earlier event that last released the binding resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Blame {
    /// The event starts at t = 0: no earlier event bound it.
    Start,
    /// Bound by a resource last released by a gate — the trap was busy
    /// gating, or an operand ion was still held in a gate chain.
    TrapBusy,
    /// Bound by an ion still in flight from an earlier transport round.
    IonInFlight,
    /// Bound by a trap an earlier transport round was still occupying as
    /// an endpoint (rounds contending for shared segments/endpoints).
    EdgeContention,
    /// Bound by an intra-trap zone reorder.
    ZoneReorder,
}

impl Blame {
    /// All blame kinds, in reporting order.
    pub const ALL: [Blame; 5] = [
        Blame::Start,
        Blame::TrapBusy,
        Blame::IonInFlight,
        Blame::EdgeContention,
        Blame::ZoneReorder,
    ];

    /// Stable kebab-case label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Blame::Start => "start",
            Blame::TrapBusy => "trap-busy",
            Blame::IonInFlight => "ion-in-flight",
            Blame::EdgeContention => "edge-contention",
            Blame::ZoneReorder => "zone-reorder",
        }
    }
}

/// One event on the critical path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CriticalPathStep {
    /// Index into [`Timeline::events`].
    pub event: usize,
    /// Event start, µs — bit-for-bit the previous step's `end_us`.
    pub start_us: f64,
    /// Event end, µs.
    pub end_us: f64,
    /// The resource class that bound this start.
    pub blame: Blame,
    /// Index of the event whose end bound this start (`None` at t = 0).
    pub bound_by: Option<usize>,
}

/// The contiguous chain of events that determines the makespan.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CriticalPath {
    /// Steps in time order; empty iff the timeline has no events.
    pub steps: Vec<CriticalPathStep>,
}

impl CriticalPath {
    /// Step count per blame kind, in [`Blame::ALL`] order.
    pub fn blame_counts(&self) -> [(Blame, usize); 5] {
        let mut out = Blame::ALL.map(|b| (b, 0usize));
        for step in &self.steps {
            for slot in &mut out {
                if slot.0 == step.blame {
                    slot.1 += 1;
                }
            }
        }
        out
    }

    /// True when consecutive steps touch bit-for-bit, the chain starts at
    /// t = 0, and it ends at the latest event end — the contiguity
    /// invariant the extractor guarantees for scheduler-produced
    /// timelines.
    pub fn is_contiguous(&self) -> bool {
        self.steps
            .first()
            .is_none_or(|first| first.start_us == 0.0 && first.blame == Blame::Start)
            && self.steps.windows(2).all(|w| w[0].end_us == w[1].start_us)
    }
}

/// Makespan decomposed by op kind along the critical path, µs.
///
/// The invariant: [`total_us`](MakespanAttribution::total_us) — the six
/// segments summed in fixed order — equals `makespan_us` bit-for-bit.
/// `idle_wait_us` is the exact remainder of the makespan the chain's op
/// durations do not explain; for scheduler-produced timelines the chain
/// is gap-free, so it is zero up to the (exact-by-Sterbenz) residual.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MakespanAttribution {
    /// Gate execution on the critical path.
    pub gate_us: f64,
    /// Straight-segment transport (hop time net of split/merge/junction).
    pub flight_us: f64,
    /// SPLIT + MERGE quanta bracketing critical-path hops.
    pub split_merge_us: f64,
    /// Junction corner/swap cost on critical-path hops.
    pub junction_us: f64,
    /// Intra-trap zone reorders.
    pub zone_move_us: f64,
    /// Makespan not covered by the above: `makespan_us` minus the other
    /// five segments, in [`total_us`](MakespanAttribution::total_us)
    /// summation order — exact by construction.
    pub idle_wait_us: f64,
    /// The timeline's recorded makespan, µs.
    pub makespan_us: f64,
}

impl MakespanAttribution {
    /// Sum of the six segments in fixed order; equals
    /// [`makespan_us`](MakespanAttribution::makespan_us) bit-for-bit.
    pub fn total_us(&self) -> f64 {
        self.gate_us
            + self.flight_us
            + self.split_merge_us
            + self.junction_us
            + self.zone_move_us
            + self.idle_wait_us
    }

    /// `(label, µs)` rows in fixed reporting order.
    pub fn segments(&self) -> [(&'static str, f64); 6] {
        [
            ("gate", self.gate_us),
            ("flight", self.flight_us),
            ("split-merge", self.split_merge_us),
            ("junction", self.junction_us),
            ("zone-move", self.zone_move_us),
            ("idle-wait", self.idle_wait_us),
        ]
    }
}

/// Which frontier kind a candidate came from (the scheduler folds trap
/// clocks and ion availabilities; the argmax decides the blame).
#[derive(Clone, Copy)]
enum Resource {
    Trap,
    Ion,
}

/// A resource frontier: the time it frees up and the event that set it.
#[derive(Clone, Copy)]
struct Frontier {
    end_us: f64,
    setter: Option<usize>,
}

const FREE: Frontier = Frontier {
    end_us: 0.0,
    setter: None,
};

/// Running argmax over fold candidates. Mirrors `f64::max` fold order:
/// only a *strictly* later frontier replaces the accumulator, so ties
/// keep the earliest candidate exactly like the scheduler's fold.
struct Binder {
    value: f64,
    resource: Resource,
    setter: Option<usize>,
}

impl Binder {
    fn new(resource: Resource, frontier: Frontier) -> Binder {
        Binder {
            value: frontier.end_us,
            resource,
            setter: frontier.setter,
        }
    }

    fn challenge(&mut self, resource: Resource, frontier: Frontier) {
        if frontier.end_us > self.value {
            self.value = frontier.end_us;
            self.resource = resource;
            self.setter = frontier.setter;
        }
    }

    fn classify(&self, timeline: &Timeline) -> (Blame, Option<usize>) {
        match self.setter {
            None => (Blame::Start, None),
            Some(i) => {
                let blame = match (&timeline.events[i], self.resource) {
                    (TimelineEvent::Gate { .. }, _) => Blame::TrapBusy,
                    (TimelineEvent::ZoneMove { .. }, _) => Blame::ZoneReorder,
                    (TimelineEvent::TransportRound { .. }, Resource::Ion) => Blame::IonInFlight,
                    (TimelineEvent::TransportRound { .. }, Resource::Trap) => Blame::EdgeContention,
                };
                (blame, Some(i))
            }
        }
    }
}

/// Largest trap index + 1 and largest ion index + 1 any event references.
fn resource_bounds(timeline: &Timeline, circuit: &Circuit) -> (usize, usize) {
    let mut traps = 0usize;
    let mut ions = circuit.num_qubits() as usize;
    for event in &timeline.events {
        match event {
            TimelineEvent::Gate { trap, .. } | TimelineEvent::ZoneMove { trap, .. } => {
                traps = traps.max(trap.index() + 1);
            }
            TimelineEvent::TransportRound {
                moves, involved, ..
            } => {
                for t in involved {
                    traps = traps.max(t.index() + 1);
                }
                for m in moves {
                    ions = ions.max(m.ion.index() + 1);
                }
            }
        }
    }
    for event in &timeline.events {
        if let TimelineEvent::ZoneMove { ion, .. } = event {
            ions = ions.max(ion.index() + 1);
        }
    }
    (traps, ions)
}

/// Extracts the critical path of a lowered timeline by replaying the ASAP
/// fold over its recorded events: per-trap clocks and per-ion
/// availabilities track `(end time, setter event)`, each event's binding
/// frontier classifies its [`Blame`], and the chain is the backward walk
/// along binders from the last event ending at the latest end time.
///
/// The circuit resolves gate operands (the timeline records gate ids, not
/// qubits); it must be the circuit the timeline was lowered from.
pub fn critical_path(timeline: &Timeline, circuit: &Circuit) -> CriticalPath {
    if timeline.events.is_empty() {
        return CriticalPath::default();
    }
    let (num_traps, num_ions) = resource_bounds(timeline, circuit);
    let mut clock = vec![FREE; num_traps];
    let mut avail = vec![FREE; num_ions];
    let mut blames: Vec<(Blame, Option<usize>)> = Vec::with_capacity(timeline.events.len());
    for (idx, event) in timeline.events.iter().enumerate() {
        let done = Frontier {
            end_us: event.end_us(),
            setter: Some(idx),
        };
        match event {
            TimelineEvent::Gate { gate, trap, .. } => {
                // Fold order: the trap clock seeds the fold, operand
                // availabilities challenge it (scheduler: `fold(clock[t], max)`).
                let t = trap.index();
                let mut binder = Binder::new(Resource::Trap, clock[t]);
                for q in circuit.gate(*gate).qubits.iter() {
                    binder.challenge(Resource::Ion, avail[q.index()]);
                }
                blames.push(binder.classify(timeline));
                clock[t] = done;
                for q in circuit.gate(*gate).qubits.iter() {
                    avail[q.index()] = done;
                }
            }
            TimelineEvent::TransportRound {
                moves, involved, ..
            } => {
                // Fold order: member ion availabilities, then involved
                // trap clocks, seeded from 0 (scheduler: `fold(0.0, max)`).
                let mut binder = Binder::new(Resource::Ion, FREE);
                for m in moves {
                    binder.challenge(Resource::Ion, avail[m.ion.index()]);
                }
                for t in involved {
                    binder.challenge(Resource::Trap, clock[t.index()]);
                }
                blames.push(binder.classify(timeline));
                for m in moves {
                    avail[m.ion.index()] = done;
                }
                for t in involved {
                    clock[t.index()] = done;
                }
            }
            TimelineEvent::ZoneMove { ion, trap, .. } => {
                let t = trap.index();
                let mut binder = Binder::new(Resource::Trap, clock[t]);
                binder.challenge(Resource::Ion, avail[ion.index()]);
                blames.push(binder.classify(timeline));
                clock[t] = done;
                avail[ion.index()] = done;
            }
        }
    }
    // Terminal: the last event ending at the latest end time. For
    // scheduler-produced timelines that end time *is* `makespan_us` (the
    // maximum trap clock); hand-built timelines may record a later
    // makespan — the gap surfaces as idle-wait in the attribution.
    let latest_end = timeline
        .events
        .iter()
        .map(TimelineEvent::end_us)
        .fold(f64::NEG_INFINITY, f64::max);
    let terminal = timeline
        .events
        .iter()
        .rposition(|e| e.end_us() == latest_end)
        .expect("non-empty timeline has a latest event");
    let mut steps = Vec::new();
    let mut cur = terminal;
    loop {
        let (blame, bound_by) = blames[cur];
        steps.push(CriticalPathStep {
            event: cur,
            start_us: timeline.events[cur].start_us(),
            end_us: timeline.events[cur].end_us(),
            blame,
            bound_by,
        });
        match bound_by {
            Some(prev) => cur = prev,
            None => break,
        }
    }
    steps.reverse();
    CriticalPath { steps }
}

/// Decomposes an already-extracted critical path by op kind. Transport
/// rounds split into split-merge / junction / flight using the model's
/// arithmetic for the slowest member hop (the hop that defined the round's
/// duration), with flight as the exact residual of the round duration so
/// per-round parts always sum back exactly.
pub fn attribute_path(
    timeline: &Timeline,
    model: &TimingModel,
    path: &CriticalPath,
) -> MakespanAttribution {
    let mut gate_us = 0.0f64;
    let mut flight_us = 0.0f64;
    let mut split_merge_us = 0.0f64;
    let mut junction_us = 0.0f64;
    let mut zone_move_us = 0.0f64;
    for step in &path.steps {
        let dur = step.end_us - step.start_us;
        match &timeline.events[step.event] {
            TimelineEvent::Gate { .. } => gate_us += dur,
            TimelineEvent::ZoneMove { .. } => zone_move_us += dur,
            TimelineEvent::TransportRound { moves, .. } => {
                // The round lasts its slowest member hop; mirror the
                // scheduler's fold (ties keep the earlier member).
                let mut junctions = 0u32;
                let mut slowest = f64::NEG_INFINITY;
                for m in moves {
                    let hop = model.hop_us(m.junctions);
                    if hop > slowest {
                        slowest = hop;
                        junctions = m.junctions;
                    }
                }
                if moves.is_empty() {
                    flight_us += dur;
                } else {
                    let sm = model.split_us + model.merge_us;
                    let jn = f64::from(junctions) * model.junction_cross_us;
                    split_merge_us += sm;
                    junction_us += jn;
                    flight_us += (dur - sm) - jn;
                }
            }
        }
    }
    // idle-wait is the exact remainder under the same left-to-right
    // summation order `total_us` uses, so the identity
    // `total_us() == makespan_us` holds bit-for-bit.
    let partial = gate_us + flight_us + split_merge_us + junction_us + zone_move_us;
    let idle_wait_us = timeline.makespan_us - partial;
    MakespanAttribution {
        gate_us,
        flight_us,
        split_merge_us,
        junction_us,
        zone_move_us,
        idle_wait_us,
        makespan_us: timeline.makespan_us,
    }
}

/// Extracts the critical path and decomposes the makespan in one call.
pub fn attribute_makespan(
    timeline: &Timeline,
    circuit: &Circuit,
    model: &TimingModel,
) -> MakespanAttribution {
    attribute_path(timeline, model, &critical_path(timeline, circuit))
}

/// Per-trap busy/idle report over a timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrapReport {
    /// The trap.
    pub trap: TrapId,
    /// Total busy time (gates + transport endpoints + zone moves), µs.
    pub busy_us: f64,
    /// Events touching the trap.
    pub events: usize,
    /// `busy_us / makespan_us` (0 when the makespan is 0).
    pub utilization: f64,
    /// Idle gaps between busy intervals within `[0, makespan_us]`,
    /// including a leading gap before the first event and a trailing gap
    /// after the last.
    pub idle_intervals: usize,
    /// The longest single idle gap, µs.
    pub longest_idle_us: f64,
}

/// Per-segment (shuttle-path edge) busy report over a timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeReport {
    /// First endpoint of the segment (canonical low trap).
    pub a: TrapId,
    /// Second endpoint of the segment.
    pub b: TrapId,
    /// Total time rounds occupy the segment, µs.
    pub busy_us: f64,
    /// Rounds that used the segment.
    pub rounds: usize,
    /// `busy_us / makespan_us` (0 when the makespan is 0).
    pub utilization: f64,
}

/// Builds per-trap utilization/idle reports in a single pass over the
/// events, covering `num_traps` traps (plus any higher trap index an
/// event references). Reports are ordered by trap index.
pub fn trap_reports(timeline: &Timeline, num_traps: usize) -> Vec<TrapReport> {
    let span = timeline.events.iter().fold(num_traps, |acc, e| match e {
        TimelineEvent::Gate { trap, .. } | TimelineEvent::ZoneMove { trap, .. } => {
            acc.max(trap.index() + 1)
        }
        TimelineEvent::TransportRound { involved, .. } => {
            involved.iter().fold(acc, |acc, t| acc.max(t.index() + 1))
        }
    });
    let mut intervals: Vec<Vec<(f64, f64)>> = vec![Vec::new(); span];
    for event in &timeline.events {
        let window = (event.start_us(), event.end_us());
        match event {
            TimelineEvent::Gate { trap, .. } | TimelineEvent::ZoneMove { trap, .. } => {
                intervals[trap.index()].push(window);
            }
            TimelineEvent::TransportRound { involved, .. } => {
                for t in involved {
                    intervals[t.index()].push(window);
                }
            }
        }
    }
    intervals
        .into_iter()
        .enumerate()
        .map(|(t, mut windows)| {
            windows.sort_by(|a, b| a.0.total_cmp(&b.0));
            let events = windows.len();
            let busy_us: f64 = windows.iter().map(|(s, e)| e - s).sum();
            let mut idle_intervals = 0usize;
            let mut longest_idle_us = 0.0f64;
            let mut frontier = 0.0f64;
            for &(start, end) in &windows {
                if start > frontier {
                    idle_intervals += 1;
                    longest_idle_us = longest_idle_us.max(start - frontier);
                }
                frontier = frontier.max(end);
            }
            if timeline.makespan_us > frontier {
                idle_intervals += 1;
                longest_idle_us = longest_idle_us.max(timeline.makespan_us - frontier);
            }
            let utilization = if timeline.makespan_us > 0.0 {
                busy_us / timeline.makespan_us
            } else {
                0.0
            };
            TrapReport {
                trap: TrapId(t as u32),
                busy_us,
                events,
                utilization,
                idle_intervals,
                longest_idle_us,
            }
        })
        .collect()
}

/// Builds per-segment busy reports in a single pass over the transport
/// rounds, ordered by canonical `(a, b)` endpoint pair.
pub fn edge_reports(timeline: &Timeline) -> Vec<EdgeReport> {
    let mut edges: Vec<((TrapId, TrapId), f64, usize)> = Vec::new();
    for event in &timeline.events {
        if let TimelineEvent::TransportRound { moves, .. } = event {
            let dur = event.end_us() - event.start_us();
            // One booking per distinct segment per round, matching the
            // validator's edge intervals.
            let mut seen: Vec<(TrapId, TrapId)> = Vec::new();
            for m in moves {
                let seg = m.segment();
                if seen.contains(&seg) {
                    continue;
                }
                seen.push(seg);
                match edges.iter_mut().find(|(e, _, _)| *e == seg) {
                    Some(slot) => {
                        slot.1 += dur;
                        slot.2 += 1;
                    }
                    None => edges.push((seg, dur, 1)),
                }
            }
        }
    }
    edges.sort_by_key(|((a, b), _, _)| (a.0, b.0));
    edges
        .into_iter()
        .map(|((a, b), busy_us, rounds)| EdgeReport {
            a,
            b,
            busy_us,
            rounds,
            utilization: if timeline.makespan_us > 0.0 {
                busy_us / timeline.makespan_us
            } else {
                0.0
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::lower;
    use qccd_circuit::{Circuit, GateId, Opcode, Qubit};
    use qccd_machine::{InitialMapping, IonId, MachineSpec, Operation, Schedule};

    fn sh(ion: u32, from: u32, to: u32) -> Operation {
        Operation::Shuttle {
            ion: IonId(ion),
            from: TrapId(from),
            to: TrapId(to),
        }
    }

    fn gate(gate: u32, trap: u32) -> Operation {
        Operation::Gate {
            gate: GateId(gate),
            trap: TrapId(trap),
        }
    }

    /// Two traps, three gates, one connecting shuttle: gate 2 waits for
    /// ion 1's hop, the hop waits for gate 0 to release ion 1.
    fn lowered(model: &TimingModel) -> (Timeline, Circuit) {
        let mut c = Circuit::new(4);
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(2), Qubit(3)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(2)).unwrap();
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1)])
                .unwrap();
        let schedule = Schedule::new(
            mapping,
            vec![gate(0, 0), gate(1, 1), sh(1, 0, 1), gate(2, 1)],
        );
        let timeline = lower(&schedule, None, &c, &spec, model).unwrap();
        (timeline, c)
    }

    #[test]
    fn chain_is_contiguous_and_spans_makespan() {
        for model in [TimingModel::ideal(), TimingModel::realistic()] {
            let (timeline, circuit) = lowered(&model);
            let path = critical_path(&timeline, &circuit);
            assert!(!path.steps.is_empty());
            assert!(path.is_contiguous());
            assert_eq!(path.steps[0].start_us, 0.0);
            assert_eq!(path.steps.last().unwrap().end_us, timeline.makespan_us);
        }
    }

    #[test]
    fn attribution_sums_bit_for_bit_to_makespan() {
        for model in [TimingModel::ideal(), TimingModel::realistic()] {
            let (timeline, circuit) = lowered(&model);
            let attribution = attribute_makespan(&timeline, &circuit, &model);
            assert_eq!(attribution.total_us(), timeline.makespan_us);
            assert!(attribution.gate_us > 0.0);
            assert!(attribution.flight_us > 0.0);
            assert!(attribution.split_merge_us > 0.0);
        }
    }

    #[test]
    fn blames_cover_gates_and_flight() {
        let (timeline, circuit) = lowered(&TimingModel::realistic());
        let path = critical_path(&timeline, &circuit);
        let counts = path.blame_counts();
        assert_eq!(counts[0], (Blame::Start, 1));
        let total: usize = counts.iter().map(|(_, n)| n).sum();
        assert_eq!(total, path.steps.len());
        // The chain is gate 0 → hop → gate 2: the hop waits on ion 1 held
        // by gate 0 (trap-busy), and gate 2 waits on trap 1 still occupied
        // by the round (edge-contention).
        assert!(counts[1].1 > 0, "no trap-busy steps");
        assert!(counts[2].1 + counts[3].1 > 0, "no transport-bound steps");
    }

    #[test]
    fn empty_timeline_attributes_to_zero() {
        let timeline = Timeline {
            events: Vec::new(),
            makespan_us: 0.0,
            gates: 0,
            shuttles: 0,
            shuttle_depth: 0,
            zone_moves: 0,
            junction_crossings: 0,
        };
        let circuit = Circuit::new(2);
        let path = critical_path(&timeline, &circuit);
        assert!(path.steps.is_empty());
        let attribution = attribute_path(&timeline, &TimingModel::ideal(), &path);
        assert_eq!(attribution.total_us(), 0.0);
        assert_eq!(attribution.idle_wait_us, 0.0);
    }

    #[test]
    fn trap_reports_match_single_pass_busy_and_find_idle_gaps() {
        let (timeline, _) = lowered(&TimingModel::realistic());
        let reports = trap_reports(&timeline, 2);
        assert_eq!(reports.len(), 2);
        let busy = timeline.trap_busy_all(2);
        for report in &reports {
            assert_eq!(report.busy_us, busy[report.trap.index()]);
            assert_eq!(
                report.busy_us,
                timeline.trap_busy_us(report.trap),
                "single-pass busy diverged from the rescan path"
            );
            assert!(report.utilization > 0.0 && report.utilization <= 1.0);
        }
        // Only one trap gates at a time on this workload, so someone idles.
        assert!(reports.iter().any(|r| r.idle_intervals > 0));
    }

    #[test]
    fn edge_reports_cover_every_segment_once_per_round() {
        let (timeline, _) = lowered(&TimingModel::realistic());
        let reports = edge_reports(&timeline);
        assert!(!reports.is_empty());
        let rounds: usize = reports.iter().map(|r| r.rounds).sum();
        assert!(rounds >= timeline.shuttle_depth);
        for r in &reports {
            assert!(r.a.0 < r.b.0);
            assert!(r.busy_us > 0.0);
        }
    }
}
