//! Delta scoring over the lowering fold: O(candidate-resources) candidate
//! pricing instead of O(suffix) checkpoint-and-re-lower.
//!
//! [`LowerState::score_ops`] prices a speculative suffix by cloning the
//! whole fold — the replayed [`MachineState`] (including the spec's
//! topology adjacency), every per-trap clock and every per-ion
//! availability — and advancing the clone. That clone is the entire cost:
//! a candidate shuttle walk only ever *touches* the clocks of the traps it
//! visits and the availability of the one ion it moves. [`DeltaScorer`]
//! exploits this: it applies each candidate op directly to the live fold's
//! clock frontiers, recording a small undo log (index, old value) per
//! touched resource plus shadow position/occupancy overlays for the
//! machine state, and rolls everything back after reading the projected
//! makespan. No allocation-per-candidate, no `MachineState` clone, no
//! event buffer.
//!
//! The arithmetic is a transcription of [`LowerState::advance`]'s
//! transport-less synthetic-round path, kept **bit-for-bit** equal to the
//! clone-based oracle (the invariant the `delta_properties` differential
//! harness and the `paper_eval delta` CI gate enforce):
//!
//! * **Legality** mirrors `MachineState::shuttle`'s check order exactly —
//!   ion range, destination range, self-shuttle, adjacency, destination
//!   fullness — against the *shadowed* position/occupancy (an earlier op
//!   in the same candidate may have moved the ion or filled the trap).
//!   Any failure prices the candidate as `None`, exactly as the oracle's
//!   single-member synthetic round turns `TrapFull` into a stalled round
//!   and every other machine error into a lowering error.
//! * **Timing** mirrors the synthetic round: legality reads the ion's
//!   *actual* (shadowed) trap, while junction counting and the involved
//!   trap set use the op's *claimed* endpoints — the same claimed/actual
//!   split `advance` has.
//! * **Makespan** is maintained as a scalar bound: ASAP rounds only ever
//!   raise the clocks they touch (`end ≥ start ≥` every involved clock),
//!   so `max(committed makespan, each round end)` equals the full fold's
//!   final `max` over all per-trap clocks — `f64::max` is exact, so the
//!   bound is not an approximation.
//!
//! Candidates containing gate operations (zone-promotion fixpoints change
//! chain *order*, which the occupancy overlay does not shadow) fall back
//! to the clone-based oracle; the compile loop's speculative candidates
//! are pure shuttle walks, so the fallback never fires on the hot path.
//!
//! The overlay itself is the free function [`score_shuttles_overlay`]: it
//! reads the fold immutably and keeps every speculative write in a
//! caller-supplied [`ScoreArena`], so many candidates can be priced
//! concurrently against one shared checkpoint — each worker owns an
//! arena, nobody mutates the fold, and the float-op sequence per
//! candidate is identical to the sequential path (the `--jobs N`
//! bit-for-bit determinism contract rests on exactly that).
//!
//! [`DeltaScorer::score_ops_full`] is the other end of the spectrum: the
//! **full re-lower oracle** behind `--score-mode full`, which prices every
//! candidate by replaying the entire committed schedule plus the candidate
//! from the initial mapping — O(n) per candidate and quadratic over a
//! compile loop, but the strongest differential reference because it also
//! re-derives the committed fold itself from scratch.

use crate::model::TimingModel;
use crate::scheduler::{LowerError, LowerState};
use crate::timeline::TimelineEvent;
use qccd_circuit::Circuit;
use qccd_machine::{InitialMapping, IonId, MachineSpec, Operation, Schedule, TrapId};

/// Shuttle-only candidates priced on the O(delta) overlay.
static DELTA_HITS: qccd_obs::Counter = qccd_obs::Counter::new("timing.delta_hits");
/// Gate-bearing candidates priced on the clone-based oracle instead —
/// never the compile loop's hot path (its candidates are pure walks).
static CLONE_FALLBACKS: qccd_obs::Counter = qccd_obs::Counter::new("timing.clone_fallbacks");
/// Full re-lower oracle invocations (`--score-mode full`).
static FULL_SCORES: qccd_obs::Counter = qccd_obs::Counter::new("timing.full_scores");
/// Speculative shuttle applications to an overlay arena.
static DELTA_APPLIES: qccd_obs::Counter = qccd_obs::Counter::new("timing.delta_applies");
/// Speculation unwinds — arena resets, one per delta-scored candidate.
static DELTA_UNDOS: qccd_obs::Counter = qccd_obs::Counter::new("timing.delta_undos");

/// Per-candidate speculative write-set, reused across candidates to keep
/// the hot path allocation-free. One arena per scoring thread: the fold
/// itself is never mutated, so any number of workers can price candidates
/// against the same [`LowerState`] checkpoint concurrently.
#[derive(Debug, Clone, Default)]
pub struct ScoreArena {
    /// Shadow position overrides: latest entry for an ion wins.
    moved: Vec<(IonId, TrapId)>,
    /// Shadow per-trap occupancy deltas.
    occ_delta: Vec<(usize, i64)>,
    /// Speculative per-trap clock writes (index, value): latest wins.
    clock_w: Vec<(usize, f64)>,
    /// Speculative per-ion availability writes (index, value): latest wins.
    avail_w: Vec<(usize, f64)>,
}

impl ScoreArena {
    /// An empty arena.
    pub fn new() -> Self {
        ScoreArena::default()
    }

    fn reset(&mut self) {
        self.moved.clear();
        self.occ_delta.clear();
        self.clock_w.clear();
        self.avail_w.clear();
    }

    /// The trap holding `ion` under the current overlay (latest move
    /// wins, else the fold's machine state).
    fn trap_of(&self, state: &LowerState, ion: IonId) -> TrapId {
        self.moved
            .iter()
            .rev()
            .find(|&&(i, _)| i == ion)
            .map(|&(_, t)| t)
            .unwrap_or_else(|| state.state.trap_of(ion))
    }

    /// Occupancy of `trap` under the current overlay.
    fn occupancy(&self, state: &LowerState, trap: TrapId) -> i64 {
        let base = i64::from(state.state.occupancy(trap));
        let delta: i64 = self
            .occ_delta
            .iter()
            .filter(|&&(t, _)| t == trap.index())
            .map(|&(_, d)| d)
            .sum();
        base + delta
    }

    fn bump_occupancy(&mut self, trap: usize, by: i64) {
        match self.occ_delta.iter_mut().find(|(t, _)| *t == trap) {
            Some((_, d)) => *d += by,
            None => self.occ_delta.push((trap, by)),
        }
    }

    /// Trap clock under the overlay (latest speculative write wins).
    fn clock(&self, state: &LowerState, trap: usize) -> f64 {
        self.clock_w
            .iter()
            .rev()
            .find(|&&(t, _)| t == trap)
            .map(|&(_, v)| v)
            .unwrap_or(state.clock[trap])
    }

    /// Ion availability under the overlay (latest speculative write wins).
    fn avail(&self, state: &LowerState, ion: usize) -> f64 {
        self.avail_w
            .iter()
            .rev()
            .find(|&&(q, _)| q == ion)
            .map(|&(_, v)| v)
            .unwrap_or(state.avail[ion])
    }
}

/// Prices a shuttle-only candidate against `state` without touching it:
/// the projected makespan after `ops` from the committed `base_makespan`,
/// or `None` on the first illegal op. All speculative writes live in
/// `arena` (reset on entry), so the fold can be shared immutably across
/// any number of concurrent scorers — and the arithmetic is the same
/// float-op sequence as [`LowerState::advance`]'s transport-less
/// synthetic-round path, bit-for-bit (see the module docs for the
/// legality/claimed-endpoint contract).
pub fn score_shuttles_overlay(
    state: &LowerState,
    base_makespan: f64,
    ops: &[Operation],
    spec: &MachineSpec,
    arena: &mut ScoreArena,
) -> Option<f64> {
    arena.reset();
    DELTA_APPLIES.add(ops.len() as u64);
    DELTA_UNDOS.incr();
    // `advance` takes junction counts from the *passed* spec's topology
    // but shuttle legality from the machine's own spec — mirror the
    // split even though callers pass the same spec.
    let topology = spec.topology();
    let model = state.model;
    let mut score = base_makespan;
    for op in ops {
        let &Operation::Shuttle { ion, from, to } = op else {
            unreachable!("gate candidates take the oracle path");
        };
        // Legality, in `MachineState::shuttle`'s exact check order,
        // against the overlaid state. Every failure mode — TrapFull via
        // the stalled single-member round, the rest via machine errors —
        // makes the oracle score `None`; collapse them.
        let machine_spec = state.state.spec();
        if ion.index() >= state.avail.len() {
            return None;
        }
        if machine_spec.check_trap(to).is_err() {
            return None;
        }
        let actual_from = arena.trap_of(state, ion);
        if actual_from == to {
            return None;
        }
        if !machine_spec.topology().are_adjacent(actual_from, to) {
            return None;
        }
        let capacity = i64::from(machine_spec.total_capacity());
        if arena.occupancy(state, to) >= capacity {
            return None;
        }
        // Overlay the move: the ion departs its actual trap and lands in
        // `to`.
        arena.moved.push((ion, to));
        arena.bump_occupancy(actual_from.index(), -1);
        arena.bump_occupancy(to.index(), 1);
        // Synthetic single-hop round timing, claimed endpoints.
        let junctions = TimingModel::junctions_crossed(topology, from, to);
        let tau = 0.0f64.max(model.hop_us(junctions));
        let mut start = 0.0f64.max(arena.avail(state, ion.index()));
        start = start.max(arena.clock(state, from.index()));
        if to.index() != from.index() {
            start = start.max(arena.clock(state, to.index()));
        }
        let end = start + tau;
        arena.avail_w.push((ion.index(), end));
        arena.clock_w.push((from.index(), end));
        if to.index() != from.index() {
            arena.clock_w.push((to.index(), end));
        }
        score = score.max(end);
    }
    Some(score)
}

/// The lowering fold plus the overlay machinery for O(delta) speculative
/// scoring with cheap undo.
#[derive(Debug, Clone)]
pub struct DeltaScorer {
    /// The committed fold. Only [`commit`](DeltaScorer::commit) advances
    /// it; speculation touches `clock`/`avail` but always restores them.
    state: LowerState,
    /// Cached `state.makespan_us()`, refreshed on every commit so each
    /// speculation starts from a scalar instead of re-folding the clocks.
    makespan: f64,
    /// Reused overlay arena for this scorer's own sequential
    /// speculations (workers bring their own).
    arena: ScoreArena,
    /// Scratch event buffer for commits (events are discarded).
    scratch: Vec<TimelineEvent>,
    /// Candidates scored since construction (delta and fallback paths).
    speculations: usize,
    /// The initial mapping the fold started from — the replay origin for
    /// the full re-lower oracle ([`score_ops_full`](Self::score_ops_full)).
    mapping: InitialMapping,
    /// Every operation committed so far, in order. Only the full oracle
    /// reads this; the delta path never walks it.
    committed: Vec<Operation>,
}

impl DeltaScorer {
    /// Starts the fold at time zero over `mapping`.
    ///
    /// # Errors
    ///
    /// As [`LowerState::new`].
    pub fn new(
        mapping: &InitialMapping,
        spec: &MachineSpec,
        model: &TimingModel,
    ) -> Result<Self, LowerError> {
        let state = LowerState::new(mapping, spec, model)?;
        let makespan = state.makespan_us();
        Ok(DeltaScorer {
            state,
            makespan,
            arena: ScoreArena::new(),
            scratch: Vec::new(),
            speculations: 0,
            mapping: mapping.clone(),
            committed: Vec::new(),
        })
    }

    /// The committed fold (the differential oracle scores from here via
    /// [`LowerState::score_ops`]).
    pub fn state(&self) -> &LowerState {
        &self.state
    }

    /// The committed fold's makespan, µs.
    pub fn makespan_us(&self) -> f64 {
        self.makespan
    }

    /// Candidates scored so far (both delta and oracle-fallback paths).
    pub fn speculations(&self) -> usize {
        self.speculations
    }

    /// Advances the committed fold through one operation and refreshes the
    /// cached makespan.
    ///
    /// # Errors
    ///
    /// As [`LowerState::advance`]; on error the fold must be discarded.
    pub fn commit(
        &mut self,
        op: &Operation,
        circuit: &Circuit,
        spec: &MachineSpec,
    ) -> Result<(), LowerError> {
        self.scratch.clear();
        self.state.advance(
            std::slice::from_ref(op),
            None,
            circuit,
            spec,
            &mut self.scratch,
        )?;
        self.committed.push(*op);
        self.makespan = self.state.makespan_us();
        Ok(())
    }

    /// Scores a candidate suffix without committing it: the projected
    /// makespan after `ops`, or `None` when the suffix does not replay
    /// legally from here. Bit-for-bit equal to
    /// [`LowerState::score_ops`] on the committed fold — the delta path
    /// just pays O(resources touched) instead of cloning the fold.
    pub fn score_ops(
        &mut self,
        ops: &[Operation],
        circuit: &Circuit,
        spec: &MachineSpec,
    ) -> Option<f64> {
        self.speculations += 1;
        if ops.iter().any(|op| matches!(op, Operation::Gate { .. })) {
            // Gate candidates need the zone-promotion fixpoint over chain
            // *order*, which the occupancy overlay does not shadow: price
            // them on the clone-based oracle.
            CLONE_FALLBACKS.incr();
            return self.state.score_ops(ops, circuit, spec);
        }
        DELTA_HITS.incr();
        score_shuttles_overlay(&self.state, self.makespan, ops, spec, &mut self.arena)
    }

    /// [`score_ops`](Self::score_ops) for concurrent batch pricing: the
    /// fold is read immutably and all speculative state lives in the
    /// caller's `arena` (one per worker), so any number of these can run
    /// at once against one scorer. Does **not** bump the speculation
    /// count — batch callers account for the whole batch up front via
    /// [`note_speculations`](Self::note_speculations) so the stat is
    /// independent of how the batch was sharded.
    pub fn score_ops_in(
        &self,
        ops: &[Operation],
        circuit: &Circuit,
        spec: &MachineSpec,
        arena: &mut ScoreArena,
    ) -> Option<f64> {
        if ops.iter().any(|op| matches!(op, Operation::Gate { .. })) {
            CLONE_FALLBACKS.incr();
            return self.state.score_ops(ops, circuit, spec);
        }
        DELTA_HITS.incr();
        score_shuttles_overlay(&self.state, self.makespan, ops, spec, arena)
    }

    /// Records `n` speculations scored outside [`score_ops`]'s own
    /// bookkeeping (the batch paths).
    pub fn note_speculations(&mut self, n: usize) {
        self.speculations += n;
    }

    /// Scores a candidate suffix on the **full re-lower oracle**
    /// (`--score-mode full`): replays the entire committed schedule plus
    /// the candidate from the initial mapping through [`lower`] — O(n)
    /// per candidate, quadratic over a compile loop. This is the
    /// strongest differential reference: it validates not just the
    /// speculative overlay but the incremental maintenance of the
    /// committed fold itself, since any drift between the live frontiers
    /// and a from-scratch replay shows up as a score divergence. Bumps
    /// the same speculation counter as [`score_ops`](Self::score_ops) so
    /// the two modes stay stat-for-stat identical.
    ///
    /// [`lower`]: crate::scheduler::lower
    pub fn score_ops_full(
        &mut self,
        ops: &[Operation],
        circuit: &Circuit,
        spec: &MachineSpec,
    ) -> Option<f64> {
        self.speculations += 1;
        self.score_ops_full_in(ops, circuit, spec)
    }

    /// [`score_ops_full`](Self::score_ops_full) without the speculation
    /// bookkeeping: `&self`, so batch callers can replay candidates
    /// concurrently (each replay clones the mapping and committed prefix
    /// itself). Pair with
    /// [`note_speculations`](Self::note_speculations).
    pub fn score_ops_full_in(
        &self,
        ops: &[Operation],
        circuit: &Circuit,
        spec: &MachineSpec,
    ) -> Option<f64> {
        FULL_SCORES.incr();
        let mut all = Vec::with_capacity(self.committed.len() + ops.len());
        all.extend_from_slice(&self.committed);
        all.extend_from_slice(ops);
        let schedule = Schedule::new(self.mapping.clone(), all);
        crate::scheduler::lower(&schedule, None, circuit, spec, &self.state.model)
            .ok()
            .map(|timeline| timeline.makespan_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_machine::TrapTopology;

    fn sh(ion: u32, from: u32, to: u32) -> Operation {
        Operation::Shuttle {
            ion: IonId(ion),
            from: TrapId(from),
            to: TrapId(to),
        }
    }

    fn scorer(spec: &MachineSpec, ions: u32, model: &TimingModel) -> DeltaScorer {
        let mapping = InitialMapping::round_robin(spec, ions).unwrap();
        DeltaScorer::new(&mapping, spec, model).unwrap()
    }

    /// Every candidate must price identically on both paths, including
    /// after commits have advanced the fold.
    #[test]
    fn delta_score_equals_oracle_on_linear_machine() {
        let spec = MachineSpec::linear(3, 4, 1).unwrap();
        let circuit = Circuit::new(6);
        let mut s = scorer(&spec, 6, &TimingModel::realistic());
        // round_robin fills sequentially: ions 0-2 in T0, 3-5 in T1.
        let candidates: Vec<Vec<Operation>> = vec![
            vec![],
            vec![sh(0, 0, 1)],
            vec![sh(0, 0, 1), sh(0, 1, 2)],
            vec![sh(5, 1, 2), sh(0, 0, 1)],
        ];
        for ops in &candidates {
            let oracle = s.state().score_ops(ops, &circuit, &spec);
            let delta = s.score_ops(ops, &circuit, &spec);
            assert_eq!(delta, oracle, "candidate {ops:?}");
        }
        // Advance the fold, then re-check: deltas must track commits.
        s.commit(&sh(2, 0, 1), &circuit, &spec).unwrap();
        s.commit(&sh(2, 1, 2), &circuit, &spec).unwrap();
        for ops in &candidates {
            let oracle = s.state().score_ops(ops, &circuit, &spec);
            let delta = s.score_ops(ops, &circuit, &spec);
            assert_eq!(delta, oracle, "post-commit candidate {ops:?}");
        }
        assert_eq!(s.makespan_us(), s.state().makespan_us());
        assert_eq!(s.speculations(), 2 * candidates.len());
    }

    /// Junction-heavy grid hops exercise the claimed-endpoint junction
    /// arithmetic.
    #[test]
    fn delta_score_equals_oracle_on_grid_junctions() {
        let spec = MachineSpec::new(TrapTopology::grid(3, 3), 4, 1).unwrap();
        let circuit = Circuit::new(4);
        let mut s = scorer(&spec, 4, &TimingModel::realistic());
        // round_robin fills sequentially: ions 0-2 in T0, ion 3 in T1.
        // T4 is the grid centre; T1/T4/T7 hops cross junction endpoints.
        for ops in [
            vec![sh(3, 1, 4)],
            vec![sh(3, 1, 4), sh(3, 4, 7)],
            vec![sh(0, 0, 1), sh(3, 1, 4)],
        ] {
            let oracle = s.state().score_ops(&ops, &circuit, &spec);
            let delta = s.score_ops(&ops, &circuit, &spec);
            assert!(oracle.is_some());
            assert_eq!(delta, oracle, "candidate {ops:?}");
        }
    }

    /// Illegal candidates — full destination, non-adjacent hop, self
    /// shuttle via shadowed position, unknown ion/trap — price `None` on
    /// both paths and leave the scorer untouched.
    #[test]
    fn infeasible_candidates_are_none_on_both_paths() {
        let spec = MachineSpec::linear(3, 2, 0).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(1), TrapId(1), TrapId(2)])
                .unwrap();
        let circuit = Circuit::new(4);
        let mut s = DeltaScorer::new(&mapping, &spec, &TimingModel::realistic()).unwrap();
        let before_clock = s.state().trap_clocks().to_vec();
        let before_avail = s.state().ion_avail().to_vec();
        let cases: Vec<Vec<Operation>> = vec![
            vec![sh(0, 0, 1)],              // T1 full
            vec![sh(0, 0, 2)],              // not adjacent
            vec![sh(1, 1, 0), sh(1, 0, 0)], // self shuttle after a shadow move
            vec![sh(9, 0, 1)],              // unknown ion
            vec![sh(0, 0, 9)],              // unknown trap
            vec![sh(1, 1, 0), sh(2, 1, 0)], // shadow moves fill T0 up
        ];
        for ops in &cases {
            assert_eq!(s.state().score_ops(ops, &circuit, &spec), None, "{ops:?}");
            assert_eq!(s.score_ops(ops, &circuit, &spec), None, "{ops:?}");
            assert_eq!(s.state().trap_clocks(), &before_clock[..]);
            assert_eq!(s.state().ion_avail(), &before_avail[..]);
        }
        // A departure-then-arrival sequence IS legal serially (the
        // departure frees the slot before the arrival prices).
        let pipelined = vec![sh(1, 1, 0), sh(0, 0, 1)];
        let oracle = s.state().score_ops(&pipelined, &circuit, &spec);
        assert!(oracle.is_some());
        assert_eq!(s.score_ops(&pipelined, &circuit, &spec), oracle);
    }

    /// A candidate whose claimed source disagrees with the ion's actual
    /// trap replays via the actual trap but prices via the claimed one —
    /// both paths must agree on that quirk.
    #[test]
    fn claimed_vs_actual_source_split_matches_oracle() {
        let spec = MachineSpec::linear(3, 4, 1).unwrap();
        let circuit = Circuit::new(6);
        let mut s = scorer(&spec, 6, &TimingModel::realistic());
        // Ion 0 actually sits in T0; claim T2 as its source. The hop
        // T0→T1 is adjacent so the replay succeeds, while the claimed
        // T2→T1 drives the junction/involved arithmetic.
        let ops = vec![sh(0, 2, 1)];
        let oracle = s.state().score_ops(&ops, &circuit, &spec);
        assert!(oracle.is_some());
        assert_eq!(s.score_ops(&ops, &circuit, &spec), oracle);
    }

    /// Speculation must never perturb later scores or commits: score,
    /// commit the candidate, and land exactly on the projection.
    #[test]
    fn undo_restores_scoring_and_commit_lands_on_projection() {
        let spec = MachineSpec::linear(3, 4, 1).unwrap();
        let circuit = Circuit::new(6);
        let mut s = scorer(&spec, 6, &TimingModel::realistic());
        let walk = vec![sh(0, 0, 1), sh(0, 1, 2)];
        let first = s.score_ops(&walk, &circuit, &spec).unwrap();
        let second = s.score_ops(&walk, &circuit, &spec).unwrap();
        assert_eq!(first, second, "undo must be exact");
        for op in &walk {
            s.commit(op, &circuit, &spec).unwrap();
        }
        assert_eq!(s.makespan_us(), first, "commit lands on the projection");
    }

    /// The `&self` batch entry point with a caller-owned arena must price
    /// identically to the sequential `score_ops` path — including from
    /// other threads sharing one scorer.
    #[test]
    fn worker_arena_scoring_matches_sequential_path() {
        let spec = MachineSpec::linear(3, 4, 1).unwrap();
        let circuit = Circuit::new(6);
        let mut s = scorer(&spec, 6, &TimingModel::realistic());
        let candidates: Vec<Vec<Operation>> = vec![
            vec![sh(0, 0, 1)],
            vec![sh(0, 0, 1), sh(0, 1, 2)],
            vec![sh(5, 1, 2), sh(0, 0, 1)],
            vec![sh(0, 0, 2)], // illegal: not adjacent
        ];
        let sequential: Vec<Option<f64>> = candidates
            .iter()
            .map(|ops| s.score_ops(ops, &circuit, &spec))
            .collect();
        // Same scorer, shared immutably across threads, worker arenas.
        let shared = &s;
        let circuit_ref = &circuit;
        let spec_ref = &spec;
        let threaded: Vec<Option<f64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = candidates
                .iter()
                .map(|ops| {
                    scope.spawn(move || {
                        let mut arena = ScoreArena::new();
                        shared.score_ops_in(ops, circuit_ref, spec_ref, &mut arena)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(sequential, threaded);
        s.note_speculations(candidates.len());
        assert_eq!(s.speculations(), 2 * candidates.len());
        // Full-oracle batch variant agrees with its sequential wrapper.
        let full_seq = s.score_ops_full(&candidates[0], &circuit, &spec);
        let full_batch = s.score_ops_full_in(&candidates[0], &circuit, &spec);
        assert_eq!(full_seq, full_batch);
    }

    /// Gate-containing candidates take the oracle fallback and still
    /// agree with it.
    #[test]
    fn gate_candidates_fall_back_to_oracle() {
        use qccd_circuit::{Opcode, Qubit};
        use qccd_machine::Schedule;

        let mut circuit = Circuit::new(4);
        circuit
            .push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1))
            .unwrap();
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1)])
                .unwrap();
        let mut s = DeltaScorer::new(&mapping, &spec, &TimingModel::realistic()).unwrap();
        let ops = vec![
            Operation::Gate {
                gate: qccd_circuit::GateId(0),
                trap: TrapId(0),
            },
            sh(1, 0, 1),
        ];
        let oracle = s.state().score_ops(&ops, &circuit, &spec);
        assert!(oracle.is_some());
        assert_eq!(s.score_ops(&ops, &circuit, &spec), oracle);
        // And the projection matches a real lowering of the same ops.
        let schedule = Schedule::new(mapping, ops.clone());
        let full =
            crate::scheduler::lower(&schedule, None, &circuit, &spec, &TimingModel::realistic())
                .unwrap();
        assert_eq!(oracle, Some(full.makespan_us));
    }
}
