//! A vendor-free worker pool for deterministic candidate scoring.
//!
//! The clock objective prices many independent candidates per compile
//! round — direction alternatives, eviction destinations, batched-layer
//! rewrites, pack variants. Each candidate scores against an immutable
//! checkpoint of the lowering fold, so they can be priced concurrently;
//! what must **not** change with concurrency is the result. This pool
//! encodes that contract structurally:
//!
//! * **Fixed shard boundaries** — `n` tasks split into at most `jobs`
//!   contiguous index ranges (`[s·n/jobs, (s+1)·n/jobs)`), a pure
//!   function of `(n, jobs)`.
//! * **Index-order reduction** — workers are joined in spawn order and
//!   each returns its shard's results in index order, so the flattened
//!   output is `[f(0), f(1), …, f(n-1)]` regardless of which worker
//!   finished first. There is no first-finisher channel anywhere.
//! * **No shared mutable state** — `f` takes `&self`-style shared
//!   context only (the `Sync` bound); each worker owns its scratch.
//!
//! Because every candidate's float-op sequence is the same as in a
//! sequential loop and the reduction order is the candidate index order,
//! `--jobs N` output is bit-for-bit identical to `--jobs 1` — the
//! determinism contract `tests/delta_regression.rs` and
//! `tests/parallel_properties.rs` pin.
//!
//! Narrow rounds (the paper suite's p50 candidate-set width is 1) never
//! pay thread overhead: sets smaller than [`SEQUENTIAL_CUTOFF`] run in
//! the calling thread, as does everything when `jobs == 1`.

/// Candidate sets smaller than this run sequentially in the caller —
/// spawning a thread costs more than O(delta)-scoring a couple of walks.
pub const SEQUENTIAL_CUTOFF: usize = 4;

/// Tasks submitted across all `map_indexed` calls.
static POOL_TASKS: qccd_obs::Counter = qccd_obs::Counter::new("pool.tasks");
/// Shards actually spawned (parallel path only).
static POOL_SHARDS: qccd_obs::Counter = qccd_obs::Counter::new("pool.shards");
/// Calls that fell back to the sequential path despite `jobs > 1`
/// (candidate set below the cutoff).
static POOL_SEQ_FALLBACKS: qccd_obs::Counter = qccd_obs::Counter::new("pool.seq_fallbacks");
/// Width (task count) of each spawned shard.
static POOL_SHARD_WIDTH: qccd_obs::Histogram = qccd_obs::Histogram::new("pool.shard_width");

/// A fixed-width scoped worker pool. `Copy`-cheap: it carries only the
/// shard count; threads are scoped per call (`std::thread::scope`), so
/// there is no pool lifecycle to manage and borrows of caller state work
/// naturally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerPool {
    jobs: usize,
}

impl WorkerPool {
    /// A pool that splits work across up to `jobs` threads (0 is
    /// normalized to 1 — the sequential pool).
    pub fn new(jobs: usize) -> Self {
        WorkerPool { jobs: jobs.max(1) }
    }

    /// The configured width.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// `true` when this pool never spawns (the `--jobs 1` default).
    pub fn is_sequential(&self) -> bool {
        self.jobs == 1
    }

    /// Maps `f` over `0..n`, returning results in index order.
    ///
    /// Sequential when `jobs == 1` or `n < cutoff` (use
    /// [`SEQUENTIAL_CUTOFF`] unless the per-task cost argues otherwise);
    /// otherwise `min(jobs, n)` scoped workers each take one contiguous
    /// index shard and the shard outputs are concatenated in shard
    /// order — never completion order. A worker panic propagates to the
    /// caller.
    pub fn map_indexed<T, F>(&self, n: usize, cutoff: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        POOL_TASKS.add(n as u64);
        let shards = self.jobs.min(n);
        if shards == 1 || n < cutoff {
            if self.jobs > 1 {
                POOL_SEQ_FALLBACKS.incr();
            }
            return (0..n).map(f).collect();
        }
        POOL_SHARDS.add(shards as u64);
        let bounds = |s: usize| (s * n / shards, (s + 1) * n / shards);
        for s in 0..shards {
            let (lo, hi) = bounds(s);
            POOL_SHARD_WIDTH.record((hi - lo) as u64);
        }
        let f = &f;
        let mut out: Vec<T> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            // Shard 0 runs in the calling thread; 1..shards are spawned.
            let handles: Vec<_> = (1..shards)
                .map(|s| {
                    let (lo, hi) = bounds(s);
                    scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
                })
                .collect();
            let (lo, hi) = bounds(0);
            out.extend((lo..hi).map(f));
            // Join in spawn order: the reduction order is the shard
            // (hence candidate-index) order by construction.
            for h in handles {
                match h.join() {
                    Ok(part) => out.extend(part),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order_at_every_width() {
        for jobs in [1, 2, 3, 8, 64] {
            let pool = WorkerPool::new(jobs);
            for n in [0, 1, 2, 3, 4, 5, 7, 16, 100] {
                let got = pool.map_indexed(n, SEQUENTIAL_CUTOFF, |i| i * i);
                let want: Vec<usize> = (0..n).map(|i| i * i).collect();
                assert_eq!(got, want, "jobs={jobs} n={n}");
            }
        }
    }

    #[test]
    fn zero_jobs_normalizes_to_sequential() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.jobs(), 1);
        assert!(pool.is_sequential());
        assert_eq!(pool.map_indexed(3, 0, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn more_tasks_than_workers_stresses_sharding() {
        let pool = WorkerPool::new(4);
        let n = 1000;
        let got = pool.map_indexed(n, SEQUENTIAL_CUTOFF, |i| 2 * i + 1);
        assert_eq!(got.len(), n);
        assert!(got.iter().enumerate().all(|(i, &v)| v == 2 * i + 1));
    }

    #[test]
    fn shard_bounds_cover_all_indices_exactly_once() {
        // The shard boundary formula must partition 0..n for every
        // (n, shards) the pool can produce.
        for n in 1..64usize {
            for shards in 1..=n.min(16) {
                let mut covered = vec![0u32; n];
                for s in 0..shards {
                    for c in &mut covered[(s * n / shards)..((s + 1) * n / shards)] {
                        *c += 1;
                    }
                }
                assert!(covered.iter().all(|&c| c == 1), "n={n} shards={shards}");
            }
        }
    }

    #[test]
    fn pool_counters_observe_the_parallel_path() {
        // Counters are process-global; this test only checks they move,
        // under the obs crate's enable flag.
        qccd_obs::enable();
        let before = qccd_obs::counter_value("pool.tasks");
        let pool = WorkerPool::new(2);
        let _ = pool.map_indexed(10, SEQUENTIAL_CUTOFF, |i| i);
        assert!(qccd_obs::counter_value("pool.tasks") >= before + 10);
        qccd_obs::disable();
    }

    #[test]
    fn worker_panics_propagate() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map_indexed(8, 0, |i| {
                assert!(i != 5, "boom");
                i
            })
        }));
        assert!(caught.is_err());
    }
}
