//! The device timing model: per-operation durations.

use qccd_machine::{TrapId, TrapTopology};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Per-operation durations of one QCCD device, in microseconds.
///
/// Two presets are provided:
///
/// * [`TimingModel::ideal`] — the uniform-hop model the paper's evaluation
///   (and PR 2's simulator) charges: every shuttle hop costs
///   `split + move + merge` regardless of where it runs, junctions are
///   free, and zone moves are instantaneous. Validated to reproduce the
///   historical simulator numbers bit-for-bit.
/// * [`TimingModel::realistic`] — QCCDSim-style constants (Murali et al.,
///   ISCA'20): linear-segment transport at a finite speed, a corner/swap
///   cost for every T-/X-junction crossed, and a real cost for intra-trap
///   zone reorders.
///
/// A shuttle hop's duration is
/// `split + segment/speed + junctions·junction_cross + merge`, where
/// `junctions` counts the hop's endpoints with topology degree ≥ 3. A
/// concurrent transport round costs its *critical path*: the slowest
/// member hop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Single-qubit gate duration, µs.
    pub one_qubit_gate_us: f64,
    /// Two-qubit MS-gate base duration at chain length 2, µs.
    pub two_qubit_gate_base_us: f64,
    /// Fractional two-qubit gate slowdown per extra ion in the chain.
    pub gate_chain_slowdown: f64,
    /// Chain split duration, µs (the SPLIT step).
    pub split_us: f64,
    /// Chain merge duration, µs (the MERGE step).
    pub merge_us: f64,
    /// Physical length of one shuttle-path segment, µm.
    pub segment_um: f64,
    /// Linear transport speed along a segment, µm/µs.
    pub speed_um_per_us: f64,
    /// Corner/swap cost of negotiating one T- or X-junction (a hop
    /// endpoint with topology degree ≥ 3), µs.
    pub junction_cross_us: f64,
    /// Intra-trap zone reorder duration (moving an ion from the
    /// storage/loading zone into the gate zone), µs.
    pub zone_move_us: f64,
}

impl TimingModel {
    /// The uniform-hop preset matching the historical simulator's default
    /// calibration ([`ideal_from`](TimingModel::ideal_from) with the
    /// simulator's default durations): segment transport takes exactly
    /// `move_us`, junctions and zone moves are free.
    pub fn ideal() -> Self {
        // Mirrors qccd-sim's SimParams::new() duration fields.
        TimingModel::ideal_from(10.0, 100.0, 0.05, 80.0, 80.0, 5.0)
    }

    /// Builds the uniform-hop model from explicit durations, preserving
    /// the historical arithmetic exactly: the segment is `move_us` µm long
    /// and travels at 1 µm/µs, so `segment_move_us()` is bit-for-bit
    /// `move_us`, and junction/zone costs are zero.
    pub fn ideal_from(
        one_qubit_gate_us: f64,
        two_qubit_gate_base_us: f64,
        gate_chain_slowdown: f64,
        split_us: f64,
        merge_us: f64,
        move_us: f64,
    ) -> Self {
        TimingModel {
            one_qubit_gate_us,
            two_qubit_gate_base_us,
            gate_chain_slowdown,
            split_us,
            merge_us,
            segment_um: move_us,
            speed_um_per_us: 1.0,
            junction_cross_us: 0.0,
            zone_move_us: 0.0,
        }
    }

    /// QCCDSim-style constants: 790 µm segments at 7.9 µm/µs (100 µs per
    /// straight segment), 120 µs per junction corner/swap, 40 µs per
    /// intra-trap zone reorder. Gate and split/merge durations match the
    /// ideal preset so differences isolate the transport model.
    pub fn realistic() -> Self {
        TimingModel {
            one_qubit_gate_us: 10.0,
            two_qubit_gate_base_us: 100.0,
            gate_chain_slowdown: 0.05,
            split_us: 80.0,
            merge_us: 80.0,
            segment_um: 790.0,
            speed_um_per_us: 7.9,
            junction_cross_us: 120.0,
            zone_move_us: 40.0,
        }
    }

    /// Duration of a one-qubit gate, µs.
    pub fn one_qubit_gate_us(&self) -> f64 {
        self.one_qubit_gate_us
    }

    /// Duration of a two-qubit gate in an `m`-ion chain, µs (longer chains
    /// have softer motional modes, hence slower gates).
    pub fn two_qubit_gate_us(&self, chain_len: u32) -> f64 {
        let extra = chain_len.saturating_sub(2) as f64;
        self.two_qubit_gate_base_us * (1.0 + self.gate_chain_slowdown * extra)
    }

    /// Transit time along one straight shuttle-path segment, µs.
    pub fn segment_move_us(&self) -> f64 {
        self.segment_um / self.speed_um_per_us
    }

    /// Number of junction endpoints (topology degree ≥ 3) a hop
    /// `from → to` negotiates.
    pub fn junctions_crossed(topology: &TrapTopology, from: TrapId, to: TrapId) -> u32 {
        u32::from(topology.is_junction(from)) + u32::from(topology.is_junction(to))
    }

    /// Full duration of one shuttle hop crossing `junctions` junction
    /// endpoints: `split + segment/speed + junctions·corner + merge`, µs.
    pub fn hop_us(&self, junctions: u32) -> f64 {
        self.split_us
            + (self.segment_move_us() + f64::from(junctions) * self.junction_cross_us)
            + self.merge_us
    }

    /// Duration of one intra-trap zone reorder, µs.
    pub fn zone_move_us(&self) -> f64 {
        self.zone_move_us
    }

    /// Validates that every constant is finite, non-negative, and the
    /// transport speed strictly positive.
    pub fn is_valid(&self) -> bool {
        let fields = [
            self.one_qubit_gate_us,
            self.two_qubit_gate_base_us,
            self.gate_chain_slowdown,
            self.split_us,
            self.merge_us,
            self.segment_um,
            self.speed_um_per_us,
            self.junction_cross_us,
            self.zone_move_us,
        ];
        fields.iter().all(|v| v.is_finite() && *v >= 0.0) && self.speed_um_per_us > 0.0
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        Self::ideal()
    }
}

impl fmt::Display for TimingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if *self == TimingModel::ideal() {
            write!(f, "ideal")
        } else if *self == TimingModel::realistic() {
            write!(f, "realistic")
        } else {
            write!(
                f,
                "custom(hop {:.1}us, junction {:.1}us, zone {:.1}us)",
                self.hop_us(0),
                self.junction_cross_us,
                self.zone_move_us
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_machine::TrapTopology;

    #[test]
    fn ideal_hop_matches_uniform_arithmetic() {
        let m = TimingModel::ideal();
        // Bit-for-bit: 80 + 5 + 80, junctions free.
        assert_eq!(m.segment_move_us(), 5.0);
        assert_eq!(m.hop_us(0), 80.0 + 5.0 + 80.0);
        assert_eq!(m.hop_us(2), m.hop_us(0));
        assert_eq!(m.zone_move_us(), 0.0);
        assert!(m.is_valid());
        assert_eq!(m.to_string(), "ideal");
    }

    #[test]
    fn realistic_charges_junctions_and_zones() {
        let m = TimingModel::realistic();
        assert!((m.segment_move_us() - 100.0).abs() < 1e-9);
        assert!(m.hop_us(1) > m.hop_us(0));
        assert!((m.hop_us(2) - m.hop_us(0) - 240.0).abs() < 1e-9);
        assert!(m.zone_move_us() > 0.0);
        assert!(m.is_valid());
        assert_eq!(m.to_string(), "realistic");
    }

    #[test]
    fn gate_durations_scale_with_chain_length() {
        let m = TimingModel::ideal();
        assert_eq!(m.two_qubit_gate_us(2), 100.0);
        assert_eq!(m.two_qubit_gate_us(1), 100.0);
        assert!(m.two_qubit_gate_us(10) > m.two_qubit_gate_us(4));
    }

    #[test]
    fn junction_counting_uses_topology_degree() {
        let grid = TrapTopology::grid(3, 3);
        // Corner (0) to edge-midpoint (1): one junction endpoint.
        assert_eq!(
            TimingModel::junctions_crossed(&grid, TrapId(0), TrapId(1)),
            1
        );
        // Edge-midpoint (1) to centre (4): both are junctions.
        assert_eq!(
            TimingModel::junctions_crossed(&grid, TrapId(1), TrapId(4)),
            2
        );
        let line = TrapTopology::linear(4);
        assert_eq!(
            TimingModel::junctions_crossed(&line, TrapId(1), TrapId(2)),
            0
        );
    }

    #[test]
    fn invalid_models_detected() {
        let mut m = TimingModel::realistic();
        m.speed_um_per_us = 0.0;
        assert!(!m.is_valid());
        m = TimingModel::realistic();
        m.junction_cross_us = f64::NAN;
        assert!(!m.is_valid());
        m = TimingModel::realistic();
        m.split_us = -1.0;
        assert!(!m.is_valid());
    }

    #[test]
    fn display_distinguishes_custom_models() {
        let mut m = TimingModel::realistic();
        m.junction_cross_us = 33.0;
        assert!(m.to_string().starts_with("custom("));
    }
}
