//! Device timing for QCCD machines: a per-operation duration model and an
//! ASAP event-timeline scheduler.
//!
//! The paper's evaluation counts shuttles, and PR 2's simulator charged
//! every transport round one uniform hop duration. Real QCCD transport
//! cost depends on *where* an ion moves: straight segments are cheap,
//! T-/X-junction corners and swaps are slow, split/merge quanta bracket
//! every hop, and reordering ions between a trap's gate/storage/loading
//! zones is itself a timed operation. This crate owns that model:
//!
//! * [`TimingModel`] — per-operation durations with two presets:
//!   [`ideal`](TimingModel::ideal) (uniform hops; validated to reproduce
//!   the historical simulator numbers bit-for-bit) and
//!   [`realistic`](TimingModel::realistic) (QCCDSim-style constants:
//!   linear-segment speed, junction corner cost, zone-move cost).
//! * [`lower`] — the ASAP scheduler: replays a compiled
//!   [`Schedule`](qccd_machine::Schedule) (optionally with its
//!   [`TransportSchedule`](qccd_route::TransportSchedule) rounds) and
//!   assigns every gate, transport round and synthesized zone move its
//!   earliest start under per-trap and per-edge resource constraints.
//! * [`LowerState`] — the same fold, resumable: checkpoint (clone) the
//!   state at a chunk boundary and re-lower only a perturbed suffix, so a
//!   transport optimizer scoring many candidate rewrites pays O(suffix)
//!   per candidate instead of a full O(n) `lower` each time.
//! * [`DeltaScorer`] — the fold with O(delta) speculative scoring on top:
//!   a candidate shuttle walk is priced by touching only the clocks of the
//!   traps it visits and the one moved ion's availability, with a small
//!   undo log instead of a cloned state — bit-for-bit equal to the
//!   checkpoint-and-re-lower oracle (the `delta_properties` differential
//!   harness pins the equality).
//! * [`Timeline`] — the result: timed events with resource intervals and a
//!   [`validate`](Timeline::validate) pass proving no trap or shuttle-path
//!   segment is ever double-booked.
//!
//! `qccd-sim` consumes the timeline for makespan/heating/fidelity;
//! `qccd-core` attaches one to every compile result.
//!
//! # Example
//!
//! ```
//! use qccd_circuit::generators::qft;
//! use qccd_core::{compile, CompilerConfig};
//! use qccd_machine::MachineSpec;
//! use qccd_timing::{lower, TimingModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = qft(12);
//! let spec = MachineSpec::linear(2, 10, 2)?;
//! let compiled = compile(&circuit, &spec, &CompilerConfig::optimized())?;
//! let ideal = lower(
//!     &compiled.schedule,
//!     Some(&compiled.transport),
//!     &circuit,
//!     &spec,
//!     &TimingModel::ideal(),
//! )?;
//! let realistic = lower(
//!     &compiled.schedule,
//!     Some(&compiled.transport),
//!     &circuit,
//!     &spec,
//!     &TimingModel::realistic(),
//! )?;
//! ideal.validate()?;
//! realistic.validate()?;
//! assert!(realistic.makespan_us > ideal.makespan_us);
//! # Ok(())
//! # }
//! ```

mod delta;
mod explain;
mod model;
mod pool;
mod scheduler;
mod timeline;

pub use delta::{score_shuttles_overlay, DeltaScorer, ScoreArena};
pub use explain::{
    attribute_makespan, attribute_path, critical_path, edge_reports, trap_reports, Blame,
    CriticalPath, CriticalPathStep, EdgeReport, MakespanAttribution, TrapReport,
};
pub use model::TimingModel;
pub use pool::{WorkerPool, SEQUENTIAL_CUTOFF};
pub use scheduler::{lower, LowerError, LowerState};
pub use timeline::{TimedMove, Timeline, TimelineError, TimelineEvent};
