//! Structured compile telemetry for the muzzle-shuttle workspace.
//!
//! Every perf argument in this repo used to rest on one end-to-end
//! `compile_seconds` stopwatch. This crate is the missing observability
//! layer: process-wide instrumentation that the whole pipeline threads
//! through, with three read-out surfaces:
//!
//! * **Spans** — [`span`] returns an RAII guard that times a named phase
//!   with the monotonic clock. Guards nest naturally (a `"flow"` span
//!   opened inside a `"batching"` span is its child), and the per-thread
//!   nesting is reconstructed from the recorded intervals, so both
//!   inclusive and *self* time per phase are available.
//! * **Counters / histograms** — [`Counter`] and [`Histogram`] are
//!   `static`-friendly atomics ([`Relaxed`](Ordering::Relaxed) increments,
//!   no locks), safe to bump from any thread. They self-register on first
//!   touch, so snapshots and trace exports see every counter the run
//!   actually used.
//! * **Structured events** — [`info`]/[`debug`] route diagnostics through
//!   one channel: printed to stderr when the process verbosity allows it,
//!   *and* recorded as Chrome-trace instant events when tracing is on.
//!
//! Exports: [`chrome_trace`] renders everything as Chrome trace-event JSON
//! (loadable in `chrome://tracing` / Perfetto), [`summary_table`] renders
//! the compact per-phase table, and [`phase_stats`] / [`counters`] expose
//! the raw aggregates for harnesses like `paper_eval profile`.
//!
//! # The zero-overhead contract
//!
//! Instrumentation is **disabled by default** and disabled-mode cost on
//! the hot path is one `Relaxed` atomic load (plus its predictable
//! branch): [`span`] returns an inert guard without reading the clock,
//! [`Counter::add`] and [`Histogram::record`] return before touching
//! their atomics, and nothing allocates, locks, or syscalls. Call
//! [`enable`] to start recording. Crucially, instrumentation *observes,
//! never decides*: no compiler decision reads any of this state, so
//! compile results are bit-for-bit identical with telemetry on or off
//! (the `paper_eval profile` harness asserts exactly that).
//!
//! # Example
//!
//! ```
//! use qccd_obs as obs;
//!
//! static WIDGETS: obs::Counter = obs::Counter::new("example.widgets");
//!
//! obs::enable();
//! {
//!     let _compile = obs::span("compile");
//!     let _scoring = obs::span("scoring");
//!     WIDGETS.incr();
//! }
//! assert_eq!(obs::counter_value("example.widgets"), 1);
//! let trace = obs::chrome_trace();
//! assert!(trace.contains("\"scoring\""));
//! obs::disable();
//! obs::reset();
//! ```

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Global on/off switch. All hot-path guards read this once, `Relaxed`.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Process verbosity for [`info`]/[`debug`] (0 quiet, 1 info, 2 debug).
static VERBOSITY: AtomicU8 = AtomicU8::new(1);

/// Monotonic epoch all span timestamps are relative to (set at first
/// [`enable`]; exports rebase to the earliest recorded start anyway).
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Completed spans, pushed at guard drop (children before parents).
static SPANS: Mutex<Vec<SpanRec>> = Mutex::new(Vec::new());

/// Recorded instant events ([`info`]/[`debug`] with tracing on).
static EVENTS: Mutex<Vec<EventRec>> = Mutex::new(Vec::new());

/// Counters that have been touched at least once, registration order.
static COUNTERS: Mutex<Vec<&'static Counter>> = Mutex::new(Vec::new());

/// Histograms that have been touched at least once, registration order.
static HISTOGRAMS: Mutex<Vec<&'static Histogram>> = Mutex::new(Vec::new());

/// Next thread id to hand out (Chrome-trace `tid` values).
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Small per-thread id, assigned on this thread's first span/event.
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Turns recording on. Idempotent; sets the trace epoch on first call.
pub fn enable() {
    EPOCH.get_or_init(Instant::now);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns recording off. Already-recorded data stays until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// `true` while recording is on.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears recorded spans/events and zeroes every registered counter and
/// histogram. The enabled flag and verbosity are left as they are.
pub fn reset() {
    lock(&SPANS).clear();
    lock(&EVENTS).clear();
    for c in lock(&COUNTERS).iter() {
        c.value.store(0, Ordering::Relaxed);
    }
    for h in lock(&HISTOGRAMS).iter() {
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.sum.store(0, Ordering::Relaxed);
        h.count.store(0, Ordering::Relaxed);
        h.max.store(0, Ordering::Relaxed);
    }
}

/// Acquires a state mutex, surviving poisoning (a panicking test thread
/// must not wedge telemetry for the rest of the process).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Nanoseconds since the trace epoch.
fn now_ns() -> u64 {
    let epoch = EPOCH.get().copied().unwrap_or_else(Instant::now);
    Instant::now().duration_since(epoch).as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// One completed span, as recorded at guard drop.
#[derive(Debug, Clone, Copy)]
struct SpanRec {
    name: &'static str,
    tid: u64,
    start_ns: u64,
    end_ns: u64,
}

/// RAII guard returned by [`span`]; records the interval when dropped.
#[must_use = "a span guard times the scope it lives in; bind it to a variable"]
pub struct Span {
    start: Option<(&'static str, u64)>,
}

/// Opens a named phase span. When recording is off this is one `Relaxed`
/// load and the returned guard is inert (its drop does nothing).
#[inline]
pub fn span(name: &'static str) -> Span {
    if !is_enabled() {
        return Span { start: None };
    }
    Span {
        start: Some((name, now_ns())),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, start_ns)) = self.start.take() {
            let rec = SpanRec {
                name,
                tid: TID.with(|t| *t),
                start_ns,
                end_ns: now_ns(),
            };
            lock(&SPANS).push(rec);
        }
    }
}

// ---------------------------------------------------------------------------
// Counters and histograms
// ---------------------------------------------------------------------------

/// A process-wide monotonically-increasing counter.
///
/// Declare as a `static` and bump with [`incr`](Counter::incr) /
/// [`add`](Counter::add); increments are `Relaxed` atomics, so counting
/// from multiple threads is safe and lock-free. The counter registers
/// itself in the global snapshot on its first enabled touch.
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    registered: AtomicBool,
}

impl Counter {
    /// A new counter named `name` (dotted `crate.metric` by convention).
    pub const fn new(name: &'static str) -> Self {
        Counter {
            name,
            value: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Adds one. Disabled mode: one `Relaxed` load, nothing else.
    #[inline]
    pub fn incr(&'static self) {
        self.add(1);
    }

    /// Adds `n`. Disabled mode: one `Relaxed` load, nothing else.
    #[inline]
    pub fn add(&'static self, n: u64) {
        if !is_enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock(&COUNTERS).push(self);
        }
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// The counter's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets a [`Histogram`] keeps.
const HISTOGRAM_BUCKETS: usize = 32;

/// A process-wide histogram over power-of-two buckets.
///
/// Bucket `i` counts samples `v` with `2^(i-1) < v <= 2^i` (bucket 0
/// counts zeros and ones); values past the last bucket clamp into it.
/// Like [`Counter`], recording is `Relaxed`-atomic and self-registering.
pub struct Histogram {
    name: &'static str,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
    max: AtomicU64,
    registered: AtomicBool,
}

impl Histogram {
    /// A new histogram named `name`.
    pub const fn new(name: &'static str) -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            name,
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
            registered: AtomicBool::new(false),
        }
    }

    /// Records one sample. Disabled mode: one `Relaxed` load, nothing else.
    #[inline]
    pub fn record(&'static self, v: u64) {
        if !is_enabled() {
            return;
        }
        if !self.registered.swap(true, Ordering::Relaxed) {
            lock(&HISTOGRAMS).push(self);
        }
        let bucket = (64 - u64::leading_zeros(v | 1) as usize - 1).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A point-in-time copy of this histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            name: self.name.to_owned(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Per-bucket sample counts (bucket `i` ≈ values up to `2^i`).
    pub buckets: Vec<u64>,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// Number of recorded samples.
    pub count: u64,
    /// Largest recorded sample (0 when empty) — the quantile clamp.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean recorded sample, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The `q`-quantile (0 < q ≤ 1) as the inclusive upper bound of the
    /// power-of-two bucket holding the `⌈q·count⌉`-th smallest sample,
    /// clamped to the largest recorded sample, or 0 when empty. Bucket
    /// `i` holds `[2^i, 2^(i+1))` (bucket 0 also holds 0; the last bucket
    /// saturates), so the raw bound is `2^(i+1) − 1`; the clamp keeps the
    /// estimate from overstating the tail past any sample that actually
    /// occurred (a lone sample of 1000 reports 1000, not 1023).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return (((1u128 << (i + 1)) - 1) as f64).min(self.max as f64);
            }
        }
        // Unreachable when buckets/count are consistent; fall back to the
        // largest recorded sample.
        self.max as f64
    }

    /// Median sample (bucket upper bound, clamped to the recorded
    /// maximum), or 0 when empty.
    pub fn p50(&self) -> f64 {
        self.quantile(0.5)
    }

    /// 99th-percentile sample (bucket upper bound, clamped to the
    /// recorded maximum), or 0 when empty.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

// ---------------------------------------------------------------------------
// Structured events (the verbosity channel)
// ---------------------------------------------------------------------------

/// How chatty [`info`]/[`debug`] are on stderr.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// Nothing printed.
    Quiet,
    /// [`info`] printed (the default: progress lines).
    Info,
    /// [`info`] and [`debug`] printed.
    Debug,
}

/// Sets the process verbosity.
pub fn set_verbosity(v: Verbosity) {
    VERBOSITY.store(v as u8, Ordering::Relaxed);
}

/// The current process verbosity.
pub fn verbosity() -> Verbosity {
    match VERBOSITY.load(Ordering::Relaxed) {
        0 => Verbosity::Quiet,
        1 => Verbosity::Info,
        _ => Verbosity::Debug,
    }
}

/// One recorded instant event.
#[derive(Debug, Clone)]
struct EventRec {
    target: &'static str,
    message: String,
    tid: u64,
    ts_ns: u64,
}

fn emit_event(level: Verbosity, target: &'static str, msg: impl FnOnce() -> String) {
    let print = verbosity() >= level;
    let record = is_enabled();
    if !print && !record {
        return;
    }
    let message = msg();
    if print {
        eprintln!("[{target}] {message}");
    }
    if record {
        let rec = EventRec {
            target,
            message,
            tid: TID.with(|t| *t),
            ts_ns: now_ns(),
        };
        lock(&EVENTS).push(rec);
    }
}

/// A progress-level diagnostic: printed at [`Verbosity::Info`] and above,
/// recorded as a trace instant event whenever recording is on. The
/// message closure only runs when one of the two sinks wants it.
pub fn info(target: &'static str, msg: impl FnOnce() -> String) {
    emit_event(Verbosity::Info, target, msg);
}

/// A debug-level diagnostic: printed only at [`Verbosity::Debug`],
/// recorded as a trace instant event whenever recording is on.
pub fn debug(target: &'static str, msg: impl FnOnce() -> String) {
    emit_event(Verbosity::Debug, target, msg);
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Aggregate timing of one span name.
#[derive(Debug, Clone)]
pub struct PhaseStat {
    /// Span name.
    pub name: String,
    /// Completed spans with this name.
    pub count: usize,
    /// Inclusive time, µs (child spans counted inside their parents, so
    /// inclusive totals of nested phases overlap).
    pub total_us: f64,
    /// Self time, µs (inclusive minus time spent in child spans). Self
    /// times are disjoint and sum to at most the wall time.
    pub self_us: f64,
}

/// Per-thread span groups, each sorted parent-before-child.
fn spans_by_thread() -> Vec<Vec<SpanRec>> {
    let spans = lock(&SPANS).clone();
    let mut tids: Vec<u64> = spans.iter().map(|s| s.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    tids.into_iter()
        .map(|tid| {
            let mut group: Vec<SpanRec> = spans.iter().filter(|s| s.tid == tid).copied().collect();
            // Parents first: earlier start, or same start and later end.
            group.sort_by(|a, b| a.start_ns.cmp(&b.start_ns).then(b.end_ns.cmp(&a.end_ns)));
            group
        })
        .collect()
}

/// Walks one thread's parent-first span list, calling `visit(span,
/// self_ns)` for each span in completion (child-first) order. RAII
/// guards guarantee proper nesting per thread, which this walk relies on.
fn walk_nesting(group: &[SpanRec], mut visit: impl FnMut(&SpanRec, u64)) {
    struct Frame {
        idx: usize,
        child_ns: u64,
    }
    let mut stack: Vec<Frame> = Vec::new();
    let pop = |stack: &mut Vec<Frame>, visit: &mut dyn FnMut(&SpanRec, u64)| {
        let frame = stack.pop().expect("pop called on non-empty stack");
        let rec = &group[frame.idx];
        let inclusive = rec.end_ns - rec.start_ns;
        visit(rec, inclusive.saturating_sub(frame.child_ns));
        if let Some(parent) = stack.last_mut() {
            parent.child_ns += inclusive;
        }
    };
    for (idx, rec) in group.iter().enumerate() {
        while stack
            .last()
            .is_some_and(|f| group[f.idx].end_ns <= rec.start_ns)
        {
            pop(&mut stack, &mut visit);
        }
        stack.push(Frame { idx, child_ns: 0 });
    }
    while !stack.is_empty() {
        pop(&mut stack, &mut visit);
    }
}

/// Aggregate span timing per phase name, sorted by self time, largest
/// first.
pub fn phase_stats() -> Vec<PhaseStat> {
    let mut agg: Vec<(String, usize, u64, u64)> = Vec::new();
    for group in spans_by_thread() {
        walk_nesting(&group, |rec, self_ns| {
            let inclusive = rec.end_ns - rec.start_ns;
            match agg.iter_mut().find(|(n, ..)| n == rec.name) {
                Some((_, count, total, slf)) => {
                    *count += 1;
                    *total += inclusive;
                    *slf += self_ns;
                }
                None => agg.push((rec.name.to_owned(), 1, inclusive, self_ns)),
            }
        });
    }
    let mut stats: Vec<PhaseStat> = agg
        .into_iter()
        .map(|(name, count, total, slf)| PhaseStat {
            name,
            count,
            total_us: total as f64 / 1000.0,
            self_us: slf as f64 / 1000.0,
        })
        .collect();
    stats.sort_by(|a, b| b.self_us.total_cmp(&a.self_us));
    stats
}

/// Every registered counter as `(name, value)`, sorted by name.
pub fn counters() -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = lock(&COUNTERS)
        .iter()
        .map(|c| (c.name.to_owned(), c.value()))
        .collect();
    out.sort();
    out
}

/// The value of the registered counter named `name` (0 if never touched).
pub fn counter_value(name: &str) -> u64 {
    lock(&COUNTERS)
        .iter()
        .find(|c| c.name == name)
        .map_or(0, |c| c.value())
}

/// Snapshots of every registered histogram, sorted by name.
pub fn histograms() -> Vec<HistogramSnapshot> {
    let mut out: Vec<HistogramSnapshot> = lock(&HISTOGRAMS).iter().map(|h| h.snapshot()).collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Wall time covered by the recorded spans (earliest start to latest
/// end), µs. Zero when nothing was recorded.
pub fn wall_us() -> f64 {
    let spans = lock(&SPANS);
    let start = spans.iter().map(|s| s.start_ns).min();
    let end = spans.iter().map(|s| s.end_ns).max();
    match (start, end) {
        (Some(s), Some(e)) => (e - s) as f64 / 1000.0,
        _ => 0.0,
    }
}

// ---------------------------------------------------------------------------
// Exports
// ---------------------------------------------------------------------------

fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders everything recorded so far as Chrome trace-event JSON: spans
/// as strictly-nested `B`/`E` pairs per thread (the closing `E` also
/// carries the span's `dur`), [`info`]/[`debug`] diagnostics as `i`
/// instant events, and final counter values as `C` counter events.
/// Timestamps are µs rebased to the earliest recorded start. The output
/// loads in `chrome://tracing` and Perfetto.
pub fn chrome_trace() -> String {
    let groups = spans_by_thread();
    let events = lock(&EVENTS).clone();
    let base_ns = groups
        .iter()
        .flat_map(|g| g.iter().map(|s| s.start_ns))
        .chain(events.iter().map(|e| e.ts_ns))
        .min()
        .unwrap_or(0);
    let ts = |ns: u64| (ns - base_ns) as f64 / 1000.0;
    let mut rows: Vec<(f64, String)> = Vec::new();
    for group in &groups {
        // Emit B/E in timestamp order with LIFO closes: re-walk the
        // nesting so the pair stream is strictly nested by construction.
        struct Open {
            idx: usize,
        }
        let mut stack: Vec<Open> = Vec::new();
        let close = |rec: &SpanRec, rows: &mut Vec<(f64, String)>| {
            let mut row = String::from("{\"name\":");
            escape_json(rec.name, &mut row);
            let _ = write!(
                row,
                ",\"cat\":\"qccd\",\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
                rec.tid,
                ts(rec.end_ns),
                (rec.end_ns - rec.start_ns) as f64 / 1000.0
            );
            rows.push((ts(rec.end_ns), row));
        };
        for (idx, rec) in group.iter().enumerate() {
            while stack
                .last()
                .is_some_and(|o| group[o.idx].end_ns <= rec.start_ns)
            {
                let open = stack.pop().expect("guarded by is_some_and");
                close(&group[open.idx], &mut rows);
            }
            let mut row = String::from("{\"name\":");
            escape_json(rec.name, &mut row);
            let _ = write!(
                row,
                ",\"cat\":\"qccd\",\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{}}}",
                rec.tid,
                ts(rec.start_ns)
            );
            rows.push((ts(rec.start_ns), row));
            stack.push(Open { idx });
        }
        while let Some(open) = stack.pop() {
            close(&group[open.idx], &mut rows);
        }
    }
    for e in &events {
        let mut row = String::from("{\"name\":");
        escape_json(e.target, &mut row);
        let _ = write!(
            row,
            ",\"cat\":\"qccd\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{\"message\":",
            e.tid,
            ts(e.ts_ns)
        );
        escape_json(&e.message, &mut row);
        row.push_str("}}");
        rows.push((ts(e.ts_ns), row));
    }
    let end_ts = groups
        .iter()
        .flat_map(|g| g.iter().map(|s| ts(s.end_ns)))
        .fold(0.0f64, f64::max);
    for (name, value) in counters() {
        let mut row = String::from("{\"name\":");
        escape_json(&name, &mut row);
        let _ = write!(
            row,
            ",\"cat\":\"qccd\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{end_ts},\"args\":{{\"value\":{value}}}}}"
        );
        rows.push((end_ts, row));
    }
    let mut out = String::from("[\n");
    let n = rows.len();
    for (i, (_, row)) in rows.into_iter().enumerate() {
        out.push_str("  ");
        out.push_str(&row);
        if i + 1 < n {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Renders the compact per-phase summary table (phases by self time, then
/// counters, then histogram means) as plain text.
pub fn summary_table() -> String {
    let wall = wall_us();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<16} {:>9} {:>13} {:>13} {:>7}",
        "phase", "count", "total(ms)", "self(ms)", "self%"
    );
    for p in phase_stats() {
        let pct = if wall > 0.0 {
            100.0 * p.self_us / wall
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "{:<16} {:>9} {:>13.3} {:>13.3} {:>6.1}%",
            p.name,
            p.count,
            p.total_us / 1000.0,
            p.self_us / 1000.0,
            pct
        );
    }
    let _ = writeln!(out, "{:<16} {:>9} {:>13.3}", "wall", "", wall / 1000.0);
    let counters = counters();
    if !counters.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(out, "{:<32} {:>12}", "counter", "value");
        for (name, value) in counters {
            let _ = writeln!(out, "{name:<32} {value:>12}");
        }
    }
    let hists = histograms();
    if !hists.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<32} {:>12} {:>12} {:>10} {:>10}",
            "histogram", "samples", "mean", "p50", "p99"
        );
        for h in hists {
            let _ = writeln!(
                out,
                "{:<32} {:>12} {:>12.2} {:>10} {:>10}",
                h.name,
                h.count,
                h.mean(),
                h.p50(),
                h.p99()
            );
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Lane traces (caller-supplied Gantt charts)
// ---------------------------------------------------------------------------

/// One bar on a Gantt lane: a named `[start_us, end_us)` interval on lane
/// `tid`. Used by [`chrome_trace_lanes`] to export caller-computed
/// schedules (e.g. a device timeline's per-trap activity) in the same
/// Chrome-trace dialect [`chrome_trace`] emits.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneSpan {
    /// The lane (Chrome-trace thread id) the bar renders on.
    pub tid: u64,
    /// Bar label.
    pub name: String,
    /// Bar start, µs.
    pub start_us: f64,
    /// Bar end, µs.
    pub end_us: f64,
}

/// One sample of a named per-lane counter series (e.g. a trap's motional
/// mode `n̄` over time), exported by [`chrome_trace_lanes_with_counters`]
/// as a Chrome-trace `C` row. Perfetto renders each `(tid, name)` series
/// as a step chart under the lane's track.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSample {
    /// The lane (Chrome-trace thread id) the series belongs to.
    pub tid: u64,
    /// Counter series name.
    pub name: String,
    /// Sample time, µs.
    pub ts_us: f64,
    /// Sample value.
    pub value: f64,
}

/// Renders caller-supplied lanes as Chrome trace-event JSON: one
/// `thread_name` metadata row per `(tid, label)` lane, then every span as
/// a `B`/`E` pair (the `E` carries `dur`), time-ordered with closes
/// emitted before same-timestamp opens so each lane's pair stream is
/// strictly nested. Within one lane spans must not overlap (they may
/// touch); spans with non-positive duration are skipped. Unlike
/// [`chrome_trace`] this reads no global state — it is a pure formatter
/// for externally-timed data such as per-trap schedule lanes.
pub fn chrome_trace_lanes(lanes: &[(u64, String)], spans: &[LaneSpan]) -> String {
    chrome_trace_lanes_with_counters(lanes, spans, &[])
}

/// [`chrome_trace_lanes`] plus counter series: every [`CounterSample`] is
/// appended as a `C` row in the same dialect [`chrome_trace`] uses
/// (`args.value` carries the sample). Counter rows sort after
/// same-timestamp span opens — a sample stamped at an operation's end
/// time reads as the value *after* that operation. Samples with
/// non-finite time or value are skipped (JSON has no spelling for them).
pub fn chrome_trace_lanes_with_counters(
    lanes: &[(u64, String)],
    spans: &[LaneSpan],
    counters: &[CounterSample],
) -> String {
    let mut rows: Vec<(f64, u8, u64, String)> =
        Vec::with_capacity(2 * spans.len() + lanes.len() + counters.len());
    for (tid, label) in lanes {
        let mut row = String::from("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
        let _ = write!(row, "{tid},\"ts\":0,\"args\":{{\"name\":");
        escape_json(label, &mut row);
        row.push_str("}}");
        rows.push((f64::NEG_INFINITY, 0, *tid, row));
    }
    for s in spans {
        let width = s.end_us - s.start_us;
        if width.is_nan() || width <= 0.0 {
            continue;
        }
        let mut open = String::from("{\"name\":");
        escape_json(&s.name, &mut open);
        let _ = write!(
            open,
            ",\"cat\":\"qccd\",\"ph\":\"B\",\"pid\":1,\"tid\":{},\"ts\":{}}}",
            s.tid, s.start_us
        );
        rows.push((s.start_us, 1, s.tid, open));
        let mut close = String::from("{\"name\":");
        escape_json(&s.name, &mut close);
        let _ = write!(
            close,
            ",\"cat\":\"qccd\",\"ph\":\"E\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{}}}",
            s.tid,
            s.end_us,
            s.end_us - s.start_us
        );
        rows.push((s.end_us, 0, s.tid, close));
    }
    for c in counters {
        if !c.ts_us.is_finite() || !c.value.is_finite() {
            continue;
        }
        let mut row = String::from("{\"name\":");
        escape_json(&c.name, &mut row);
        let _ = write!(
            row,
            ",\"cat\":\"qccd\",\"ph\":\"C\",\"pid\":1,\"tid\":{},\"ts\":{},\"args\":{{\"value\":{}}}}}",
            c.tid, c.ts_us, c.value
        );
        rows.push((c.ts_us, 2, c.tid, row));
    }
    rows.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
    let mut out = String::from("[\n");
    let n = rows.len();
    for (i, (_, _, _, row)) in rows.into_iter().enumerate() {
        out.push_str("  ");
        out.push_str(&row);
        if i + 1 < n {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// The whole crate is process-global state; tests serialize on this
    /// (surviving poisoning so one failure doesn't cascade).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn exclusive() -> std::sync::MutexGuard<'static, ()> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        disable();
        reset();
        guard
    }

    static T_COUNT: Counter = Counter::new("test.count");
    static T_CROSS: Counter = Counter::new("test.cross");
    static T_DISABLED: Counter = Counter::new("test.disabled");
    static T_HIST: Histogram = Histogram::new("test.hist");

    #[test]
    fn counters_count_and_snapshot() {
        let _g = exclusive();
        enable();
        T_COUNT.incr();
        T_COUNT.add(4);
        assert_eq!(T_COUNT.value(), 5);
        assert_eq!(counter_value("test.count"), 5);
        assert!(counters().contains(&("test.count".to_owned(), 5)));
        reset();
        assert_eq!(counter_value("test.count"), 0);
        disable();
    }

    #[test]
    fn cross_thread_counts_aggregate() {
        let _g = exclusive();
        enable();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                thread::spawn(|| {
                    for _ in 0..1000 {
                        T_CROSS.incr();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter_value("test.cross"), 4000);
        disable();
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _g = exclusive();
        assert!(!is_enabled());
        T_DISABLED.incr();
        T_HIST.record(7);
        {
            let _s = span("ghost");
        }
        info("test", || "unprinted".to_owned());
        assert_eq!(counter_value("test.disabled"), 0);
        assert!(phase_stats().is_empty());
        assert_eq!(wall_us(), 0.0);
        let trace = chrome_trace();
        assert!(!trace.contains("ghost"));
    }

    #[test]
    fn nested_spans_nest_and_split_self_time() {
        let _g = exclusive();
        enable();
        {
            let _outer = span("outer");
            thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("inner");
                thread::sleep(std::time::Duration::from_millis(2));
            }
            {
                let _inner = span("inner");
            }
        }
        let stats = phase_stats();
        let outer = stats.iter().find(|p| p.name == "outer").unwrap();
        let inner = stats.iter().find(|p| p.name == "inner").unwrap();
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 2);
        assert!(outer.total_us >= inner.total_us, "inner nests inside outer");
        assert!(
            outer.self_us <= outer.total_us - inner.total_us + 1.0,
            "outer self time excludes the inner spans: {stats:?}"
        );
        disable();
    }

    #[test]
    fn histogram_buckets_and_mean() {
        let _g = exclusive();
        enable();
        for v in [0, 1, 2, 3, 8, 1000] {
            T_HIST.record(v);
        }
        let snap = histograms()
            .into_iter()
            .find(|h| h.name == "test.hist")
            .unwrap();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.sum, 1014);
        assert_eq!(snap.buckets[0], 2, "0 and 1 share the first bucket");
        assert_eq!(snap.buckets[1], 2, "2 and 3");
        assert_eq!(snap.buckets[3], 1, "8");
        assert_eq!(snap.buckets[9], 1, "1000 < 1024");
        assert!((snap.mean() - 169.0).abs() < 1.0);
        disable();
    }

    #[test]
    fn verbosity_gates_stderr_but_not_trace() {
        let _g = exclusive();
        let before = verbosity();
        set_verbosity(Verbosity::Quiet);
        enable();
        info("test", || "recorded while quiet".to_owned());
        let trace = chrome_trace();
        assert!(trace.contains("recorded while quiet"));
        disable();
        set_verbosity(before);
    }

    /// A minimal JSON reader for the round-trip test: tokenizes the trace
    /// into event objects' (key, raw value) pairs.
    fn parse_events(trace: &str) -> Vec<Vec<(String, String)>> {
        let trimmed = trace.trim();
        assert!(trimmed.starts_with('[') && trimmed.ends_with(']'), "array");
        trimmed
            .lines()
            .filter(|l| l.trim_start().starts_with('{'))
            .map(|line| {
                let line = line.trim().trim_end_matches(',');
                assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
                let body = &line[1..line.len() - 1];
                // Split on top-level commas (args objects nest one deep).
                let mut pairs = Vec::new();
                let mut depth = 0;
                let mut in_str = false;
                let mut field = String::new();
                for c in body.chars().chain(std::iter::once(',')) {
                    match c {
                        '"' => {
                            in_str = !in_str;
                            field.push(c);
                        }
                        '{' | '[' if !in_str => {
                            depth += 1;
                            field.push(c);
                        }
                        '}' | ']' if !in_str => {
                            depth -= 1;
                            field.push(c);
                        }
                        ',' if !in_str && depth == 0 => {
                            let (k, v) = field.split_once(':').expect("key: value");
                            pairs
                                .push((k.trim().trim_matches('"').to_owned(), v.trim().to_owned()));
                            field.clear();
                        }
                        c => field.push(c),
                    }
                }
                pairs
            })
            .collect()
    }

    #[test]
    fn chrome_trace_round_trips_with_strict_nesting() {
        let _g = exclusive();
        enable();
        {
            let _a = span("alpha");
            {
                let _b = span("beta");
                T_COUNT.incr();
            }
            {
                let _c = span("gamma");
            }
        }
        info("note", || "one instant".to_owned());
        let trace = chrome_trace();
        let events = parse_events(&trace);
        assert!(!events.is_empty());
        let get = |ev: &[(String, String)], key: &str| {
            ev.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing {key}: {ev:?}"))
        };
        let mut stack: Vec<String> = Vec::new();
        let mut last_ts = f64::NEG_INFINITY;
        let mut b_count = 0;
        for ev in &events {
            // Schema: every event has pid/tid/ts/ph; E events carry dur.
            let ph = get(ev, "ph");
            assert_eq!(get(ev, "pid"), "1");
            get(ev, "tid");
            let ts: f64 = get(ev, "ts").parse().expect("numeric ts");
            match ph.as_str() {
                "\"B\"" => {
                    assert!(ts >= last_ts, "B/E stream is time-ordered");
                    last_ts = ts;
                    stack.push(get(ev, "name"));
                    b_count += 1;
                }
                "\"E\"" => {
                    assert!(ts >= last_ts, "B/E stream is time-ordered");
                    last_ts = ts;
                    let dur: f64 = get(ev, "dur").parse().expect("numeric dur");
                    assert!(dur >= 0.0);
                    let open = stack.pop().expect("E closes an open B");
                    assert_eq!(open, get(ev, "name"), "strict LIFO nesting");
                }
                "\"i\"" | "\"C\"" => {}
                other => panic!("unexpected ph {other}"),
            }
        }
        assert!(stack.is_empty(), "every B is closed");
        assert_eq!(b_count, 3, "alpha, beta, gamma");
        assert!(
            events
                .iter()
                .any(|ev| get(ev, "ph") == "\"C\"" && get(ev, "name") == "\"test.count\""),
            "counters export as C events"
        );
        assert!(trace.contains("one instant"));
        disable();
    }

    #[test]
    fn summary_table_lists_phases_and_counters() {
        let _g = exclusive();
        enable();
        {
            let _s = span("tabled");
            T_COUNT.add(3);
        }
        let table = summary_table();
        assert!(table.contains("tabled"));
        assert!(table.contains("test.count"));
        assert!(table.contains("wall"));
        disable();
    }

    #[test]
    fn histogram_quantiles_track_bucket_bounds() {
        let _g = exclusive();
        enable();
        // 97 samples land in bucket 1 ([2, 4), bound 3), 3 in bucket 9
        // ([512, 1024), raw bound 1023 clamped to the recorded max 1000):
        // the median sits in the low bucket, the p99 in the high one.
        for _ in 0..97 {
            T_HIST.record(3);
        }
        for _ in 0..3 {
            T_HIST.record(1000);
        }
        let snap = histograms()
            .into_iter()
            .find(|h| h.name == "test.hist")
            .expect("recorded histogram listed");
        assert_eq!(snap.count, 100);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.p50(), 3.0);
        assert_eq!(snap.quantile(0.97), 3.0);
        assert_eq!(snap.p99(), 1000.0);
        assert_eq!(snap.quantile(1.0), 1000.0);
        let table = summary_table();
        assert!(table.contains("p50"), "summary table lists percentiles");
        assert!(table.contains("1000"), "p99 column shows the recorded max");
        assert!(!table.contains("1023"), "bucket bound never leaks past max");
        disable();
    }

    /// The bug this clamps: a single sample of 1000 used to report p99 =
    /// 1023 (the power-of-two bucket upper bound). Percentiles must never
    /// exceed a value that was actually recorded.
    #[test]
    fn quantiles_never_exceed_the_recorded_maximum() {
        let _g = exclusive();
        enable();
        T_HIST.record(1000);
        let snap = histograms()
            .into_iter()
            .find(|h| h.name == "test.hist")
            .expect("recorded histogram listed");
        assert_eq!(snap.p50(), 1000.0);
        assert_eq!(snap.p99(), 1000.0);
        assert_eq!(snap.quantile(1.0), 1000.0);
        disable();
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let snap = HistogramSnapshot {
            name: "empty".to_owned(),
            buckets: vec![0; 32],
            sum: 0,
            count: 0,
            max: 0,
        };
        assert_eq!(snap.p50(), 0.0);
        assert_eq!(snap.p99(), 0.0);
        let unit = HistogramSnapshot {
            name: "unit".to_owned(),
            buckets: {
                let mut b = vec![0u64; 32];
                b[0] = 5;
                b
            },
            sum: 5,
            count: 5,
            max: 1,
        };
        assert_eq!(unit.p50(), 1.0, "bucket 0 bound is 1");
    }

    #[test]
    fn lane_trace_emits_labeled_strictly_nested_lanes() {
        // Pure formatter: no global state involved, no enable() needed.
        let lanes = vec![(0u64, "trap 0".to_owned()), (1u64, "trap 1".to_owned())];
        let spans = vec![
            LaneSpan {
                tid: 0,
                name: "g0".to_owned(),
                start_us: 0.0,
                end_us: 100.0,
            },
            LaneSpan {
                tid: 1,
                name: "hop".to_owned(),
                start_us: 100.0,
                end_us: 265.5,
            },
            LaneSpan {
                tid: 0,
                name: "g1".to_owned(),
                start_us: 100.0,
                end_us: 150.0,
            },
            LaneSpan {
                tid: 0,
                name: "degenerate".to_owned(),
                start_us: 5.0,
                end_us: 5.0,
            },
        ];
        let trace = chrome_trace_lanes(&lanes, &spans);
        assert!(!trace.contains("degenerate"), "zero-width bars skipped");
        assert!(trace.contains("trap 1"), "lane labels exported");
        let events = parse_events(&trace);
        let get = |ev: &[(String, String)], key: &str| {
            ev.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing {key}: {ev:?}"))
        };
        let mut stacks: std::collections::HashMap<String, Vec<String>> =
            std::collections::HashMap::new();
        let mut b_count = 0;
        for ev in &events {
            // Same schema the CI validator checks: pid/tid/ts/ph/name on
            // every row, dur on closes, strict per-tid LIFO.
            assert_eq!(get(ev, "pid"), "1");
            get(ev, "ts");
            let tid = get(ev, "tid");
            match get(ev, "ph").as_str() {
                "\"B\"" => {
                    stacks.entry(tid).or_default().push(get(ev, "name"));
                    b_count += 1;
                }
                "\"E\"" => {
                    let dur: f64 = get(ev, "dur").parse().expect("numeric dur");
                    assert!(dur > 0.0);
                    let open = stacks.get_mut(&tid).and_then(Vec::pop);
                    assert_eq!(open.expect("E closes an open B"), get(ev, "name"));
                }
                "\"M\"" => {}
                other => panic!("unexpected ph {other}"),
            }
        }
        assert!(stacks.values().all(Vec::is_empty), "every B is closed");
        assert_eq!(b_count, 3, "three real bars");
        // Same-timestamp close-then-open: trap 0's g0 E precedes its g1 B.
        let e_pos = trace.find("\"ph\":\"E\",\"pid\":1,\"tid\":0").unwrap();
        let b_pos = trace.find("\"g1\"").unwrap();
        assert!(e_pos < b_pos, "closes sort before same-ts opens");
    }

    #[test]
    fn lane_counters_export_as_schema_valid_c_rows() {
        let lanes = vec![(0u64, "trap 0".to_owned())];
        let spans = vec![LaneSpan {
            tid: 0,
            name: "gate".to_owned(),
            start_us: 0.0,
            end_us: 100.0,
        }];
        let counters = vec![
            CounterSample {
                tid: 0,
                name: "n̄ trap 0".to_owned(),
                ts_us: 0.0,
                value: 0.5,
            },
            CounterSample {
                tid: 0,
                name: "n̄ trap 0".to_owned(),
                ts_us: 100.0,
                value: 1.25,
            },
            CounterSample {
                tid: 0,
                name: "dropped".to_owned(),
                ts_us: 50.0,
                value: f64::NAN,
            },
        ];
        let trace = chrome_trace_lanes_with_counters(&lanes, &spans, &counters);
        assert!(!trace.contains("dropped"), "non-finite samples skipped");
        assert_eq!(
            chrome_trace_lanes(&lanes, &spans),
            chrome_trace_lanes_with_counters(&lanes, &spans, &[]),
            "no counters means the plain lane export, byte for byte"
        );
        let events = parse_events(&trace);
        let get = |ev: &[(String, String)], key: &str| {
            ev.iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| panic!("missing {key}: {ev:?}"))
        };
        let mut stack: Vec<String> = Vec::new();
        let mut c_count = 0;
        for ev in &events {
            // The strict-nesting validator's schema: B/E stay LIFO per
            // lane; C rows carry args.value and never disturb the stack.
            assert_eq!(get(ev, "pid"), "1");
            get(ev, "ts");
            match get(ev, "ph").as_str() {
                "\"B\"" => stack.push(get(ev, "name")),
                "\"E\"" => {
                    assert_eq!(stack.pop().expect("E closes an open B"), get(ev, "name"));
                }
                "\"C\"" => {
                    let args = get(ev, "args");
                    assert!(args.contains("\"value\""), "{args}");
                    c_count += 1;
                }
                "\"M\"" => {}
                other => panic!("unexpected ph {other}"),
            }
        }
        assert!(stack.is_empty());
        assert_eq!(c_count, 2, "both finite samples exported");
        // The sample stamped at the gate's start sorts after the gate's
        // open: counters read as the value after same-ts events.
        let b_pos = trace.find("\"ph\":\"B\"").unwrap();
        let first_c = trace.find("\"ph\":\"C\"").unwrap();
        assert!(first_c > b_pos, "same-ts counter sorts after the open");
    }
}
