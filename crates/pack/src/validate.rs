//! The pack validator: full replay equivalence between the original and
//! the packed program.

use crate::PackError;
use qccd_circuit::Circuit;
use qccd_machine::{IonId, MachineSpec, MachineState, Operation, Schedule};

/// Proves `packed` is an equivalent rewrite of `original`:
///
/// 1. **Executability** — `packed` passes the strict schedule validator
///    against `circuit` on `spec`: every shuttle hop is serially legal,
///    every gate executes exactly once in dependency order with its
///    operands co-located in the stated trap (gate *operand availability*).
/// 2. **Gate sequence** — `packed` runs the same gates in the same order
///    in the same traps as `original` (packing moves transport, never
///    computation).
/// 3. **Final mapping** — replaying both programs leaves every ion in the
///    same trap.
///
/// Transport-round legality is validated separately against the packed
/// schedule by the round validators in `qccd-route`.
///
/// # Errors
///
/// The first violated property, as a [`PackError`].
pub fn validate_equivalent(
    original: &Schedule,
    packed: &Schedule,
    circuit: &Circuit,
    spec: &MachineSpec,
) -> Result<(), PackError> {
    packed
        .validate(circuit, spec)
        .map_err(|e| PackError::InvalidPacked(e.to_string()))?;

    let gates_of = |s: &Schedule| -> Vec<Operation> {
        s.operations
            .iter()
            .filter(|op| matches!(op, Operation::Gate { .. }))
            .copied()
            .collect()
    };
    let (a, b) = (gates_of(original), gates_of(packed));
    if a != b {
        let index = a
            .iter()
            .zip(&b)
            .position(|(x, y)| x != y)
            .unwrap_or(a.len().min(b.len()));
        return Err(PackError::GateSequenceDiverged { index });
    }

    let replay = |s: &Schedule| -> Result<MachineState, PackError> {
        let mut state = MachineState::with_mapping(spec, &s.initial_mapping)
            .map_err(|e| PackError::InvalidPacked(e.to_string()))?;
        for op in &s.operations {
            if let Operation::Shuttle { ion, to, .. } = *op {
                state
                    .shuttle(ion, to)
                    .map_err(|e| PackError::InvalidPacked(e.to_string()))?;
            }
        }
        Ok(state)
    };
    let (sa, sb) = (replay(original)?, replay(packed)?);
    for ion in 0..sa.num_ions() {
        let ion = IonId(ion);
        if sa.trap_of(ion) != sb.trap_of(ion) {
            return Err(PackError::FinalMappingDiverged { ion });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::{GateId, Opcode, Qubit};
    use qccd_machine::{InitialMapping, TrapId};

    fn fixture() -> (Circuit, MachineSpec, Schedule) {
        let mut c = Circuit::new(4);
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(1), TrapId(1), TrapId(1)])
                .unwrap();
        let schedule = Schedule::new(
            mapping,
            vec![
                Operation::Shuttle {
                    ion: IonId(1),
                    from: TrapId(1),
                    to: TrapId(0),
                },
                Operation::Gate {
                    gate: GateId(0),
                    trap: TrapId(0),
                },
            ],
        );
        (c, spec, schedule)
    }

    #[test]
    fn identical_schedules_are_equivalent() {
        let (c, spec, s) = fixture();
        validate_equivalent(&s, &s.clone(), &c, &spec).unwrap();
    }

    #[test]
    fn diverging_final_mapping_is_rejected() {
        let (c, spec, s) = fixture();
        let mut other = s.clone();
        other.operations.push(Operation::Shuttle {
            ion: IonId(2),
            from: TrapId(1),
            to: TrapId(0),
        });
        assert!(matches!(
            validate_equivalent(&s, &other, &c, &spec),
            Err(PackError::FinalMappingDiverged { ion: IonId(2) })
        ));
    }

    #[test]
    fn reordered_gates_are_rejected() {
        let (c, spec, s) = fixture();
        // Executable alternative that runs the gate in the *other* trap:
        // ion 0 travels to T1 instead of ion 1 to T0. Same gate id, valid
        // placement — but not the same program, and the gate-sequence
        // check fires before the final-mapping comparison.
        let other = Schedule::new(
            s.initial_mapping.clone(),
            vec![
                Operation::Shuttle {
                    ion: IonId(0),
                    from: TrapId(0),
                    to: TrapId(1),
                },
                Operation::Gate {
                    gate: GateId(0),
                    trap: TrapId(1),
                },
            ],
        );
        assert!(matches!(
            validate_equivalent(&s, &other, &c, &spec),
            Err(PackError::GateSequenceDiverged { index: 0 })
        ));
    }
}
