//! Cross-gate round packing: hoisting shuttle hops across non-conflicting
//! gates.
//!
//! The in-run packers (`pack_concurrent`, `pack_lookahead`) never let a
//! round span a gate, so a hop that *follows* a gate can never ride with a
//! round that *precedes* it — even when the hop and the gate touch
//! disjoint traps and the hardware would happily run them together. On
//! gate-dense programs (QAOA's alternating gate/rebalance traffic) that is
//! where almost all of the remaining transport depth lives.
//!
//! This packer rebuilds the round structure globally on the shared
//! [`RoundBackfill`] core (`qccd-route`), instantiated with the rules that
//! make cross-gate hoisting safe. Every hop first-fits into the earliest
//! existing round that can *prove* the hoist legal:
//!
//! * **trap-disjointness** — for every gate between the candidate round
//!   and the hop's original position, neither hop endpoint is the gate's
//!   trap (the core's `note_gate` fences). This simultaneously guarantees
//!   the gate's operands are untouched (an operand ion's hop always
//!   touches the gate trap) and that every gate still runs over an
//!   identical chain length;
//! * **per-ion order** — a hop joins a round strictly after its ion's
//!   previous hop;
//! * **machine round rules** — fresh segment, one split and one merge per
//!   trap per round;
//! * **no-credit capacity** ([`CreditRule::NoCredit`]) — an arrival is
//!   only placed where the destination has room *before* the round, never
//!   relying on a same-round departure. This keeps every round's moves
//!   serially replayable in any order, so the emitted flat schedule stays
//!   valid under the strict serial validator and downstream consumers.
//!
//! The result is a rewritten flat schedule plus a strict-validating
//! transport schedule with the same gates in the same traps, the same
//! per-ion hop sequences, and an identical final mapping.

use qccd_machine::{Operation, Schedule, ShuttleMove};
use qccd_route::{BackfillRules, CreditRule, RoundBackfill, TransportRound, TransportSchedule};

/// One rebuilt schedule + transport pair from the cross-gate packer.
#[derive(Clone, PartialEq)]
pub(crate) struct CrossGatePacked {
    /// The rewritten flat operation stream (round-ordered hops).
    pub ops: Vec<Operation>,
    /// The matching rounds, strict-validating against `ops`.
    pub transport: TransportSchedule,
    /// Hops that crossed at least one gate on their way into a round.
    pub hoisted_hops: usize,
}

/// Event stream of the packed program: gates in original order, rounds at
/// their creation points.
enum Ev {
    Gate { op: Operation },
    Round(usize),
}

/// Packs `schedule`'s hops into rounds that may precede non-conflicting
/// gates. With `share_only`, a hop joins an existing round only when it
/// shares an endpoint trap with a member move (the pipeline/corridor case
/// where merging genuinely shortens the critical path); without it, any
/// compatible round within the window accepts.
///
/// `window` bounds how far back (in rounds) the first-fit scan looks,
/// keeping the packer linear in schedule length.
pub(crate) fn pack_cross_gate(
    schedule: &Schedule,
    cap: u32,
    num_traps: usize,
    window: usize,
    share_only: bool,
) -> CrossGatePacked {
    let _phase = qccd_obs::span("backfill");
    let mut occ0 = vec![0u32; num_traps];
    for t in schedule.initial_mapping.as_slice() {
        occ0[t.index()] += 1;
    }

    let mut bf = RoundBackfill::new(
        num_traps,
        cap,
        occ0,
        BackfillRules {
            credit: CreditRule::NoCredit,
            share_only,
            window,
        },
    );
    let mut events: Vec<Ev> = Vec::new();
    let mut hoisted_hops = 0usize;

    for op in &schedule.operations {
        match *op {
            Operation::Gate { trap, .. } => {
                events.push(Ev::Gate { op: *op });
                bf.note_gate(trap);
            }
            Operation::Shuttle { ion, from, to } => {
                let placement = bf.place(ShuttleMove { ion, from, to });
                if placement.opened {
                    events.push(Ev::Round(placement.round));
                }
                if placement.hoisted {
                    hoisted_hops += 1;
                }
            }
        }
    }

    // Emit: gates in place, each round's moves contiguously at its
    // creation point. Under the no-credit rule any within-round order
    // replays serially, so insertion order is kept (it matches the strict
    // transport validator's in-order expectation by construction).
    let rounds = bf.into_rounds();
    let mut ops = Vec::with_capacity(schedule.operations.len());
    let mut transport_rounds = Vec::with_capacity(rounds.len());
    for ev in events {
        match ev {
            Ev::Gate { op } => ops.push(op),
            Ev::Round(idx) => {
                let moves = &rounds[idx];
                for m in moves {
                    ops.push(Operation::Shuttle {
                        ion: m.ion,
                        from: m.from,
                        to: m.to,
                    });
                }
                transport_rounds.push(TransportRound {
                    moves: moves.clone(),
                });
            }
        }
    }
    CrossGatePacked {
        ops,
        transport: TransportSchedule {
            rounds: transport_rounds,
        },
        hoisted_hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::GateId;
    use qccd_machine::{InitialMapping, IonId, MachineSpec, TrapId};

    fn sh(ion: u32, from: u32, to: u32) -> Operation {
        Operation::Shuttle {
            ion: IonId(ion),
            from: TrapId(from),
            to: TrapId(to),
        }
    }

    fn gate(g: u32, trap: u32) -> Operation {
        Operation::Gate {
            gate: GateId(g),
            trap: TrapId(trap),
        }
    }

    /// L4, capacity 4/comm 1, ions 0-2 in T0, 3-5 in T1, 6-8 in T2.
    fn fixture() -> (MachineSpec, InitialMapping) {
        let spec = MachineSpec::linear(4, 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 9).unwrap();
        (spec, mapping)
    }

    fn pack(schedule: &Schedule, spec: &MachineSpec, share_only: bool) -> CrossGatePacked {
        pack_cross_gate(
            schedule,
            spec.total_capacity(),
            spec.num_traps() as usize,
            96,
            share_only,
        )
    }

    #[test]
    fn hop_rides_across_a_trap_disjoint_gate() {
        // Gate in T3 separates two corridor hops T0→T1, T1→T2; both are
        // trap-disjoint from the gate, so they pipeline into one round.
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1), gate(0, 3), sh(5, 1, 2)]);
        let packed = pack(&schedule, &spec, false);
        assert_eq!(packed.transport.rounds.len(), 1, "one merged round");
        assert_eq!(packed.hoisted_hops, 1);
        packed
            .transport
            .validate(
                &Schedule::new(schedule.initial_mapping.clone(), packed.ops.clone()),
                &spec,
            )
            .unwrap();
    }

    #[test]
    fn hop_touching_the_gate_trap_never_crosses() {
        // The second hop arrives in the gate's trap: it must stay behind
        // the gate (the gate's chain length depends on it).
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1), gate(0, 2), sh(5, 1, 2)]);
        let packed = pack(&schedule, &spec, false);
        assert_eq!(packed.transport.rounds.len(), 2);
        assert_eq!(packed.hoisted_hops, 0);
        // Flat order keeps the hop after the gate.
        let gate_pos = packed
            .ops
            .iter()
            .position(|o| matches!(o, Operation::Gate { .. }))
            .unwrap();
        assert_eq!(gate_pos, 1);
    }

    #[test]
    fn per_ion_order_is_preserved_across_gates() {
        // Same ion hops twice around a disjoint gate: the hops must stay
        // in distinct ordered rounds.
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1), gate(0, 3), sh(2, 1, 2)]);
        let packed = pack(&schedule, &spec, false);
        assert_eq!(packed.transport.rounds.len(), 2);
        let first = &packed.transport.rounds[0].moves[0];
        let second = &packed.transport.rounds[1].moves[0];
        assert_eq!((first.from, first.to), (TrapId(0), TrapId(1)));
        assert_eq!((second.from, second.to), (TrapId(1), TrapId(2)));
    }

    #[test]
    fn share_only_skips_disjoint_merges() {
        // Two fully disjoint hops around a gate in T3... T0→T1 and T2→T3
        // shares T3 with the gate; use a 5-trap machine instead.
        let spec = MachineSpec::linear(5, 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 12).unwrap();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1), gate(0, 4), sh(8, 2, 3)]);
        let share = pack(&schedule, &spec, true);
        assert_eq!(
            share.transport.rounds.len(),
            2,
            "disjoint hops stay in their own rounds under share-only"
        );
        let any = pack(&schedule, &spec, false);
        assert_eq!(any.transport.rounds.len(), 1, "first-fit merges them");
    }

    #[test]
    fn no_credit_rule_blocks_arrivals_into_full_traps() {
        // T1 full (comm 0 lets traps start full): ion 1 leaves T1 and ion 0
        // enters it. The greedy in-run packers would pipeline both into one
        // round via the departure credit; the cross-gate packer's no-credit
        // rule keeps them sequential so the flat emission stays serially
        // valid in any order.
        let spec = MachineSpec::linear(3, 2, 0).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(1), TrapId(1), TrapId(2)])
                .unwrap();
        let schedule = Schedule::new(mapping, vec![sh(1, 1, 2), sh(0, 0, 1)]);
        let packed = pack(&schedule, &spec, false);
        assert_eq!(packed.transport.rounds.len(), 2);
        packed
            .transport
            .validate(
                &Schedule::new(schedule.initial_mapping.clone(), packed.ops.clone()),
                &spec,
            )
            .unwrap();
    }
}
