//! Cross-gate round packing: hoisting shuttle hops across non-conflicting
//! gates.
//!
//! The in-run packers (`pack_concurrent`, `pack_lookahead`) never let a
//! round span a gate, so a hop that *follows* a gate can never ride with a
//! round that *precedes* it — even when the hop and the gate touch
//! disjoint traps and the hardware would happily run them together. On
//! gate-dense programs (QAOA's alternating gate/rebalance traffic) that is
//! where almost all of the remaining transport depth lives.
//!
//! This packer rebuilds the round structure globally. Every hop first-fits
//! into the earliest existing round that can *prove* the hoist safe:
//!
//! * **trap-disjointness** — for every gate between the candidate round
//!   and the hop's original position, neither hop endpoint is the gate's
//!   trap (`min_join` per trap). This simultaneously guarantees the gate's
//!   operands are untouched (an operand ion's hop always touches the gate
//!   trap) and that every gate still runs over an identical chain length;
//! * **per-ion order** — a hop joins a round strictly after its ion's
//!   previous hop;
//! * **machine round rules** — fresh segment, one split and one merge per
//!   trap per round;
//! * **no-credit capacity** — an arrival is only placed where the
//!   destination has room *before* the round (`occ < cap`), never relying
//!   on a same-round departure. This keeps every round's moves serially
//!   replayable in any order, so the emitted flat schedule stays valid
//!   under the strict serial validator and downstream consumers.
//!
//! The result is a rewritten flat schedule plus a strict-validating
//! transport schedule with the same gates in the same traps, the same
//! per-ion hop sequences, and an identical final mapping.

use qccd_machine::{Operation, Schedule, ShuttleMove, TrapId};
use qccd_route::{TransportRound, TransportSchedule};

/// One rebuilt schedule + transport pair from the cross-gate packer.
pub(crate) struct CrossGatePacked {
    /// The rewritten flat operation stream (round-ordered hops).
    pub ops: Vec<Operation>,
    /// The matching rounds, strict-validating against `ops`.
    pub transport: TransportSchedule,
    /// Hops that crossed at least one gate on their way into a round.
    pub hoisted_hops: usize,
}

/// One round under construction.
struct RoundBuild {
    moves: Vec<ShuttleMove>,
    segments: Vec<(TrapId, TrapId)>,
    /// Per-trap arrival (merge) count, 0 or 1.
    arrivals: Vec<u8>,
    /// Per-trap departure (split) count, 0 or 1.
    departures: Vec<u8>,
    /// Gates emitted when this round was opened (hoist accounting).
    gates_at_creation: usize,
}

/// Event stream of the packed program: gates in original order, rounds at
/// their creation points.
enum Ev {
    Gate { op: Operation },
    Round(usize),
}

/// Packs `schedule`'s hops into rounds that may precede non-conflicting
/// gates. With `share_only`, a hop joins an existing round only when it
/// shares an endpoint trap with a member move (the pipeline/corridor case
/// where merging genuinely shortens the critical path); without it, any
/// compatible round within the window accepts.
///
/// `window` bounds how far back (in rounds) the first-fit scan looks,
/// keeping the packer linear in schedule length.
pub(crate) fn pack_cross_gate(
    schedule: &Schedule,
    cap: u32,
    num_traps: usize,
    window: usize,
    share_only: bool,
) -> CrossGatePacked {
    let num_ions = schedule.initial_mapping.num_ions() as usize;
    let mut occ0 = vec![0u32; num_traps];
    for t in schedule.initial_mapping.as_slice() {
        occ0[t.index()] += 1;
    }

    let mut rounds: Vec<RoundBuild> = Vec::new();
    // occ_before[r] = trap occupancies entering round r; one extra entry
    // for "after the last round" (gates never change occupancy).
    let mut occ_before: Vec<Vec<u32>> = vec![occ0];
    // Rounds with an arrival at each trap, ascending (downstream capacity
    // re-checks only visit these).
    let mut arrival_rounds: Vec<Vec<usize>> = vec![Vec::new(); num_traps];
    // A hop touching trap t may not join a round older than min_join[t]
    // (set by every gate executed in t).
    let mut min_join: Vec<usize> = vec![0; num_traps];
    let mut last_round_of_ion: Vec<Option<usize>> = vec![None; num_ions];
    let mut events: Vec<Ev> = Vec::new();
    let mut gates_emitted = 0usize;
    let mut hoisted_hops = 0usize;

    for op in &schedule.operations {
        match *op {
            Operation::Gate { trap, .. } => {
                events.push(Ev::Gate { op: *op });
                gates_emitted += 1;
                min_join[trap.index()] = rounds.len();
            }
            Operation::Shuttle { ion, from, to } => {
                let m = ShuttleMove { ion, from, to };
                let seg = m.segment();
                let (fi, ti) = (from.index(), to.index());
                let lo = min_join[fi]
                    .max(min_join[ti])
                    .max(last_round_of_ion[ion.index()].map_or(0, |r| r + 1))
                    .max(rounds.len().saturating_sub(window));
                let mut chosen = None;
                for r in lo..rounds.len() {
                    let rb = &rounds[r];
                    if rb.segments.contains(&seg)
                        || rb.departures[fi] > 0
                        || rb.arrivals[ti] > 0
                        || occ_before[r][ti] >= cap
                    {
                        continue;
                    }
                    if share_only
                        && rb.arrivals[fi] == 0
                        && rb.departures[ti] == 0
                        && !rb.moves.iter().any(|c| {
                            let (cf, ct) = (c.from.index(), c.to.index());
                            cf == fi || cf == ti || ct == fi || ct == ti
                        })
                    {
                        continue;
                    }
                    // Downstream: the ion occupies `to` from round r on;
                    // later rounds with an arrival there must keep room
                    // under the no-credit rule (their single arrival needs
                    // occ + 1 ≤ cap after our +1).
                    let downstream_ok = arrival_rounds[ti]
                        .iter()
                        .filter(|&&s| s > r)
                        .all(|&s| occ_before[s][ti] + 2 <= cap);
                    if downstream_ok {
                        chosen = Some(r);
                        break;
                    }
                }
                let chosen = match chosen {
                    Some(r) => r,
                    None => {
                        rounds.push(RoundBuild {
                            moves: Vec::new(),
                            segments: Vec::new(),
                            arrivals: vec![0; num_traps],
                            departures: vec![0; num_traps],
                            gates_at_creation: gates_emitted,
                        });
                        occ_before.push(occ_before.last().expect("seeded").clone());
                        events.push(Ev::Round(rounds.len() - 1));
                        rounds.len() - 1
                    }
                };
                if rounds[chosen].gates_at_creation < gates_emitted {
                    hoisted_hops += 1;
                }
                let rb = &mut rounds[chosen];
                rb.moves.push(m);
                rb.segments.push(seg);
                rb.departures[fi] += 1;
                rb.arrivals[ti] += 1;
                let list = &mut arrival_rounds[ti];
                let pos = list.partition_point(|&s| s < chosen);
                list.insert(pos, chosen);
                for occ in &mut occ_before[chosen + 1..] {
                    occ[fi] -= 1;
                    occ[ti] += 1;
                }
                last_round_of_ion[ion.index()] = Some(chosen);
            }
        }
    }

    // Emit: gates in place, each round's moves contiguously at its
    // creation point. Under the no-credit rule any within-round order
    // replays serially, so insertion order is kept (it matches the strict
    // transport validator's in-order expectation by construction).
    let mut ops = Vec::with_capacity(schedule.operations.len());
    let mut transport_rounds = Vec::with_capacity(rounds.len());
    for ev in events {
        match ev {
            Ev::Gate { op } => ops.push(op),
            Ev::Round(idx) => {
                let rb = &rounds[idx];
                for m in &rb.moves {
                    ops.push(Operation::Shuttle {
                        ion: m.ion,
                        from: m.from,
                        to: m.to,
                    });
                }
                transport_rounds.push(TransportRound {
                    moves: rb.moves.clone(),
                });
            }
        }
    }
    CrossGatePacked {
        ops,
        transport: TransportSchedule {
            rounds: transport_rounds,
        },
        hoisted_hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::GateId;
    use qccd_machine::{InitialMapping, IonId, MachineSpec};

    fn sh(ion: u32, from: u32, to: u32) -> Operation {
        Operation::Shuttle {
            ion: IonId(ion),
            from: TrapId(from),
            to: TrapId(to),
        }
    }

    fn gate(g: u32, trap: u32) -> Operation {
        Operation::Gate {
            gate: GateId(g),
            trap: TrapId(trap),
        }
    }

    /// L4, capacity 4/comm 1, ions 0-2 in T0, 3-5 in T1, 6-8 in T2.
    fn fixture() -> (MachineSpec, InitialMapping) {
        let spec = MachineSpec::linear(4, 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 9).unwrap();
        (spec, mapping)
    }

    fn pack(schedule: &Schedule, spec: &MachineSpec, share_only: bool) -> CrossGatePacked {
        pack_cross_gate(
            schedule,
            spec.total_capacity(),
            spec.num_traps() as usize,
            96,
            share_only,
        )
    }

    #[test]
    fn hop_rides_across_a_trap_disjoint_gate() {
        // Gate in T3 separates two corridor hops T0→T1, T1→T2; both are
        // trap-disjoint from the gate, so they pipeline into one round.
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1), gate(0, 3), sh(5, 1, 2)]);
        let packed = pack(&schedule, &spec, false);
        assert_eq!(packed.transport.rounds.len(), 1, "one merged round");
        assert_eq!(packed.hoisted_hops, 1);
        packed
            .transport
            .validate(
                &Schedule::new(schedule.initial_mapping.clone(), packed.ops.clone()),
                &spec,
            )
            .unwrap();
    }

    #[test]
    fn hop_touching_the_gate_trap_never_crosses() {
        // The second hop arrives in the gate's trap: it must stay behind
        // the gate (the gate's chain length depends on it).
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1), gate(0, 2), sh(5, 1, 2)]);
        let packed = pack(&schedule, &spec, false);
        assert_eq!(packed.transport.rounds.len(), 2);
        assert_eq!(packed.hoisted_hops, 0);
        // Flat order keeps the hop after the gate.
        let gate_pos = packed
            .ops
            .iter()
            .position(|o| matches!(o, Operation::Gate { .. }))
            .unwrap();
        assert_eq!(gate_pos, 1);
    }

    #[test]
    fn per_ion_order_is_preserved_across_gates() {
        // Same ion hops twice around a disjoint gate: the hops must stay
        // in distinct ordered rounds.
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1), gate(0, 3), sh(2, 1, 2)]);
        let packed = pack(&schedule, &spec, false);
        assert_eq!(packed.transport.rounds.len(), 2);
        let first = &packed.transport.rounds[0].moves[0];
        let second = &packed.transport.rounds[1].moves[0];
        assert_eq!((first.from, first.to), (TrapId(0), TrapId(1)));
        assert_eq!((second.from, second.to), (TrapId(1), TrapId(2)));
    }

    #[test]
    fn share_only_skips_disjoint_merges() {
        // Two fully disjoint hops around a gate in T3... T0→T1 and T2→T3
        // shares T3 with the gate; use a 5-trap machine instead.
        let spec = MachineSpec::linear(5, 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 12).unwrap();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1), gate(0, 4), sh(8, 2, 3)]);
        let share = pack(&schedule, &spec, true);
        assert_eq!(
            share.transport.rounds.len(),
            2,
            "disjoint hops stay in their own rounds under share-only"
        );
        let any = pack(&schedule, &spec, false);
        assert_eq!(any.transport.rounds.len(), 1, "first-fit merges them");
    }

    #[test]
    fn no_credit_rule_blocks_arrivals_into_full_traps() {
        // T1 full (comm 0 lets traps start full): ion 1 leaves T1 and ion 0
        // enters it. The greedy in-run packers would pipeline both into one
        // round via the departure credit; the cross-gate packer's no-credit
        // rule keeps them sequential so the flat emission stays serially
        // valid in any order.
        let spec = MachineSpec::linear(3, 2, 0).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(1), TrapId(1), TrapId(2)])
                .unwrap();
        let schedule = Schedule::new(mapping, vec![sh(1, 1, 2), sh(0, 0, 1)]);
        let packed = pack(&schedule, &spec, false);
        assert_eq!(packed.transport.rounds.len(), 2);
        packed
            .transport
            .validate(
                &Schedule::new(schedule.initial_mapping.clone(), packed.ops.clone()),
                &spec,
            )
            .unwrap();
    }
}
