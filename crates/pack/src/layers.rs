//! Batched layer planning: re-routing a whole gate-free run of moves as a
//! multi-commodity flow.
//!
//! The congestion planner prices one move at a time, so the hops of a wide
//! ready layer (QAOA's rebalance bursts) only share rounds by accident.
//! This pass re-plans each gate-free run *jointly*: every ion that nets a
//! displacement across the run becomes one commodity, the commodities are
//! routed with pairwise edge-disjoint paths on `qccd-flow`'s shared MCMF
//! network ([`route_commodities`]), and the run is re-emitted layer by
//! layer — the k-th hops of all commodities side by side, exactly the
//! shape the round packers turn into one round each. Ions whose walk nets
//! to nothing (eviction ping-pongs) drop out entirely.
//!
//! When the flows conflict, the planner falls back per-commodity to the
//! raw shortest path; when the rewritten run does not replay legally (the
//! flow is capacity-blind) or does not beat the original run on the
//! device clock, the original run is kept verbatim. Every candidate is
//! scored with an incremental re-lower from the run's checkpoint
//! ([`LowerState`]), so the whole pass costs O(schedule), not O(n²) full
//! `lower` calls.

use crate::PackError;
use qccd_circuit::Circuit;
use qccd_flow::{route_commodities, Commodity};
use qccd_machine::{IonId, MachineSpec, MachineState, Operation, Schedule, TrapId};
use qccd_route::TransportSchedule;
use qccd_timing::{LowerState, TimelineEvent, TimingModel, WorkerPool, SEQUENTIAL_CUTOFF};

/// Result of the batched layer-planning pass.
pub(crate) struct LayerPlanned {
    /// The rewritten flat operation stream.
    pub ops: Vec<Operation>,
    /// Runs whose flow-planned rewrite beat the original on the clock.
    pub replanned_runs: usize,
    /// Shuttle hops eliminated (net-zero walks and shortened routes).
    pub dropped_hops: usize,
}

/// Cost scale: hops dominate, a full destination trap costs extra (the
/// flow is capacity-blind; this steers it away from likely-invalid routes).
const HOP_COST: i64 = 1_000;
const FULL_TRAP_COST: i64 = 6_000;

/// A gate-free run located by the discovery pass: its slice of the
/// operation stream and transport rounds, plus the machine occupancy
/// snapshot its flow plan prices against.
struct Run {
    start: usize,
    end: usize,
    rounds_start: usize,
    rounds_end: usize,
    machine: MachineState,
}

/// Re-plans every gate-free run of `schedule` as a multi-commodity flow,
/// keeping a rewrite only when it replays legally and strictly lowers the
/// run's clock under `model`. `transport` must be the schedule's validated
/// rounds (they time the original runs during scoring).
///
/// Three passes. **Discovery** walks the stream once with a plain machine
/// replay, snapshotting the ion→trap mapping at every run start — run
/// checkpoints are natural shard boundaries because a kept rewrite
/// preserves each run's final mapping, so the snapshot is independent of
/// which earlier rewrites get adopted. **Planning** then flow-plans every
/// run's candidate rewrite on `pool`, reduced in run-index order (never
/// completion order). **Adoption** replays the timed fold sequentially,
/// scoring each precomputed rewrite from its live [`LowerState`]
/// checkpoint exactly as the single-pass loop did — so any pool width is
/// bit-for-bit identical to sequential planning.
pub(crate) fn plan_layers(
    schedule: &Schedule,
    transport: &TransportSchedule,
    circuit: &Circuit,
    spec: &MachineSpec,
    model: &TimingModel,
    pool: &WorkerPool,
) -> Result<LayerPlanned, PackError> {
    let stream = &schedule.operations;
    let rounds = &transport.rounds;

    // Pass 1 — discovery: locate runs, their round slices, and the
    // machine at each run's start. Gates never move ions between traps
    // (zone promotion is intra-trap) and the planner reads only
    // occupancy and shuttle legality, so a shuttles-only replay prices
    // identically to the timed fold's machine.
    let mut runs: Vec<Run> = Vec::new();
    let mut replay = MachineState::with_mapping(spec, &schedule.initial_mapping)
        .map_err(|e| PackError::InvalidPacked(e.to_string()))?;
    let mut round_cursor = 0usize;
    let mut i = 0usize;
    while i < stream.len() {
        if let Operation::Gate { .. } = stream[i] {
            i += 1;
            continue;
        }
        let run_start = i;
        while matches!(stream.get(i), Some(Operation::Shuttle { .. })) {
            i += 1;
        }
        let rounds_start = round_cursor;
        let mut covered = 0usize;
        while covered < i - run_start {
            // A caller-assembled result whose rounds do not cover the
            // schedule is a typed error, never a panic.
            let round = rounds.get(round_cursor).ok_or(PackError::Lower(
                qccd_timing::LowerError::TransportMismatch {
                    op_index: run_start + covered,
                },
            ))?;
            covered += round.moves.len();
            round_cursor += 1;
        }
        let machine = replay.clone();
        for op in &stream[run_start..i] {
            if let Operation::Shuttle { ion, to, .. } = *op {
                replay
                    .shuttle(ion, to)
                    .map_err(|e| PackError::InvalidPacked(e.to_string()))?;
            }
        }
        runs.push(Run {
            start: run_start,
            end: i,
            rounds_start,
            rounds_end: round_cursor,
            machine,
        });
    }

    // Pass 2 — planning: the flow solves (the expensive part) fan out on
    // the pool, one run per task, reduced in run-index order.
    let rewrites: Vec<Option<Vec<Operation>>> =
        pool.map_indexed(runs.len(), SEQUENTIAL_CUTOFF, |k| {
            let run = &runs[k];
            let run_ops = &stream[run.start..run.end];
            rewrite_run(run_ops, &run.machine, spec).filter(|n| n.len() <= run_ops.len())
        });

    // Pass 3 — adoption: the sequential timed fold, scoring each
    // precomputed rewrite from the live checkpoint.
    let mut lower = LowerState::new(&schedule.initial_mapping, spec, model)?;
    let mut scratch: Vec<TimelineEvent> = Vec::new();
    let mut ops: Vec<Operation> = Vec::with_capacity(stream.len());
    let mut replanned_runs = 0usize;
    let mut dropped_hops = 0usize;
    let mut i = 0usize;
    for (run, rewrite) in runs.iter().zip(&rewrites) {
        while i < run.start {
            scratch.clear();
            lower.advance(&stream[i..i + 1], Some(&[]), circuit, spec, &mut scratch)?;
            ops.push(stream[i]);
            i += 1;
        }
        let run_ops = &stream[run.start..run.end];
        let run_rounds = &rounds[run.rounds_start..run.rounds_end];
        if let Some(new_ops) = rewrite {
            // Score both variants from the same checkpoint; the
            // rewrite must strictly win on the clock to be kept.
            let mut orig = lower.clone();
            scratch.clear();
            orig.advance(run_ops, Some(run_rounds), circuit, spec, &mut scratch)?;
            match score_rewrite(&lower, new_ops, circuit, spec) {
                Some(new_state) if beats(&new_state, &orig) => {
                    replanned_runs += 1;
                    dropped_hops += run_ops.len() - new_ops.len();
                    lower = new_state;
                    ops.extend_from_slice(new_ops);
                }
                _ => {
                    lower = orig;
                    ops.extend_from_slice(run_ops);
                }
            }
        } else {
            // No candidate rewrite: the committed fold just advances in
            // place — no checkpoint clone needed.
            scratch.clear();
            lower.advance(run_ops, Some(run_rounds), circuit, spec, &mut scratch)?;
            ops.extend_from_slice(run_ops);
        }
        i = run.end;
    }
    while i < stream.len() {
        scratch.clear();
        lower.advance(&stream[i..i + 1], Some(&[]), circuit, spec, &mut scratch)?;
        ops.push(stream[i]);
        i += 1;
    }
    Ok(LayerPlanned {
        ops,
        replanned_runs,
        dropped_hops,
    })
}

/// Builds the flow-planned rewrite of one run, or `None` when the run has
/// nothing to re-plan. The rewrite is round-major: layer k holds the k-th
/// hop of every commodity still in flight.
fn rewrite_run(
    run_ops: &[Operation],
    machine: &MachineState,
    spec: &MachineSpec,
) -> Option<Vec<Operation>> {
    // Net displacement per ion, in first-touch order.
    let mut ions: Vec<IonId> = Vec::new();
    let mut endpoints: Vec<(TrapId, TrapId)> = Vec::new();
    for op in run_ops {
        let Operation::Shuttle { ion, from, to } = *op else {
            unreachable!("runs contain only shuttles");
        };
        match ions.iter().position(|&i| i == ion) {
            Some(k) => endpoints[k].1 = to,
            None => {
                ions.push(ion);
                endpoints.push((from, to));
            }
        }
    }
    let movers: Vec<(IonId, TrapId, TrapId)> = ions
        .iter()
        .zip(&endpoints)
        .filter(|(_, (a, b))| a != b)
        .map(|(&ion, &(a, b))| (ion, a, b))
        .collect();
    let nil_walks = ions.len() - movers.len();
    // A run worth re-planning has either net-zero walks to drop or at
    // least two commodities to batch.
    if nil_walks == 0 && movers.len() < 2 {
        return None;
    }

    let cap = spec.total_capacity();
    let commodities: Vec<Commodity> = movers
        .iter()
        .map(|&(_, a, b)| Commodity {
            source: a.index(),
            sink: b.index(),
        })
        .collect();
    let cost = |_a: usize, b: usize| {
        HOP_COST
            + if machine.occupancy(TrapId(b as u32)) >= cap {
                FULL_TRAP_COST
            } else {
                0
            }
    };
    let routed = route_commodities(spec.topology().adjacency(), &commodities, cost);

    // Conflicting commodities fall back to the raw shortest path — they
    // simply pack opportunistically instead of deliberately.
    let mut paths: Vec<Vec<TrapId>> = Vec::with_capacity(movers.len());
    for (k, route) in routed.into_iter().enumerate() {
        let path = match route {
            Some(p) => p.into_iter().map(|t| TrapId(t as u32)).collect(),
            None => spec.topology().shortest_path(movers[k].1, movers[k].2)?,
        };
        paths.push(path);
    }

    // Layered, capacity-aware emission: each sweep advances every
    // commodity by at most one hop (the "layer"), and a hop whose
    // destination is currently full simply waits for a later sweep — the
    // order an eviction-shaped run needs (the evicted ion's first hop
    // frees the trap the mover enters). A sweep without progress means
    // the rewrite cannot be serialized legally; the caller keeps the
    // original run.
    let mut replay = machine.clone();
    let mut cursor = vec![0usize; paths.len()];
    let mut new_ops = Vec::new();
    loop {
        let mut progressed = false;
        let mut outstanding = false;
        for (c, path) in paths.iter().enumerate() {
            if cursor[c] + 1 >= path.len() {
                continue;
            }
            outstanding = true;
            let (from, to) = (path[cursor[c]], path[cursor[c] + 1]);
            if replay.shuttle(movers[c].0, to).is_ok() {
                new_ops.push(Operation::Shuttle {
                    ion: movers[c].0,
                    from,
                    to,
                });
                cursor[c] += 1;
                progressed = true;
            }
        }
        if !outstanding {
            break;
        }
        if !progressed {
            return None;
        }
    }
    Some(new_ops)
}

/// Local acceptance test: the rewrite wins when it *dominates* the
/// original on every device clock — no trap later, no ion later, at least
/// one strictly earlier. ASAP lowering is monotone in these vectors, so a
/// dominating state can only shorten (never stretch) whatever follows;
/// comparing the global running makespan alone would miss local wins
/// whose slack pays off rounds later.
fn beats(new: &LowerState, orig: &LowerState) -> bool {
    let le = new
        .trap_clocks()
        .iter()
        .zip(orig.trap_clocks())
        .all(|(a, b)| a <= b)
        && new
            .ion_avail()
            .iter()
            .zip(orig.ion_avail())
            .all(|(a, b)| a <= b);
    let lt = new
        .trap_clocks()
        .iter()
        .zip(orig.trap_clocks())
        .any(|(a, b)| a < b)
        || new
            .ion_avail()
            .iter()
            .zip(orig.ion_avail())
            .any(|(a, b)| a < b);
    le && lt
}

/// Scores the legalized rewrite from the checkpoint: packs it into greedy
/// concurrent rounds (the qccd-route packer, started from the mid-schedule
/// machine state) and advances a clone of the checkpoint through them.
/// `None` means the rewrite does not replay as legal rounds and the caller
/// keeps the original run.
fn score_rewrite(
    checkpoint: &LowerState,
    new_ops: &[Operation],
    circuit: &Circuit,
    spec: &MachineSpec,
) -> Option<LowerState> {
    let packed =
        TransportSchedule::pack_concurrent_from(checkpoint.machine().clone(), new_ops).ok()?;
    let mut state = checkpoint.clone();
    let mut scratch = Vec::new();
    state
        .advance(new_ops, Some(&packed.rounds), circuit, spec, &mut scratch)
        .ok()?;
    Some(state)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_machine::{InitialMapping, MachineSpec};

    fn sh(ion: u32, from: u32, to: u32) -> Operation {
        Operation::Shuttle {
            ion: IonId(ion),
            from: TrapId(from),
            to: TrapId(to),
        }
    }

    #[test]
    fn net_zero_walks_are_dropped() {
        // Ion 2 ping-pongs T0→T1→T0 while ion 5 moves T1→T2: the rewrite
        // keeps only the mover.
        let spec = MachineSpec::linear(3, 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 8).unwrap();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1), sh(5, 1, 2), sh(2, 1, 0)]);
        let transport = TransportSchedule::pack_serial(&schedule);
        let circuit = Circuit::new(8);
        let planned = plan_layers(
            &schedule,
            &transport,
            &circuit,
            &spec,
            &TimingModel::realistic(),
            &WorkerPool::new(1),
        )
        .unwrap();
        assert_eq!(planned.replanned_runs, 1);
        assert_eq!(planned.dropped_hops, 2);
        assert_eq!(planned.ops, vec![sh(5, 1, 2)]);
    }

    #[test]
    fn conflicting_layer_splits_across_disjoint_paths() {
        // Ring of 4: ions at T0 and T2 swap... both 0→2 demands must take
        // opposite arcs, giving two 2-hop edge-disjoint paths that share
        // rounds layer by layer.
        let spec = MachineSpec::new(qccd_machine::TrapTopology::ring(4), 4, 1).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(0), TrapId(2), TrapId(2)])
                .unwrap();
        // Serial compile would route both through the same arc: 0-1-2 twice.
        let schedule = Schedule::new(
            mapping,
            vec![sh(0, 0, 1), sh(1, 0, 3), sh(0, 1, 2), sh(1, 3, 2)],
        );
        let transport = TransportSchedule::pack_serial(&schedule);
        let circuit = Circuit::new(4);
        let planned = plan_layers(
            &schedule,
            &transport,
            &circuit,
            &spec,
            &TimingModel::realistic(),
            &WorkerPool::new(1),
        )
        .unwrap();
        // Both ions still end in T2 and the rewrite (if adopted) stays
        // within the original hop budget.
        let shuttle_count = planned
            .ops
            .iter()
            .filter(|o| matches!(o, Operation::Shuttle { .. }))
            .count();
        assert!(shuttle_count <= 4);
        let packed_schedule = Schedule::new(schedule.initial_mapping.clone(), planned.ops.clone());
        let mut state =
            MachineState::with_mapping(&spec, &packed_schedule.initial_mapping).unwrap();
        for op in &packed_schedule.operations {
            if let Operation::Shuttle { ion, to, .. } = *op {
                state.shuttle(ion, to).unwrap();
            }
        }
        assert_eq!(state.trap_of(IonId(0)), TrapId(2));
        assert_eq!(state.trap_of(IonId(1)), TrapId(2));
    }

    #[test]
    fn illegal_rewrites_fall_back_to_the_original_run() {
        // Tight machine (cap 2, comm 0): the flow-planned direct paths
        // would overfill T1, so the original (eviction-shaped) run must
        // survive verbatim.
        let spec = MachineSpec::linear(3, 2, 0).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(1), TrapId(1), TrapId(2)])
                .unwrap();
        // Ion 1 clears T1, then ion 0 enters: net movement for both.
        let schedule = Schedule::new(mapping, vec![sh(1, 1, 2), sh(0, 0, 1)]);
        let transport = TransportSchedule::pack_serial(&schedule);
        let circuit = Circuit::new(4);
        let planned = plan_layers(
            &schedule,
            &transport,
            &circuit,
            &spec,
            &TimingModel::realistic(),
            &WorkerPool::new(1),
        )
        .unwrap();
        // Whatever the planner chose, the result replays legally and ends
        // with the same mapping.
        let mut state = MachineState::with_mapping(&spec, &schedule.initial_mapping).unwrap();
        for op in &planned.ops {
            if let Operation::Shuttle { ion, to, .. } = *op {
                state.shuttle(ion, to).unwrap();
            }
        }
        assert_eq!(state.trap_of(IonId(0)), TrapId(1));
        assert_eq!(state.trap_of(IonId(1)), TrapId(2));
    }

    #[test]
    fn pool_width_never_changes_the_plan() {
        // Many gate-free runs (shuttles separated by gates) so the
        // planning pass actually shards; every pool width must emit the
        // identical op stream and stats.
        use qccd_circuit::generators::random_circuit;
        use qccd_core::{compile, CompilerConfig, RouterPolicy};

        let spec = MachineSpec::linear(3, 8, 2).unwrap();
        let circuit = random_circuit(12, 80, 7);
        let config = CompilerConfig::optimized()
            .with_router(RouterPolicy::congestion())
            .with_lookahead(true);
        let result = compile(&circuit, &spec, &config).unwrap();
        let model = TimingModel::realistic();
        let base = plan_layers(
            &result.schedule,
            &result.transport,
            &circuit,
            &spec,
            &model,
            &WorkerPool::new(1),
        )
        .unwrap();
        for jobs in [2usize, 4, 8] {
            let wide = plan_layers(
                &result.schedule,
                &result.transport,
                &circuit,
                &spec,
                &model,
                &WorkerPool::new(jobs),
            )
            .unwrap();
            assert_eq!(wide.ops, base.ops, "jobs={jobs}");
            assert_eq!(wide.replanned_runs, base.replanned_runs, "jobs={jobs}");
            assert_eq!(wide.dropped_hops, base.dropped_hops, "jobs={jobs}");
        }
    }
}
