//! Timeline-driven transport packing for compiled QCCD programs.
//!
//! The compiler minimizes shuttle *count*; the hardware pays for shuttle
//! *depth on the device clock*. This crate is the post-compile optimizer
//! that closes that gap: it rewrites a [`CompileResult`] into a
//! provably-equivalent one — same gates in the same traps, same final ion
//! mapping — with a lower *timed makespan*, scored end to end with
//! `qccd-timing`'s ASAP lowering. Two passes:
//!
//! * **Cross-gate packing** ([`cross_gate`]) — hoists shuttle hops across
//!   non-conflicting gates: a hop may overlap a gate executing in an
//!   uninvolved trap, which the in-run packers can never exploit because
//!   their rounds stop at every gate. Trap-disjointness is proved per
//!   crossed gate, per-ion hop order is preserved, and a no-credit
//!   capacity rule keeps the rewritten flat schedule serially valid.
//! * **Batched layer planning** ([`layers`]) — re-plans each gate-free run
//!   as a multi-commodity flow on `qccd-flow`'s shared MCMF network:
//!   every net-displaced ion becomes a commodity, paths come out pairwise
//!   edge-disjoint (so layers share rounds deliberately), net-zero
//!   eviction ping-pongs drop out, and conflicting commodities fall back
//!   to per-commodity routes. Each run's rewrite is accepted only if it
//!   replays legally and strictly beats the original run on the clock,
//!   scored by incremental re-lowering from a [`LowerState`] checkpoint.
//!
//! Every candidate the passes produce is compared against the input under
//! the same [`TimingModel`]; [`pack`] returns the input unchanged whenever
//! no candidate strictly improves the timed makespan, so packing **never
//! regresses** the clock. The winning candidate is replay-validated
//! ([`validate_equivalent`]) and its rounds strict-validated before being
//! handed back — an invalid rewrite is a typed error, never a silent
//! fallback.
//!
//! # Example
//!
//! ```
//! use qccd_circuit::generators::qft;
//! use qccd_core::CompilerConfig;
//! use qccd_machine::MachineSpec;
//! use qccd_pack::compile_packed;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = qft(16);
//! let spec = MachineSpec::linear(3, 8, 2)?;
//! let (packed, stats) = compile_packed(&circuit, &spec, &CompilerConfig::optimized())?;
//! assert!(stats.packed_makespan_us <= stats.input_makespan_us);
//! assert_eq!(packed.timeline.makespan_us, stats.packed_makespan_us);
//! # Ok(())
//! # }
//! ```

mod cross_gate;
mod layers;
mod validate;

use cross_gate::{pack_cross_gate, CrossGatePacked};
use layers::plan_layers;
use qccd_circuit::Circuit;
use qccd_core::{compile, CompileError, CompileResult, CompilerConfig, Objective, RouterPolicy};
use qccd_machine::{IonId, MachineSpec, Schedule};
use qccd_route::{TransportError, TransportSchedule};

/// Rewrite candidates the packer lowered and scored against the input.
static PACK_CANDIDATES: qccd_obs::Counter = qccd_obs::Counter::new("pack.candidates_tried");
/// Candidates that strictly beat the input on the clock and were adopted.
static PACK_ADOPTED: qccd_obs::Counter = qccd_obs::Counter::new("pack.candidates_adopted");
use qccd_timing::{lower, LowerError, Timeline, TimingModel, WorkerPool, SEQUENTIAL_CUTOFF};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

pub use validate::validate_equivalent;

/// Configuration of the packing passes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackConfig {
    /// Timing model every candidate is scored under (and the returned
    /// timeline is lowered with).
    pub model: TimingModel,
    /// Enable cross-gate round packing.
    pub cross_gate: bool,
    /// Enable batched multi-commodity layer planning.
    pub batch_layers: bool,
    /// How many rounds back the cross-gate first-fit scan looks. Bounds
    /// the packer at O(schedule × window); the default comfortably covers
    /// every gap the paper workloads exhibit.
    pub window: usize,
    /// Worker-pool width for candidate lowering and per-run flow
    /// planning (`--jobs`; 1 = sequential). Any width produces
    /// bit-for-bit identical results — candidates shard on fixed index
    /// boundaries and reduce in index order, never completion order.
    #[serde(default = "default_jobs")]
    pub jobs: usize,
}

fn default_jobs() -> usize {
    1
}

impl PackConfig {
    /// Both passes enabled, scored under `model`.
    pub fn for_model(model: TimingModel) -> Self {
        PackConfig {
            model,
            ..Self::default()
        }
    }

    /// Sets the worker-pool width (normalized to at least 1).
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }
}

impl Default for PackConfig {
    /// Both passes, realistic device timing, window 96, sequential.
    fn default() -> Self {
        PackConfig {
            model: TimingModel::realistic(),
            cross_gate: true,
            batch_layers: true,
            window: 96,
            jobs: default_jobs(),
        }
    }
}

/// What packing did, and what it was worth on the device clock.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PackStats {
    /// Transport depth of the input result.
    pub input_depth: usize,
    /// Transport depth after packing (equals input when not improved).
    pub packed_depth: usize,
    /// Input timed makespan under the pack model, µs.
    pub input_makespan_us: f64,
    /// Packed timed makespan under the pack model, µs.
    pub packed_makespan_us: f64,
    /// Hops the winning candidate moved across at least one gate.
    pub hoisted_hops: usize,
    /// Gate-free runs rewritten by the batched layer planner.
    pub replanned_runs: usize,
    /// Shuttle hops eliminated by layer planning (net-zero walks).
    pub dropped_hops: usize,
    /// `true` when a candidate strictly beat the input and was adopted.
    pub improved: bool,
}

/// A packed program: the equivalent rewrite plus its timed lowering.
#[derive(Debug, Clone)]
pub struct Packed {
    /// The rewritten (or, when nothing improved, original) schedule.
    pub schedule: Schedule,
    /// Its transport rounds.
    pub transport: TransportSchedule,
    /// Its timeline under the pack model.
    pub timeline: Timeline,
    /// What happened.
    pub stats: PackStats,
}

/// Packs `result` into an equivalent program with minimal timed makespan
/// under `config.model`.
///
/// Candidates (cross-gate packings of the input and of its layer-planned
/// rewrite, under both join policies) are scored with full timed
/// lowerings; the best strict improvement wins, otherwise the input is
/// returned unchanged (`stats.improved == false`). The winner is fully
/// validated: replay equivalence against the input schedule, strict
/// transport-round validation, and timeline resource validation.
///
/// # Errors
///
/// * [`PackError::Lower`] — a candidate (or the input) failed to lower;
///   the input result was not a valid compile artifact.
/// * [`PackError::InvalidPacked`] / [`PackError::GateSequenceDiverged`] /
///   [`PackError::FinalMappingDiverged`] / [`PackError::Transport`] — the
///   winning candidate failed validation (a packer bug, never silent).
pub fn pack(
    result: &CompileResult,
    circuit: &Circuit,
    spec: &MachineSpec,
    config: &PackConfig,
) -> Result<Packed, PackError> {
    let _phase = qccd_obs::span("pack");
    // When the compile was lowered under the scoring model, its attached
    // timeline *is* the input lowering — skip the redundant O(n) re-lower.
    let input_timeline = if result.timing == config.model {
        result.timeline.clone()
    } else {
        lower(
            &result.schedule,
            Some(&result.transport),
            circuit,
            spec,
            &config.model,
        )?
    };

    // Candidate construction is decoupled from candidate *scoring*: the
    // cheap rewrite passes below assemble `Prepared` programs first, then
    // every timed lowering — the expensive O(n) part — runs on the worker
    // pool in one batch. Timelines come back in candidate-index order
    // (never completion order) and the first lowering error in index
    // order is the one returned, so any `jobs` width is bit-for-bit
    // identical to the sequential pass.
    struct Prepared {
        schedule: Schedule,
        transport: TransportSchedule,
        hoisted_hops: usize,
        replanned_runs: usize,
        dropped_hops: usize,
    }
    struct Candidate {
        schedule: Schedule,
        transport: TransportSchedule,
        timeline: Timeline,
        hoisted_hops: usize,
        replanned_runs: usize,
        dropped_hops: usize,
    }
    let pool = WorkerPool::new(config.jobs);
    let cap = spec.total_capacity();
    let num_traps = spec.num_traps() as usize;
    let mut prepared: Vec<Prepared> = Vec::new();
    let add_cross_gate = |base: &Schedule,
                          replanned_runs: usize,
                          dropped_hops: usize,
                          prepared: &mut Vec<Prepared>| {
        let mut prev: Option<CrossGatePacked> = None;
        for share_only in [true, false] {
            let packed = pack_cross_gate(base, cap, num_traps, config.window, share_only);
            // The share-only and full passes frequently emit the same
            // program; comparing ops+rounds is O(n) while re-lowering and
            // carrying a duplicate candidate costs several O(n) passes.
            // Identical candidates also tie on every selection key, so
            // dropping the copy cannot change which result `best` picks.
            if prev.as_ref() == Some(&packed) {
                continue;
            }
            prev = Some(packed.clone());
            prepared.push(Prepared {
                schedule: Schedule::new(base.initial_mapping.clone(), packed.ops),
                transport: packed.transport,
                hoisted_hops: packed.hoisted_hops,
                replanned_runs,
                dropped_hops,
            });
        }
    };

    // The greedy in-run repack rides along whenever any pass is enabled:
    // the lookahead packer optimizes *depth* and can be marginally slower
    // on the clock (fewer, wider rounds can couple resources), so the
    // packed result must never lose to either in-run packer.
    if config.cross_gate || config.batch_layers {
        if let Ok(greedy) = TransportSchedule::pack_concurrent(&result.schedule, spec) {
            prepared.push(Prepared {
                schedule: result.schedule.clone(),
                transport: greedy,
                hoisted_hops: 0,
                replanned_runs: 0,
                dropped_hops: 0,
            });
        }
    }
    if config.cross_gate {
        add_cross_gate(&result.schedule, 0, 0, &mut prepared);
    }
    if config.batch_layers {
        let planned = plan_layers(
            &result.schedule,
            &result.transport,
            circuit,
            spec,
            &config.model,
            &pool,
        )?;
        if planned.replanned_runs > 0 {
            let schedule = Schedule::new(result.schedule.initial_mapping.clone(), planned.ops);
            if config.cross_gate {
                add_cross_gate(
                    &schedule,
                    planned.replanned_runs,
                    planned.dropped_hops,
                    &mut prepared,
                );
            } else {
                let transport = TransportSchedule::pack_concurrent(&schedule, spec)
                    .map_err(PackError::Transport)?;
                prepared.push(Prepared {
                    schedule,
                    transport,
                    hoisted_hops: 0,
                    replanned_runs: planned.replanned_runs,
                    dropped_hops: planned.dropped_hops,
                });
            }
        }
    }

    PACK_CANDIDATES.add(prepared.len() as u64);
    let timelines = pool.map_indexed(prepared.len(), SEQUENTIAL_CUTOFF, |i| {
        let c = &prepared[i];
        lower(
            &c.schedule,
            Some(&c.transport),
            circuit,
            spec,
            &config.model,
        )
    });
    let mut candidates: Vec<Candidate> = Vec::with_capacity(prepared.len());
    for (c, timeline) in prepared.into_iter().zip(timelines) {
        candidates.push(Candidate {
            schedule: c.schedule,
            transport: c.transport,
            timeline: timeline?,
            hoisted_hops: c.hoisted_hops,
            replanned_runs: c.replanned_runs,
            dropped_hops: c.dropped_hops,
        });
    }
    let best = candidates
        .into_iter()
        .min_by(|a, b| {
            a.timeline
                .makespan_us
                .partial_cmp(&b.timeline.makespan_us)
                .expect("lowered makespans are finite")
        })
        .filter(|c| c.timeline.makespan_us < input_timeline.makespan_us);

    match best {
        Some(c) => {
            PACK_ADOPTED.incr();
            validate_equivalent(&result.schedule, &c.schedule, circuit, spec)?;
            c.transport
                .validate(&c.schedule, spec)
                .map_err(PackError::Transport)?;
            c.timeline
                .validate()
                .map_err(|e| PackError::InvalidPacked(e.to_string()))?;
            let stats = PackStats {
                input_depth: result.transport.depth(),
                packed_depth: c.transport.depth(),
                input_makespan_us: input_timeline.makespan_us,
                packed_makespan_us: c.timeline.makespan_us,
                hoisted_hops: c.hoisted_hops,
                replanned_runs: c.replanned_runs,
                dropped_hops: c.dropped_hops,
                improved: true,
            };
            Ok(Packed {
                schedule: c.schedule,
                transport: c.transport,
                timeline: c.timeline,
                stats,
            })
        }
        None => {
            let stats = PackStats {
                input_depth: result.transport.depth(),
                packed_depth: result.transport.depth(),
                input_makespan_us: input_timeline.makespan_us,
                packed_makespan_us: input_timeline.makespan_us,
                improved: false,
                ..PackStats::default()
            };
            Ok(Packed {
                schedule: result.schedule.clone(),
                transport: result.transport.clone(),
                timeline: input_timeline,
                stats,
            })
        }
    }
}

/// Compiles `circuit` with the packed transport stack: the congestion
/// router with lookahead packing, followed by [`pack`] under the
/// compiler's configured timing model (`--router packed` in the CLI).
///
/// A serial `config.router` is upgraded to the congestion router — the
/// packed stack builds on concurrent transport; every other field of
/// `config` is honoured as-is. The returned result carries the packed
/// schedule, transport and timeline (via
/// [`CompileResult::with_transport`]) whenever packing improved the timed
/// makespan, and the plain lookahead result otherwise.
///
/// # Errors
///
/// [`PackCompileError::Compile`] from the compiler, or
/// [`PackCompileError::Pack`] from the packer's validators.
pub fn compile_packed(
    circuit: &Circuit,
    spec: &MachineSpec,
    config: &CompilerConfig,
) -> Result<(CompileResult, PackStats), PackCompileError> {
    let router = if config.router.is_congestion() {
        config.router
    } else {
        RouterPolicy::congestion()
    };
    let config = config.with_router(router).with_lookahead(true);
    let result = compile(circuit, spec, &config).map_err(PackCompileError::Compile)?;
    let packed = pack(
        &result,
        circuit,
        spec,
        &PackConfig::for_model(config.timing).with_jobs(config.jobs),
    )
    .map_err(PackCompileError::Pack)?;
    let stats = packed.stats;
    let result = if stats.improved {
        result.with_transport(packed.schedule, packed.transport, packed.timeline)
    } else {
        result
    };
    Ok((result, stats))
}

/// What the clock-objective pipeline did, and what it was worth.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ClockStats {
    /// Timed makespan of the default-objective packed stack (the bar the
    /// clock objective has to beat), µs.
    pub packed_makespan_us: f64,
    /// Timed makespan of the clock-objective candidate after the same
    /// packing passes, µs.
    pub clock_makespan_us: f64,
    /// Timed makespan of the chosen result
    /// (`min(packed, clock)` — the pipeline never regresses), µs.
    pub chosen_makespan_us: f64,
    /// Open decisions the clock compile re-arbitrated on projected
    /// makespan (direction-score ties + re-balancing destination ties).
    pub clock_ties: usize,
    /// Gate-free layers the clock compile planned as batched
    /// multi-commodity flows.
    pub batched_layers: usize,
    /// Shuttle hops emitted by those batched layers.
    pub batched_hops: usize,
    /// `true` when the clock candidate strictly beat the packed stack on
    /// the timed makespan and was adopted.
    pub improved: bool,
}

/// Compiles `circuit` with the **clock objective** end to end: the
/// timed compile loop (incremental [`LowerState`](qccd_timing::LowerState)
/// scoring of direction ties, re-balancing destination ties, and batched
/// multi-commodity layers — `qccd-core`'s [`Objective::Clock`]) on the
/// packed transport stack, raced against the default-objective packed
/// stack ([`compile_packed`]) under the same timing model. The result
/// with the lower timed makespan wins; on a dead heat the
/// default-objective result is kept, so the pipeline provably **never
/// regresses** the packed stack (`--objective clock` in the CLI).
///
/// Both candidates are fully validated by their own pipelines (replay
/// equivalence, strict transport rounds, timeline resources).
///
/// # Errors
///
/// As [`compile_packed`], for either candidate — a clock-objective
/// compile or validation failure is a typed error, never a silent
/// fallback.
///
/// With `config.jobs >= 2` the two arms compile concurrently (the
/// default-objective base on a scoped worker, the clock candidate on the
/// caller's thread). Each arm is an independent deterministic compile and
/// the race compares their finished results, so any `jobs` width returns
/// bit-for-bit the same result and stats as `jobs = 1`; on error the
/// base arm's error wins, matching the sequential order.
pub fn compile_clock(
    circuit: &Circuit,
    spec: &MachineSpec,
    config: &CompilerConfig,
) -> Result<(CompileResult, ClockStats), PackCompileError> {
    if config.jobs >= 2 {
        let base_config = config.with_objective(Objective::Shuttles);
        let clock_config = config.with_objective(Objective::Clock);
        let (base, cand) = std::thread::scope(|scope| {
            let base_arm = scope.spawn(|| compile_packed(circuit, spec, &base_config));
            let cand = compile_packed(circuit, spec, &clock_config);
            let base = match base_arm.join() {
                Ok(r) => r,
                Err(panic) => std::panic::resume_unwind(panic),
            };
            (base, cand)
        });
        let (base, _) = base?;
        let (cand, _) = cand?;
        Ok(crown(base, cand))
    } else {
        let (base, _) = compile_packed(circuit, spec, &config.with_objective(Objective::Shuttles))?;
        race_clock(base, circuit, spec, config)
    }
}

/// [`compile_clock`] with the default-objective packed `base` supplied by
/// the caller — for harnesses that already compiled the packed stack
/// under the same `config`/timing model and should not pay for it twice.
/// Only the clock-objective candidate is compiled here; the race and the
/// never-regress guarantee are identical.
///
/// # Errors
///
/// As [`compile_packed`], for the clock candidate.
pub fn race_clock(
    base: CompileResult,
    circuit: &Circuit,
    spec: &MachineSpec,
    config: &CompilerConfig,
) -> Result<(CompileResult, ClockStats), PackCompileError> {
    let (cand, _) = compile_packed(circuit, spec, &config.with_objective(Objective::Clock))?;
    Ok(crown(base, cand))
}

/// The race decision shared by [`compile_clock`]'s sequential and
/// concurrent arms: the lower timed makespan wins, the base keeps dead
/// heats (never-regress).
fn crown(base: CompileResult, cand: CompileResult) -> (CompileResult, ClockStats) {
    let (packed_makespan_us, clock_makespan_us) =
        (base.timeline.makespan_us, cand.timeline.makespan_us);
    let improved = clock_makespan_us < packed_makespan_us;
    let stats = ClockStats {
        packed_makespan_us,
        clock_makespan_us,
        chosen_makespan_us: if improved {
            clock_makespan_us
        } else {
            packed_makespan_us
        },
        clock_ties: cand.stats.clock_ties,
        batched_layers: cand.stats.batched_layers,
        batched_hops: cand.stats.batched_hops,
        improved,
    };
    (if improved { cand } else { base }, stats)
}

/// A violated packing invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum PackError {
    /// A candidate failed to lower onto the device clock.
    Lower(LowerError),
    /// The packed transport rounds failed strict validation.
    Transport(TransportError),
    /// The packed schedule failed replay validation (message form of the
    /// underlying machine/schedule error).
    InvalidPacked(String),
    /// The packed program runs a different gate sequence.
    GateSequenceDiverged {
        /// Index of the first diverging gate.
        index: usize,
    },
    /// The packed program leaves an ion in a different trap.
    FinalMappingDiverged {
        /// The diverged ion.
        ion: IonId,
    },
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::Lower(e) => write!(f, "candidate failed to lower: {e}"),
            PackError::Transport(e) => write!(f, "packed rounds invalid: {e}"),
            PackError::InvalidPacked(msg) => write!(f, "packed schedule invalid: {msg}"),
            PackError::GateSequenceDiverged { index } => {
                write!(f, "packed gate sequence diverges at gate {index}")
            }
            PackError::FinalMappingDiverged { ion } => {
                write!(f, "packed replay leaves {ion} in a different trap")
            }
        }
    }
}

impl Error for PackError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PackError::Lower(e) => Some(e),
            PackError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LowerError> for PackError {
    fn from(e: LowerError) -> Self {
        PackError::Lower(e)
    }
}

/// Compile-then-pack error.
#[derive(Debug, Clone, PartialEq)]
pub enum PackCompileError {
    /// Compilation failed.
    Compile(CompileError),
    /// Packing (validation) failed.
    Pack(PackError),
}

impl fmt::Display for PackCompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackCompileError::Compile(e) => write!(f, "{e}"),
            PackCompileError::Pack(e) => write!(f, "{e}"),
        }
    }
}

impl Error for PackCompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PackCompileError::Compile(e) => Some(e),
            PackCompileError::Pack(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::generators::{qaoa, random_circuit};
    use qccd_core::compile;

    fn packed_config() -> CompilerConfig {
        CompilerConfig::optimized()
            .with_router(RouterPolicy::congestion())
            .with_lookahead(true)
    }

    #[test]
    fn pack_never_regresses_the_timed_makespan() {
        let spec = MachineSpec::linear(3, 8, 2).unwrap();
        for seed in [1u64, 7, 23] {
            let circuit = random_circuit(12, 80, seed);
            let result = compile(&circuit, &spec, &packed_config()).unwrap();
            let packed = pack(&result, &circuit, &spec, &PackConfig::default()).unwrap();
            assert!(
                packed.stats.packed_makespan_us <= packed.stats.input_makespan_us,
                "seed {seed}: packed {} > input {}",
                packed.stats.packed_makespan_us,
                packed.stats.input_makespan_us
            );
            assert_eq!(packed.timeline.makespan_us, packed.stats.packed_makespan_us);
        }
    }

    #[test]
    fn packed_program_is_equivalent_and_strictly_valid() {
        let spec = MachineSpec::linear(3, 8, 2).unwrap();
        let circuit = qaoa(14, 4, 3);
        let result = compile(&circuit, &spec, &packed_config()).unwrap();
        let packed = pack(&result, &circuit, &spec, &PackConfig::default()).unwrap();
        validate_equivalent(&result.schedule, &packed.schedule, &circuit, &spec).unwrap();
        packed.transport.validate(&packed.schedule, &spec).unwrap();
        packed.timeline.validate().unwrap();
        assert_eq!(packed.schedule.stats().gates, result.schedule.stats().gates);
        assert!(packed.schedule.stats().shuttles <= result.schedule.stats().shuttles);
    }

    #[test]
    fn compile_packed_upgrades_serial_router_and_reports_stats() {
        let spec = MachineSpec::linear(3, 8, 2).unwrap();
        let circuit = qaoa(16, 4, 5);
        let (result, stats) =
            compile_packed(&circuit, &spec, &CompilerConfig::optimized()).unwrap();
        assert_eq!(result.stats.transport_depth, result.transport.depth());
        assert!(stats.packed_makespan_us <= stats.input_makespan_us);
        if stats.improved {
            assert!(stats.packed_makespan_us < stats.input_makespan_us);
        }
        // The result's own timeline matches the packed lowering model
        // (the compiler config's timing — ideal here) only when packing
        // did not improve; when it did, the timeline is the packed one.
        result
            .transport
            .validate_relaxed(&result.schedule, &spec)
            .unwrap();
    }

    #[test]
    fn compile_clock_never_regresses_the_packed_stack() {
        let spec = MachineSpec::linear(3, 8, 2).unwrap();
        for seed in [2u64, 11, 29] {
            let circuit = random_circuit(14, 90, seed);
            let config = CompilerConfig::optimized().with_timing(TimingModel::realistic());
            let (result, stats) = compile_clock(&circuit, &spec, &config).unwrap();
            assert!(
                stats.chosen_makespan_us <= stats.packed_makespan_us,
                "seed {seed}: chosen {} > packed {}",
                stats.chosen_makespan_us,
                stats.packed_makespan_us
            );
            assert_eq!(result.timeline.makespan_us, stats.chosen_makespan_us);
            assert_eq!(
                stats.improved,
                stats.clock_makespan_us < stats.packed_makespan_us
            );
            // Whichever candidate won, it carries a fully validated
            // transport (relaxed: lookahead may reorder within runs).
            result
                .transport
                .validate_relaxed(&result.schedule, &spec)
                .unwrap();
            result.timeline.validate().unwrap();
        }
    }

    #[test]
    fn jobs_width_never_changes_the_clock_result() {
        let spec = MachineSpec::linear(3, 8, 2).unwrap();
        let circuit = random_circuit(14, 90, 11);
        let config = CompilerConfig::optimized().with_timing(TimingModel::realistic());
        let (base_result, base_stats) = compile_clock(&circuit, &spec, &config).unwrap();
        for jobs in [2usize, 4] {
            let (result, stats) = compile_clock(&circuit, &spec, &config.with_jobs(jobs)).unwrap();
            assert_eq!(stats, base_stats, "jobs={jobs}");
            assert_eq!(result.schedule, base_result.schedule, "jobs={jobs}");
            assert_eq!(result.transport, base_result.transport, "jobs={jobs}");
            assert_eq!(
                result.timeline.makespan_us.to_bits(),
                base_result.timeline.makespan_us.to_bits(),
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn disabled_passes_return_the_input() {
        let spec = MachineSpec::linear(3, 8, 2).unwrap();
        let circuit = random_circuit(12, 60, 5);
        let result = compile(&circuit, &spec, &packed_config()).unwrap();
        let config = PackConfig {
            cross_gate: false,
            batch_layers: false,
            ..PackConfig::default()
        };
        let packed = pack(&result, &circuit, &spec, &config).unwrap();
        assert!(!packed.stats.improved);
        assert_eq!(packed.schedule, result.schedule);
        assert_eq!(packed.transport, result.transport);
    }
}
