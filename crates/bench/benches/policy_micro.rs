//! Micro-benchmarks of the individual compiler policies: the per-decision
//! costs whose containment the paper argues in §III-A4, §III-B1 and
//! §III-C3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qccd_circuit::generators::random_circuit;
use qccd_core::{compile, initial_mapping, CompilerConfig, DirectionPolicy, MappingPolicy};
use qccd_machine::MachineSpec;
use qccd_sim::{simulate, SimParams};
use std::hint::black_box;

fn bench_initial_mapping(c: &mut Criterion) {
    let spec = MachineSpec::paper_l6();
    let mut group = c.benchmark_group("initial_mapping");
    for qubits in [32u32, 64, 78] {
        let circuit = random_circuit(qubits, 1000, 1);
        group.bench_with_input(
            BenchmarkId::new("greedy", qubits),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    initial_mapping(black_box(circuit), &spec, MappingPolicy::GreedyInteraction)
                        .expect("fits")
                })
            },
        );
    }
    group.finish();
}

fn bench_direction_policies(c: &mut Criterion) {
    // Whole-compile cost under each direction policy isolates the policy's
    // per-decision overhead (everything else held constant).
    let spec = MachineSpec::paper_l6();
    let circuit = random_circuit(64, 1438, 5);
    let mut group = c.benchmark_group("direction_policy");
    group.sample_size(10);
    for (label, direction) in [
        ("excess_capacity", DirectionPolicy::ExcessCapacity),
        ("future_ops_p6", DirectionPolicy::FutureOps { proximity: 6 }),
        (
            "future_ops_p24",
            DirectionPolicy::FutureOps { proximity: 24 },
        ),
        (
            "gate_distance_p6",
            DirectionPolicy::FutureOpsGateDistance { proximity: 6 },
        ),
    ] {
        let mut config = CompilerConfig::baseline();
        config.direction = direction;
        group.bench_function(label, |b| {
            b.iter(|| compile(black_box(&circuit), &spec, &config).expect("compiles"))
        });
    }
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let spec = MachineSpec::paper_l6();
    let circuit = random_circuit(64, 1438, 5);
    let compiled = compile(&circuit, &spec, &CompilerConfig::optimized()).expect("compiles");
    let params = SimParams::default();
    c.bench_function("simulate_random_1438", |b| {
        b.iter(|| {
            simulate(black_box(&compiled.schedule), &circuit, &spec, &params)
                .expect("valid schedule")
        })
    });
}

criterion_group!(
    benches,
    bench_initial_mapping,
    bench_direction_policies,
    bench_simulation
);
criterion_main!(benches);
