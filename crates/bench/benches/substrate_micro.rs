//! Micro-benchmarks of the substrates: DAG construction, flow routing,
//! schedule validation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qccd_circuit::generators::{qft, random_circuit};
use qccd_core::{compile, CompilerConfig};
use qccd_flow::{min_cost_max_flow, Adjacency, FlowNetwork};
use qccd_machine::MachineSpec;
use std::hint::black_box;

fn bench_dag_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("dag_build");
    for gates in [1000usize, 4000] {
        let circuit = random_circuit(64, gates, 2);
        group.bench_with_input(BenchmarkId::new("random", gates), &circuit, |b, circuit| {
            b.iter(|| black_box(circuit).dependency_dag())
        });
    }
    let qft_circuit = qft(64);
    group.bench_function("qft64", |b| {
        b.iter(|| black_box(&qft_circuit).dependency_dag())
    });
    group.finish();
}

fn bench_flow(c: &mut Criterion) {
    c.bench_function("mcmf_line_16", |b| {
        b.iter(|| {
            let n = 16usize;
            let mut net = FlowNetwork::new(n + 1);
            for i in 0..n - 1 {
                net.add_edge(i, i + 1, 2, 1);
                net.add_edge(i + 1, i, 2, 1);
            }
            net.add_edge(n, 12, 1, 0);
            min_cost_max_flow(black_box(&mut net), n, 0)
        })
    });
    let line = Adjacency::line(64);
    c.bench_function("bfs_line_64", |b| {
        b.iter(|| black_box(&line).shortest_path(0, 63))
    });
}

fn bench_schedule_validation(c: &mut Criterion) {
    let spec = MachineSpec::paper_l6();
    let circuit = random_circuit(64, 1438, 5);
    let compiled = compile(&circuit, &spec, &CompilerConfig::optimized()).expect("compiles");
    c.bench_function("validate_random_1438", |b| {
        b.iter(|| {
            black_box(&compiled.schedule)
                .validate(&circuit, &spec)
                .expect("valid")
        })
    });
}

criterion_group!(
    benches,
    bench_dag_build,
    bench_flow,
    bench_schedule_validation
);
criterion_main!(benches);
