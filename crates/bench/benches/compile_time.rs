//! Table III bench: compilation time for every paper benchmark under both
//! compiler configurations.
//!
//! The paper reports seconds on an i7-9700K for the Python QCCDSim stack;
//! absolute numbers differ (Rust is orders of magnitude faster), but the
//! *shape* — optimized costs a small constant factor over baseline, both
//! scale tractably to 3000-4000-gate circuits — is what this bench
//! regenerates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qccd_circuit::generators::{paper_suite, random_circuit};
use qccd_core::{compile, CompilerConfig};
use qccd_machine::MachineSpec;
use std::hint::black_box;

fn bench_paper_suite(c: &mut Criterion) {
    let spec = MachineSpec::paper_l6();
    let mut group = c.benchmark_group("compile_time");
    group.sample_size(10);
    for bench in paper_suite() {
        for (label, config) in [
            ("baseline", CompilerConfig::baseline()),
            ("optimized", CompilerConfig::optimized()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, &bench.name),
                &bench.circuit,
                |b, circuit| {
                    b.iter(|| compile(black_box(circuit), &spec, &config).expect("compiles"))
                },
            );
        }
    }
    group.finish();
}

fn bench_random_scaling(c: &mut Criterion) {
    // Compile-time scaling with circuit size (the §III-A4/§III-B1/§III-C3
    // "complexity is contained" claims).
    let spec = MachineSpec::paper_l6();
    let mut group = c.benchmark_group("compile_scaling");
    group.sample_size(10);
    for gates in [500usize, 1000, 2000, 4000] {
        let circuit = random_circuit(64, gates, 7);
        group.bench_with_input(
            BenchmarkId::new("optimized", gates),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    compile(black_box(circuit), &spec, &CompilerConfig::optimized())
                        .expect("compiles")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_paper_suite, bench_random_scaling);
criterion_main!(benches);
