//! The `paper_eval profile` snapshot: the paper suite's quality rows
//! (the same values `muzzle eval --suite paper --timing realistic
//! --format json` reports) plus a per-benchmark instrumentation profile
//! recorded by `qccd-obs` — phase wall-time breakdowns, hot-path
//! counters, and the delta-scorer hit rate.
//!
//! Instrumentation observes, never decides: every benchmark is compiled
//! twice, once with the recorder off and once with it on, and every
//! quality figure of the two runs is asserted equal before the snapshot
//! is written. A divergence is a bug in the instrumentation and panics
//! rather than silently snapshotting tainted rows.

use crate::json::Json;
use crate::{compare_timed, ComparisonRow};
use qccd_circuit::generators::paper_suite;
use qccd_circuit::parser::parse_program;
use qccd_core::{compile_with_mapping, CompilerConfig};
use qccd_machine::{InitialMapping, MachineSpec, TrapId};
use qccd_sim::SimParams;
use qccd_timing::TimingModel;

/// One benchmark's quality row plus its recorded instrumentation.
pub struct BenchmarkProfile {
    /// The quality row (recorded while instrumented; asserted equal to
    /// the uninstrumented reference run).
    pub row: ComparisonRow,
    /// Per-phase wall-time breakdown, hottest self-time first.
    pub phases: Vec<qccd_obs::PhaseStat>,
    /// Every hot-path counter touched during the run, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Value-distribution histograms recorded during the run, sorted by
    /// name (e.g. candidate scores per clock round).
    pub histograms: Vec<qccd_obs::HistogramSnapshot>,
    /// `timing.delta_hits / (delta_hits + clone_fallbacks)` — the share
    /// of speculative candidates priced by the O(delta) path. Shuttle-only
    /// candidate walks keep this at exactly 1.
    pub delta_hit_rate: f64,
    /// Wall time between the first and last recorded span, µs.
    pub wall_us: f64,
}

/// Quality fields of `row` that must be invariant under instrumentation —
/// everything the eval report derives except wall-clock compile seconds.
fn quality_key(row: &ComparisonRow) -> Vec<(&'static str, f64)> {
    vec![
        ("baseline_shuttles", row.baseline_shuttles as f64),
        ("optimized_shuttles", row.optimized_shuttles as f64),
        ("congestion_shuttles", row.congestion_shuttles as f64),
        ("transport_depth", row.transport_depth as f64),
        ("packed_shuttles", row.packed_shuttles as f64),
        ("packed_depth", row.packed_depth as f64),
        (
            "lookahead_timed_makespan_us",
            row.lookahead_timed_makespan_us,
        ),
        ("packed_timed_makespan_us", row.packed_timed_makespan_us),
        ("clock_timed_makespan_us", row.clock_timed_makespan_us),
        ("clock_ties", row.clock_stats.clock_ties as f64),
        ("batched_layers", row.clock_stats.batched_layers as f64),
        ("batched_hops", row.clock_stats.batched_hops as f64),
        (
            "clock_improved",
            if row.clock_stats.improved { 1.0 } else { 0.0 },
        ),
        ("baseline_fidelity", row.baseline_sim.program_fidelity),
        ("optimized_fidelity", row.optimized_sim.program_fidelity),
        ("transport_fidelity", row.transport_sim.program_fidelity),
        ("packed_fidelity", row.packed_sim.program_fidelity),
        ("clock_fidelity", row.clock_sim.program_fidelity),
        ("baseline_makespan_us", row.baseline_sim.makespan_us),
        ("optimized_makespan_us", row.optimized_sim.makespan_us),
        (
            "serial_timed_makespan_us",
            row.optimized_sim.timed_makespan_us,
        ),
        (
            "congestion_timed_makespan_us",
            row.transport_sim.timed_makespan_us,
        ),
        ("zone_moves", row.transport_sim.zone_moves as f64),
        (
            "junction_crossings",
            row.transport_sim.junction_crossings as f64,
        ),
    ]
}

/// Runs the full paper suite twice per benchmark — an uninstrumented
/// reference pass and an instrumented pass — asserting quality parity,
/// and returns the instrumented rows with their recorded profiles.
///
/// # Panics
///
/// Panics if instrumentation changed any quality figure (the
/// observes-never-decides contract), or if any speculative candidate fell
/// back to the clone oracle (`timing.clone_fallbacks`) — candidate walks
/// are shuttle-only, so the delta scorer must serve 100% of them.
pub fn profile_paper_suite(
    spec: &MachineSpec,
    params: &SimParams,
    model: &TimingModel,
) -> Vec<BenchmarkProfile> {
    paper_suite()
        .iter()
        .map(|bench| {
            qccd_obs::info("profile", || format!("  {} (reference)", bench.name));
            let reference = compare_timed(bench, spec, params, model);

            qccd_obs::info("profile", || format!("  {} (instrumented)", bench.name));
            qccd_obs::reset();
            qccd_obs::enable();
            let row = compare_timed(bench, spec, params, model);
            qccd_obs::disable();
            let phases = qccd_obs::phase_stats();
            let counters = qccd_obs::counters();
            let histograms = qccd_obs::histograms();
            let wall_us = qccd_obs::wall_us();

            for ((name, reference), (_, instrumented)) in
                quality_key(&reference).iter().zip(quality_key(&row).iter())
            {
                assert!(
                    reference == instrumented,
                    "{}: instrumentation changed {name}: {reference} vs {instrumented}",
                    bench.name,
                );
            }
            let hits = qccd_obs::counter_value("timing.delta_hits");
            let fallbacks = qccd_obs::counter_value("timing.clone_fallbacks");
            assert!(
                fallbacks == 0,
                "{}: {fallbacks} candidates fell back to the clone oracle \
                 (candidate walks are shuttle-only)",
                bench.name,
            );
            let delta_hit_rate = if hits + fallbacks == 0 {
                1.0
            } else {
                hits as f64 / (hits + fallbacks) as f64
            };
            BenchmarkProfile {
                row,
                phases,
                counters,
                histograms,
                delta_hit_rate,
                wall_us,
            }
        })
        .collect()
}

/// The Fig. 4 worked example's shuttle counts under both policies —
/// replicated from the `muzzle eval` preamble so the snapshot carries the
/// same header rows.
fn fig4_worked_example() -> (usize, usize) {
    let circuit = parse_program(
        "MS q[1], q[2];\nMS q[2], q[3];\nMS q[1], q[2];\nMS q[2], q[4];",
        5,
    )
    .expect("the Fig. 4 program parses");
    let spec = MachineSpec::linear(2, 4, 1).expect("the Fig. 4 machine builds");
    let mapping = InitialMapping::from_traps(
        &spec,
        vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1), TrapId(1)],
    )
    .expect("the Fig. 4 mapping fits");
    let baseline = compile_with_mapping(
        &circuit,
        &spec,
        &CompilerConfig::baseline(),
        mapping.clone(),
    )
    .expect("the Fig. 4 program compiles");
    let optimized = compile_with_mapping(&circuit, &spec, &CompilerConfig::optimized(), mapping)
        .expect("the Fig. 4 program compiles");
    (baseline.stats.shuttles, optimized.stats.shuttles)
}

fn sim_json(fidelity: f64, makespan_us: f64, compile_s: f64) -> Json {
    Json::obj(vec![
        ("program_fidelity", Json::Num(fidelity)),
        ("makespan_us", Json::Num(makespan_us)),
        ("compile_seconds", Json::Num(compile_s)),
    ])
}

fn profile_json(p: &BenchmarkProfile) -> Json {
    Json::obj(vec![
        (
            "phases",
            Json::Arr(
                p.phases
                    .iter()
                    .map(|ph| {
                        Json::obj(vec![
                            ("name", Json::str(ph.name.as_str())),
                            ("count", Json::int(ph.count)),
                            ("total_us", Json::Num(ph.total_us)),
                            ("self_us", Json::Num(ph.self_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "counters",
            Json::Obj(
                p.counters
                    .iter()
                    .map(|(name, value)| (name.clone(), Json::int(*value as usize)))
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::Arr(
                p.histograms
                    .iter()
                    .map(|h| {
                        Json::obj(vec![
                            ("name", Json::str(h.name.as_str())),
                            ("count", Json::int(h.count as usize)),
                            ("mean", Json::Num(h.mean())),
                            ("p50", Json::int(h.p50() as usize)),
                            ("p99", Json::int(h.p99() as usize)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("delta_hit_rate", Json::Num(p.delta_hit_rate)),
        ("wall_us", Json::Num(p.wall_us)),
    ])
}

/// Renders the `BENCH_pr7.json` snapshot: the `muzzle eval --suite paper
/// --format json` report's exact structure and key order, with one extra
/// trailing `"profile"` object per benchmark. (`muzzle eval`'s extra
/// `"utilization"` object is intentionally omitted: snapshots pin the
/// quality trajectory, and utilization is derived, not decided.)
pub fn render_snapshot(
    machine: &MachineSpec,
    timing: &str,
    profiles: &[BenchmarkProfile],
) -> String {
    render_snapshot_with(machine, timing, profiles, &[])
}

/// [`render_snapshot`] plus one trailing `"explain"` value per benchmark
/// (`explains[i]` rides after `"profile"` in benchmark *i*). An empty
/// slice reproduces the PR 7 document byte for byte — `paper_eval diff`
/// then sees the explain subtree as purely additive.
pub fn render_snapshot_with(
    machine: &MachineSpec,
    timing: &str,
    profiles: &[BenchmarkProfile],
    explains: &[Json],
) -> String {
    render_snapshot_full(machine, timing, profiles, explains, &[])
}

/// [`render_snapshot_with`] plus one trailing `"fidelity"` value per
/// benchmark (`fidelities[i]` rides after `"explain"` in benchmark *i*).
/// An empty slice reproduces the PR 8 document byte for byte — each
/// snapshot generation stays purely additive over its predecessor.
pub fn render_snapshot_full(
    machine: &MachineSpec,
    timing: &str,
    profiles: &[BenchmarkProfile],
    explains: &[Json],
    fidelities: &[Json],
) -> String {
    render_snapshot_jobs(machine, timing, profiles, explains, fidelities, &[], None)
}

/// [`render_snapshot_full`] plus one trailing `"jobs"` value per benchmark
/// (`jobs[i]` rides after `"fidelity"` in benchmark *i* — wall-clock
/// `compile_seconds_jobs*` figures, informational by key prefix) and an
/// optional top-level `"all_jobs_deterministic"` flag (an `all_` key, so a
/// `true` → `false` flip gates as a regression). Empty slice + `None`
/// reproduce the PR 9 document byte for byte.
pub fn render_snapshot_jobs(
    machine: &MachineSpec,
    timing: &str,
    profiles: &[BenchmarkProfile],
    explains: &[Json],
    fidelities: &[Json],
    jobs: &[Json],
    all_jobs_deterministic: Option<bool>,
) -> String {
    assert!(
        jobs.is_empty() || jobs.len() == profiles.len(),
        "one jobs value per benchmark, or none"
    );
    assert!(
        explains.is_empty() || explains.len() == profiles.len(),
        "one explain value per benchmark, or none"
    );
    assert!(
        fidelities.is_empty() || fidelities.len() == profiles.len(),
        "one fidelity value per benchmark, or none"
    );
    let rows: Vec<&ComparisonRow> = profiles.iter().map(|p| &p.row).collect();
    let (fig4_baseline, fig4_optimized) = fig4_worked_example();
    let benchmarks = profiles
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let r = &p.row;
            let mut fields = vec![
                ("name", Json::str(&r.name)),
                ("qubits", Json::int(r.qubits as usize)),
                ("two_qubit_gates", Json::int(r.two_qubit_gates)),
                ("baseline_shuttles", Json::int(r.baseline_shuttles)),
                ("optimized_shuttles", Json::int(r.optimized_shuttles)),
                ("delta", Json::Num(r.delta() as f64)),
                ("delta_percent", Json::Num(r.delta_percent())),
                ("fidelity_improvement", Json::Num(r.fidelity_improvement())),
                (
                    "baseline",
                    sim_json(
                        r.baseline_sim.program_fidelity,
                        r.baseline_sim.makespan_us,
                        r.baseline_compile_s,
                    ),
                ),
                (
                    "optimized",
                    sim_json(
                        r.optimized_sim.program_fidelity,
                        r.optimized_sim.makespan_us,
                        r.optimized_compile_s,
                    ),
                ),
                (
                    "congestion_router",
                    Json::obj(vec![
                        ("shuttles", Json::int(r.congestion_shuttles)),
                        ("transport_depth", Json::int(r.transport_depth)),
                        ("depth_delta", Json::Num(r.depth_delta() as f64)),
                        ("makespan_us", Json::Num(r.transport_sim.makespan_us)),
                        (
                            "program_fidelity",
                            Json::Num(r.transport_sim.program_fidelity),
                        ),
                    ]),
                ),
                (
                    "timed",
                    Json::obj(vec![
                        (
                            "serial_makespan_us",
                            Json::Num(r.optimized_sim.timed_makespan_us),
                        ),
                        (
                            "congestion_makespan_us",
                            Json::Num(r.transport_sim.timed_makespan_us),
                        ),
                        ("zone_moves", Json::int(r.transport_sim.zone_moves)),
                        (
                            "junction_crossings",
                            Json::int(r.transport_sim.junction_crossings),
                        ),
                    ]),
                ),
                (
                    "packed",
                    Json::obj(vec![
                        ("shuttles", Json::int(r.packed_shuttles)),
                        ("transport_depth", Json::int(r.packed_depth)),
                        (
                            "lookahead_timed_makespan_us",
                            Json::Num(r.lookahead_timed_makespan_us),
                        ),
                        (
                            "packed_timed_makespan_us",
                            Json::Num(r.packed_timed_makespan_us),
                        ),
                        ("program_fidelity", Json::Num(r.packed_sim.program_fidelity)),
                    ]),
                ),
                (
                    "clock",
                    Json::obj(vec![
                        (
                            "clock_timed_makespan_us",
                            Json::Num(r.clock_timed_makespan_us),
                        ),
                        (
                            "candidate_makespan_us",
                            Json::Num(r.clock_stats.clock_makespan_us),
                        ),
                        ("clock_ties", Json::int(r.clock_stats.clock_ties)),
                        ("batched_layers", Json::int(r.clock_stats.batched_layers)),
                        ("batched_hops", Json::int(r.clock_stats.batched_hops)),
                        ("improved", Json::Bool(r.clock_stats.improved)),
                        ("compile_seconds", Json::Num(r.clock_compile_s)),
                        ("compile_seconds_full", Json::Num(r.clock_full_compile_s)),
                        ("program_fidelity", Json::Num(r.clock_sim.program_fidelity)),
                    ]),
                ),
                ("profile", profile_json(p)),
            ];
            if let Some(explain) = explains.get(i) {
                fields.push(("explain", explain.clone()));
            }
            if let Some(fidelity) = fidelities.get(i) {
                fields.push(("fidelity", fidelity.clone()));
            }
            if let Some(job) = jobs.get(i) {
                fields.push(("jobs", job.clone()));
            }
            Json::obj(fields)
        })
        .collect();

    let all_leq = rows
        .iter()
        .all(|r| r.optimized_shuttles <= r.baseline_shuttles);
    let congestion_leq = rows
        .iter()
        .all(|r| r.congestion_shuttles <= r.optimized_shuttles);
    let depth_wins = rows
        .iter()
        .filter(|r| r.transport_depth < r.optimized_shuttles)
        .count();
    let timed_makespan_wins = rows
        .iter()
        .filter(|r| r.transport_sim.timed_makespan_us <= r.optimized_sim.timed_makespan_us)
        .count();
    let packed_leq_lookahead = rows
        .iter()
        .all(|r| r.packed_timed_makespan_us <= r.lookahead_timed_makespan_us);
    let packed_strict_wins = rows
        .iter()
        .filter(|r| r.packed_timed_makespan_us < r.lookahead_timed_makespan_us)
        .count();
    let clock_leq_packed = rows
        .iter()
        .all(|r| r.clock_timed_makespan_us <= r.packed_timed_makespan_us);
    let clock_strict_wins = rows.iter().filter(|r| r.clock_stats.improved).count();

    let mut top = vec![
        ("suite", Json::str("paper")),
        ("machine", Json::str(machine.to_string())),
        ("timing", Json::str(timing)),
        (
            "fig4_worked_example",
            Json::obj(vec![
                ("baseline_shuttles", Json::int(fig4_baseline)),
                ("optimized_shuttles", Json::int(fig4_optimized)),
            ]),
        ),
        ("benchmarks", Json::Arr(benchmarks)),
        ("all_optimized_leq_baseline", Json::Bool(all_leq)),
        ("all_congestion_leq_serial", Json::Bool(congestion_leq)),
        ("depth_strictly_lower_count", Json::int(depth_wins)),
        (
            "timed_makespan_leq_serial_count",
            Json::int(timed_makespan_wins),
        ),
        ("all_packed_leq_lookahead", Json::Bool(packed_leq_lookahead)),
        ("packed_strict_win_count", Json::int(packed_strict_wins)),
        ("all_clock_leq_packed", Json::Bool(clock_leq_packed)),
        ("clock_strict_win_count", Json::int(clock_strict_wins)),
    ];
    if let Some(deterministic) = all_jobs_deterministic {
        top.push(("all_jobs_deterministic", Json::Bool(deterministic)));
    }
    let value = Json::obj(top);
    let mut text = value.to_string();
    text.push('\n');
    text
}
