//! Regenerates every table and figure of the paper's evaluation (§IV).
//!
//! ```text
//! cargo run -p qccd-bench --release --bin paper_eval -- all [--per-size N]
//! ```
//!
//! Subcommands: `table2`, `fig8`, `table3`, `ablation`, `proximity`,
//! `mapping`, `routers`, `timing`, `lookahead`, `pack`, `objective`,
//! `delta`, `profile`, `explain`, `fidelity`, `jobs`, `all`, plus the
//! snapshot differ
//! `diff OLD.json NEW.json [--rel-tol X] [--json]` (exits 1 on any
//! quality regression).

use qccd_bench::{
    aggregate_random, delta_parity, lookahead_packing_gains, objective_gains, pack_gains,
    run_nisq_suite, run_random_suite, run_timing_sweep, run_topology_router_sweep,
    standard_topologies, timed_compile, ComparisonRow, RANDOM_SUITE_SEED,
};
use qccd_circuit::generators::{paper_suite, random_suite};
use qccd_core::{
    compile, CompilerConfig, DirectionPolicy, IonSelection, MappingPolicy, RebalancePolicy,
};
use qccd_machine::MachineSpec;
use qccd_sim::SimParams;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `diff` is a pure file-to-file comparison — no compiles, no header
    // (its `--json` output must be a clean document).
    if args.first().map(String::as_str) == Some("diff") {
        diff_cmd(&args[1..]);
        return;
    }
    let mut command = String::from("all");
    let mut per_size = 30usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--per-size" => {
                per_size = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--per-size needs a number"));
                i += 2;
            }
            "table2" | "fig8" | "table3" | "ablation" | "proximity" | "mapping" | "routers"
            | "timing" | "lookahead" | "pack" | "objective" | "delta" | "profile" | "explain"
            | "fidelity" | "jobs" | "all" => {
                command = args[i].clone();
                i += 1;
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }

    let spec = MachineSpec::paper_l6();
    let params = SimParams::default();
    println!("# muzzle-shuttle paper evaluation");
    println!(
        "# machine: {spec}   random suite: {per_size} circuits/size, seed {RANDOM_SUITE_SEED:#x}"
    );
    println!();

    let needs_suite = matches!(command.as_str(), "table2" | "fig8" | "table3" | "all");
    let (nisq, random) = if needs_suite {
        qccd_obs::info("paper_eval", || "compiling NISQ suite...".to_owned());
        let nisq = run_nisq_suite(&spec, &params);
        qccd_obs::info("paper_eval", || {
            format!("compiling random suite ({} circuits)...", per_size * 4)
        });
        let random = run_random_suite(&spec, &params, per_size);
        (nisq, random)
    } else {
        (Vec::new(), Vec::new())
    };

    match command.as_str() {
        "table2" => table2(&nisq, &random),
        "fig8" => fig8(&nisq, &random),
        "table3" => table3(&nisq, &random),
        "ablation" => ablation(&spec),
        "proximity" => proximity(&spec),
        "mapping" => mapping_ablation(&spec),
        "routers" => routers(&params),
        "timing" => timing(&spec, &params),
        "lookahead" => lookahead(&spec),
        "pack" => pack(&spec),
        "objective" => objective(&spec),
        "delta" => delta(&spec),
        "profile" => profile(&spec, &params),
        "explain" => explain(&spec, &params),
        "fidelity" => fidelity(&spec, &params),
        "jobs" => jobs_determinism(&spec, &params),
        "all" => {
            table2(&nisq, &random);
            fig8(&nisq, &random);
            table3(&nisq, &random);
            ablation(&spec);
            proximity(&spec);
            mapping_ablation(&spec);
            routers(&params);
            timing(&spec, &params);
            lookahead(&spec);
            pack(&spec);
            objective(&spec);
            delta(&spec);
        }
        _ => unreachable!("validated above"),
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: paper_eval [table2|fig8|table3|ablation|proximity|mapping|routers|timing|lookahead|pack|objective|delta|profile|explain|fidelity|jobs|all] [--per-size N]\n       paper_eval diff OLD.json NEW.json [--rel-tol X] [--json]"
    );
    std::process::exit(2);
}

/// `paper_eval diff OLD.json NEW.json`: schema-aware comparison of two
/// BENCH snapshots. Quality metrics are classified by direction
/// (regression / improvement / unchanged); wall-clock and `profile` /
/// `explain` data is informational. Exits 1 iff the diff contains at
/// least one quality regression.
fn diff_cmd(args: &[String]) {
    let mut files: Vec<String> = Vec::new();
    let mut rel_tol = 0.0f64;
    let mut json_out = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--rel-tol" => {
                let value = args
                    .get(i + 1)
                    .unwrap_or_else(|| usage("--rel-tol needs a non-negative number"));
                rel_tol = value
                    .parse()
                    .ok()
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .unwrap_or_else(|| {
                        usage(&format!(
                            "--rel-tol: `{value}` is not a valid non-negative number"
                        ))
                    });
                i += 2;
            }
            "--json" => {
                json_out = true;
                i += 1;
            }
            other if !other.starts_with('-') => {
                files.push(other.to_owned());
                i += 1;
            }
            other => usage(&format!("unknown diff argument `{other}`")),
        }
    }
    if files.len() != 2 {
        usage("diff needs exactly two snapshot files: OLD.json NEW.json");
    }
    let load = |path: &str| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read `{path}`: {e}");
            std::process::exit(2);
        });
        qccd_bench::json::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: `{path}` is not valid JSON: {e}");
            std::process::exit(2);
        })
    };
    let old = load(&files[0]);
    let new = load(&files[1]);
    let report = qccd_bench::diff::diff_snapshots(&old, &new, rel_tol);
    if json_out {
        println!("{}", report.to_json(&files[0], &files[1]));
    } else {
        print!("{}", report.to_markdown(&files[0], &files[1]));
    }
    let regressions = report.regressions();
    if !regressions.is_empty() {
        eprintln!(
            "error: {} quality regression(s) between `{}` and `{}`",
            regressions.len(),
            files[0],
            files[1]
        );
        std::process::exit(1);
    }
}

/// Schedule explanation over the paper suite: profiles every benchmark
/// (asserting the observes-never-decides parity `profile` asserts),
/// recompiles the clock pipeline's chosen schedule, attributes its
/// makespan along the critical path, and snapshots everything into
/// `BENCH_pr8.json`. Two identities gate the write: the attribution
/// segments must sum bit-for-bit to the timeline's makespan on every
/// benchmark, and the snapshot's quality rows (everything outside
/// `profile` / `explain` / `compile_seconds*`) must be bit-for-bit equal
/// to the committed `BENCH_pr7.json`.
fn explain(spec: &MachineSpec, params: &SimParams) {
    use qccd_bench::json::{parse, strip_keys, Json};

    println!("## Schedule explanation (paper suite, realistic timing)");
    qccd_obs::info("paper_eval", || "profiling paper suite...".to_owned());
    let model = qccd_core::TimingModel::realistic();
    let profiles = qccd_bench::profile::profile_paper_suite(spec, params, &model);
    println!(
        "{:<16} {:>13} {:>11} {:>11} {:>11} {:>10} {:>10} {:>10} {:>6}",
        "Benchmark",
        "Makespan(us)",
        "Gate(us)",
        "Flight(us)",
        "SplitM(us)",
        "Junc(us)",
        "Zone(us)",
        "Idle(us)",
        "Steps"
    );
    let mut explains: Vec<Json> = Vec::new();
    for (bench, p) in paper_suite().iter().zip(&profiles) {
        let explained = explain_benchmark(bench, p.row.clock_timed_makespan_us, spec, &model);
        let attribution = &explained.attribution;
        println!(
            "{:<16} {:>13.1} {:>11.1} {:>11.1} {:>11.1} {:>10.1} {:>10.1} {:>10.1} {:>6}",
            bench.name,
            attribution.makespan_us,
            attribution.gate_us,
            attribution.flight_us,
            attribution.split_merge_us,
            attribution.junction_us,
            attribution.zone_move_us,
            attribution.idle_wait_us,
            explained.steps
        );
        explains.push(explained.json);
    }

    let snapshot =
        qccd_bench::profile::render_snapshot_with(spec, "realistic", &profiles, &explains);
    // Parity gate: the explain snapshot only *adds* — its quality rows
    // must be bit-for-bit what the committed PR 7 trajectory pinned.
    let committed = std::fs::read_to_string("BENCH_pr7.json")
        .expect("BENCH_pr7.json is committed at the repo root (run from there)");
    let drop = |k: &str| k == "profile" || k == "explain" || k.starts_with("compile_seconds");
    let old = strip_keys(
        &parse(&committed).expect("committed BENCH_pr7.json parses"),
        &drop,
    );
    let new = strip_keys(&parse(&snapshot).expect("the fresh snapshot parses"), &drop);
    assert!(
        old == new,
        "BENCH_pr8.json quality rows diverged from the committed BENCH_pr7.json \
         (explain observes, never decides — this is a regression)"
    );
    std::fs::write("BENCH_pr8.json", &snapshot).expect("can write BENCH_pr8.json");
    println!("\nquality rows bit-for-bit equal to BENCH_pr7.json: yes");
    println!("wrote BENCH_pr8.json ({} bytes)", snapshot.len());
    println!();
}

/// One benchmark's recompiled clock artifact plus its critical-path
/// explanation, shared by the `explain` and `fidelity` subcommands.
struct ExplainedBenchmark {
    chosen: qccd_core::CompileResult,
    attribution: qccd_timing::MakespanAttribution,
    steps: usize,
    json: qccd_bench::json::Json,
}

/// Reproduces the clock pipeline's chosen schedule exactly as
/// `compare_timed` built it (same configs, same race), so the timeline
/// being explained is the one the snapshot's quality row describes, then
/// attributes its makespan along the critical path.
///
/// # Panics
///
/// Panics if the recompiled timeline diverges from the profiled row, if
/// the attribution segments do not sum bit-for-bit to the makespan, or if
/// the critical path is not contiguous.
fn explain_benchmark(
    bench: &qccd_circuit::generators::BenchmarkCircuit,
    row_makespan_us: f64,
    spec: &MachineSpec,
    model: &qccd_core::TimingModel,
) -> ExplainedBenchmark {
    use qccd_bench::json::Json;
    use qccd_timing::{attribute_path, critical_path};

    let (packed, _) = qccd_pack::compile_packed(
        &bench.circuit,
        spec,
        &CompilerConfig::optimized()
            .with_router(qccd_core::RouterPolicy::congestion())
            .with_timing(*model),
    )
    .expect("benchmark circuits compile and pack on the paper machine");
    let (chosen, _) = qccd_pack::race_clock(
        packed.clone(),
        &bench.circuit,
        spec,
        &CompilerConfig::optimized().with_timing(*model),
    )
    .expect("benchmark circuits compile under the clock objective");
    assert!(
        chosen.timeline.makespan_us.to_bits() == row_makespan_us.to_bits(),
        "{}: recompiled clock timeline diverged from the profiled row \
         ({} vs {})",
        bench.name,
        chosen.timeline.makespan_us,
        row_makespan_us
    );
    let path = critical_path(&chosen.timeline, &bench.circuit);
    let attribution = attribute_path(&chosen.timeline, model, &path);
    assert!(
        attribution.total_us().to_bits() == chosen.timeline.makespan_us.to_bits(),
        "{}: attribution identity violated ({} vs {})",
        bench.name,
        attribution.total_us(),
        chosen.timeline.makespan_us
    );
    assert!(
        path.is_contiguous(),
        "{}: critical path is not contiguous",
        bench.name
    );
    let json = Json::obj(vec![
        ("makespan_us", Json::Num(attribution.makespan_us)),
        ("critical_path_steps", Json::int(path.steps.len())),
        (
            "blame_counts",
            Json::Obj(
                path.blame_counts()
                    .iter()
                    .map(|(b, n)| (b.label().to_owned(), Json::int(*n)))
                    .collect(),
            ),
        ),
        (
            "attribution",
            Json::obj(vec![
                ("gate_us", Json::Num(attribution.gate_us)),
                ("flight_us", Json::Num(attribution.flight_us)),
                ("split_merge_us", Json::Num(attribution.split_merge_us)),
                ("junction_us", Json::Num(attribution.junction_us)),
                ("zone_move_us", Json::Num(attribution.zone_move_us)),
                ("idle_wait_us", Json::Num(attribution.idle_wait_us)),
                ("total_us", Json::Num(attribution.total_us())),
                (
                    "identity",
                    Json::Bool(
                        attribution.total_us().to_bits() == attribution.makespan_us.to_bits(),
                    ),
                ),
            ]),
        ),
    ]);
    ExplainedBenchmark {
        chosen,
        attribution,
        steps: path.steps.len(),
        json,
    }
}

/// The per-benchmark `"fidelity"` snapshot value: the loss-decomposition
/// totals, the duration/motional shares, and the top-3 worst gates and
/// hottest traps by blamed heat loss.
fn fidelity_json(attr: &qccd_sim::FidelityAttribution) -> qccd_bench::json::Json {
    use qccd_bench::json::Json;
    Json::obj(vec![
        (
            "log_program_fidelity",
            Json::Num(attr.report.log_program_fidelity),
        ),
        ("total_log_loss", Json::Num(attr.total_loss())),
        ("duration_loss", Json::Num(attr.gate_duration_loss)),
        ("motional_loss", Json::Num(attr.gate_motional_loss)),
        ("zero_point_loss", Json::Num(attr.gate_zero_point_loss)),
        ("heat_loss", Json::Num(attr.gate_heat_loss)),
        ("shuttle_pulse_loss", Json::Num(attr.shuttle_pulse_loss)),
        ("duration_share", Json::Num(attr.duration_share())),
        ("motional_share", Json::Num(attr.motional_share())),
        ("saturated_gates", Json::int(attr.saturated_gates)),
        ("identity", Json::Bool(attr.identity_holds())),
        (
            "worst_gates",
            Json::Arr(
                attr.worst_gates(3)
                    .iter()
                    .filter_map(|t| match t {
                        qccd_sim::LossTerm::Gate {
                            gate,
                            trap,
                            log_loss,
                            n_bar,
                            ..
                        } => Some(Json::obj(vec![
                            ("gate", Json::int(gate.index())),
                            ("trap", Json::int(trap.index())),
                            ("log_loss", Json::Num(*log_loss)),
                            ("n_bar", Json::Num(*n_bar)),
                        ])),
                        qccd_sim::LossTerm::Shuttle { .. } => None,
                    })
                    .collect(),
            ),
        ),
        (
            "hottest_traps",
            Json::Arr(
                attr.hottest_traps(3)
                    .iter()
                    .map(|(trap, blamed, gross)| {
                        Json::obj(vec![
                            ("trap", Json::int(*trap)),
                            ("blamed_log_loss", Json::Num(*blamed)),
                            ("gross_quanta", Json::Num(*gross)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Fidelity attribution over the paper suite: profiles every benchmark
/// (asserting the observes-never-decides parity `profile` asserts),
/// recompiles the clock pipeline's chosen schedule, replays it under the
/// heat-provenance ledger, decomposes `log_program_fidelity` into
/// per-gate duration vs motional loss terms, and snapshots everything
/// into `BENCH_pr9.json`. Three identities gate the write on every
/// benchmark: the schedule-explain identity `explain` asserts, the
/// fidelity identity (loss terms and ledger reproduce
/// `log_program_fidelity` and every sampled n̄ bit for bit), and the
/// snapshot parity (quality rows outside `profile` / `explain` /
/// `fidelity` / `compile_seconds*` must be bit-for-bit equal to the
/// committed `BENCH_pr8.json`).
fn fidelity(spec: &MachineSpec, params: &SimParams) {
    use qccd_bench::json::{parse, strip_keys, Json};

    println!("## Fidelity attribution (paper suite, realistic timing)");
    qccd_obs::info("paper_eval", || "profiling paper suite...".to_owned());
    let model = qccd_core::TimingModel::realistic();
    let profiles = qccd_bench::profile::profile_paper_suite(spec, params, &model);
    println!(
        "{:<16} {:>12} {:>11} {:>11} {:>11} {:>11} {:>6} {:>6} {:>8}",
        "Benchmark", "-lnF", "Dur(Gt)", "Motional", "Heat", "Shuttle", "Dur%", "Mot%", "Identity"
    );
    let mut explains: Vec<Json> = Vec::new();
    let mut fidelities: Vec<Json> = Vec::new();
    for (bench, p) in paper_suite().iter().zip(&profiles) {
        let explained = explain_benchmark(bench, p.row.clock_timed_makespan_us, spec, &model);
        let attr = qccd_sim::attribute_fidelity_timed(
            &explained.chosen.schedule,
            &explained.chosen.transport,
            &bench.circuit,
            spec,
            params,
            &model,
        )
        .expect("benchmark schedules replay under the physics model");
        assert!(
            attr.identity_holds(),
            "{}: fidelity attribution identity violated (the loss terms and \
             heat ledger do not reproduce log_program_fidelity = {} bit for bit)",
            bench.name,
            attr.report.log_program_fidelity
        );
        assert!(
            attr.report.program_fidelity.to_bits() == p.row.clock_sim.program_fidelity.to_bits(),
            "{}: attribution replay diverged from the profiled clock row \
             ({} vs {})",
            bench.name,
            attr.report.program_fidelity,
            p.row.clock_sim.program_fidelity
        );
        println!(
            "{:<16} {:>12.4e} {:>11.4e} {:>11.4e} {:>11.4e} {:>11.4e} {:>5.1}% {:>5.1}% {:>8}",
            bench.name,
            attr.total_loss(),
            attr.gate_duration_loss,
            attr.gate_motional_loss,
            attr.gate_heat_loss,
            attr.shuttle_pulse_loss,
            100.0 * attr.duration_share(),
            100.0 * attr.motional_share(),
            "yes"
        );
        explains.push(explained.json);
        fidelities.push(fidelity_json(&attr));
    }

    let snapshot = qccd_bench::profile::render_snapshot_full(
        spec,
        "realistic",
        &profiles,
        &explains,
        &fidelities,
    );
    // Parity gate: the fidelity snapshot only *adds* — its quality rows
    // must be bit-for-bit what the committed PR 8 trajectory pinned.
    let committed = std::fs::read_to_string("BENCH_pr8.json")
        .expect("BENCH_pr8.json is committed at the repo root (run from there)");
    let drop = |k: &str| {
        k == "profile" || k == "explain" || k == "fidelity" || k.starts_with("compile_seconds")
    };
    let old = strip_keys(
        &parse(&committed).expect("committed BENCH_pr8.json parses"),
        &drop,
    );
    let new = strip_keys(&parse(&snapshot).expect("the fresh snapshot parses"), &drop);
    assert!(
        old == new,
        "BENCH_pr9.json quality rows diverged from the committed BENCH_pr8.json \
         (fidelity attribution observes, never decides — this is a regression)"
    );
    std::fs::write("BENCH_pr9.json", &snapshot).expect("can write BENCH_pr9.json");
    println!(
        "\nfidelity identity holds on all {} benchmarks",
        profiles.len()
    );
    println!("quality rows bit-for-bit equal to BENCH_pr8.json: yes");
    println!("wrote BENCH_pr9.json ({} bytes)", snapshot.len());
    println!();
}

/// Parallel speculative scoring over the paper suite: every benchmark is
/// compiled through the clock pipeline at `--jobs` widths 1, 4 and 8, and
/// the quality figures (chosen makespan bits, clock stats, schedule,
/// transport) must be bit-for-bit identical at every width. Wall-clock
/// compile times (min over three runs) at jobs 1 and 4 ride into
/// `BENCH_pr10.json` per benchmark, gated on quality parity with the
/// committed `BENCH_pr9.json`.
///
/// The recorded speedup is whatever this host actually measures — the
/// `compile_seconds*` keys are informational by prefix, so single-core
/// machines record an honest ~1x rather than an aspirational figure.
fn jobs_determinism(spec: &MachineSpec, params: &SimParams) {
    use qccd_bench::json::{parse, strip_keys, Json};
    use std::time::Instant;

    const TIMING_RUNS: usize = 3;

    println!("## Parallel speculative scoring (--jobs): determinism + wall clock");
    let model = qccd_core::TimingModel::realistic();
    let clock_config = CompilerConfig::optimized().with_timing(model);
    println!(
        "{:<16} {:>14} {:>5} {:>11} {:>11} {:>8} {:>14}",
        "Benchmark", "Makespan(us)", "Ties", "jobs=1 (s)", "jobs=4 (s)", "Speedup", "Deterministic"
    );
    let mut jobs_values: Vec<Json> = Vec::new();
    let mut chosen_makespans: Vec<f64> = Vec::new();
    for bench in paper_suite().iter() {
        let run = |jobs: usize, runs: usize| {
            let config = clock_config.with_jobs(jobs);
            let mut best = f64::INFINITY;
            let mut last = None;
            for _ in 0..runs {
                let start = Instant::now();
                let result = qccd_pack::compile_clock(&bench.circuit, spec, &config)
                    .expect("benchmark circuits compile under the clock objective");
                best = best.min(start.elapsed().as_secs_f64());
                last = Some(result);
            }
            (best, last.expect("at least one timing run"))
        };
        let (secs1, (chosen, stats)) = run(1, TIMING_RUNS);
        let (secs4, wide4) = run(4, TIMING_RUNS);
        let (_, wide8) = run(8, 1);
        for (jobs, (result, wide_stats)) in [(4usize, &wide4), (8, &wide8)] {
            assert!(
                *wide_stats == stats,
                "{}: clock stats diverged at jobs={jobs} ({wide_stats:?} vs {stats:?})",
                bench.name
            );
            assert!(
                result.timeline.makespan_us.to_bits() == chosen.timeline.makespan_us.to_bits(),
                "{}: chosen makespan diverged at jobs={jobs} ({} vs {})",
                bench.name,
                result.timeline.makespan_us,
                chosen.timeline.makespan_us
            );
            assert!(
                result.schedule == chosen.schedule && result.transport == chosen.transport,
                "{}: chosen schedule diverged at jobs={jobs}",
                bench.name
            );
        }
        println!(
            "{:<16} {:>14.1} {:>5} {:>11.3} {:>11.3} {:>7.2}x {:>14}",
            bench.name,
            chosen.timeline.makespan_us,
            stats.clock_ties,
            secs1,
            secs4,
            secs1 / secs4,
            "yes"
        );
        jobs_values.push(Json::obj(vec![
            ("compile_seconds_jobs1", Json::Num(secs1)),
            ("compile_seconds_jobs4", Json::Num(secs4)),
            ("compile_seconds_speedup_jobs4", Json::Num(secs1 / secs4)),
        ]));
        chosen_makespans.push(chosen.timeline.makespan_us);
    }

    qccd_obs::info("paper_eval", || "profiling paper suite...".to_owned());
    let profiles = qccd_bench::profile::profile_paper_suite(spec, params, &model);
    let mut explains: Vec<Json> = Vec::new();
    let mut fidelities: Vec<Json> = Vec::new();
    for ((bench, p), makespan) in paper_suite().iter().zip(&profiles).zip(&chosen_makespans) {
        assert!(
            p.row.clock_timed_makespan_us.to_bits() == makespan.to_bits(),
            "{}: profiled clock row diverged from the jobs determinism sweep \
             ({} vs {})",
            bench.name,
            p.row.clock_timed_makespan_us,
            makespan
        );
        let explained = explain_benchmark(bench, p.row.clock_timed_makespan_us, spec, &model);
        let attr = qccd_sim::attribute_fidelity_timed(
            &explained.chosen.schedule,
            &explained.chosen.transport,
            &bench.circuit,
            spec,
            params,
            &model,
        )
        .expect("benchmark schedules replay under the physics model");
        assert!(
            attr.identity_holds(),
            "{}: fidelity attribution identity violated",
            bench.name
        );
        explains.push(explained.json);
        fidelities.push(fidelity_json(&attr));
    }

    let snapshot = qccd_bench::profile::render_snapshot_jobs(
        spec,
        "realistic",
        &profiles,
        &explains,
        &fidelities,
        &jobs_values,
        Some(true),
    );
    // Parity gate: the jobs snapshot only *adds* — its quality rows must
    // be bit-for-bit what the committed PR 9 trajectory pinned.
    let committed = std::fs::read_to_string("BENCH_pr9.json")
        .expect("BENCH_pr9.json is committed at the repo root (run from there)");
    let drop = |k: &str| {
        k == "profile"
            || k == "explain"
            || k == "fidelity"
            || k == "jobs"
            || k == "all_jobs_deterministic"
            || k.starts_with("compile_seconds")
    };
    let old = strip_keys(
        &parse(&committed).expect("committed BENCH_pr9.json parses"),
        &drop,
    );
    let new = strip_keys(&parse(&snapshot).expect("the fresh snapshot parses"), &drop);
    assert!(
        old == new,
        "BENCH_pr10.json quality rows diverged from the committed BENCH_pr9.json \
         (parallel scoring is a pure wall-clock change — this is a regression)"
    );
    std::fs::write("BENCH_pr10.json", &snapshot).expect("can write BENCH_pr10.json");
    println!(
        "\nall {} benchmarks bit-for-bit identical at jobs 1, 4 and 8",
        profiles.len()
    );
    println!("quality rows bit-for-bit equal to BENCH_pr9.json: yes");
    println!("wrote BENCH_pr10.json ({} bytes)", snapshot.len());
    println!();
}

/// Topology × router sweep: the paper benchmarks on the L6-class machine
/// re-shaped as line, ring and grid, under the serial and congestion
/// routers.
fn routers(params: &SimParams) {
    println!("## Topology x router sweep (optimized policy stack, capacity 17, comm 2)");
    println!(
        "{:<16} {:>6} {:>24} {:>8} {:>6} {:>12}",
        "Benchmark", "Topo", "Router", "Shuttle", "Depth", "Makespan(us)"
    );
    qccd_obs::info("paper_eval", || "topology x router sweep...".to_owned());
    let rows = run_topology_router_sweep(&paper_suite(), &standard_topologies(6), 17, 2, params);
    for r in &rows {
        println!(
            "{:<16} {:>6} {:>24} {:>8} {:>6} {:>12.1}",
            r.name, r.topology, r.router, r.shuttles, r.depth, r.makespan_us
        );
    }
    println!();
}

/// Timing-model sweep: how much of the uniform-hop makespan survives the
/// QCCDSim-style constants (finite segment speed, junction corner/swap
/// time, timed zone moves).
fn timing(spec: &MachineSpec, params: &SimParams) {
    println!("## Timing-model sweep (optimized policy stack)");
    println!(
        "{:<16} {:>24} {:>10} {:>6} {:>14} {:>6}",
        "Benchmark", "Router", "Timing", "Depth", "TMakespan(us)", "Junc"
    );
    qccd_obs::info("paper_eval", || "timing-model sweep...".to_owned());
    let rows = run_timing_sweep(&paper_suite(), spec, params);
    for r in &rows {
        println!(
            "{:<16} {:>24} {:>10} {:>6} {:>14.1} {:>6}",
            r.name, r.router, r.timing, r.depth, r.timed_makespan_us, r.junction_crossings
        );
    }
    println!();
}

/// Lookahead round packing: before/after transport depths.
fn lookahead(spec: &MachineSpec) {
    println!("## Lookahead round packing (congestion router) — transport depth");
    println!(
        "{:<16} {:>8} {:>10} {:>6}",
        "Benchmark", "Greedy", "Lookahead", "Gain"
    );
    qccd_obs::info("paper_eval", || "lookahead packing...".to_owned());
    let rows = lookahead_packing_gains(&paper_suite(), spec);
    let mut regressions = 0usize;
    for r in &rows {
        println!(
            "{:<16} {:>8} {:>10} {:>6}",
            r.name,
            r.greedy_depth,
            r.lookahead_depth,
            r.greedy_depth as i64 - r.lookahead_depth as i64
        );
        if r.lookahead_depth > r.greedy_depth {
            regressions += 1;
        }
    }
    // The never-deeper invariant holds by construction (pack_lookahead
    // falls back to greedy); debug builds re-assert it, release reports.
    debug_assert_eq!(regressions, 0, "lookahead packing must never deepen");
    if regressions > 0 {
        println!("WARNING: {regressions} benchmark(s) regressed under lookahead");
    }
    println!();
}

/// Timeline-driven packing: before/after transport depth and timed
/// makespan (realistic device model). This doubles as the PR 4 acceptance
/// gate: packed timed makespan must be ≤ lookahead on every paper
/// benchmark and *strictly* lower on QAOA.
fn pack(spec: &MachineSpec) {
    println!("## qccd-pack — cross-gate packing + batched layer planning (realistic timing)");
    println!(
        "{:<16} {:>7} {:>7} {:>7} {:>12} {:>12} {:>9} {:>6} {:>7}",
        "Benchmark",
        "Greedy",
        "Look",
        "Packed",
        "LookMk(us)",
        "PackMk(us)",
        "Gain(us)",
        "Hoist",
        "Replan"
    );
    qccd_obs::info("paper_eval", || "pack gains...".to_owned());
    let rows = pack_gains(&paper_suite(), spec);
    for r in &rows {
        println!(
            "{:<16} {:>7} {:>7} {:>7} {:>12.1} {:>12.1} {:>9.1} {:>6} {:>7}",
            r.name,
            r.greedy_depth,
            r.lookahead_depth,
            r.packed_depth,
            r.lookahead_makespan_us,
            r.packed_makespan_us,
            r.lookahead_makespan_us - r.packed_makespan_us,
            r.hoisted_hops,
            r.replanned_runs
        );
        assert!(
            r.packed_makespan_us <= r.lookahead_makespan_us,
            "{}: packing regressed the timed makespan",
            r.name
        );
    }
    let qaoa = rows.iter().find(|r| r.name == "QAOA").expect("QAOA row");
    assert!(
        qaoa.packed_makespan_us < qaoa.lookahead_makespan_us,
        "QAOA packed makespan must strictly beat lookahead"
    );
    println!();
}

/// Timed compile-loop objective: the clock-objective pipeline against the
/// default-objective packed stack (realistic device model). This doubles
/// as the PR 5 acceptance gate: the chosen makespan must be <= packed on
/// every paper benchmark (never-regress, by construction) and the clock
/// candidate *strictly* lower on at least one — QAOA is the target.
fn objective(spec: &MachineSpec) {
    println!("## Timed compile-loop objective — clock vs packed (realistic timing)");
    println!(
        "{:<16} {:>12} {:>12} {:>9} {:>6} {:>7} {:>7} {:>9}",
        "Benchmark", "PackMk(us)", "ClockMk(us)", "Gain(us)", "Ties", "Batch", "BHops", "Improved"
    );
    qccd_obs::info("paper_eval", || "objective gains...".to_owned());
    let rows = objective_gains(&paper_suite(), spec);
    for r in &rows {
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>9.1} {:>6} {:>7} {:>7} {:>9}",
            r.name,
            r.packed_makespan_us,
            r.clock_makespan_us,
            r.packed_makespan_us - r.clock_makespan_us,
            r.clock_ties,
            r.batched_layers,
            r.batched_hops,
            r.improved
        );
        assert!(
            r.chosen_makespan_us <= r.packed_makespan_us,
            "{}: the clock pipeline regressed the packed stack",
            r.name
        );
    }
    assert!(
        rows.iter().any(|r| r.improved),
        "the clock objective must strictly beat the packed stack on at least one benchmark"
    );
    println!();
}

/// Score-mode parity: the clock pipeline under the delta scorer against
/// the same pipeline under the O(suffix) re-lower oracle. This is the
/// PR 6 acceptance gate — every quality figure must match bit-for-bit on
/// every paper benchmark; the compile-second columns show what the delta
/// scorer buys.
fn delta(spec: &MachineSpec) {
    println!("## Score-mode parity — delta scorer vs full re-lower oracle (realistic timing)");
    println!(
        "{:<16} {:>12} {:>12} {:>6} {:>7} {:>9} {:>9} {:>8} {:>7}",
        "Benchmark",
        "DeltaMk(us)",
        "FullMk(us)",
        "Ties",
        "Batch",
        "Delta(s)",
        "Full(s)",
        "Speedup",
        "Match"
    );
    qccd_obs::info("paper_eval", || "score-mode parity...".to_owned());
    let rows = delta_parity(&paper_suite(), spec);
    for r in &rows {
        println!(
            "{:<16} {:>12.1} {:>12.1} {:>6} {:>7} {:>9.3} {:>9.3} {:>7.1}x {:>7}",
            r.name,
            r.delta_makespan_us,
            r.full_makespan_us,
            r.delta_ties,
            r.delta_batched_layers,
            r.delta_compile_s,
            r.full_compile_s,
            r.speedup(),
            r.matches()
        );
        assert!(
            r.matches(),
            "{}: delta and full scoring diverged (delta {:?} vs full {:?} makespan, \
             {}/{} shuttles, {}/{} depth, {}/{} ties, {}/{} layers, {}/{} hops)",
            r.name,
            r.delta_makespan_us,
            r.full_makespan_us,
            r.delta_shuttles,
            r.full_shuttles,
            r.delta_depth,
            r.full_depth,
            r.delta_ties,
            r.full_ties,
            r.delta_batched_layers,
            r.full_batched_layers,
            r.delta_batched_hops,
            r.full_batched_hops
        );
    }
    println!();
}

/// Profiled BENCH trajectory: runs the paper suite under the realistic
/// timing model with the `qccd-obs` recorder on, asserts every quality
/// figure is bit-for-bit equal to an uninstrumented reference run, and
/// snapshots the rows plus per-phase breakdowns and hot-path counters
/// into `BENCH_pr7.json`.
fn profile(spec: &MachineSpec, params: &SimParams) {
    println!("## Profiled compile trajectory (paper suite, realistic timing)");
    qccd_obs::info("paper_eval", || "profiling paper suite...".to_owned());
    let model = qccd_core::TimingModel::realistic();
    let profiles = qccd_bench::profile::profile_paper_suite(spec, params, &model);
    println!(
        "{:<16} {:>12} {:>14} {:>16} {:>10} {:>10}",
        "Benchmark", "Wall(ms)", "Hottest phase", "Cand. scored", "DeltaHit%", "Backfills"
    );
    for p in &profiles {
        let hottest = p
            .phases
            .first()
            .map_or("-", |ph| ph.name.as_str())
            .to_owned();
        let scored = p
            .counters
            .iter()
            .find(|(n, _)| n == "core.candidates_scored")
            .map_or(0, |&(_, v)| v);
        let backfills = p
            .counters
            .iter()
            .find(|(n, _)| n == "route.backfill_attempts")
            .map_or(0, |&(_, v)| v);
        println!(
            "{:<16} {:>12.1} {:>14} {:>16} {:>9.1}% {:>10}",
            p.row.name,
            p.wall_us / 1_000.0,
            hottest,
            scored,
            100.0 * p.delta_hit_rate,
            backfills
        );
    }
    let snapshot = qccd_bench::profile::render_snapshot(spec, "realistic", &profiles);
    std::fs::write("BENCH_pr7.json", &snapshot).expect("can write BENCH_pr7.json");
    println!("\nwrote BENCH_pr7.json ({} bytes)", snapshot.len());
    println!();
}

/// Table II: reduction in the number of shuttles.
fn table2(nisq: &[ComparisonRow], random: &[ComparisonRow]) {
    println!("## Table II — Reduction in the number of shuttles");
    println!(
        "{:<14} {:>6} {:>8} {:>8} {:>10} {:>7} {:>8}",
        "Benchmark", "Qubits", "2Q gates", "[7]", "This Work", "D(dn)", "%D"
    );
    for r in nisq {
        println!(
            "{:<14} {:>6} {:>8} {:>8} {:>10} {:>7} {:>7.2}%",
            r.name,
            r.qubits,
            r.two_qubit_gates,
            r.baseline_shuttles,
            r.optimized_shuttles,
            r.delta(),
            r.delta_percent()
        );
    }
    if !random.is_empty() {
        let a = aggregate_random(random);
        println!(
            "{:<14} {:>6} {:>8} {:>8} {:>10} {:>7} {:>7.2}%   (means; s in parens below)",
            "Random",
            "60-75",
            format!("{:.0}", a.gates.0),
            format!("{:.0}", a.baseline.0),
            format!("{:.0}", a.optimized.0),
            format!("{:.0}", a.delta.0),
            a.delta_percent.0
        );
        println!(
            "{:<14} {:>6} {:>8} {:>8} {:>10} {:>7} {:>7.0}",
            "  (std dev)",
            "",
            format!("({:.0})", a.gates.1),
            format!("({:.0})", a.baseline.1),
            format!("({:.0})", a.optimized.1),
            format!("({:.0})", a.delta.1),
            a.delta_percent.1
        );
    }
    println!();
}

/// Fig. 8: improvement in program fidelity.
fn fig8(nisq: &[ComparisonRow], random: &[ComparisonRow]) {
    println!("## Fig. 8 — Program fidelity improvement (optimized / baseline)");
    println!(
        "{:<14} {:>12} {:>14} {:>14}",
        "Benchmark", "Improvement", "F(baseline)", "F(this work)"
    );
    for r in nisq {
        println!(
            "{:<14} {:>11.2}X {:>14.3e} {:>14.3e}",
            r.name,
            r.fidelity_improvement(),
            r.baseline_sim.program_fidelity,
            r.optimized_sim.program_fidelity
        );
    }
    if !random.is_empty() {
        let a = aggregate_random(random);
        println!(
            "{:<14} {:>11.2}X {:>14} {:>14}   (geometric mean)",
            "Random", a.fidelity_improvement_geomean, "-", "-"
        );
    }
    println!();
}

/// Table III: compilation time overhead.
fn table3(nisq: &[ComparisonRow], random: &[ComparisonRow]) {
    println!("## Table III — Compilation time overhead");
    println!(
        "{:<14} {:>18} {:>14} {:>10}",
        "Benchmark", "This work (sec)", "[7] (sec)", "D(up)"
    );
    for r in nisq {
        println!(
            "{:<14} {:>18.4} {:>14.4} {:>10.4}",
            r.name,
            r.optimized_compile_s,
            r.baseline_compile_s,
            r.compile_overhead_s()
        );
    }
    if !random.is_empty() {
        let a = aggregate_random(random);
        println!(
            "{:<14} {:>18.4} {:>14.4} {:>10.4}   (means)",
            "Random",
            a.compile_s.1,
            a.compile_s.0,
            a.compile_s.1 - a.compile_s.0
        );
    }
    println!();
}

/// Ablation: each heuristic toggled independently (§III design choices).
fn ablation(spec: &MachineSpec) {
    println!("## Ablation — shuttle count per enabled heuristic");
    let baseline = CompilerConfig::baseline();
    let mut dir_only = baseline;
    dir_only.direction = DirectionPolicy::FutureOps {
        proximity: CompilerConfig::DEFAULT_PROXIMITY,
    };
    let mut dir_reorder = dir_only;
    dir_reorder.reorder = true;
    let mut rebalance_only = baseline;
    rebalance_only.rebalance = RebalancePolicy::NearestNeighbor;
    rebalance_only.ion_selection = IonSelection::MaxScore { wd: 0.5, ws: 0.5 };
    let mut literal_gate_distance = CompilerConfig::optimized();
    literal_gate_distance.direction = DirectionPolicy::FutureOpsGateDistance {
        proximity: CompilerConfig::DEFAULT_PROXIMITY,
    };
    let configs: [(&str, CompilerConfig); 6] = [
        ("baseline", baseline),
        ("+direction", dir_only),
        ("+dir+reorder", dir_reorder),
        ("+rebalance", rebalance_only),
        ("full(optimized)", CompilerConfig::optimized()),
        ("full(gate-dist)", literal_gate_distance),
    ];
    print!("{:<14}", "Benchmark");
    for (name, _) in &configs {
        print!(" {:>16}", name);
    }
    println!();
    for bench in paper_suite() {
        print!("{:<14}", bench.name);
        for (_, config) in &configs {
            let shuttles = compile(&bench.circuit, spec, config)
                .expect("paper benchmarks compile on the paper machine")
                .stats
                .shuttles;
            print!(" {:>16}", shuttles);
        }
        println!();
    }
    println!();
}

/// §IV-E3 initial-mapping exploration: how much of the result depends on
/// the shared greedy placement.
fn mapping_ablation(spec: &MachineSpec) {
    println!("## Initial-mapping ablation — optimized-compiler shuttles per placement policy");
    let policies: [(&str, MappingPolicy); 3] = [
        ("greedy[14]", MappingPolicy::GreedyInteraction),
        ("round-robin", MappingPolicy::RoundRobin),
        ("random", MappingPolicy::RandomBalanced { seed: 7 }),
    ];
    print!("{:<14}", "Benchmark");
    for (name, _) in &policies {
        print!(" {:>14}", format!("base/{name}"));
        print!(" {:>14}", format!("opt/{name}"));
    }
    println!();
    for bench in paper_suite() {
        print!("{:<14}", bench.name);
        for (_, mapping) in &policies {
            for mut config in [CompilerConfig::baseline(), CompilerConfig::optimized()] {
                config.mapping = *mapping;
                let shuttles = compile(&bench.circuit, spec, &config)
                    .expect("paper benchmarks compile on the paper machine")
                    .stats
                    .shuttles;
                print!(" {:>14}", shuttles);
            }
        }
        println!();
    }
    println!();
}

/// §III-A3 proximity design-parameter sweep.
fn proximity(spec: &MachineSpec) {
    println!("## Proximity sweep — shuttles vs design parameter (paper picks 6)");
    let proxies = [1u32, 2, 3, 4, 6, 8, 12, 16, 24];
    print!("{:<14} {:>9}", "Benchmark", "baseline");
    for p in proxies {
        print!(" {:>7}", format!("p={p}"));
    }
    println!();
    let mut suite = paper_suite();
    suite.extend(random_suite(2, RANDOM_SUITE_SEED));
    for bench in suite {
        let (base, _) = timed_compile(&bench.circuit, spec, &CompilerConfig::baseline());
        print!("{:<14} {:>9}", bench.name, base.stats.shuttles);
        for p in proxies {
            let cfg = CompilerConfig::optimized_with_proximity(p);
            let (r, _) = timed_compile(&bench.circuit, spec, &cfg);
            print!(" {:>7}", r.stats.shuttles);
        }
        println!();
    }
    println!();
}

#[cfg(test)]
mod tests {
    use qccd_bench::compare;
    use qccd_machine::MachineSpec;
    use qccd_sim::SimParams;

    #[test]
    fn comparison_row_delta_math() {
        let spec = MachineSpec::linear(2, 6, 2).unwrap();
        let params = SimParams::default();
        let bench = qccd_circuit::generators::BenchmarkCircuit {
            name: "t".into(),
            circuit: qccd_circuit::generators::random_circuit(8, 40, 1),
        };
        let row = compare(&bench, &spec, &params);
        assert_eq!(
            row.delta(),
            row.baseline_shuttles as i64 - row.optimized_shuttles as i64
        );
    }
}
