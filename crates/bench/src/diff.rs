//! `paper_eval diff` — schema-aware comparison of two BENCH snapshots.
//!
//! The BENCH trajectory (`BENCH_pr2.json` … `BENCH_pr8.json`) carries
//! three kinds of leaves, and a useful differ must not treat them alike:
//!
//! * **quality metrics** (shuttle counts, makespans, fidelities, the
//!   suite-level acceptance flags) — the values this repo pins
//!   bit-for-bit; any drift in the *bad* direction is a regression.
//! * **wall-clock figures** (`compile_seconds*`, the `profile` subtree's
//!   phase times and counters, `wall_us`) — machine-dependent noise;
//!   reported but never gating.
//! * **structure** (names, key sets) — a key present on one side only is
//!   surfaced so schema evolution is visible instead of silently skipped.
//!
//! [`diff_snapshots`] walks two parsed documents in parallel, classifies
//! every shared numeric/boolean leaf by the direction inferred from its
//! key name, and returns a [`DiffReport`] renderable as markdown or JSON.
//! `paper_eval diff OLD NEW` exits non-zero iff the report contains a
//! quality regression — the structured replacement for the hand-written
//! per-PR CI asserts.

use crate::json::Json;

/// How a changed metric is judged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffClass {
    /// A quality metric moved in the bad direction.
    Regression,
    /// A quality metric moved in the good direction.
    Improvement,
    /// Equal within the tolerance.
    Unchanged,
    /// Wall-clock / instrumentation data: reported, never gating.
    Informational,
}

impl DiffClass {
    /// Stable lower-case label for reports.
    pub fn label(self) -> &'static str {
        match self {
            DiffClass::Regression => "regression",
            DiffClass::Improvement => "improvement",
            DiffClass::Unchanged => "unchanged",
            DiffClass::Informational => "informational",
        }
    }
}

/// One numeric/boolean leaf present in both snapshots.
#[derive(Debug, Clone)]
pub struct MetricDiff {
    /// Dotted path, benchmarks keyed by name (e.g.
    /// `benchmarks[QAOA].clock.clock_timed_makespan_us`).
    pub path: String,
    /// Value in the old snapshot (booleans as 0/1).
    pub old: f64,
    /// Value in the new snapshot.
    pub new: f64,
    /// The judgement.
    pub class: DiffClass,
}

impl MetricDiff {
    /// Relative change in percent (0 when both sides are 0).
    pub fn percent(&self) -> f64 {
        if self.old == self.new {
            return 0.0;
        }
        let base = self.old.abs().max(self.new.abs());
        if base == 0.0 {
            0.0
        } else {
            100.0 * (self.new - self.old) / base
        }
    }
}

/// The full comparison of two snapshots.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every shared numeric/boolean leaf, in document order.
    pub metrics: Vec<MetricDiff>,
    /// Paths present only in the new snapshot.
    pub added: Vec<String>,
    /// Paths present only in the old snapshot.
    pub removed: Vec<String>,
    /// String leaves that changed: `(path, old, new)`.
    pub strings_changed: Vec<(String, String, String)>,
}

impl DiffReport {
    /// Count of metrics with the given class.
    pub fn count(&self, class: DiffClass) -> usize {
        self.metrics.iter().filter(|m| m.class == class).count()
    }

    /// The regression paths — the CI gate's exit condition.
    pub fn regressions(&self) -> Vec<&MetricDiff> {
        self.metrics
            .iter()
            .filter(|m| m.class == DiffClass::Regression)
            .collect()
    }

    /// Markdown rendering: a summary line, a table of every changed
    /// metric (unchanged rows are counted, not listed), and the
    /// structural deltas.
    pub fn to_markdown(&self, old_name: &str, new_name: &str) -> String {
        let mut out = format!("## BENCH diff — `{old_name}` → `{new_name}`\n\n");
        out.push_str(&format!(
            "{} metrics compared: {} unchanged, {} improvements, \
             {} regressions, {} informational changes\n\n",
            self.metrics.len(),
            self.count(DiffClass::Unchanged),
            self.count(DiffClass::Improvement),
            self.count(DiffClass::Regression),
            self.metrics
                .iter()
                .filter(|m| m.class == DiffClass::Informational && m.old != m.new)
                .count(),
        ));
        let changed: Vec<&MetricDiff> = self
            .metrics
            .iter()
            .filter(|m| m.class != DiffClass::Unchanged && m.old != m.new)
            .collect();
        if changed.is_empty() {
            out.push_str("no metric changed.\n");
        } else {
            out.push_str("| metric | old | new | Δ% | class |\n");
            out.push_str("|--------|-----|-----|----|-------|\n");
            for m in &changed {
                out.push_str(&format!(
                    "| `{}` | {} | {} | {:+.2}% | {} |\n",
                    m.path,
                    m.old,
                    m.new,
                    m.percent(),
                    m.class.label()
                ));
            }
        }
        for (label, paths) in [("added", &self.added), ("removed", &self.removed)] {
            if !paths.is_empty() {
                out.push_str(&format!("\n{label} keys:\n"));
                for p in paths {
                    out.push_str(&format!("- `{p}`\n"));
                }
            }
        }
        if !self.strings_changed.is_empty() {
            out.push_str("\nchanged strings:\n");
            for (p, old, new) in &self.strings_changed {
                out.push_str(&format!("- `{p}`: `{old}` → `{new}`\n"));
            }
        }
        out
    }

    /// JSON rendering: counts plus every non-unchanged metric.
    pub fn to_json(&self, old_name: &str, new_name: &str) -> Json {
        Json::obj(vec![
            ("old", Json::str(old_name)),
            ("new", Json::str(new_name)),
            ("metrics_compared", Json::int(self.metrics.len())),
            ("unchanged", Json::int(self.count(DiffClass::Unchanged))),
            (
                "improvements",
                Json::int(self.count(DiffClass::Improvement)),
            ),
            ("regressions", Json::int(self.count(DiffClass::Regression))),
            (
                "changes",
                Json::Arr(
                    self.metrics
                        .iter()
                        .filter(|m| m.class != DiffClass::Unchanged && m.old != m.new)
                        .map(|m| {
                            Json::obj(vec![
                                ("path", Json::str(&m.path)),
                                ("old", Json::Num(m.old)),
                                ("new", Json::Num(m.new)),
                                ("percent", Json::Num(m.percent())),
                                ("class", Json::str(m.class.label())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "added_keys",
                Json::Arr(self.added.iter().map(Json::str).collect()),
            ),
            (
                "removed_keys",
                Json::Arr(self.removed.iter().map(Json::str).collect()),
            ),
        ])
    }
}

/// Which direction is "better" for a metric, inferred from its key name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Lower is better (shuttles, makespans, depths, idle).
    Lower,
    /// Higher is better (fidelity, reduction deltas, win counts, flags).
    Higher,
    /// Identity metric (workload descriptors): any change is a regression.
    Exact,
    /// Wall-clock / instrumentation: never gates.
    Informational,
}

/// Classifies a leaf path. Checked in priority order: the informational
/// subtrees first (their members often *contain* quality-looking words
/// like `total_us`), then higher-is-better names, then lower-is-better
/// names; anything unrecognised is an identity metric so schema drift
/// fails loudly instead of passing silently.
fn direction(path: &str) -> Direction {
    let last = path.rsplit('.').next().unwrap_or(path);
    if path.contains(".profile.")
        || path.ends_with(".profile")
        || path.contains(".explain.")
        || path.ends_with(".explain")
        || path.contains(".fidelity.")
        || path.ends_with(".fidelity")
        || last.starts_with("compile_seconds")
        || last == "wall_us"
    {
        return Direction::Informational;
    }
    const HIGHER: [&str; 10] = [
        "fidelity",
        "improvement",
        "improved",
        "delta",
        "delta_percent",
        "hit_rate",
        "win",
        "leq",
        "wins",
        "_count",
    ];
    if HIGHER.iter().any(|n| last.contains(n)) || path.starts_with("all_") {
        return Direction::Higher;
    }
    const LOWER: [&str; 9] = [
        "shuttles",
        "makespan",
        "depth",
        "zone_moves",
        "junction",
        "ties",
        "hops",
        "idle",
        "busy",
    ];
    if LOWER.iter().any(|n| last.contains(n)) {
        return Direction::Lower;
    }
    Direction::Exact
}

/// `depth_delta` contains "delta" (higher better) but is genuinely
/// higher-better (shuttles saved by concurrency), and `batched_layers`/
/// `batched_hops` contain "hops" yet describe how the result was reached,
/// not how good it is — the generic table above already classifies the
/// former correctly and the latter as Lower, which is acceptable: a
/// batching change shows up as *some* class rather than hiding. What must
/// not happen is a quality metric landing in Informational; the tests pin
/// the load-bearing names.
fn classify(path: &str, old: f64, new: f64, rel_tol: f64) -> DiffClass {
    let dir = direction(path);
    if dir == Direction::Informational {
        return DiffClass::Informational;
    }
    // Non-finite leaves poison every comparison below (NaN compares false,
    // so a NaN quality metric used to fall through to `Unchanged` via the
    // else-arms, and ±inf could read as an "improvement"). A poisoned
    // snapshot must gate: only bitwise-identical non-finite pairs pass.
    if !old.is_finite() || !new.is_finite() {
        return if old.to_bits() == new.to_bits() {
            DiffClass::Unchanged
        } else {
            DiffClass::Regression
        };
    }
    let tol = rel_tol * old.abs().max(new.abs());
    if (new - old).abs() <= tol || new == old {
        return DiffClass::Unchanged;
    }
    match dir {
        Direction::Lower => {
            if new < old {
                DiffClass::Improvement
            } else {
                DiffClass::Regression
            }
        }
        Direction::Higher => {
            if new > old {
                DiffClass::Improvement
            } else {
                DiffClass::Regression
            }
        }
        Direction::Exact => DiffClass::Regression,
        Direction::Informational => unreachable!("returned above"),
    }
}

fn leaf_num(value: &Json) -> Option<f64> {
    match value {
        Json::Num(n) => Some(*n),
        Json::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
        // Non-finite numbers serialize as `null`; surface them as NaN so
        // they reach `classify`'s non-finite gate instead of reading as a
        // non-gating structural (type) change.
        Json::Null => Some(f64::NAN),
        _ => None,
    }
}

/// Path segment for an array element: benchmark-style objects are keyed
/// by their `name` field so rows stay addressable when reordered.
fn element_segment(item: &Json, index: usize) -> String {
    if let Json::Obj(pairs) = item {
        if let Some((_, Json::Str(name))) = pairs.iter().find(|(k, _)| k == "name") {
            return format!("[{name}]");
        }
    }
    format!("[{index}]")
}

fn join(path: &str, segment: &str) -> String {
    if path.is_empty() {
        segment.to_owned()
    } else if segment.starts_with('[') {
        format!("{path}{segment}")
    } else {
        format!("{path}.{segment}")
    }
}

fn walk(path: &str, old: &Json, new: &Json, rel_tol: f64, report: &mut DiffReport) {
    match (old, new) {
        (Json::Obj(old_pairs), Json::Obj(new_pairs)) => {
            for (k, ov) in old_pairs {
                match new_pairs.iter().find(|(nk, _)| nk == k) {
                    Some((_, nv)) => walk(&join(path, k), ov, nv, rel_tol, report),
                    None => report.removed.push(join(path, k)),
                }
            }
            for (k, _) in new_pairs {
                if !old_pairs.iter().any(|(ok, _)| ok == k) {
                    report.added.push(join(path, k));
                }
            }
        }
        (Json::Arr(old_items), Json::Arr(new_items)) => {
            for (i, ov) in old_items.iter().enumerate() {
                let seg = element_segment(ov, i);
                // Match by name when the element carries one, else by
                // position — snapshots keep stable row order either way.
                let matched = new_items
                    .iter()
                    .enumerate()
                    .find(|(j, nv)| element_segment(nv, *j) == seg)
                    .map(|(_, nv)| nv);
                match matched {
                    Some(nv) => walk(&join(path, &seg), ov, nv, rel_tol, report),
                    None => report.removed.push(join(path, &seg)),
                }
            }
            for (j, nv) in new_items.iter().enumerate() {
                let seg = element_segment(nv, j);
                if !old_items
                    .iter()
                    .enumerate()
                    .any(|(i, ov)| element_segment(ov, i) == seg)
                {
                    report.added.push(join(path, &seg));
                }
            }
        }
        (Json::Str(o), Json::Str(n)) => {
            if o != n {
                report
                    .strings_changed
                    .push((path.to_owned(), o.clone(), n.clone()));
            }
        }
        _ => match (leaf_num(old), leaf_num(new)) {
            (Some(o), Some(n)) => report.metrics.push(MetricDiff {
                path: path.to_owned(),
                old: o,
                new: n,
                class: classify(path, o, n, rel_tol),
            }),
            _ => {
                // Type changed (e.g. number → object): structural drift.
                report.removed.push(path.to_owned());
                report.added.push(path.to_owned());
            }
        },
    }
}

/// Compares two parsed snapshots. `rel_tol` is the relative tolerance
/// under which a quality metric counts as unchanged — 0 demands the
/// repo's usual bit-for-bit equality.
pub fn diff_snapshots(old: &Json, new: &Json, rel_tol: f64) -> DiffReport {
    let mut report = DiffReport::default();
    walk("", old, new, rel_tol, &mut report);
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn snapshot(makespan: f64, fidelity: f64, compile_s: f64) -> Json {
        Json::obj(vec![
            ("suite", Json::str("paper")),
            (
                "benchmarks",
                Json::Arr(vec![Json::obj(vec![
                    ("name", Json::str("QAOA")),
                    ("optimized_shuttles", Json::int(797)),
                    (
                        "clock",
                        Json::obj(vec![
                            ("clock_timed_makespan_us", Json::Num(makespan)),
                            ("program_fidelity", Json::Num(fidelity)),
                            ("compile_seconds", Json::Num(compile_s)),
                        ]),
                    ),
                    (
                        "profile",
                        Json::obj(vec![("wall_us", Json::Num(compile_s * 1e6))]),
                    ),
                ])]),
            ),
            ("all_clock_leq_packed", Json::Bool(true)),
        ])
    }

    #[test]
    fn identical_snapshots_have_no_changes() {
        let a = snapshot(220800.0, 1e-13, 1.5);
        let report = diff_snapshots(&a, &a, 0.0);
        assert_eq!(report.count(DiffClass::Regression), 0);
        assert_eq!(report.count(DiffClass::Improvement), 0);
        assert!(report.added.is_empty() && report.removed.is_empty());
        assert!(report.metrics.len() >= 4);
        assert!(report.to_markdown("a", "b").contains("no metric changed"));
    }

    #[test]
    fn direction_classifies_makespan_up_as_regression_and_fidelity_up_as_improvement() {
        let old = snapshot(220800.0, 1e-13, 1.5);
        let new = snapshot(230000.0, 2e-13, 9.0);
        let report = diff_snapshots(&old, &new, 0.0);
        let by_path = |needle: &str| {
            report
                .metrics
                .iter()
                .find(|m| m.path.contains(needle))
                .unwrap_or_else(|| panic!("no metric matching {needle}"))
        };
        assert_eq!(
            by_path("clock_timed_makespan_us").class,
            DiffClass::Regression
        );
        assert_eq!(by_path("program_fidelity").class, DiffClass::Improvement);
        // Wall-clock noise never gates, however large.
        assert_eq!(by_path("compile_seconds").class, DiffClass::Informational);
        assert_eq!(by_path("wall_us").class, DiffClass::Informational);
        assert_eq!(report.regressions().len(), 1);
        let md = report.to_markdown("OLD", "NEW");
        assert!(md.contains("benchmarks[QAOA].clock.clock_timed_makespan_us"));
        assert!(md.contains("| regression |"));
    }

    #[test]
    fn fidelity_attribution_subtree_is_informational() {
        // The per-benchmark `fidelity` attribution subtree is derived
        // observability (like `profile` and `explain`): its members carry
        // quality-looking names (`duration_loss`, `motional_share`) that
        // must never gate, while `clock.program_fidelity` outside the
        // subtree stays a quality metric.
        let with_attr = |loss: f64, fidelity: f64| {
            Json::obj(vec![(
                "benchmarks",
                Json::Arr(vec![Json::obj(vec![
                    ("name", Json::str("QAOA")),
                    (
                        "clock",
                        Json::obj(vec![("program_fidelity", Json::Num(fidelity))]),
                    ),
                    (
                        "fidelity",
                        Json::obj(vec![
                            ("total_log_loss", Json::Num(loss)),
                            ("duration_share", Json::Num(0.5)),
                            (
                                "hottest_traps",
                                Json::Arr(vec![Json::obj(vec![(
                                    "blamed_log_loss",
                                    Json::Num(loss / 2.0),
                                )])]),
                            ),
                        ]),
                    ),
                ])]),
            )])
        };
        let old = with_attr(0.05, 1e-13);
        let new = with_attr(0.09, 5e-14);
        let report = diff_snapshots(&old, &new, 0.0);
        for m in &report.metrics {
            if m.path.contains(".fidelity.") {
                assert_eq!(m.class, DiffClass::Informational, "{}", m.path);
            }
        }
        assert_eq!(report.regressions().len(), 1, "only program_fidelity gates");
        assert!(report.regressions()[0].path.ends_with("program_fidelity"));
    }

    #[test]
    fn tolerance_absorbs_small_drift_and_flags_cross_threshold_moves() {
        let old = snapshot(220800.0, 1e-13, 1.5);
        let new = snapshot(220810.0, 1e-13, 1.5);
        assert_eq!(
            diff_snapshots(&old, &new, 1e-3).count(DiffClass::Regression),
            0,
            "0.0045% drift sits inside a 0.1% tolerance"
        );
        assert_eq!(
            diff_snapshots(&old, &new, 0.0).count(DiffClass::Regression),
            1
        );
    }

    /// The bug this fixes: NaN compares false against everything, so a
    /// NaN quality leaf slid through the else-arms and classified as
    /// `Unchanged` — a poisoned snapshot passed the CI gate. Non-finite
    /// values on either side must regress unless bitwise-identical.
    #[test]
    fn non_finite_quality_leaves_gate_in_both_positions() {
        let cases: [(f64, f64); 6] = [
            (220800.0, f64::NAN),
            (f64::NAN, 220800.0),
            (220800.0, f64::INFINITY),
            (f64::INFINITY, 220800.0),
            (220800.0, f64::NEG_INFINITY),
            (f64::NEG_INFINITY, 220800.0),
        ];
        for (old_v, new_v) in cases {
            let old = snapshot(old_v, 1e-13, 1.5);
            let new = snapshot(new_v, 1e-13, 1.5);
            let report = diff_snapshots(&old, &new, 1e-3);
            let makespan = report
                .metrics
                .iter()
                .find(|m| m.path.contains("clock_timed_makespan_us"))
                .expect("makespan leaf compared");
            assert_eq!(
                makespan.class,
                DiffClass::Regression,
                "{old_v} -> {new_v} must gate"
            );
        }
        // Bitwise-identical non-finite pairs are the one carve-out: a
        // snapshot that was already poisoned identically does not re-gate.
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let a = snapshot(v, 1e-13, 1.5);
            let report = diff_snapshots(&a, &a, 0.0);
            assert_eq!(report.count(DiffClass::Regression), 0, "{v} vs itself");
        }
        // But +inf vs -inf (same magnitude, different bits) still gates.
        let report = diff_snapshots(
            &snapshot(f64::INFINITY, 1e-13, 1.5),
            &snapshot(f64::NEG_INFINITY, 1e-13, 1.5),
            0.0,
        );
        assert_eq!(report.count(DiffClass::Regression), 1);
    }

    /// Non-finite numbers render as `null`; a round-tripped poisoned
    /// snapshot must still gate rather than read as structural drift.
    #[test]
    fn null_leaves_classify_as_poisoned_numbers() {
        let old = parse(&snapshot(220800.0, 1e-13, 1.5).to_string()).unwrap();
        let new = parse(&snapshot(f64::NAN, 1e-13, 1.5).to_string()).unwrap();
        let report = diff_snapshots(&old, &new, 0.0);
        assert_eq!(report.regressions().len(), 1, "null leaf gates");
        assert!(report.regressions()[0]
            .path
            .contains("clock_timed_makespan_us"));
        // Identically-poisoned on both sides: NaN round-trips to null on
        // both sides, and null == null bitwise (both NaN) stays unchanged.
        let both = diff_snapshots(&new, &new, 0.0);
        assert_eq!(both.count(DiffClass::Regression), 0);
    }

    #[test]
    fn structural_drift_is_surfaced_and_flags_regress_when_cleared() {
        let old = snapshot(220800.0, 1e-13, 1.5);
        let mut new = snapshot(220800.0, 1e-13, 1.5);
        if let Json::Obj(pairs) = &mut new {
            pairs.retain(|(k, _)| k != "all_clock_leq_packed");
            pairs.push(("new_gate".to_owned(), Json::Bool(true)));
        }
        let report = diff_snapshots(&old, &new, 0.0);
        assert_eq!(report.removed, vec!["all_clock_leq_packed".to_owned()]);
        assert_eq!(report.added, vec!["new_gate".to_owned()]);

        let mut cleared = snapshot(220800.0, 1e-13, 1.5);
        if let Json::Obj(pairs) = &mut cleared {
            if let Some((_, v)) = pairs.iter_mut().find(|(k, _)| k == "all_clock_leq_packed") {
                *v = Json::Bool(false);
            }
        }
        let report = diff_snapshots(&old, &cleared, 0.0);
        assert_eq!(report.regressions().len(), 1, "true→false on an all_ flag");
    }

    #[test]
    fn diffs_real_rendered_documents() {
        let old = parse(&snapshot(220800.0, 1e-13, 1.5).to_string()).unwrap();
        let new = parse(&snapshot(219000.0, 1e-13, 2.5).to_string()).unwrap();
        let report = diff_snapshots(&old, &new, 0.0);
        assert_eq!(report.count(DiffClass::Regression), 0);
        assert_eq!(report.count(DiffClass::Improvement), 1, "makespan down");
        let json = report.to_json("a.json", "b.json").to_string();
        assert!(json.contains("\"regressions\": 0"));
        assert!(json.contains("\"class\": \"improvement\""));
    }
}
