//! A minimal JSON value tree for snapshot emission.
//!
//! The workspace's serde dependency is a vendored marker-trait stub (the
//! container builds offline), so the `BENCH` snapshots are rendered by
//! hand here — the same value model and formatting as the `muzzle`
//! driver's reports (RFC 8259 output, stable key order, two-space
//! indent, integral numbers printed without a fraction), so a profile
//! snapshot's quality rows are byte-comparable against `muzzle eval`
//! JSON output.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone)]
#[allow(dead_code)] // `Null` is part of the value model even while unemitted
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// String value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Integer value (exact for |n| ≤ 2⁵³).
    pub fn int(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(value: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let inner_pad = "  ".repeat(indent + 1);
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if !n.is_finite() {
                out.push_str("null");
            } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::Str(s) => escape(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&inner_pad);
                render(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, v)) in pairs.iter().enumerate() {
                out.push_str(&inner_pad);
                escape(k, out);
                out.push_str(": ");
                render(v, indent + 1, out);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        render(self, 0, &mut out);
        f.write_str(&out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_integers_without_fraction_and_floats_verbatim() {
        let v = Json::obj(vec![
            ("shuttles", Json::int(42)),
            ("makespan_us", Json::Num(220800.0)),
            ("ratio", Json::Num(0.5)),
            ("ok", Json::Bool(true)),
        ]);
        let text = v.to_string();
        assert!(text.contains("\"shuttles\": 42"));
        assert!(text.contains("\"makespan_us\": 220800"));
        assert!(text.contains("\"ratio\": 0.5"));
        assert!(text.contains("\"ok\": true"));
    }

    #[test]
    fn escapes_strings_and_nulls_non_finite() {
        assert_eq!(Json::str("a\"b\\c").to_string(), r#""a\"b\\c""#);
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }
}
