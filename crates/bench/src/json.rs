//! A minimal JSON value tree for snapshot emission and re-reading.
//!
//! The workspace's serde dependency is a vendored marker-trait stub (the
//! container builds offline), so the `BENCH` snapshots are rendered by
//! hand here — the same value model and formatting as the `muzzle`
//! driver's reports (RFC 8259 output, stable key order, two-space
//! indent, integral numbers printed without a fraction), so a profile
//! snapshot's quality rows are byte-comparable against `muzzle eval`
//! JSON output. [`parse`] reads any RFC 8259 document back into the same
//! value model (Rust's shortest-roundtrip float formatting makes
//! render-then-parse bit-exact), which is what `paper_eval diff` and the
//! `paper_eval explain` parity gate walk.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
#[allow(dead_code)] // `Null` is part of the value model even while unemitted
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number; non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object from `(key, value)` pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// String value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Integer value (exact for |n| ≤ 2⁵³).
    pub fn int(n: usize) -> Json {
        Json::Num(n as f64)
    }
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(value: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let inner_pad = "  ".repeat(indent + 1);
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => {
            if !n.is_finite() {
                out.push_str("null");
            } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::Str(s) => escape(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&inner_pad);
                render(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Json::Obj(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, v)) in pairs.iter().enumerate() {
                out.push_str(&inner_pad);
                escape(k, out);
                out.push_str(": ");
                render(v, indent + 1, out);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        render(self, 0, &mut out);
        f.write_str(&out)
    }
}

/// Parses an RFC 8259 document into a [`Json`] value.
///
/// Hand-written recursive descent (no serde in this workspace): objects
/// keep key order, numbers parse through `f64::from_str` (so values this
/// module rendered round-trip bit-for-bit), strings handle the standard
/// escapes including `\uXXXX` surrogate pairs.
///
/// # Errors
///
/// Returns a message naming the byte offset of the first syntax error,
/// including trailing garbage after the document.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(value)
}

/// `value` with every object entry whose key satisfies `drop` removed,
/// recursively — how the `paper_eval explain` parity gate strips
/// wall-clock and instrumentation fields before asserting two snapshots
/// bit-for-bit equal.
pub fn strip_keys(value: &Json, drop: &dyn Fn(&str) -> bool) -> Json {
    match value {
        Json::Arr(items) => Json::Arr(items.iter().map(|v| strip_keys(v, drop)).collect()),
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| !drop(k))
                .map(|(k, v)| (k.clone(), strip_keys(v, drop)))
                .collect(),
        ),
        other => other.clone(),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.bytes.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("invalid number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos + 1..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                                } else {
                                    return Err(format!("lone surrogate at byte {}", self.pos));
                                }
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("bad escape at byte {}", self.pos))?,
                            );
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_owned())?;
                    let c = rest.chars().next().expect("non-empty remainder");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the 4 hex digits after `\u`; leaves `pos` on the last digit.
    fn hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            self.pos += 1;
            let d = match self.bytes.get(self.pos) {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(format!("bad \\u escape at byte {}", self.pos)),
            };
            code = code * 16 + d;
        }
        Ok(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_integers_without_fraction_and_floats_verbatim() {
        let v = Json::obj(vec![
            ("shuttles", Json::int(42)),
            ("makespan_us", Json::Num(220800.0)),
            ("ratio", Json::Num(0.5)),
            ("ok", Json::Bool(true)),
        ]);
        let text = v.to_string();
        assert!(text.contains("\"shuttles\": 42"));
        assert!(text.contains("\"makespan_us\": 220800"));
        assert!(text.contains("\"ratio\": 0.5"));
        assert!(text.contains("\"ok\": true"));
    }

    #[test]
    fn escapes_strings_and_nulls_non_finite() {
        assert_eq!(Json::str("a\"b\\c").to_string(), r#""a\"b\\c""#);
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parse_round_trips_rendered_snapshots_bit_for_bit() {
        let v = Json::obj(vec![
            ("name", Json::str("QAOA")),
            ("makespan_us", Json::Num(220800.0)),
            ("fidelity", Json::Num(2.538297576903837e-13)),
            ("delta_percent", Json::Num(28.405017921146955)),
            ("improved", Json::Bool(true)),
            ("none", Json::Null),
            (
                "rows",
                Json::Arr(vec![Json::int(1), Json::Num(-0.5), Json::Num(1e-300)]),
            ),
            ("empty_obj", Json::obj(vec![])),
            ("empty_arr", Json::Arr(vec![])),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn parse_handles_escapes_and_rejects_garbage() {
        assert_eq!(
            parse(r#""a\"b\\c\ndA😀""#).unwrap(),
            Json::str("a\"b\\c\ndA\u{1F600}")
        );
        assert_eq!(
            parse("\"\\ud83d\\ude00A\"").unwrap(),
            Json::str("\u{1F600}A"),
            "surrogate pair"
        );
        assert!(parse(r#""\ud83d alone""#).is_err(), "lone surrogate");
        assert_eq!(parse(" 42 ").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e-3").unwrap(), Json::Num(-0.0015));
        assert!(parse("").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("12 34").is_err(), "trailing garbage");
        assert!(parse("\"open").is_err(), "unterminated string");
        assert!(parse("nul").is_err());
    }

    #[test]
    fn strip_keys_removes_matching_entries_recursively() {
        let v = Json::obj(vec![
            ("keep", Json::int(1)),
            ("profile", Json::obj(vec![("x", Json::int(2))])),
            (
                "nested",
                Json::Arr(vec![Json::obj(vec![
                    ("compile_seconds_full", Json::Num(0.5)),
                    ("shuttles", Json::int(3)),
                ])]),
            ),
        ]);
        let stripped = strip_keys(&v, &|k| k == "profile" || k.starts_with("compile_seconds"));
        assert_eq!(
            stripped,
            Json::obj(vec![
                ("keep", Json::int(1)),
                (
                    "nested",
                    Json::Arr(vec![Json::obj(vec![("shuttles", Json::int(3))])]),
                ),
            ])
        );
    }
}
