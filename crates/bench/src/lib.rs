//! Evaluation harness regenerating every table and figure of the paper.
//!
//! The [`paper_eval`](../paper_eval/index.html) binary drives this library:
//!
//! ```text
//! cargo run -p qccd-bench --release --bin paper_eval -- all
//! ```
//!
//! | Subcommand  | Paper artefact |
//! |-------------|----------------|
//! | `table2`    | Table II — reduction in the number of shuttles |
//! | `fig8`      | Fig. 8 — program-fidelity improvement |
//! | `table3`    | Table III — compilation-time overhead |
//! | `ablation`  | per-heuristic contribution (§III design choices) |
//! | `proximity` | §III-A3 proximity design-parameter sweep |
//! | `all`       | everything above |
//!
//! Random-suite size defaults to the paper's 30 circuits per qubit count
//! (120 total); pass `--per-size N` to shrink it for quick runs.

pub mod diff;
pub mod json;
pub mod profile;

use qccd_circuit::generators::{paper_suite, random_suite, BenchmarkCircuit};
use qccd_circuit::Circuit;
use qccd_core::{compile, CompileResult, CompilerConfig, Objective, RouterPolicy, ScoreMode};
use qccd_machine::{MachineSpec, TrapTopology};
use qccd_route::TransportSchedule;
use qccd_sim::{attribute_fidelity_timed, simulate_timed, simulate_traced, SimParams, SimReport};
use qccd_timing::TimingModel;
use std::time::Instant;

/// Seed used for the random benchmark suite, fixed for reproducibility.
pub const RANDOM_SUITE_SEED: u64 = 0xDA7E_2022;

/// Samples per compile-seconds measurement (see [`min_compile_seconds`]).
pub const TIMING_RUNS: usize = 3;

/// One benchmark compiled under both configurations.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Benchmark name (Table II's first column).
    pub name: String,
    /// Qubit count.
    pub qubits: u32,
    /// Two-qubit gate count (Table II's "2Q gates").
    pub two_qubit_gates: usize,
    /// Baseline shuttle count (the paper's "\[7\]" column in Table II).
    pub baseline_shuttles: usize,
    /// Optimized shuttle count ("This Work").
    pub optimized_shuttles: usize,
    /// Baseline compile time, seconds.
    pub baseline_compile_s: f64,
    /// Optimized compile time, seconds.
    pub optimized_compile_s: f64,
    /// Baseline simulation report.
    pub baseline_sim: SimReport,
    /// Optimized simulation report.
    pub optimized_sim: SimReport,
    /// Shuttle count of the optimized compiler under the congestion-aware
    /// router (must never exceed `optimized_shuttles`, the serial router's
    /// count).
    pub congestion_shuttles: usize,
    /// Concurrent transport depth of the congestion-routed schedule (the
    /// serial router's depth is its shuttle count).
    pub transport_depth: usize,
    /// Simulation of the congestion-routed schedule with rounds timed
    /// concurrently.
    pub transport_sim: SimReport,
    /// Shuttle count after the `qccd-pack` passes (layer planning can drop
    /// net-zero walks, so this may dip below `congestion_shuttles`).
    pub packed_shuttles: usize,
    /// Transport depth after the `qccd-pack` passes.
    pub packed_depth: usize,
    /// Lookahead-packed timed makespan under the row's timing model — the
    /// baseline the packer optimizes, µs.
    pub lookahead_timed_makespan_us: f64,
    /// Packed timed makespan under the row's timing model, µs (never above
    /// `lookahead_timed_makespan_us`; the packer falls back otherwise).
    pub packed_timed_makespan_us: f64,
    /// Simulation of the packed schedule.
    pub packed_sim: SimReport,
    /// Timed makespan of the clock-objective pipeline's chosen result
    /// under the row's timing model, µs (never above
    /// `packed_timed_makespan_us`; `compile_clock` falls back otherwise).
    pub clock_timed_makespan_us: f64,
    /// The clock pipeline's stats (ties broken, batched layers, whether
    /// the clock candidate strictly won).
    pub clock_stats: qccd_pack::ClockStats,
    /// Simulation of the clock pipeline's chosen schedule.
    pub clock_sim: SimReport,
    /// Wall-clock seconds of the clock-objective compile loop under the
    /// default delta scorer (`--score-mode delta`). Like
    /// `baseline_compile_s`/`optimized_compile_s` this times
    /// [`qccd_core::compile`] — the loop where candidate scoring lives —
    /// not the mode-independent post-compile pack passes.
    pub clock_compile_s: f64,
    /// Wall-clock seconds of the same compile loop under the full
    /// re-lower oracle (`--score-mode full`, which replays the whole
    /// committed schedule per candidate) — the figure the delta scorer's
    /// speed-up is measured against.
    pub clock_full_compile_s: f64,
    /// Idle fraction of the machine over the optimized schedule's traced
    /// replay ([`qccd_sim::simulate_traced`]): `1 − mean(trap busy) /
    /// makespan`, in `[0, 1]`.
    pub idle_fraction: f64,
    /// Index of the busiest trap in that replay (ties go to the lowest
    /// index).
    pub hottest_trap: usize,
    /// Busy time of the hottest trap, µs.
    pub hottest_trap_busy_us: f64,
    /// Duration (`Γτ`) share of the clock schedule's decomposed log loss,
    /// in `[0, 1]`, from the bit-for-bit fidelity attribution pass
    /// ([`qccd_sim::attribute_fidelity_timed`]).
    pub clock_duration_share: f64,
    /// Motional (`A(2n̄+1)`) share of the same decomposition, in `[0, 1]`.
    /// The remainder up to 1 is the fixed shuttle-pulse loss.
    pub clock_motional_share: f64,
}

impl ComparisonRow {
    /// Shuttle reduction `Δ` (Table II).
    pub fn delta(&self) -> i64 {
        self.baseline_shuttles as i64 - self.optimized_shuttles as i64
    }

    /// Percentage shuttle reduction `%Δ` (Table II).
    pub fn delta_percent(&self) -> f64 {
        if self.baseline_shuttles == 0 {
            return 0.0;
        }
        100.0 * self.delta() as f64 / self.baseline_shuttles as f64
    }

    /// Fidelity improvement factor (Fig. 8).
    pub fn fidelity_improvement(&self) -> f64 {
        self.optimized_sim
            .fidelity_improvement_over(&self.baseline_sim)
    }

    /// Compile-time overhead `Δ↑` in seconds (Table III).
    pub fn compile_overhead_s(&self) -> f64 {
        self.optimized_compile_s - self.baseline_compile_s
    }

    /// Transport-depth reduction of concurrent rounds over serial
    /// transport: `optimized_shuttles − transport_depth`.
    pub fn depth_delta(&self) -> i64 {
        self.optimized_shuttles as i64 - self.transport_depth as i64
    }
}

/// Compiles `circuit` under `config`, measuring wall-clock compile time.
///
/// # Panics
///
/// Panics if compilation fails — the harness only runs benchmarks that fit
/// the evaluation machine.
pub fn timed_compile(
    circuit: &Circuit,
    spec: &MachineSpec,
    config: &CompilerConfig,
) -> (CompileResult, f64) {
    let start = Instant::now();
    let result = compile(circuit, spec, config).expect("benchmark circuits fit the paper machine");
    (result, start.elapsed().as_secs_f64())
}

/// Minimum wall-clock seconds over `runs` compiles of `circuit` under
/// `config`. The compile is deterministic, so the minimum is the
/// noise-resistant point estimate: any sample above it is scheduler
/// interference, not work.
///
/// # Panics
///
/// As [`timed_compile`].
pub fn min_compile_seconds(
    circuit: &Circuit,
    spec: &MachineSpec,
    config: &CompilerConfig,
    runs: usize,
) -> f64 {
    (0..runs.max(1))
        .map(|_| timed_compile(circuit, spec, config).1)
        .fold(f64::INFINITY, f64::min)
}

/// Runs one benchmark under baseline and optimized configurations and
/// simulates both schedules under the uniform-hop (ideal) timing model —
/// the paper-parity comparison.
pub fn compare(bench: &BenchmarkCircuit, spec: &MachineSpec, params: &SimParams) -> ComparisonRow {
    compare_timed(bench, spec, params, &TimingModel::ideal())
}

/// Runs one benchmark under baseline and optimized configurations and
/// simulates both schedules on `model`'s timed event timeline.
///
/// Also compiles with the congestion router (depth/makespan columns) and
/// with the full packed stack — congestion + lookahead + `qccd-pack`
/// scored under `model` — to fill the packed columns; callers that only
/// need the serial pair (and care about the extra compile cost) should
/// drive [`timed_compile`] directly.
pub fn compare_timed(
    bench: &BenchmarkCircuit,
    spec: &MachineSpec,
    params: &SimParams,
    model: &TimingModel,
) -> ComparisonRow {
    compare_timed_jobs(bench, spec, params, model, 1)
}

/// [`compare_timed`] with a worker-pool width for the packed/clock
/// stacks (`--jobs`). Every width returns bit-for-bit identical rows —
/// only the `*_compile_s` wall-clock fields may differ.
pub fn compare_timed_jobs(
    bench: &BenchmarkCircuit,
    spec: &MachineSpec,
    params: &SimParams,
    model: &TimingModel,
    jobs: usize,
) -> ComparisonRow {
    let (base, base_t) = timed_compile(&bench.circuit, spec, &CompilerConfig::baseline());
    let (opt, opt_t) = timed_compile(&bench.circuit, spec, &CompilerConfig::optimized());
    let (cong, _) = timed_compile(
        &bench.circuit,
        spec,
        &CompilerConfig::optimized().with_router(RouterPolicy::congestion()),
    );
    let (packed, pack_stats) = qccd_pack::compile_packed(
        &bench.circuit,
        spec,
        &CompilerConfig::optimized()
            .with_router(RouterPolicy::congestion())
            .with_timing(*model)
            .with_jobs(jobs),
    )
    .expect("benchmark circuits compile and pack on the paper machine");
    // Race the clock objective against the packed result already computed
    // above (same config and model), rather than recompiling that stack.
    let (clock, clock_stats) = qccd_pack::race_clock(
        packed.clone(),
        &bench.circuit,
        spec,
        &CompilerConfig::optimized()
            .with_timing(*model)
            .with_jobs(jobs),
    )
    .expect("benchmark circuits compile under the clock objective");
    // Time the clock-objective *compile loop* under both score modes —
    // the same section `baseline_compile_s`/`optimized_compile_s` time,
    // and the one candidate scoring runs in. Bit-for-bit result parity
    // between the modes is asserted by `delta_parity` / `paper_eval
    // delta`, not here.
    let clock_config = CompilerConfig::optimized()
        .with_timing(*model)
        .with_objective(Objective::Clock)
        .with_jobs(jobs);
    let clock_compile_s = min_compile_seconds(&bench.circuit, spec, &clock_config, TIMING_RUNS);
    let clock_full_compile_s = min_compile_seconds(
        &bench.circuit,
        spec,
        &clock_config.with_score_mode(ScoreMode::Full),
        TIMING_RUNS,
    );
    let baseline_sim = simulate_timed(
        &base.schedule,
        &base.transport,
        &bench.circuit,
        spec,
        params,
        model,
    )
    .expect("compiled schedules are valid by construction");
    let optimized_sim = simulate_timed(
        &opt.schedule,
        &opt.transport,
        &bench.circuit,
        spec,
        params,
        model,
    )
    .expect("compiled schedules are valid by construction");
    let transport_sim = simulate_timed(
        &cong.schedule,
        &cong.transport,
        &bench.circuit,
        spec,
        params,
        model,
    )
    .expect("round-packed schedules are valid by construction");
    let packed_sim = simulate_timed(
        &packed.schedule,
        &packed.transport,
        &bench.circuit,
        spec,
        params,
        model,
    )
    .expect("packed schedules are valid by construction");
    let clock_sim = simulate_timed(
        &clock.schedule,
        &clock.transport,
        &bench.circuit,
        spec,
        params,
        model,
    )
    .expect("clock-objective schedules are valid by construction");
    // Per-trap utilization of the optimized ("This Work") schedule: the
    // traced replay mirrors `optimized_sim`'s serial replay, so its busy
    // figures describe the same run the headline columns report.
    let optimized_trace = simulate_traced(&opt.schedule, &bench.circuit, spec, params)
        .expect("compiled schedules are valid by construction");
    let idle_fraction = optimized_trace.idle_fraction();
    let (hottest_trap, hottest_trap_busy_us) = optimized_trace
        .hottest_trap()
        .expect("machines have at least one trap");
    // Fidelity-loss split of the clock artifact (the headline timed
    // schedule): duration vs motional share of the log loss, from the
    // attribution pass whose terms reproduce `clock_sim`'s
    // log_program_fidelity bit for bit.
    let clock_attr = attribute_fidelity_timed(
        &clock.schedule,
        &clock.transport,
        &bench.circuit,
        spec,
        params,
        model,
    )
    .expect("clock-objective schedules are valid by construction");
    assert!(
        clock_attr.identity_holds(),
        "fidelity attribution identity must hold on benchmark schedules"
    );
    let clock_duration_share = clock_attr.duration_share();
    let clock_motional_share = clock_attr.motional_share();
    ComparisonRow {
        name: bench.name.clone(),
        qubits: bench.circuit.num_qubits(),
        two_qubit_gates: bench.circuit.two_qubit_gate_count(),
        baseline_shuttles: base.stats.shuttles,
        optimized_shuttles: opt.stats.shuttles,
        baseline_compile_s: base_t,
        optimized_compile_s: opt_t,
        baseline_sim,
        optimized_sim,
        congestion_shuttles: cong.stats.shuttles,
        transport_depth: cong.stats.transport_depth,
        transport_sim,
        packed_shuttles: packed.stats.shuttles,
        packed_depth: packed.stats.transport_depth,
        lookahead_timed_makespan_us: pack_stats.input_makespan_us,
        packed_timed_makespan_us: pack_stats.packed_makespan_us,
        packed_sim,
        clock_timed_makespan_us: clock_stats.chosen_makespan_us,
        clock_stats,
        clock_sim,
        clock_compile_s,
        clock_full_compile_s,
        idle_fraction,
        hottest_trap,
        hottest_trap_busy_us,
        clock_duration_share,
        clock_motional_share,
    }
}

/// Runs the five named NISQ benchmarks (Table II's upper rows).
pub fn run_nisq_suite(spec: &MachineSpec, params: &SimParams) -> Vec<ComparisonRow> {
    paper_suite()
        .iter()
        .map(|b| compare(b, spec, params))
        .collect()
}

/// Runs the random suite (`per_size` circuits × 4 qubit counts) and also
/// returns the per-circuit rows.
pub fn run_random_suite(
    spec: &MachineSpec,
    params: &SimParams,
    per_size: usize,
) -> Vec<ComparisonRow> {
    random_suite(per_size, RANDOM_SUITE_SEED)
        .iter()
        .map(|b| compare(b, spec, params))
        .collect()
}

/// One cell of the topology × router sweep: one circuit compiled with the
/// optimized policy stack on one interconnect under one router.
#[derive(Debug, Clone)]
pub struct TopologyRouterRow {
    /// Benchmark name.
    pub name: String,
    /// Topology display form (`L6`, `R6`, `G2x3`, ...).
    pub topology: String,
    /// Router display form (`serial`, `congestion(penalty=6)`).
    pub router: String,
    /// Shuttle hops emitted.
    pub shuttles: usize,
    /// Concurrent transport depth (equals `shuttles` under serial).
    pub depth: usize,
    /// Simulated makespan, µs (rounds timed concurrently under the
    /// congestion router).
    pub makespan_us: f64,
    /// Simulated program fidelity (log form, exact under underflow).
    pub log_program_fidelity: f64,
}

/// The standard interconnects for `n` traps: linear, ring, and the most
/// square grid factorisation (omitted when `n` is prime or `< 4`).
pub fn standard_topologies(n: u32) -> Vec<TrapTopology> {
    let mut out = vec![TrapTopology::linear(n)];
    if n >= 3 {
        out.push(TrapTopology::ring(n));
    }
    let mut best: Option<(u32, u32)> = None;
    for r in 2..=n {
        if n.is_multiple_of(r) && n / r >= 2 {
            let c = n / r;
            if best.is_none_or(|(br, bc)| r.abs_diff(c) < br.abs_diff(bc)) {
                best = Some((r, c));
            }
        }
    }
    if let Some((r, c)) = best {
        out.push(TrapTopology::grid(r, c));
    }
    out
}

/// Runs every benchmark × topology × router combination with the optimized
/// policy stack: the scenario-diversity sweep the routing subsystem
/// unlocks. Machines use `capacity`/`comm` per trap on each topology.
///
/// # Panics
///
/// Panics if a machine spec is invalid or a benchmark does not fit it.
pub fn run_topology_router_sweep(
    benches: &[BenchmarkCircuit],
    topologies: &[TrapTopology],
    capacity: u32,
    comm: u32,
    params: &SimParams,
) -> Vec<TopologyRouterRow> {
    let mut rows = Vec::new();
    for bench in benches {
        for topology in topologies {
            let spec = MachineSpec::new(topology.clone(), capacity, comm)
                .expect("sweep machine parameters are valid");
            for router in [RouterPolicy::Serial, RouterPolicy::congestion()] {
                let config = CompilerConfig::optimized().with_router(router);
                let (result, _) = timed_compile(&bench.circuit, &spec, &config);
                let sim = simulate_timed(
                    &result.schedule,
                    &result.transport,
                    &bench.circuit,
                    &spec,
                    params,
                    &TimingModel::ideal(),
                )
                .expect("compiled schedules are valid by construction");
                rows.push(TopologyRouterRow {
                    name: bench.name.clone(),
                    topology: topology.to_string(),
                    router: router.to_string(),
                    shuttles: result.stats.shuttles,
                    depth: result.stats.transport_depth,
                    makespan_us: sim.makespan_us,
                    log_program_fidelity: sim.log_program_fidelity,
                });
            }
        }
    }
    rows
}

/// One cell of the timing-model sweep: one benchmark compiled with the
/// optimized stack under one router, replayed under one timing model.
#[derive(Debug, Clone)]
pub struct TimingSweepRow {
    /// Benchmark name.
    pub name: String,
    /// Router display form.
    pub router: String,
    /// Timing-model display form (`ideal`, `realistic`).
    pub timing: String,
    /// Concurrent transport depth.
    pub depth: usize,
    /// Timed makespan under the model, µs.
    pub timed_makespan_us: f64,
    /// Junction endpoints crossed by the schedule's shuttles.
    pub junction_crossings: usize,
    /// Simulated program fidelity (log form, exact under underflow).
    pub log_program_fidelity: f64,
}

/// Runs every benchmark × router × timing-model combination with the
/// optimized policy stack — the sweep the timing subsystem unlocks: how
/// much of the uniform-hop makespan survives junction corner/swap costs
/// and finite segment speeds.
///
/// # Panics
///
/// Panics if a benchmark does not fit `spec`.
pub fn run_timing_sweep(
    benches: &[BenchmarkCircuit],
    spec: &MachineSpec,
    params: &SimParams,
) -> Vec<TimingSweepRow> {
    let mut rows = Vec::new();
    for bench in benches {
        for router in [RouterPolicy::Serial, RouterPolicy::congestion()] {
            let config = CompilerConfig::optimized().with_router(router);
            let (result, _) = timed_compile(&bench.circuit, spec, &config);
            for model in [TimingModel::ideal(), TimingModel::realistic()] {
                let sim = simulate_timed(
                    &result.schedule,
                    &result.transport,
                    &bench.circuit,
                    spec,
                    params,
                    &model,
                )
                .expect("compiled schedules are valid by construction");
                rows.push(TimingSweepRow {
                    name: bench.name.clone(),
                    router: router.to_string(),
                    timing: model.to_string(),
                    depth: result.stats.transport_depth,
                    timed_makespan_us: sim.timed_makespan_us,
                    junction_crossings: sim.junction_crossings,
                    log_program_fidelity: sim.log_program_fidelity,
                });
            }
        }
    }
    rows
}

/// Before/after depths of lookahead round packing on one benchmark: the
/// greedy packer's transport depth against the first-fit backfill packer's.
#[derive(Debug, Clone)]
pub struct LookaheadRow {
    /// Benchmark name.
    pub name: String,
    /// Transport depth of the greedy (current-round-or-new) packer.
    pub greedy_depth: usize,
    /// Transport depth after first-fit backfill into earlier rounds.
    pub lookahead_depth: usize,
}

/// Measures lookahead round packing against the greedy packer on every
/// benchmark (optimized stack, congestion router).
///
/// # Panics
///
/// Panics if a benchmark does not fit `spec`.
pub fn lookahead_packing_gains(
    benches: &[BenchmarkCircuit],
    spec: &MachineSpec,
) -> Vec<LookaheadRow> {
    benches
        .iter()
        .map(|bench| {
            let config = CompilerConfig::optimized().with_router(RouterPolicy::congestion());
            let (greedy, _) = timed_compile(&bench.circuit, spec, &config);
            let packed = TransportSchedule::pack_lookahead(&greedy.schedule, spec)
                .expect("compiled schedules repack");
            packed
                .validate_relaxed(&greedy.schedule, spec)
                .expect("lookahead packing must replay-validate");
            LookaheadRow {
                name: bench.name.clone(),
                greedy_depth: greedy.stats.transport_depth,
                lookahead_depth: packed.depth(),
            }
        })
        .collect()
}

/// Before/after numbers for the timeline-driven `qccd-pack` optimizer on
/// one benchmark: greedy vs lookahead vs packed transport, counted in
/// rounds and — the metric packing optimizes — timed makespan under the
/// realistic device model.
#[derive(Debug, Clone)]
pub struct PackRow {
    /// Benchmark name.
    pub name: String,
    /// Transport depth of the greedy in-run packer.
    pub greedy_depth: usize,
    /// Transport depth after lookahead backfill.
    pub lookahead_depth: usize,
    /// Transport depth after cross-gate packing + layer planning.
    pub packed_depth: usize,
    /// Shuttle hops after packing (layer planning can drop net-zero walks).
    pub packed_shuttles: usize,
    /// Greedy-packed timed makespan (realistic model), µs.
    pub greedy_makespan_us: f64,
    /// Lookahead timed makespan (realistic model), µs.
    pub lookahead_makespan_us: f64,
    /// Packed timed makespan (realistic model), µs.
    pub packed_makespan_us: f64,
    /// Hops hoisted across at least one gate.
    pub hoisted_hops: usize,
    /// Gate-free runs rewritten by the batched layer planner.
    pub replanned_runs: usize,
}

/// Measures the `qccd-pack` passes against the greedy and lookahead
/// packers on every benchmark (optimized stack, congestion router,
/// realistic timing — the configuration the pack acceptance criteria are
/// stated in).
///
/// # Panics
///
/// Panics if a benchmark does not fit `spec` or a packed schedule fails
/// its validators (never silent).
pub fn pack_gains(benches: &[BenchmarkCircuit], spec: &MachineSpec) -> Vec<PackRow> {
    let model = TimingModel::realistic();
    benches
        .iter()
        .map(|bench| {
            let config = CompilerConfig::optimized()
                .with_router(RouterPolicy::congestion())
                .with_lookahead(true)
                .with_timing(model);
            let (lookahead, _) = timed_compile(&bench.circuit, spec, &config);
            let greedy = TransportSchedule::pack_concurrent(&lookahead.schedule, spec)
                .expect("compiled schedules repack");
            let greedy_timeline = qccd_timing::lower(
                &lookahead.schedule,
                Some(&greedy),
                &bench.circuit,
                spec,
                &model,
            )
            .expect("greedy rounds lower");
            let packed = qccd_pack::pack(
                &lookahead,
                &bench.circuit,
                spec,
                &qccd_pack::PackConfig::for_model(model),
            )
            .expect("packing validates on compiled schedules");
            PackRow {
                name: bench.name.clone(),
                greedy_depth: greedy.depth(),
                lookahead_depth: lookahead.transport.depth(),
                packed_depth: packed.stats.packed_depth,
                packed_shuttles: packed.schedule.stats().shuttles,
                greedy_makespan_us: greedy_timeline.makespan_us,
                lookahead_makespan_us: packed.stats.input_makespan_us,
                packed_makespan_us: packed.stats.packed_makespan_us,
                hoisted_hops: packed.stats.hoisted_hops,
                replanned_runs: packed.stats.replanned_runs,
            }
        })
        .collect()
}

/// Before/after numbers for the timed compile-loop objective on one
/// benchmark: the default-objective packed stack against the
/// clock-objective pipeline (`qccd_pack::compile_clock`), under the
/// realistic device model — the configuration the objective acceptance
/// criteria are stated in.
#[derive(Debug, Clone)]
pub struct ObjectiveRow {
    /// Benchmark name.
    pub name: String,
    /// Timed makespan of the default-objective packed stack, µs.
    pub packed_makespan_us: f64,
    /// Timed makespan of the clock-objective candidate, µs.
    pub clock_makespan_us: f64,
    /// Timed makespan of the chosen (never-regress) result, µs.
    pub chosen_makespan_us: f64,
    /// Open decisions re-arbitrated on the projected clock.
    pub clock_ties: usize,
    /// Gate-free layers planned as batched multi-commodity flows.
    pub batched_layers: usize,
    /// Hops emitted by those batched layers.
    pub batched_hops: usize,
    /// Shuttle hops of the chosen result.
    pub chosen_shuttles: usize,
    /// Transport depth of the chosen result.
    pub chosen_depth: usize,
    /// `true` when the clock candidate strictly beat the packed stack.
    pub improved: bool,
}

/// Measures the clock compile-loop objective against the packed stack on
/// every benchmark (optimized policy stack, realistic timing).
///
/// # Panics
///
/// Panics if a benchmark does not fit `spec` or a pipeline fails its
/// validators (never silent).
pub fn objective_gains(benches: &[BenchmarkCircuit], spec: &MachineSpec) -> Vec<ObjectiveRow> {
    let model = TimingModel::realistic();
    benches
        .iter()
        .map(|bench| {
            let config = CompilerConfig::optimized().with_timing(model);
            let (chosen, stats) = qccd_pack::compile_clock(&bench.circuit, spec, &config)
                .expect("benchmark circuits compile under both objectives");
            ObjectiveRow {
                name: bench.name.clone(),
                packed_makespan_us: stats.packed_makespan_us,
                clock_makespan_us: stats.clock_makespan_us,
                // Read off the *returned artifact*, not the race's own
                // min(): the acceptance assertion downstream must catch a
                // pipeline that hands back a regressed result.
                chosen_makespan_us: chosen.timeline.makespan_us,
                clock_ties: stats.clock_ties,
                batched_layers: stats.batched_layers,
                batched_hops: stats.batched_hops,
                chosen_shuttles: chosen.stats.shuttles,
                chosen_depth: chosen.stats.transport_depth,
                improved: stats.improved,
            }
        })
        .collect()
}

/// One benchmark's clock pipeline run under both scoring modes — the
/// delta scorer and the O(suffix) re-lower oracle — with every quality
/// figure carried so parity can be asserted bit-for-bit.
#[derive(Debug, Clone)]
pub struct DeltaParityRow {
    /// Benchmark name.
    pub name: String,
    /// Chosen timed makespan under `--score-mode delta`, µs.
    pub delta_makespan_us: f64,
    /// Chosen timed makespan under `--score-mode full`, µs.
    pub full_makespan_us: f64,
    /// Chosen shuttle hops under each mode.
    pub delta_shuttles: usize,
    /// See `delta_shuttles`.
    pub full_shuttles: usize,
    /// Chosen transport depth under each mode.
    pub delta_depth: usize,
    /// See `delta_depth`.
    pub full_depth: usize,
    /// Open decisions re-arbitrated on the clock under each mode.
    pub delta_ties: usize,
    /// See `delta_ties`.
    pub full_ties: usize,
    /// Batched gate-free layers planned under each mode.
    pub delta_batched_layers: usize,
    /// See `delta_batched_layers`.
    pub full_batched_layers: usize,
    /// Hops emitted by batched layers under each mode.
    pub delta_batched_hops: usize,
    /// See `delta_batched_hops`.
    pub full_batched_hops: usize,
    /// Wall-clock seconds of the clock-objective *compile loop*
    /// ([`qccd_core::compile`], where candidate scoring runs) under each
    /// mode — the post-compile pack passes are mode-independent and are
    /// excluded so the ratio measures the scorer, not shared work.
    pub delta_compile_s: f64,
    /// See `delta_compile_s`.
    pub full_compile_s: f64,
}

impl DeltaParityRow {
    /// `true` when the two modes produced bit-for-bit identical results
    /// (makespan compared by exact equality — the modes share every
    /// floating-point operation, so any drift is a scorer bug).
    pub fn matches(&self) -> bool {
        self.delta_makespan_us == self.full_makespan_us
            && self.delta_shuttles == self.full_shuttles
            && self.delta_depth == self.full_depth
            && self.delta_ties == self.full_ties
            && self.delta_batched_layers == self.full_batched_layers
            && self.delta_batched_hops == self.full_batched_hops
    }

    /// Compile-time speed-up of the delta scorer over the full oracle.
    pub fn speedup(&self) -> f64 {
        if self.delta_compile_s <= 0.0 {
            return f64::INFINITY;
        }
        self.full_compile_s / self.delta_compile_s
    }
}

/// Runs the clock pipeline on every benchmark under both scoring modes
/// (optimized policy stack, realistic timing — the objective acceptance
/// configuration) and returns the paired rows. `paper_eval delta` gates
/// CI on every row's [`DeltaParityRow::matches`].
///
/// # Panics
///
/// Panics if a benchmark does not fit `spec` or a pipeline fails its
/// validators (never silent).
pub fn delta_parity(benches: &[BenchmarkCircuit], spec: &MachineSpec) -> Vec<DeltaParityRow> {
    let model = TimingModel::realistic();
    benches
        .iter()
        .map(|bench| {
            let run = |mode: ScoreMode| {
                let config = CompilerConfig::optimized()
                    .with_timing(model)
                    .with_score_mode(mode);
                let (chosen, stats) = qccd_pack::compile_clock(&bench.circuit, spec, &config)
                    .expect("benchmark circuits compile under the clock objective");
                // Time the compile loop itself (the section score-mode
                // affects); the race/pack plumbing above is shared
                // verbatim between the modes. Min-of-N to reject
                // scheduler noise on millisecond-scale sections.
                let secs = min_compile_seconds(
                    &bench.circuit,
                    spec,
                    &config.with_objective(Objective::Clock),
                    TIMING_RUNS,
                );
                (chosen, stats, secs)
            };
            let (d, d_stats, d_t) = run(ScoreMode::Delta);
            let (f, f_stats, f_t) = run(ScoreMode::Full);
            DeltaParityRow {
                name: bench.name.clone(),
                delta_makespan_us: d.timeline.makespan_us,
                full_makespan_us: f.timeline.makespan_us,
                delta_shuttles: d.stats.shuttles,
                full_shuttles: f.stats.shuttles,
                delta_depth: d.stats.transport_depth,
                full_depth: f.stats.transport_depth,
                delta_ties: d_stats.clock_ties,
                full_ties: f_stats.clock_ties,
                delta_batched_layers: d_stats.batched_layers,
                full_batched_layers: f_stats.batched_layers,
                delta_batched_hops: d_stats.batched_hops,
                full_batched_hops: f_stats.batched_hops,
                delta_compile_s: d_t,
                full_compile_s: f_t,
            }
        })
        .collect()
}

/// Mean and population standard deviation of a sample.
pub fn mean_std(values: &[f64]) -> (f64, f64) {
    if values.is_empty() {
        return (0.0, 0.0);
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    (mean, var.sqrt())
}

/// Aggregates random-suite rows into the single "Random" row the paper
/// reports (mean with standard deviation in parentheses).
#[derive(Debug, Clone, Copy)]
pub struct RandomAggregate {
    /// Mean two-qubit gates (σ) — paper: 1438 (413).
    pub gates: (f64, f64),
    /// Mean baseline shuttles (σ).
    pub baseline: (f64, f64),
    /// Mean optimized shuttles (σ) — paper reports 775 (270).
    pub optimized: (f64, f64),
    /// Mean reduction Δ (σ) — paper: 273 (109).
    pub delta: (f64, f64),
    /// Mean %Δ (σ) — paper: 26% (6).
    pub delta_percent: (f64, f64),
    /// Geometric-mean fidelity improvement (Fig. 8's "Random" bar).
    pub fidelity_improvement_geomean: f64,
    /// Mean compile times (baseline, optimized), seconds.
    pub compile_s: (f64, f64),
}

/// Computes the paper's "Random" aggregate row from per-circuit rows.
pub fn aggregate_random(rows: &[ComparisonRow]) -> RandomAggregate {
    let gates: Vec<f64> = rows.iter().map(|r| r.two_qubit_gates as f64).collect();
    let base: Vec<f64> = rows.iter().map(|r| r.baseline_shuttles as f64).collect();
    let opt: Vec<f64> = rows.iter().map(|r| r.optimized_shuttles as f64).collect();
    let delta: Vec<f64> = rows.iter().map(|r| r.delta() as f64).collect();
    let pct: Vec<f64> = rows.iter().map(|r| r.delta_percent()).collect();
    let log_impr: Vec<f64> = rows
        .iter()
        .map(|r| r.optimized_sim.log_program_fidelity - r.baseline_sim.log_program_fidelity)
        .filter(|v| v.is_finite())
        .collect();
    let (log_mean, _) = mean_std(&log_impr);
    let base_t: Vec<f64> = rows.iter().map(|r| r.baseline_compile_s).collect();
    let opt_t: Vec<f64> = rows.iter().map(|r| r.optimized_compile_s).collect();
    RandomAggregate {
        gates: mean_std(&gates),
        baseline: mean_std(&base),
        optimized: mean_std(&opt),
        delta: mean_std(&delta),
        delta_percent: mean_std(&pct),
        fidelity_improvement_geomean: log_mean.exp(),
        compile_s: (mean_std(&base_t).0, mean_std(&opt_t).0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::generators::random_circuit;

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
        assert_eq!(mean_std(&[]), (0.0, 0.0));
    }

    #[test]
    fn compare_produces_consistent_row() {
        let spec = MachineSpec::linear(3, 8, 2).unwrap();
        let bench = BenchmarkCircuit {
            name: "tiny".into(),
            circuit: random_circuit(12, 80, 3),
        };
        let row = compare(&bench, &spec, &SimParams::default());
        assert_eq!(row.two_qubit_gates, 80);
        assert_eq!(row.baseline_sim.shuttles, row.baseline_shuttles);
        assert_eq!(row.optimized_sim.shuttles, row.optimized_shuttles);
        assert!(row.baseline_compile_s >= 0.0);
        assert_eq!(row.transport_sim.shuttles, row.congestion_shuttles);
        assert_eq!(row.transport_sim.shuttle_depth, row.transport_depth);
        assert!(row.transport_depth <= row.congestion_shuttles);
        assert_eq!(row.packed_sim.shuttles, row.packed_shuttles);
        assert_eq!(row.packed_sim.shuttle_depth, row.packed_depth);
        assert!(row.packed_timed_makespan_us <= row.lookahead_timed_makespan_us);
        assert!(row.packed_shuttles <= row.congestion_shuttles);
        assert!((0.0..=1.0).contains(&row.idle_fraction));
        assert!(row.hottest_trap < 3, "trap index on a 3-trap machine");
        assert!(row.hottest_trap_busy_us > 0.0, "gates make some trap busy");
        assert!((0.0..=1.0).contains(&row.clock_duration_share));
        assert!((0.0..=1.0).contains(&row.clock_motional_share));
        assert!(
            row.clock_duration_share + row.clock_motional_share <= 1.0 + 1e-12,
            "shares plus the shuttle-pulse remainder partition the loss"
        );
        assert!(
            row.clock_duration_share > 0.0,
            "every gate pays its duration term"
        );
    }

    #[test]
    fn standard_topologies_cover_linear_ring_grid() {
        let names: Vec<String> = standard_topologies(6)
            .iter()
            .map(|t| t.to_string())
            .collect();
        assert_eq!(names, vec!["L6", "R6", "G2x3"]);
        // 5 is prime: no grid.
        let names: Vec<String> = standard_topologies(5)
            .iter()
            .map(|t| t.to_string())
            .collect();
        assert_eq!(names, vec!["L5", "R5"]);
    }

    #[test]
    fn topology_router_sweep_is_complete_and_consistent() {
        let benches = vec![BenchmarkCircuit {
            name: "tiny".into(),
            circuit: random_circuit(10, 40, 5),
        }];
        let topologies = standard_topologies(4);
        let rows = run_topology_router_sweep(&benches, &topologies, 8, 2, &SimParams::default());
        assert_eq!(rows.len(), topologies.len() * 2);
        for pair in rows.chunks(2) {
            let (serial, congestion) = (&pair[0], &pair[1]);
            assert_eq!(serial.router, "serial");
            assert_eq!(serial.depth, serial.shuttles, "serial depth = count");
            assert!(congestion.depth <= congestion.shuttles);
        }
    }

    #[test]
    fn timing_sweep_ideal_matches_untimed_and_realistic_stretches() {
        let spec = MachineSpec::linear(3, 8, 2).unwrap();
        let benches = vec![BenchmarkCircuit {
            name: "tiny".into(),
            circuit: random_circuit(12, 80, 3),
        }];
        let rows = run_timing_sweep(&benches, &spec, &SimParams::default());
        assert_eq!(rows.len(), 4, "2 routers x 2 models");
        for pair in rows.chunks(2) {
            let (ideal, realistic) = (&pair[0], &pair[1]);
            assert_eq!(ideal.timing, "ideal");
            assert_eq!(realistic.timing, "realistic");
            assert!(
                realistic.timed_makespan_us > ideal.timed_makespan_us,
                "finite segment speed must stretch {} ({})",
                realistic.name,
                realistic.router
            );
        }
        // Cross-check the ideal serial cell against the legacy replay.
        let (opt, _) = timed_compile(&benches[0].circuit, &spec, &CompilerConfig::optimized());
        let legacy = qccd_sim::simulate(
            &opt.schedule,
            &benches[0].circuit,
            &spec,
            &SimParams::default(),
        )
        .unwrap();
        assert_eq!(rows[0].timed_makespan_us, legacy.makespan_us);
    }

    #[test]
    fn lookahead_packing_never_deepens_and_improves_somewhere() {
        // The before/after assertion for lookahead round packing: on the
        // paper suite the backfill packer must never exceed the greedy
        // packer's depth, and must strictly beat it on at least one
        // benchmark (QAOA's wide gate-free rebalancing runs are the
        // motivating case — greedy packs only −1 depth there).
        let spec = MachineSpec::paper_l6();
        let rows = lookahead_packing_gains(&paper_suite(), &spec);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(
                r.lookahead_depth <= r.greedy_depth,
                "{}: lookahead {} > greedy {}",
                r.name,
                r.lookahead_depth,
                r.greedy_depth
            );
        }
        assert!(
            rows.iter().any(|r| r.lookahead_depth < r.greedy_depth),
            "lookahead must strictly reduce depth on at least one paper benchmark: {rows:?}"
        );
    }

    #[test]
    fn pack_beats_lookahead_on_qaoa_and_never_regresses() {
        // The PR 4 acceptance: on the paper machine, packed timed makespan
        // ≤ lookahead *and* ≤ greedy on every paper benchmark (the packer
        // carries the greedy repack as a candidate precisely because
        // lookahead optimizes depth and can lose the odd 100 µs on the
        // clock), with a *strict* packed win on QAOA — the benchmark whose
        // depth lives between gates, out of the in-run packers' reach.
        let spec = MachineSpec::paper_l6();
        let rows = pack_gains(&paper_suite(), &spec);
        assert_eq!(rows.len(), 5);
        for r in &rows {
            assert!(
                r.packed_makespan_us <= r.lookahead_makespan_us,
                "{}: packed {} > lookahead {}",
                r.name,
                r.packed_makespan_us,
                r.lookahead_makespan_us
            );
            assert!(
                r.packed_makespan_us <= r.greedy_makespan_us,
                "{}: packed {} > greedy {}",
                r.name,
                r.packed_makespan_us,
                r.greedy_makespan_us
            );
        }
        let qaoa = rows.iter().find(|r| r.name == "QAOA").expect("QAOA row");
        assert!(
            qaoa.packed_makespan_us < qaoa.lookahead_makespan_us,
            "QAOA must strictly improve: packed {} vs lookahead {}",
            qaoa.packed_makespan_us,
            qaoa.lookahead_makespan_us
        );
    }

    #[test]
    fn aggregate_random_matches_rows() {
        let spec = MachineSpec::linear(3, 8, 2).unwrap();
        let rows: Vec<ComparisonRow> = (0..3)
            .map(|i| {
                compare(
                    &BenchmarkCircuit {
                        name: format!("r{i}"),
                        circuit: random_circuit(12, 60, i),
                    },
                    &spec,
                    &SimParams::default(),
                )
            })
            .collect();
        let agg = aggregate_random(&rows);
        assert!((agg.gates.0 - 60.0).abs() < 1e-9);
        assert!(
            agg.baseline.0 >= agg.optimized.0,
            "optimized mean should not exceed baseline"
        );
    }
}
