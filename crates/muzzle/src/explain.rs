//! The `explain` subcommand: why is this schedule exactly this long?
//!
//! Compiles one circuit through the selected stack (same knobs as
//! `compile`), then answers with schedule-level evidence instead of
//! aggregate counts: the critical path through the timeline (the chain of
//! events whose ends bound each other's starts, extracted by
//! [`qccd_timing::critical_path`]), the makespan decomposed by op kind
//! (gate / flight / split-merge / junction / zone-move / idle-wait,
//! summing back to the makespan **bit for bit** — the command hard-errors
//! if the identity does not hold), per-trap busy/idle reports with a text
//! utilization heatmap, per-edge contention, and optionally a per-trap
//! Gantt chart as Chrome trace-event JSON (`--gantt FILE`, one lane per
//! trap — open in about:tracing or ui.perfetto.dev).
//!
//! `--fidelity` adds the fidelity X-ray: the physics replay re-runs with
//! [`qccd_sim`]'s heat-provenance ledger attached, decomposing
//! `log_program_fidelity` into per-gate duration (`Γτ`) and motional
//! (`A(2n̄+1)`) loss terms that sum back to it **bit for bit** (the command
//! hard-errors otherwise), with worst-gate / hottest-trap /
//! costliest-shuttle rankings and, under `--gantt`, per-trap `n̄(t)`
//! counter rows in the exported trace.

use crate::output::Json;
use crate::{emit, parse_common, CommonOptions};
use qccd_sim::{FidelityAttribution, LossTerm};
use qccd_timing::{
    attribute_path, critical_path, edge_reports, trap_reports, CriticalPath, EdgeReport,
    MakespanAttribution, Timeline, TimelineEvent, TrapReport,
};

/// Width of the text heatmap bars, characters.
const HEATMAP_WIDTH: usize = 40;

/// Entry point for `muzzle explain`.
pub fn cmd_explain(args: &[String]) -> Result<(), String> {
    let opts = parse_common(
        args,
        &["--top", "--gantt"],
        &["--verbose", "--quiet", "--fidelity"],
    )?;
    crate::apply_verbosity(&opts);
    if opts.format == "csv" {
        return Err(
            "explain has no csv form (the report mixes an attribution table, \
             a path, and per-resource sections); use text or json"
                .to_owned(),
        );
    }
    let top: usize = match opts.extra_values.iter().find(|(k, _)| k == "--top") {
        Some((_, v)) => v
            .parse()
            .map_err(|_| format!("--top: `{v}` is not a valid number"))?,
        None => 5,
    };
    let gantt = opts
        .extra_values
        .iter()
        .find(|(k, _)| k == "--gantt")
        .map(|(_, v)| v.clone());

    let circuit = crate::require_circuit(&opts)?;
    let machine = opts.machine.build()?;
    let config = crate::build_config(
        &opts.policy,
        opts.proximity,
        &opts.router,
        &opts.timing,
        &opts.objective,
        &opts.score_mode,
        opts.jobs,
    )?;
    let model = crate::parse_timing_model(&opts.timing);
    qccd_obs::info("explain", || {
        format!("compiling {} on {machine}...", circuit.name)
    });
    let (result, _pack, _clock, compile_s) =
        crate::timed(&circuit.circuit, &machine, &config, opts.router == "packed")?;
    let timeline = &result.timeline;

    let path = critical_path(timeline, &circuit.circuit);
    let attribution = attribute_path(timeline, &model, &path);
    // The whole command is built on this identity; a violation means the
    // extractor disagrees with the scheduler and nothing below is
    // trustworthy.
    if attribution.total_us().to_bits() != timeline.makespan_us.to_bits() {
        return Err(format!(
            "attribution identity violated: segments sum to {} but the \
             timeline's makespan is {} (this is a bug in the critical-path \
             extractor, not in your invocation)",
            attribution.total_us(),
            timeline.makespan_us
        ));
    }
    let traps = trap_reports(timeline, machine.num_traps() as usize);
    let edges = edge_reports(timeline);

    // --fidelity: replay the schedule with the heat-provenance ledger
    // attached, then hold the attribution to the same standard as the
    // makespan table above: the terms must reproduce the simulator's
    // answer bit for bit or the report is not emitted.
    let fidelity = if opts.extra_flags.iter().any(|f| f == "--fidelity") {
        let attr = qccd_sim::attribute_fidelity_timed(
            &result.schedule,
            &result.transport,
            &circuit.circuit,
            &machine,
            &qccd_sim::SimParams::default(),
            &model,
        )
        .map_err(|e| e.to_string())?;
        if !attr.identity_holds() {
            return Err(format!(
                "fidelity attribution identity violated: the loss terms do \
                 not reproduce log_program_fidelity = {} bit for bit (this \
                 is a bug in the attribution pass, not in your invocation)",
                attr.report.log_program_fidelity
            ));
        }
        Some(attr)
    } else {
        None
    };

    if let Some(path_out) = &gantt {
        let counters = fidelity.as_ref().map(nbar_counters).unwrap_or_default();
        std::fs::write(path_out, gantt_trace(timeline, traps.len(), &counters))
            .map_err(|e| format!("cannot write `{path_out}`: {e}"))?;
    }

    let report = match opts.format.as_str() {
        "json" => render_json(
            &opts,
            &circuit.name,
            &machine.to_string(),
            &config.to_string(),
            timeline,
            compile_s,
            &path,
            &attribution,
            &traps,
            &edges,
            fidelity.as_ref(),
            top,
        ),
        _ => render_text(
            &opts,
            &circuit.name,
            &machine.to_string(),
            &config.to_string(),
            timeline,
            compile_s,
            &path,
            &attribution,
            &traps,
            &edges,
            fidelity.as_ref(),
            top,
        ),
    };
    emit(&report, &opts.out)
}

/// Traps/edges reordered busiest-first (stable on ties, so equal-busy
/// resources keep index order).
fn busiest<T: Copy>(items: &[T], busy: impl Fn(&T) -> f64) -> Vec<T> {
    let mut out = items.to_vec();
    out.sort_by(|a, b| busy(b).total_cmp(&busy(a)));
    out
}

fn heatmap_bar(utilization: f64) -> String {
    let filled = (utilization.clamp(0.0, 1.0) * HEATMAP_WIDTH as f64).round() as usize;
    let mut bar = "#".repeat(filled.min(HEATMAP_WIDTH));
    bar.push_str(&".".repeat(HEATMAP_WIDTH - filled.min(HEATMAP_WIDTH)));
    bar
}

/// Per-trap `n̄(t)` counter samples for the Gantt export: one sample per
/// ledger deposit, valued at the chain's cumulative fold — so the counter
/// track replays exactly the `n̄` the fidelity model charged.
fn nbar_counters(attr: &FidelityAttribution) -> Vec<qccd_obs::CounterSample> {
    let mut out = Vec::new();
    for (t, deposits) in attr.ledger.deposits.iter().enumerate() {
        let name = format!("nbar T{t}");
        out.push(qccd_obs::CounterSample {
            tid: t as u64,
            name: name.clone(),
            ts_us: 0.0,
            value: 0.0,
        });
        let mut acc = 0.0f64;
        for d in deposits {
            acc += d.net_quanta();
            out.push(qccd_obs::CounterSample {
                tid: t as u64,
                name: name.clone(),
                ts_us: d.t_us,
                value: acc,
            });
        }
    }
    out
}

/// One Gantt lane per trap: gates and zone moves on their trap's lane,
/// transport rounds on every involved trap's lane. `counters` (per-trap
/// `n̄(t)` under `--fidelity`, empty otherwise) ride along as counter rows.
fn gantt_trace(
    timeline: &Timeline,
    num_traps: usize,
    counters: &[qccd_obs::CounterSample],
) -> String {
    let lanes: Vec<(u64, String)> = (0..num_traps as u64)
        .map(|t| (t, format!("trap T{t}")))
        .collect();
    let mut spans = Vec::new();
    for event in &timeline.events {
        match event {
            TimelineEvent::Gate { gate, trap, .. } => spans.push(qccd_obs::LaneSpan {
                tid: trap.index() as u64,
                name: format!("gate {gate}"),
                start_us: event.start_us(),
                end_us: event.end_us(),
            }),
            TimelineEvent::ZoneMove { ion, trap, .. } => spans.push(qccd_obs::LaneSpan {
                tid: trap.index() as u64,
                name: format!("zone-move {ion}"),
                start_us: event.start_us(),
                end_us: event.end_us(),
            }),
            TimelineEvent::TransportRound {
                moves, involved, ..
            } => {
                for trap in involved {
                    spans.push(qccd_obs::LaneSpan {
                        tid: trap.index() as u64,
                        name: format!("transport ({} hops)", moves.len()),
                        start_us: event.start_us(),
                        end_us: event.end_us(),
                    });
                }
            }
        }
    }
    qccd_obs::chrome_trace_lanes_with_counters(&lanes, &spans, counters)
}

#[allow(clippy::too_many_arguments)] // report renderer: one arg per section
fn render_text(
    opts: &CommonOptions,
    circuit: &str,
    machine: &str,
    config: &str,
    timeline: &Timeline,
    compile_s: f64,
    path: &CriticalPath,
    attribution: &MakespanAttribution,
    traps: &[TrapReport],
    edges: &[EdgeReport],
    fidelity: Option<&FidelityAttribution>,
    top: usize,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# muzzle explain — {circuit} on {machine} (timing {}, router {})\n\n",
        opts.timing, opts.router
    ));
    out.push_str(&format!("config   {config}\n"));
    out.push_str(&format!(
        "timeline {:.1} us makespan, {} events, compiled in {:.3} s\n\n",
        timeline.makespan_us,
        timeline.events.len(),
        compile_s
    ));

    out.push_str(&format!(
        "makespan attribution (critical path of {} steps):\n",
        path.steps.len()
    ));
    for (label, us) in attribution.segments() {
        let share = if attribution.makespan_us > 0.0 {
            100.0 * us / attribution.makespan_us
        } else {
            0.0
        };
        out.push_str(&format!("  {label:<12} {us:>14.3} us  {share:>5.1}%\n"));
    }
    out.push_str(&format!(
        "  {:<12} {:>14.3} us  (= makespan, bit for bit)\n\n",
        "total",
        attribution.total_us()
    ));

    out.push_str("critical-path blame (what bound each step's start):\n ");
    for (blame, count) in path.blame_counts() {
        out.push_str(&format!(" {}: {count}", blame.label()));
    }
    out.push_str("\n\n");

    let hot_traps = busiest(traps, |t| t.busy_us);
    out.push_str(&format!("top {top} busiest traps:\n"));
    for t in hot_traps.iter().take(top) {
        out.push_str(&format!(
            "  {:<4} busy {:>12.1} us  util {:>5.1}%  events {:>5}  idle gaps {:>3}  longest idle {:>10.1} us\n",
            t.trap.to_string(),
            t.busy_us,
            100.0 * t.utilization,
            t.events,
            t.idle_intervals,
            t.longest_idle_us
        ));
    }
    let hot_edges = busiest(edges, |e| e.busy_us);
    out.push_str(&format!("\ntop {top} busiest edges:\n"));
    if hot_edges.is_empty() {
        out.push_str("  (no transport rounds — every gate was local)\n");
    }
    for e in hot_edges.iter().take(top) {
        out.push_str(&format!(
            "  {:<9} busy {:>12.1} us  util {:>5.1}%  rounds {:>5}\n",
            format!("{}-{}", e.a, e.b),
            e.busy_us,
            100.0 * e.utilization,
            e.rounds
        ));
    }

    out.push_str("\nutilization heatmap (busy share of the makespan per trap):\n");
    for t in traps {
        out.push_str(&format!(
            "  {:<4} |{}| {:>5.1}%\n",
            t.trap.to_string(),
            heatmap_bar(t.utilization),
            100.0 * t.utilization
        ));
    }
    if let Some(attr) = fidelity {
        out.push_str(&render_fidelity_text(attr, top));
    }
    out
}

/// The `--fidelity` text section: loss decomposition plus the three
/// blame rankings.
fn render_fidelity_text(attr: &FidelityAttribution, top: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "\nfidelity attribution (log loss -ln F = {:.6e}, identity holds bit for bit):\n",
        attr.total_loss()
    ));
    let total = attr.gate_duration_loss + attr.gate_motional_loss + attr.shuttle_pulse_loss;
    let share = |loss: f64| {
        if total > 0.0 {
            100.0 * loss / total
        } else {
            0.0
        }
    };
    out.push_str(&format!(
        "  {:<22} {:>14.6e}  {:>5.1}%\n",
        "duration (Gamma*tau)",
        attr.gate_duration_loss,
        share(attr.gate_duration_loss)
    ));
    out.push_str(&format!(
        "  {:<22} {:>14.6e}  {:>5.1}%\n",
        "motional A(2n+1)",
        attr.gate_motional_loss,
        share(attr.gate_motional_loss)
    ));
    out.push_str(&format!(
        "    {:<20} {:>14.6e}\n",
        "zero-point (A)", attr.gate_zero_point_loss
    ));
    out.push_str(&format!(
        "    {:<20} {:>14.6e}\n",
        "heat (2An)", attr.gate_heat_loss
    ));
    out.push_str(&format!(
        "  {:<22} {:>14.6e}  {:>5.1}%\n",
        "shuttle pulses",
        attr.shuttle_pulse_loss,
        share(attr.shuttle_pulse_loss)
    ));
    if attr.saturated_gates > 0 {
        out.push_str(&format!(
            "  {} gate(s) saturated at fidelity 0 — program fidelity is exactly 0\n",
            attr.saturated_gates
        ));
    }

    out.push_str(&format!("\ntop {top} worst gates by log loss:\n"));
    for term in attr.worst_gates(top) {
        if let LossTerm::Gate {
            gate,
            trap,
            chain_len,
            tau_us,
            n_bar,
            log_loss,
            duration_loss,
            motional_loss,
            ..
        } = *term
        {
            out.push_str(&format!(
                "  {:<8} {:<4} loss {:>11.4e}  duration {:>11.4e}  motional {:>11.4e}  n {:>8.3}  chain {:>2}  tau {:>7.1} us\n",
                gate.to_string(),
                trap.to_string(),
                log_loss,
                duration_loss,
                motional_loss,
                n_bar,
                chain_len,
                tau_us
            ));
        }
    }

    out.push_str(&format!("\ntop {top} hottest traps by blamed heat loss:\n"));
    for (trap, blamed, gross) in attr.hottest_traps(top) {
        out.push_str(&format!(
            "  T{trap:<3} blamed loss {blamed:>11.4e}  gross heat {gross:>9.3} quanta\n"
        ));
    }

    out.push_str(&format!("\ntop {top} costliest shuttles:\n"));
    let hops = attr.costliest_shuttles(top);
    if hops.is_empty() {
        out.push_str("  (no shuttle hops — every gate was local)\n");
    }
    for h in hops {
        out.push_str(&format!(
            "  hop {:<4} {:<5} {}->{}  total {:>11.4e}  (pulse {:>11.4e} + heat {:>11.4e})\n",
            h.shuttle,
            h.ion.to_string(),
            h.from,
            h.to,
            h.total_log_loss(),
            h.pulse_log_loss,
            h.heat_log_loss
        ));
    }
    out
}

#[allow(clippy::too_many_arguments)] // report renderer: one arg per section
fn render_json(
    opts: &CommonOptions,
    circuit: &str,
    machine: &str,
    config: &str,
    timeline: &Timeline,
    compile_s: f64,
    path: &CriticalPath,
    attribution: &MakespanAttribution,
    traps: &[TrapReport],
    edges: &[EdgeReport],
    fidelity: Option<&FidelityAttribution>,
    top: usize,
) -> String {
    let steps = path
        .steps
        .iter()
        .map(|s| {
            Json::obj(vec![
                ("event", Json::int(s.event)),
                ("start_us", Json::Num(s.start_us)),
                ("end_us", Json::Num(s.end_us)),
                ("blame", Json::str(s.blame.label())),
                (
                    "bound_by",
                    match s.bound_by {
                        Some(e) => Json::int(e),
                        None => Json::Null,
                    },
                ),
            ])
        })
        .collect();
    let value = Json::obj(vec![
        ("circuit", Json::str(circuit)),
        ("machine", Json::str(machine)),
        ("policy", Json::str(&opts.policy)),
        ("config", Json::str(config)),
        ("timing", Json::str(&opts.timing)),
        ("router", Json::str(&opts.router)),
        ("makespan_us", Json::Num(timeline.makespan_us)),
        ("events", Json::int(timeline.events.len())),
        ("compile_seconds", Json::Num(compile_s)),
        (
            "attribution",
            Json::obj(vec![
                ("gate_us", Json::Num(attribution.gate_us)),
                ("flight_us", Json::Num(attribution.flight_us)),
                ("split_merge_us", Json::Num(attribution.split_merge_us)),
                ("junction_us", Json::Num(attribution.junction_us)),
                ("zone_move_us", Json::Num(attribution.zone_move_us)),
                ("idle_wait_us", Json::Num(attribution.idle_wait_us)),
                ("total_us", Json::Num(attribution.total_us())),
                ("makespan_us", Json::Num(attribution.makespan_us)),
                (
                    "identity",
                    Json::Bool(
                        attribution.total_us().to_bits() == attribution.makespan_us.to_bits(),
                    ),
                ),
            ]),
        ),
        (
            "critical_path",
            Json::obj(vec![
                ("steps", Json::int(path.steps.len())),
                ("contiguous", Json::Bool(path.is_contiguous())),
                (
                    "blame_counts",
                    Json::Obj(
                        path.blame_counts()
                            .iter()
                            .map(|(b, n)| (b.label().to_owned(), Json::int(*n)))
                            .collect(),
                    ),
                ),
                ("path", Json::Arr(steps)),
            ]),
        ),
        (
            "traps",
            Json::Arr(
                busiest(traps, |t| t.busy_us)
                    .iter()
                    .map(|t| {
                        Json::obj(vec![
                            ("trap", Json::int(t.trap.index())),
                            ("busy_us", Json::Num(t.busy_us)),
                            ("utilization", Json::Num(t.utilization)),
                            ("events", Json::int(t.events)),
                            ("idle_intervals", Json::int(t.idle_intervals)),
                            ("longest_idle_us", Json::Num(t.longest_idle_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "edges",
            Json::Arr(
                busiest(edges, |e| e.busy_us)
                    .iter()
                    .map(|e| {
                        Json::obj(vec![
                            ("a", Json::int(e.a.index())),
                            ("b", Json::int(e.b.index())),
                            ("busy_us", Json::Num(e.busy_us)),
                            ("utilization", Json::Num(e.utilization)),
                            ("rounds", Json::int(e.rounds)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let value = match fidelity {
        Some(attr) => value.with_field("fidelity", fidelity_json(attr, top)),
        None => value,
    };
    let mut text = value.to_string();
    text.push('\n');
    text
}

/// The `--fidelity` JSON subtree.
fn fidelity_json(attr: &FidelityAttribution, top: usize) -> Json {
    let worst = attr
        .worst_gates(top)
        .iter()
        .filter_map(|term| match **term {
            LossTerm::Gate {
                gate,
                trap,
                start_us,
                end_us,
                chain_len,
                tau_us,
                fidelity,
                n_bar,
                log_loss,
                duration_loss,
                motional_loss,
                heat_loss,
                ..
            } => Some(Json::obj(vec![
                ("gate", Json::int(gate.index())),
                ("trap", Json::int(trap.index())),
                ("start_us", Json::Num(start_us)),
                ("end_us", Json::Num(end_us)),
                ("chain_len", Json::int(chain_len as usize)),
                ("tau_us", Json::Num(tau_us)),
                ("fidelity", Json::Num(fidelity)),
                ("n_bar", Json::Num(n_bar)),
                ("log_loss", Json::Num(log_loss)),
                ("duration_loss", Json::Num(duration_loss)),
                ("motional_loss", Json::Num(motional_loss)),
                ("heat_loss", Json::Num(heat_loss)),
            ])),
            LossTerm::Shuttle { .. } => None,
        })
        .collect();
    let hottest = attr
        .hottest_traps(top)
        .into_iter()
        .map(|(trap, blamed, gross)| {
            Json::obj(vec![
                ("trap", Json::int(trap)),
                ("blamed_log_loss", Json::Num(blamed)),
                ("gross_quanta", Json::Num(gross)),
            ])
        })
        .collect();
    let costliest = attr
        .costliest_shuttles(top)
        .into_iter()
        .map(|h| {
            Json::obj(vec![
                ("shuttle", Json::int(h.shuttle)),
                ("ion", Json::int(h.ion.index())),
                ("from", Json::int(h.from.index())),
                ("to", Json::int(h.to.index())),
                ("pulse_log_loss", Json::Num(h.pulse_log_loss)),
                ("heat_log_loss", Json::Num(h.heat_log_loss)),
                ("total_log_loss", Json::Num(h.total_log_loss())),
            ])
        })
        .collect();
    Json::obj(vec![
        (
            "log_program_fidelity",
            Json::Num(attr.report.log_program_fidelity),
        ),
        ("total_loss", Json::Num(attr.total_loss())),
        ("duration_loss", Json::Num(attr.gate_duration_loss)),
        ("motional_loss", Json::Num(attr.gate_motional_loss)),
        ("zero_point_loss", Json::Num(attr.gate_zero_point_loss)),
        ("heat_loss", Json::Num(attr.gate_heat_loss)),
        ("shuttle_pulse_loss", Json::Num(attr.shuttle_pulse_loss)),
        ("duration_share", Json::Num(attr.duration_share())),
        ("motional_share", Json::Num(attr.motional_share())),
        ("saturated_gates", Json::int(attr.saturated_gates)),
        ("identity", Json::Bool(attr.identity_holds())),
        ("worst_gates", Json::Arr(worst)),
        ("hottest_traps", Json::Arr(hottest)),
        ("costliest_shuttles", Json::Arr(costliest)),
    ])
}
