//! The `eval` subcommand: the paper's comparison report over a suite.
//!
//! Reproduces the shape of the paper's evaluation (§IV): per-benchmark
//! baseline-vs-optimized shuttle counts (Table II), program-fidelity
//! improvement (Fig. 8), and compile times (Table III), prefaced by the
//! Fig. 4 worked example — the four-gate program on which the baseline's
//! excess-capacity policy ping-pongs ion 2 for 4 shuttles while the
//! future-ops policy moves ion 1 once.

use crate::output::{csv_row, Json};
use crate::{emit, parse_common};
use qccd_bench::{compare_timed_jobs, ComparisonRow, RANDOM_SUITE_SEED};
use qccd_circuit::generators::{paper_suite, random_suite, BenchmarkCircuit};
use qccd_circuit::parser::parse_program;
use qccd_core::{compile_with_mapping, CompilerConfig};
use qccd_machine::{InitialMapping, MachineSpec, TrapId};
use qccd_sim::SimParams;

/// Shuttle counts of the Fig. 4 worked example under both policies.
struct Fig4 {
    baseline_shuttles: usize,
    optimized_shuttles: usize,
}

/// Runs the paper's Fig. 4 worked example: `MS q1,q2; MS q2,q3; MS q1,q2;
/// MS q2,q4;` on two traps of capacity 4 with ions 0-1 in T0 and 2-4 in T1.
fn fig4_worked_example() -> Result<Fig4, String> {
    let circuit = parse_program(
        "MS q[1], q[2];\nMS q[2], q[3];\nMS q[1], q[2];\nMS q[2], q[4];",
        5,
    )
    .map_err(|e| e.to_string())?;
    let spec = MachineSpec::linear(2, 4, 1).map_err(|e| e.to_string())?;
    let mapping = InitialMapping::from_traps(
        &spec,
        vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1), TrapId(1)],
    )
    .map_err(|e| e.to_string())?;
    let baseline = compile_with_mapping(
        &circuit,
        &spec,
        &CompilerConfig::baseline(),
        mapping.clone(),
    )
    .map_err(|e| e.to_string())?;
    let optimized = compile_with_mapping(&circuit, &spec, &CompilerConfig::optimized(), mapping)
        .map_err(|e| e.to_string())?;
    Ok(Fig4 {
        baseline_shuttles: baseline.stats.shuttles,
        optimized_shuttles: optimized.stats.shuttles,
    })
}

/// Scaled-down versions of the paper's benchmarks (the integration suite),
/// for quick runs and CI smoke tests.
fn mini_suite() -> Vec<BenchmarkCircuit> {
    use qccd_circuit::generators::{
        qaoa, qft, quadratic_form, random_circuit, square_root, supremacy,
    };
    vec![
        BenchmarkCircuit {
            name: "supremacy-mini".into(),
            circuit: supremacy(4, 4, 12),
        },
        BenchmarkCircuit {
            name: "qaoa-mini".into(),
            circuit: qaoa(16, 4, 3),
        },
        BenchmarkCircuit {
            name: "sqrt-mini".into(),
            circuit: square_root(16, 3),
        },
        BenchmarkCircuit {
            name: "qft-mini".into(),
            circuit: qft(16),
        },
        BenchmarkCircuit {
            name: "quadform-mini".into(),
            circuit: quadratic_form(16, 200),
        },
        BenchmarkCircuit {
            name: "random-mini".into(),
            circuit: random_circuit(18, 200, 9),
        },
    ]
}

/// Entry point for `muzzle eval`.
pub fn cmd_eval(args: &[String]) -> Result<(), String> {
    let opts = parse_common(args, &["--suite", "--per-size"], &["--verbose", "--quiet"])?;
    crate::apply_verbosity(&opts);
    opts.reject_flags(
        &[
            "--circuit",
            "--qubits",
            "--traps",
            "--capacity",
            "--comm",
            "--topology",
            "--policy",
            "--proximity",
            "--router",
            "--objective",
            "--score-mode",
        ],
        "each eval suite fixes its machine and circuits, and always runs \
         the baseline-vs-optimized policy pair under both routers plus the \
         packed and clock-objective stacks (use compile/simulate/sweep for \
         custom setups; --timing composes)",
    )?;
    let suite_name = opts
        .extra_values
        .iter()
        .find(|(k, _)| k == "--suite")
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| "paper".to_owned());
    let per_size: usize = match opts.extra_values.iter().find(|(k, _)| k == "--per-size") {
        Some((_, v)) => v
            .parse()
            .map_err(|_| format!("--per-size: `{v}` is not a valid number"))?,
        None => 5,
    };

    let params = SimParams::default();
    let model = crate::parse_timing_model(&opts.timing);
    let (machine, suite) = match suite_name.as_str() {
        "paper" => (MachineSpec::paper_l6(), paper_suite()),
        "mini" => (
            MachineSpec::linear(3, 8, 2).map_err(|e| e.to_string())?,
            mini_suite(),
        ),
        "random" => (
            MachineSpec::paper_l6(),
            random_suite(per_size, RANDOM_SUITE_SEED),
        ),
        other => {
            return Err(format!(
                "unknown suite `{other}` (expected paper, mini, or random)"
            ))
        }
    };

    let fig4 = fig4_worked_example()?;
    qccd_obs::info("eval", || {
        format!(
            "evaluating {} benchmarks on {machine} (policy comparison)...",
            suite.len()
        )
    });
    let rows: Vec<ComparisonRow> = suite
        .iter()
        .map(|bench| {
            qccd_obs::info("eval", || format!("  {}", bench.name));
            compare_timed_jobs(bench, &machine, &params, &model, opts.jobs)
        })
        .collect();
    let all_leq = rows
        .iter()
        .all(|r| r.optimized_shuttles <= r.baseline_shuttles);
    let congestion_leq = rows
        .iter()
        .all(|r| r.congestion_shuttles <= r.optimized_shuttles);
    let depth_wins = rows
        .iter()
        .filter(|r| r.transport_depth < r.optimized_shuttles)
        .count();
    let timed_makespan_wins = rows
        .iter()
        .filter(|r| r.transport_sim.timed_makespan_us <= r.optimized_sim.timed_makespan_us)
        .count();
    let packed_leq_lookahead = rows
        .iter()
        .all(|r| r.packed_timed_makespan_us <= r.lookahead_timed_makespan_us);
    let packed_strict_wins = rows
        .iter()
        .filter(|r| r.packed_timed_makespan_us < r.lookahead_timed_makespan_us)
        .count();
    let clock_leq_packed = rows
        .iter()
        .all(|r| r.clock_timed_makespan_us <= r.packed_timed_makespan_us);
    let clock_strict_wins = rows.iter().filter(|r| r.clock_stats.improved).count();
    let checks = EvalChecks {
        all_leq,
        congestion_leq,
        depth_wins,
        timed_makespan_wins,
        packed_leq_lookahead,
        packed_strict_wins,
        clock_leq_packed,
        clock_strict_wins,
    };

    let report = match opts.format.as_str() {
        "json" => render_json(&suite_name, &machine, &opts.timing, &fig4, &rows, &checks),
        "csv" => render_csv(&opts.timing, &rows),
        _ => render_text(&suite_name, &machine, &opts.timing, &fig4, &rows, &checks),
    };
    emit(&report, &opts.out)
}

/// Suite-level acceptance flags reported alongside the per-benchmark rows.
struct EvalChecks {
    /// Optimized shuttle count ≤ baseline on every benchmark (Table II).
    all_leq: bool,
    /// Congestion-routed shuttle count ≤ serial on every benchmark.
    congestion_leq: bool,
    /// Benchmarks whose concurrent transport depth is strictly below the
    /// serial shuttle count.
    depth_wins: usize,
    /// Benchmarks whose congestion-routed *timed* makespan (under the
    /// selected timing model) is at or below the serial router's.
    timed_makespan_wins: usize,
    /// Packed timed makespan ≤ lookahead on every benchmark (the packer's
    /// never-regress guarantee, re-checked end to end).
    packed_leq_lookahead: bool,
    /// Benchmarks where packing *strictly* beat lookahead on the clock.
    packed_strict_wins: usize,
    /// Clock-objective timed makespan ≤ packed on every benchmark (the
    /// clock pipeline's never-regress guarantee, re-checked end to end).
    clock_leq_packed: bool,
    /// Benchmarks where the clock objective *strictly* beat the packed
    /// stack on the device clock.
    clock_strict_wins: usize,
}

fn render_text(
    suite: &str,
    machine: &MachineSpec,
    timing: &str,
    fig4: &Fig4,
    rows: &[ComparisonRow],
    checks: &EvalChecks,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# muzzle eval — suite `{suite}` on {machine} (timing {timing})\n\n"
    ));
    out.push_str(&format!(
        "Fig. 4 worked example: baseline {} shuttles, optimized {} shuttles (paper: 4 vs. 1)\n\n",
        fig4.baseline_shuttles, fig4.optimized_shuttles
    ));
    out.push_str(&format!(
        "{:<16} {:>6} {:>9} {:>9} {:>10} {:>6} {:>8} {:>6} {:>6} {:>12} {:>12} {:>12} {:>12} {:>6} {:>5} {:>4} {:>12} {:>5} {:>5}\n",
        "Benchmark",
        "Qubits",
        "2Q gates",
        "Baseline",
        "This Work",
        "D(dn)",
        "%D",
        "Depth",
        "PkDep",
        "TMkspn(us)",
        "PkMkspn(us)",
        "CkMkspn(us)",
        "SMkspn(us)",
        "Junc",
        "Idle%",
        "Hot",
        "Fidelity gain",
        "Dur%",
        "Mot%"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>6} {:>9} {:>9} {:>10} {:>6} {:>7.2}% {:>6} {:>6} {:>12.1} {:>12.1} {:>12.1} {:>12.1} {:>6} {:>4.1}% {:>4} {:>11.2}X {:>4.1}% {:>4.1}%\n",
            r.name,
            r.qubits,
            r.two_qubit_gates,
            r.baseline_shuttles,
            r.optimized_shuttles,
            r.delta(),
            r.delta_percent(),
            r.transport_depth,
            r.packed_depth,
            r.transport_sim.timed_makespan_us,
            r.packed_sim.timed_makespan_us,
            r.clock_sim.timed_makespan_us,
            r.optimized_sim.timed_makespan_us,
            r.transport_sim.junction_crossings,
            100.0 * r.idle_fraction,
            format!("T{}", r.hottest_trap),
            r.fidelity_improvement(),
            100.0 * r.clock_duration_share,
            100.0 * r.clock_motional_share
        ));
    }
    out.push_str(&format!(
        "\noptimized <= baseline on every benchmark: {}\n",
        if checks.all_leq {
            "yes"
        } else {
            "NO — regression!"
        }
    ));
    out.push_str(&format!(
        "congestion router <= serial router on every benchmark: {}\n",
        if checks.congestion_leq {
            "yes"
        } else {
            "NO — regression!"
        }
    ));
    out.push_str(&format!(
        "benchmarks with transport depth strictly below shuttle count: {} of {}\n",
        checks.depth_wins,
        rows.len()
    ));
    out.push_str(&format!(
        "benchmarks where concurrent timed makespan <= serial: {} of {}\n",
        checks.timed_makespan_wins,
        rows.len()
    ));
    out.push_str(&format!(
        "packed timed makespan <= lookahead on every benchmark: {}\n",
        if checks.packed_leq_lookahead {
            "yes"
        } else {
            "NO — regression!"
        }
    ));
    out.push_str(&format!(
        "benchmarks where packing strictly beat lookahead: {} of {}\n",
        checks.packed_strict_wins,
        rows.len()
    ));
    out.push_str(&format!(
        "clock objective <= packed on every benchmark: {}\n",
        if checks.clock_leq_packed {
            "yes"
        } else {
            "NO — regression!"
        }
    ));
    out.push_str(&format!(
        "benchmarks where the clock objective strictly beat packed: {} of {}\n",
        checks.clock_strict_wins,
        rows.len()
    ));
    out
}

fn render_csv(timing: &str, rows: &[ComparisonRow]) -> String {
    let mut out = String::from(
        "benchmark,qubits,two_qubit_gates,baseline_shuttles,optimized_shuttles,delta,\
         delta_percent,congestion_shuttles,transport_depth,packed_shuttles,packed_depth,\
         timing,serial_makespan_us,transport_makespan_us,serial_timed_makespan_us,\
         transport_timed_makespan_us,lookahead_timed_makespan_us,packed_timed_makespan_us,\
         clock_timed_makespan_us,zone_moves,junction_crossings,fidelity_improvement,\
         baseline_compile_s,optimized_compile_s,clock_compile_s,clock_full_compile_s,\
         idle_fraction,hottest_trap,hottest_trap_busy_us,clock_duration_share,\
         clock_motional_share\n",
    );
    for r in rows {
        out.push_str(&csv_row(&[
            r.name.clone(),
            r.qubits.to_string(),
            r.two_qubit_gates.to_string(),
            r.baseline_shuttles.to_string(),
            r.optimized_shuttles.to_string(),
            r.delta().to_string(),
            format!("{:.3}", r.delta_percent()),
            r.congestion_shuttles.to_string(),
            r.transport_depth.to_string(),
            r.packed_shuttles.to_string(),
            r.packed_depth.to_string(),
            timing.to_owned(),
            format!("{:.3}", r.optimized_sim.makespan_us),
            format!("{:.3}", r.transport_sim.makespan_us),
            format!("{:.3}", r.optimized_sim.timed_makespan_us),
            format!("{:.3}", r.transport_sim.timed_makespan_us),
            format!("{:.3}", r.lookahead_timed_makespan_us),
            format!("{:.3}", r.packed_timed_makespan_us),
            format!("{:.3}", r.clock_timed_makespan_us),
            r.transport_sim.zone_moves.to_string(),
            r.transport_sim.junction_crossings.to_string(),
            format!("{:.4}", r.fidelity_improvement()),
            format!("{:.6}", r.baseline_compile_s),
            format!("{:.6}", r.optimized_compile_s),
            format!("{:.6}", r.clock_compile_s),
            format!("{:.6}", r.clock_full_compile_s),
            format!("{:.4}", r.idle_fraction),
            r.hottest_trap.to_string(),
            format!("{:.3}", r.hottest_trap_busy_us),
            format!("{:.4}", r.clock_duration_share),
            format!("{:.4}", r.clock_motional_share),
        ]));
        out.push('\n');
    }
    out
}

fn render_json(
    suite: &str,
    machine: &MachineSpec,
    timing: &str,
    fig4: &Fig4,
    rows: &[ComparisonRow],
    checks: &EvalChecks,
) -> String {
    let benchmarks = rows
        .iter()
        .map(|r| {
            Json::obj(vec![
                ("name", Json::str(&r.name)),
                ("qubits", Json::int(r.qubits as usize)),
                ("two_qubit_gates", Json::int(r.two_qubit_gates)),
                ("baseline_shuttles", Json::int(r.baseline_shuttles)),
                ("optimized_shuttles", Json::int(r.optimized_shuttles)),
                ("delta", Json::Num(r.delta() as f64)),
                ("delta_percent", Json::Num(r.delta_percent())),
                ("fidelity_improvement", Json::Num(r.fidelity_improvement())),
                (
                    "baseline",
                    Json::obj(vec![
                        (
                            "program_fidelity",
                            Json::Num(r.baseline_sim.program_fidelity),
                        ),
                        ("makespan_us", Json::Num(r.baseline_sim.makespan_us)),
                        ("compile_seconds", Json::Num(r.baseline_compile_s)),
                    ]),
                ),
                (
                    "optimized",
                    Json::obj(vec![
                        (
                            "program_fidelity",
                            Json::Num(r.optimized_sim.program_fidelity),
                        ),
                        ("makespan_us", Json::Num(r.optimized_sim.makespan_us)),
                        ("compile_seconds", Json::Num(r.optimized_compile_s)),
                    ]),
                ),
                (
                    "congestion_router",
                    Json::obj(vec![
                        ("shuttles", Json::int(r.congestion_shuttles)),
                        ("transport_depth", Json::int(r.transport_depth)),
                        ("depth_delta", Json::Num(r.depth_delta() as f64)),
                        ("makespan_us", Json::Num(r.transport_sim.makespan_us)),
                        (
                            "program_fidelity",
                            Json::Num(r.transport_sim.program_fidelity),
                        ),
                    ]),
                ),
                (
                    "timed",
                    Json::obj(vec![
                        (
                            "serial_makespan_us",
                            Json::Num(r.optimized_sim.timed_makespan_us),
                        ),
                        (
                            "congestion_makespan_us",
                            Json::Num(r.transport_sim.timed_makespan_us),
                        ),
                        ("zone_moves", Json::int(r.transport_sim.zone_moves)),
                        (
                            "junction_crossings",
                            Json::int(r.transport_sim.junction_crossings),
                        ),
                    ]),
                ),
                (
                    "packed",
                    Json::obj(vec![
                        ("shuttles", Json::int(r.packed_shuttles)),
                        ("transport_depth", Json::int(r.packed_depth)),
                        (
                            "lookahead_timed_makespan_us",
                            Json::Num(r.lookahead_timed_makespan_us),
                        ),
                        (
                            "packed_timed_makespan_us",
                            Json::Num(r.packed_timed_makespan_us),
                        ),
                        ("program_fidelity", Json::Num(r.packed_sim.program_fidelity)),
                    ]),
                ),
                (
                    "clock",
                    Json::obj(vec![
                        (
                            "clock_timed_makespan_us",
                            Json::Num(r.clock_timed_makespan_us),
                        ),
                        (
                            "candidate_makespan_us",
                            Json::Num(r.clock_stats.clock_makespan_us),
                        ),
                        ("clock_ties", Json::int(r.clock_stats.clock_ties)),
                        ("batched_layers", Json::int(r.clock_stats.batched_layers)),
                        ("batched_hops", Json::int(r.clock_stats.batched_hops)),
                        ("improved", Json::Bool(r.clock_stats.improved)),
                        ("compile_seconds", Json::Num(r.clock_compile_s)),
                        ("compile_seconds_full", Json::Num(r.clock_full_compile_s)),
                        ("program_fidelity", Json::Num(r.clock_sim.program_fidelity)),
                        ("fidelity_duration_share", Json::Num(r.clock_duration_share)),
                        ("fidelity_motional_share", Json::Num(r.clock_motional_share)),
                    ]),
                ),
                (
                    "utilization",
                    Json::obj(vec![
                        ("idle_fraction", Json::Num(r.idle_fraction)),
                        ("hottest_trap", Json::int(r.hottest_trap)),
                        ("hottest_trap_busy_us", Json::Num(r.hottest_trap_busy_us)),
                    ]),
                ),
            ])
        })
        .collect();
    let value = Json::obj(vec![
        ("suite", Json::str(suite)),
        ("machine", Json::str(machine.to_string())),
        ("timing", Json::str(timing)),
        (
            "fig4_worked_example",
            Json::obj(vec![
                ("baseline_shuttles", Json::int(fig4.baseline_shuttles)),
                ("optimized_shuttles", Json::int(fig4.optimized_shuttles)),
            ]),
        ),
        ("benchmarks", Json::Arr(benchmarks)),
        ("all_optimized_leq_baseline", Json::Bool(checks.all_leq)),
        (
            "all_congestion_leq_serial",
            Json::Bool(checks.congestion_leq),
        ),
        ("depth_strictly_lower_count", Json::int(checks.depth_wins)),
        (
            "timed_makespan_leq_serial_count",
            Json::int(checks.timed_makespan_wins),
        ),
        (
            "all_packed_leq_lookahead",
            Json::Bool(checks.packed_leq_lookahead),
        ),
        (
            "packed_strict_win_count",
            Json::int(checks.packed_strict_wins),
        ),
        ("all_clock_leq_packed", Json::Bool(checks.clock_leq_packed)),
        (
            "clock_strict_win_count",
            Json::int(checks.clock_strict_wins),
        ),
    ]);
    let mut text = value.to_string();
    text.push('\n');
    text
}
