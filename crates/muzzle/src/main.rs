//! `muzzle` — command-line driver for the muzzle-shuttle QCCD compiler.
//!
//! Compiles quantum circuits onto multi-trap trapped-ion machines under the
//! paper's baseline (Murali et al., ISCA'20) and optimized (DATE'22)
//! shuttle policies, replays them through the fidelity/timing simulator,
//! and reproduces the paper's comparison reports.
//!
//! ```text
//! muzzle compile  --circuit qft:16 --traps 2            # shuttle stats
//! muzzle simulate --circuit qaoa:64x13 --compare        # fidelity report
//! muzzle sweep    --param proximity --values 1,2,4,6,12 # design sweep
//! muzzle eval     --suite paper                         # Table II / Fig. 8
//! ```
//!
//! Run `muzzle help` for the full option list. Reports emit as `text`
//! (default), `json`, or `csv` via `--format`, to stdout or `--out FILE`.

mod eval;
mod explain;
mod output;
mod spec;

use output::Json;
use qccd_core::{
    compile, CompileResult, CompilerConfig, DirectionPolicy, Objective, RouterPolicy,
    ScheduleAnalysis, ScoreMode, TimingModel,
};
use qccd_machine::MachineSpec;
use qccd_sim::{simulate_timed, SimParams, SimReport};
use spec::{parse_circuit, CircuitSpec, MachineOptions};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
muzzle — shuttle-efficient compilation for multi-trap trapped-ion machines

USAGE:
    muzzle <COMMAND> [OPTIONS]

COMMANDS:
    compile     Compile one circuit and report shuttle statistics
    simulate    Compile, then replay through the fidelity/timing simulator
    sweep       Sweep proximity or trap count and tabulate shuttle counts
    eval        Reproduce the paper's comparison report over a suite
    explain     Compile one circuit and explain where its makespan goes:
                critical path, per-kind attribution, trap/edge utilization
    help        Show this message

CIRCUIT / MACHINE OPTIONS (compile, simulate, sweep):
    --circuit SPEC      qft:16 | qaoa:64x13[@seed] | supremacy:8x8x20 |
                        sqrt:78x9 | quadform:64x3400 | random:60x1438[@seed] |
                        file:PATH (program text; requires --qubits)
    --qubits N          qubit count for file: circuits
    --traps N           number of traps            [default: 6]
    --capacity N        total per-trap capacity    [default: 17]
    --comm N            communication capacity     [default: 2]
    --topology T        linear[:N] | ring[:N] | grid:RxC   [default: linear]
                        (sized forms override --traps)
    --zones G:S:L       per-trap gate/storage/loading zone sizes (must sum
                        to --capacity; default: one gate zone spanning it)

POLICY OPTIONS:
    --policy P          baseline | optimized       [default: optimized]
    --proximity N       future-ops proximity override (optimized only)
    --router R          serial | congestion | lookahead | packed
                        [default: serial]
                        (congestion prices routes by trap fullness and edge
                        load, and schedules transport as concurrent rounds;
                        lookahead additionally backfills hops into earlier
                        compatible rounds; packed then runs the qccd-pack
                        optimizer — cross-gate packing + batched layer
                        planning, keeping the rewrite only when it lowers
                        the timed makespan under the --timing model)
    --timing T          ideal | realistic          [default: ideal]
                        (ideal reproduces the uniform-hop numbers exactly;
                        realistic charges linear-segment speed, junction
                        corner/swap time, and intra-trap zone moves)
    --objective O       shuttles | clock           [default: shuttles]
                        (shuttles is the paper's objective; clock scores
                        direction/rebalance/layer decisions inside the
                        compile loop on projected makespan under --timing,
                        runs the packed transport stack on the result, and
                        keeps it only when it beats the default-objective
                        packed stack on the device clock — never regresses)
    --score-mode M      delta | full               [default: delta]
                        (how --objective clock prices speculative
                        candidates: delta touches only the candidate's
                        resources with O(1) undo; full clones and re-lowers
                        the suffix — the bit-for-bit differential oracle)
    --jobs N            worker threads for speculative candidate scoring,
                        pack-candidate lowering, and the clock race
                        [default: 1]
                        (results are bit-for-bit identical at every width:
                        candidates shard on fixed index boundaries and
                        reduce in candidate order, never finish order)

OUTPUT OPTIONS:
    --format F          text | json | csv          [default: text]
    --out PATH          write the report to PATH instead of stdout

OBSERVABILITY OPTIONS (compile, simulate, eval):
    --trace PATH        write a Chrome-trace JSON of the compile's phase
                        spans and events to PATH (open in about:tracing
                        or ui.perfetto.dev); compile only
    --profile           append a per-phase wall-time breakdown, the
                        hot-path counters, and the recorded histograms
                        (on simulate: the replay's sim.gate_infidelity /
                        sim.gate_nbar distributions) to the report;
                        compile and simulate. Histogram p50/p99 are
                        bucket upper bounds clamped to the largest
                        recorded sample, so a percentile never exceeds
                        any value actually observed
    --verbose           emit debug-level structured events to stderr
    --quiet             suppress structured progress/info events

COMMAND-SPECIFIC:
    compile   --show-schedule     print the compiled operation listing
              --analyze           print trap-flow / ion-travel analysis
    simulate  --compare           simulate both policies and the improvement
    sweep     --param P           proximity | traps
              --values A,B,C      swept values
    eval      --suite S           paper | mini | random   [default: paper]
              --per-size N        random-suite circuits per size [default: 5]
    explain   --top K             bottleneck traps/edges to list [default: 5]
              --gantt PATH        write a per-trap Gantt chart of the
                                  schedule as Chrome-trace JSON to PATH
              --fidelity          add the fidelity X-ray: per-gate log-loss
                                  attribution (duration vs motional) with
                                  heat provenance — worst gates, hottest
                                  traps, costliest shuttles; with --gantt,
                                  per-trap n-bar counter tracks

EXAMPLES:
    muzzle compile --circuit qft:16 --traps 2
    muzzle eval --suite paper --format json --out report.json
    muzzle explain --circuit qaoa:64x13 --timing realistic --router packed
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "compile" => cmd_compile(&args[1..]),
        "simulate" => cmd_simulate(&args[1..]),
        "sweep" => cmd_sweep(&args[1..]),
        "eval" => eval::cmd_eval(&args[1..]),
        "explain" => explain::cmd_explain(&args[1..]),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}` (try `muzzle help`)")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::from(2)
        }
    }
}

/// Common options parsed from the flag list.
pub struct CommonOptions {
    pub circuit: Option<String>,
    pub qubits: Option<u32>,
    pub machine: MachineOptions,
    pub policy: String,
    pub proximity: Option<u32>,
    pub router: String,
    pub timing: String,
    pub objective: String,
    pub score_mode: String,
    pub jobs: usize,
    pub format: String,
    pub out: Option<String>,
    /// Flags the subcommand recognises beyond the common set.
    pub extra_flags: Vec<String>,
    /// `--key value` pairs the subcommand recognises beyond the common set.
    pub extra_values: Vec<(String, String)>,
    /// Every flag the user explicitly passed, so subcommands can reject
    /// options they would otherwise silently ignore.
    pub seen: Vec<String>,
}

impl CommonOptions {
    /// Errors if the user explicitly passed any of `flags`; `context`
    /// explains why the subcommand cannot honour them.
    pub fn reject_flags(&self, flags: &[&str], context: &str) -> Result<(), String> {
        for flag in flags {
            if self.seen.iter().any(|s| s == flag) {
                return Err(format!("{flag} is not supported here: {context}"));
            }
        }
        Ok(())
    }
}

/// Parses the shared option grammar. `value_flags` lists subcommand flags
/// that take a value; `bool_flags` lists bare subcommand flags.
pub fn parse_common(
    args: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<CommonOptions, String> {
    let mut opts = CommonOptions {
        circuit: None,
        qubits: None,
        machine: MachineOptions::default(),
        policy: "optimized".to_owned(),
        proximity: None,
        router: "serial".to_owned(),
        timing: "ideal".to_owned(),
        objective: "shuttles".to_owned(),
        score_mode: "delta".to_owned(),
        jobs: 1,
        format: "text".to_owned(),
        out: None,
        extra_flags: Vec::new(),
        extra_values: Vec::new(),
        seen: Vec::new(),
    };
    let mut i = 0;
    let next = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        args.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < args.len() {
        let arg = args[i].as_str();
        if arg.starts_with("--") {
            opts.seen.push(arg.to_owned());
        }
        match arg {
            "--circuit" => opts.circuit = Some(next(&mut i, arg)?),
            "--qubits" => {
                opts.qubits = Some(parse_num(&next(&mut i, arg)?, arg)?);
            }
            "--traps" => opts.machine.traps = parse_num(&next(&mut i, arg)?, arg)?,
            "--capacity" => opts.machine.capacity = parse_num(&next(&mut i, arg)?, arg)?,
            "--comm" => opts.machine.comm = parse_num(&next(&mut i, arg)?, arg)?,
            "--topology" => opts.machine.topology = next(&mut i, arg)?,
            "--zones" => opts.machine.zones = Some(next(&mut i, arg)?),
            "--policy" => {
                let p = next(&mut i, arg)?;
                if p != "baseline" && p != "optimized" {
                    return Err(format!("--policy must be baseline or optimized, got `{p}`"));
                }
                opts.policy = p;
            }
            "--proximity" => opts.proximity = Some(parse_num(&next(&mut i, arg)?, arg)?),
            "--router" => {
                let r = next(&mut i, arg)?;
                if !["serial", "congestion", "lookahead", "packed"].contains(&r.as_str()) {
                    return Err(format!(
                        "--router must be serial, congestion, lookahead, or packed, got `{r}`"
                    ));
                }
                opts.router = r;
            }
            "--timing" => {
                let t = next(&mut i, arg)?;
                if t != "ideal" && t != "realistic" {
                    return Err(format!("--timing must be ideal or realistic, got `{t}`"));
                }
                opts.timing = t;
            }
            "--objective" => {
                let o = next(&mut i, arg)?;
                if o != "shuttles" && o != "clock" {
                    return Err(format!("--objective must be shuttles or clock, got `{o}`"));
                }
                opts.objective = o;
            }
            "--score-mode" => {
                let m = next(&mut i, arg)?;
                if m != "delta" && m != "full" {
                    return Err(format!("--score-mode must be delta or full, got `{m}`"));
                }
                opts.score_mode = m;
            }
            "--jobs" => {
                let v = next(&mut i, arg)?;
                let jobs: usize = parse_num(&v, arg)?;
                if jobs == 0 {
                    return Err(format!("--jobs must be at least 1, got `{v}`"));
                }
                opts.jobs = jobs;
            }
            "--format" => {
                let f = next(&mut i, arg)?;
                if !["text", "json", "csv"].contains(&f.as_str()) {
                    return Err(format!("--format must be text, json, or csv, got `{f}`"));
                }
                opts.format = f;
            }
            "--out" => opts.out = Some(next(&mut i, arg)?),
            flag if value_flags.contains(&flag) => {
                let value = next(&mut i, flag)?;
                opts.extra_values.push((flag.to_owned(), value));
            }
            flag if bool_flags.contains(&flag) => opts.extra_flags.push(flag.to_owned()),
            other => return Err(format!("unknown option `{other}` (try `muzzle help`)")),
        }
        i += 1;
    }
    Ok(opts)
}

fn parse_num<T: std::str::FromStr>(text: &str, flag: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("{flag}: `{text}` is not a valid number"))
}

/// Resolves a `--timing` value into the device timing model.
pub fn parse_timing_model(timing: &str) -> TimingModel {
    match timing {
        "realistic" => TimingModel::realistic(),
        _ => TimingModel::ideal(),
    }
}

/// Resolves the policy options into a compiler configuration.
///
/// `--proximity` tunes the future-ops scan and is meaningless for the
/// baseline's excess-capacity rule, so that combination is rejected.
/// `--router`, `--timing` and `--objective` compose with either policy
/// (`--objective clock` runs the full packed stack either way — see
/// [`timed`]).
pub fn build_config(
    policy: &str,
    proximity: Option<u32>,
    router: &str,
    timing: &str,
    objective: &str,
    score_mode: &str,
    jobs: usize,
) -> Result<CompilerConfig, String> {
    let (router, lookahead) = match router {
        "congestion" => (RouterPolicy::congestion(), false),
        // `packed` compiles exactly like `lookahead`; the qccd-pack passes
        // run post-compile (see `timed`).
        "lookahead" | "packed" => (RouterPolicy::congestion(), true),
        _ => (RouterPolicy::Serial, false),
    };
    let timing = parse_timing_model(timing);
    let objective = match objective {
        "clock" => Objective::Clock,
        _ => Objective::Shuttles,
    };
    let score_mode = match score_mode {
        "full" => ScoreMode::Full,
        _ => ScoreMode::Delta,
    };
    if policy == "baseline" {
        if proximity.is_some() {
            return Err(
                "--proximity only applies to --policy optimized (the baseline's \
                 excess-capacity rule has no proximity parameter)"
                    .to_owned(),
            );
        }
        return Ok(CompilerConfig::baseline()
            .with_router(router)
            .with_lookahead(lookahead)
            .with_timing(timing)
            .with_objective(objective)
            .with_score_mode(score_mode)
            .with_jobs(jobs));
    }
    let mut config = CompilerConfig::optimized()
        .with_router(router)
        .with_lookahead(lookahead)
        .with_timing(timing)
        .with_objective(objective)
        .with_score_mode(score_mode)
        .with_jobs(jobs);
    if let Some(p) = proximity {
        config.direction = DirectionPolicy::FutureOps { proximity: p };
    }
    Ok(config)
}

/// Applies `--verbose` / `--quiet` to the structured-event verbosity
/// (default: info-level progress on stderr).
pub fn apply_verbosity(opts: &CommonOptions) {
    if opts.extra_flags.iter().any(|f| f == "--quiet") {
        qccd_obs::set_verbosity(qccd_obs::Verbosity::Quiet);
    } else if opts.extra_flags.iter().any(|f| f == "--verbose") {
        qccd_obs::set_verbosity(qccd_obs::Verbosity::Debug);
    }
}

/// The `--profile` report block: per-phase wall-time breakdown (inclusive
/// and self time) plus every hot-path counter, as JSON.
fn profile_json() -> Json {
    Json::obj(vec![
        (
            "phases",
            Json::Arr(
                qccd_obs::phase_stats()
                    .iter()
                    .map(|p| {
                        Json::obj(vec![
                            ("name", Json::str(p.name.as_str())),
                            ("count", Json::int(p.count)),
                            ("total_us", Json::Num(p.total_us)),
                            ("self_us", Json::Num(p.self_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "counters",
            Json::Obj(
                qccd_obs::counters()
                    .into_iter()
                    .map(|(name, value)| (name, Json::int(value as usize)))
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::Arr(
                qccd_obs::histograms()
                    .iter()
                    .map(|h| {
                        Json::obj(vec![
                            ("name", Json::str(h.name.as_str())),
                            ("count", Json::int(h.count as usize)),
                            ("mean", Json::Num(h.mean())),
                            ("p50", Json::int(h.p50() as usize)),
                            ("p99", Json::int(h.p99() as usize)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("wall_us", Json::Num(qccd_obs::wall_us())),
    ])
}

/// Writes `report` to `--out` or stdout.
pub fn emit(report: &str, out: &Option<String>) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, report).map_err(|e| format!("cannot write `{path}`: {e}"))
        }
        None => {
            print!("{report}");
            Ok(())
        }
    }
}

fn require_circuit(opts: &CommonOptions) -> Result<CircuitSpec, String> {
    let spec = opts
        .circuit
        .as_deref()
        .ok_or("missing --circuit (e.g. --circuit qft:16)")?;
    parse_circuit(spec, opts.qubits)
}

fn sim_report_json(report: &SimReport) -> Json {
    Json::obj(vec![
        ("program_fidelity", Json::Num(report.program_fidelity)),
        (
            "log_program_fidelity",
            Json::Num(report.log_program_fidelity),
        ),
        ("makespan_us", Json::Num(report.makespan_us)),
        ("timed_makespan_us", Json::Num(report.timed_makespan_us)),
        ("shuttles", Json::int(report.shuttles)),
        ("shuttle_depth", Json::int(report.shuttle_depth)),
        ("gates", Json::int(report.gates)),
        ("zone_moves", Json::int(report.zone_moves)),
        ("junction_crossings", Json::int(report.junction_crossings)),
        (
            "final_mean_motional_mode",
            Json::Num(report.final_mean_motional_mode),
        ),
        (
            "final_mean_motional_mode_occupied",
            Json::Num(report.final_mean_motional_mode_occupied),
        ),
        ("min_gate_fidelity", Json::Num(report.min_gate_fidelity)),
    ])
}

fn compile_stats_json(result: &CompileResult, compile_s: f64) -> Json {
    let s = &result.stats;
    Json::obj(vec![
        ("shuttles", Json::int(s.shuttles)),
        ("rebalance_shuttles", Json::int(s.rebalance_shuttles)),
        ("transport_depth", Json::int(s.transport_depth)),
        ("gate_ops", Json::int(s.gate_ops)),
        ("local_gates", Json::int(s.local_gates)),
        ("reorders", Json::int(s.reorders)),
        ("rebalances", Json::int(s.rebalances)),
        (
            "opposite_direction_moves",
            Json::int(s.opposite_direction_moves),
        ),
        ("timed_makespan_us", Json::Num(result.timeline.makespan_us)),
        ("zone_moves", Json::int(result.timeline.zone_moves)),
        (
            "junction_crossings",
            Json::int(result.timeline.junction_crossings),
        ),
        ("compile_seconds", Json::Num(compile_s)),
    ])
}

fn clock_stats_json(c: &qccd_pack::ClockStats) -> Json {
    Json::obj(vec![
        ("packed_makespan_us", Json::Num(c.packed_makespan_us)),
        ("clock_makespan_us", Json::Num(c.clock_makespan_us)),
        ("chosen_makespan_us", Json::Num(c.chosen_makespan_us)),
        ("clock_ties", Json::int(c.clock_ties)),
        ("batched_layers", Json::int(c.batched_layers)),
        ("batched_hops", Json::int(c.batched_hops)),
        ("improved", Json::Bool(c.improved)),
    ])
}

fn pack_stats_json(p: &qccd_pack::PackStats) -> Json {
    Json::obj(vec![
        ("input_depth", Json::int(p.input_depth)),
        ("packed_depth", Json::int(p.packed_depth)),
        ("input_makespan_us", Json::Num(p.input_makespan_us)),
        ("packed_makespan_us", Json::Num(p.packed_makespan_us)),
        ("hoisted_hops", Json::int(p.hoisted_hops)),
        ("replanned_runs", Json::int(p.replanned_runs)),
        ("dropped_hops", Json::int(p.dropped_hops)),
        ("improved", Json::Bool(p.improved)),
    ])
}

/// One compile through the selected stack, with wall-clock time:
/// `--objective clock` runs the clock pipeline
/// ([`qccd_pack::compile_clock`] — timed compile loop raced against the
/// default packed stack), `--router packed` runs the qccd-pack passes
/// ([`qccd_pack::compile_packed`]), anything else the plain compiler.
fn timed(
    circuit: &qccd_circuit::Circuit,
    machine: &MachineSpec,
    config: &CompilerConfig,
    pack: bool,
) -> Result<
    (
        CompileResult,
        Option<qccd_pack::PackStats>,
        Option<qccd_pack::ClockStats>,
        f64,
    ),
    String,
> {
    let start = Instant::now();
    if config.objective == Objective::Clock {
        let (result, stats) =
            qccd_pack::compile_clock(circuit, machine, config).map_err(|e| e.to_string())?;
        return Ok((result, None, Some(stats), start.elapsed().as_secs_f64()));
    }
    if pack {
        let (result, stats) =
            qccd_pack::compile_packed(circuit, machine, config).map_err(|e| e.to_string())?;
        return Ok((result, Some(stats), None, start.elapsed().as_secs_f64()));
    }
    let result = compile(circuit, machine, config).map_err(|e| e.to_string())?;
    Ok((result, None, None, start.elapsed().as_secs_f64()))
}

// ---------------------------------------------------------------- compile

fn cmd_compile(args: &[String]) -> Result<(), String> {
    let opts = parse_common(
        args,
        &["--trace"],
        &[
            "--show-schedule",
            "--analyze",
            "--profile",
            "--verbose",
            "--quiet",
        ],
    )?;
    apply_verbosity(&opts);
    let circuit = require_circuit(&opts)?;
    let machine = opts.machine.build()?;
    let config = build_config(
        &opts.policy,
        opts.proximity,
        &opts.router,
        &opts.timing,
        &opts.objective,
        &opts.score_mode,
        opts.jobs,
    )?;
    let trace = opts
        .extra_values
        .iter()
        .find(|(k, _)| k == "--trace")
        .map(|(_, v)| v.clone());
    let profile = opts.extra_flags.iter().any(|f| f == "--profile");
    // Instrumentation observes, never decides: the compile below is
    // bit-for-bit identical with or without the recorder enabled.
    if trace.is_some() || profile {
        qccd_obs::reset();
        qccd_obs::enable();
    }
    let (result, pack_stats, clock_stats, compile_s) =
        timed(&circuit.circuit, &machine, &config, opts.router == "packed")?;
    if trace.is_some() || profile {
        qccd_obs::disable();
    }
    if let Some(path) = &trace {
        std::fs::write(path, qccd_obs::chrome_trace())
            .map_err(|e| format!("cannot write `{path}`: {e}"))?;
    }

    let mut report = String::new();
    match opts.format.as_str() {
        "json" => {
            let value = Json::obj(vec![
                ("circuit", Json::str(&circuit.name)),
                ("qubits", Json::int(circuit.circuit.num_qubits() as usize)),
                (
                    "two_qubit_gates",
                    Json::int(circuit.circuit.two_qubit_gate_count()),
                ),
                ("machine", Json::str(machine.to_string())),
                ("policy", Json::str(&opts.policy)),
                ("config", Json::str(config.to_string())),
                ("stats", compile_stats_json(&result, compile_s)),
            ]);
            let value = match pack_stats {
                Some(p) => value.with_field("pack", pack_stats_json(&p)),
                None => value,
            };
            let value = match clock_stats {
                Some(c) => value.with_field("clock", clock_stats_json(&c)),
                None => value,
            };
            let value = if profile {
                value.with_field("profile", profile_json())
            } else {
                value
            };
            report.push_str(&value.to_string());
            report.push('\n');
        }
        "csv" => {
            report.push_str("circuit,machine,policy,router,timing,shuttles,rebalance_shuttles,transport_depth,timed_makespan_us,zone_moves,gates,local_gates,reorders,rebalances,compile_seconds\n");
            report.push_str(&output::csv_row(&[
                circuit.name.clone(),
                machine.to_string(),
                opts.policy.clone(),
                opts.router.clone(),
                opts.timing.clone(),
                result.stats.shuttles.to_string(),
                result.stats.rebalance_shuttles.to_string(),
                result.stats.transport_depth.to_string(),
                format!("{:.3}", result.timeline.makespan_us),
                result.timeline.zone_moves.to_string(),
                result.stats.gate_ops.to_string(),
                result.stats.local_gates.to_string(),
                result.stats.reorders.to_string(),
                result.stats.rebalances.to_string(),
                format!("{compile_s:.6}"),
            ]));
            report.push('\n');
        }
        _ => {
            report.push_str(&format!(
                "circuit  {} ({} qubits, {} two-qubit gates)\n",
                circuit.name,
                circuit.circuit.num_qubits(),
                circuit.circuit.two_qubit_gate_count()
            ));
            report.push_str(&format!("machine  {machine}\n"));
            report.push_str(&format!("policy   {} ({config})\n", opts.policy));
            report.push_str(&format!("result   {}\n", result.stats));
            report.push_str(&format!(
                "timeline {:.1} us makespan ({}), {} zone moves, {} junction crossings\n",
                result.timeline.makespan_us,
                opts.timing,
                result.timeline.zone_moves,
                result.timeline.junction_crossings
            ));
            if let Some(p) = &pack_stats {
                report.push_str(&format!(
                    "pack     depth {} -> {}, timed makespan {:.1} -> {:.1} us ({} hoisted, {} runs replanned{})\n",
                    p.input_depth,
                    p.packed_depth,
                    p.input_makespan_us,
                    p.packed_makespan_us,
                    p.hoisted_hops,
                    p.replanned_runs,
                    if p.improved { "" } else { "; no gain — kept lookahead" }
                ));
            }
            if let Some(c) = &clock_stats {
                report.push_str(&format!(
                    "clock    timed makespan {:.1} us packed -> {:.1} us ({} ties on the clock, {} batched layers / {} hops{})\n",
                    c.packed_makespan_us,
                    c.chosen_makespan_us,
                    c.clock_ties,
                    c.batched_layers,
                    c.batched_hops,
                    if c.improved { "" } else { "; no gain — kept packed" }
                ));
            }
            report.push_str(&format!("time     {compile_s:.4} s\n"));
            if profile {
                report.push_str(&qccd_obs::summary_table());
            }
        }
    }

    if opts.extra_flags.iter().any(|f| f == "--analyze") {
        let analysis = ScheduleAnalysis::analyze(
            &result.schedule,
            machine.num_traps(),
            circuit.circuit.num_qubits(),
        );
        report.push_str(&format!(
            "analysis shuttle/gate ratio {:.3}, stationary ions {:.1}%, ping-pong volume {}\n",
            analysis.shuttle_to_gate_ratio(),
            100.0 * analysis.stationary_ion_fraction(),
            analysis.total_ping_pong(),
        ));
        if let Some((ion, hops)) = analysis.busiest_ion() {
            report.push_str(&format!("         busiest ion {ion} with {hops} hops\n"));
        }
    }
    if opts.extra_flags.iter().any(|f| f == "--show-schedule") {
        report.push_str(&result.schedule.to_text(&circuit.circuit));
    }
    emit(&report, &opts.out)
}

// --------------------------------------------------------------- simulate

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let opts = parse_common(args, &[], &["--compare", "--profile"])?;
    let circuit = require_circuit(&opts)?;
    let machine = opts.machine.build()?;
    let params = SimParams::default();
    let compare = opts.extra_flags.iter().any(|f| f == "--compare");
    let profile = opts.extra_flags.iter().any(|f| f == "--profile");
    // Instrumentation observes, never decides: the compile + replay below
    // are bit-for-bit identical with or without the recorder enabled.
    if profile {
        qccd_obs::reset();
        qccd_obs::enable();
    }

    // Every schedule replays through its compiled transport rounds (one
    // hop per round under the serial router — the historical replay) on
    // the timed event timeline of the selected --timing model.
    let model = parse_timing_model(&opts.timing);
    let pack = opts.router == "packed";
    let run = |config: &CompilerConfig| -> Result<(CompileResult, SimReport), String> {
        let (result, _, _, _) = timed(&circuit.circuit, &machine, config, pack)?;
        let report = simulate_timed(
            &result.schedule,
            &result.transport,
            &circuit.circuit,
            &machine,
            &params,
            &model,
        )
        .map_err(|e| e.to_string())?;
        Ok((result, report))
    };

    let mut report = String::new();
    if compare {
        opts.reject_flags(
            &["--policy"],
            "--compare always runs both the baseline and optimized policies",
        )?;
        let (_, base) = run(&build_config(
            "baseline",
            None,
            &opts.router,
            &opts.timing,
            &opts.objective,
            &opts.score_mode,
            opts.jobs,
        )?)?;
        let (_, opt) = run(&build_config(
            "optimized",
            opts.proximity,
            &opts.router,
            &opts.timing,
            &opts.objective,
            &opts.score_mode,
            opts.jobs,
        )?)?;
        if profile {
            qccd_obs::disable();
        }
        match opts.format.as_str() {
            "json" => {
                let value = Json::obj(vec![
                    ("circuit", Json::str(&circuit.name)),
                    ("machine", Json::str(machine.to_string())),
                    ("baseline", sim_report_json(&base)),
                    ("optimized", sim_report_json(&opt)),
                    (
                        "fidelity_improvement",
                        Json::Num(opt.fidelity_improvement_over(&base)),
                    ),
                ]);
                let value = if profile {
                    value.with_field("profile", profile_json())
                } else {
                    value
                };
                report.push_str(&value.to_string());
                report.push('\n');
            }
            "csv" => {
                report.push_str(
                    "circuit,machine,policy,timing,program_fidelity,makespan_us,timed_makespan_us,shuttles,gates,zone_moves\n",
                );
                for (policy, r) in [("baseline", &base), ("optimized", &opt)] {
                    report.push_str(&output::csv_row(&[
                        circuit.name.clone(),
                        machine.to_string(),
                        policy.to_owned(),
                        opts.timing.clone(),
                        format!("{:e}", r.program_fidelity),
                        format!("{:.3}", r.makespan_us),
                        format!("{:.3}", r.timed_makespan_us),
                        r.shuttles.to_string(),
                        r.gates.to_string(),
                        r.zone_moves.to_string(),
                    ]));
                    report.push('\n');
                }
            }
            _ => {
                report.push_str(&format!("circuit   {} on {machine}\n", circuit.name));
                report.push_str(&format!("baseline  {base}\n"));
                report.push_str(&format!("optimized {opt}\n"));
                report.push_str(&format!(
                    "improvement {:.2}X ({} fewer shuttles)\n",
                    opt.fidelity_improvement_over(&base),
                    base.shuttles as i64 - opt.shuttles as i64
                ));
                if profile {
                    report.push_str(&qccd_obs::summary_table());
                }
            }
        }
    } else {
        let config = build_config(
            &opts.policy,
            opts.proximity,
            &opts.router,
            &opts.timing,
            &opts.objective,
            &opts.score_mode,
            opts.jobs,
        )?;
        let (_, sim) = run(&config)?;
        if profile {
            qccd_obs::disable();
        }
        match opts.format.as_str() {
            "json" => {
                let value = Json::obj(vec![
                    ("circuit", Json::str(&circuit.name)),
                    ("machine", Json::str(machine.to_string())),
                    ("policy", Json::str(&opts.policy)),
                    ("report", sim_report_json(&sim)),
                ]);
                let value = if profile {
                    value.with_field("profile", profile_json())
                } else {
                    value
                };
                report.push_str(&value.to_string());
                report.push('\n');
            }
            "csv" => {
                report.push_str(
                    "circuit,machine,policy,timing,program_fidelity,makespan_us,timed_makespan_us,shuttles,gates,zone_moves\n",
                );
                report.push_str(&output::csv_row(&[
                    circuit.name.clone(),
                    machine.to_string(),
                    opts.policy.clone(),
                    opts.timing.clone(),
                    format!("{:e}", sim.program_fidelity),
                    format!("{:.3}", sim.makespan_us),
                    format!("{:.3}", sim.timed_makespan_us),
                    sim.shuttles.to_string(),
                    sim.gates.to_string(),
                    sim.zone_moves.to_string(),
                ]));
                report.push('\n');
            }
            _ => {
                report.push_str(&format!(
                    "circuit {} on {machine} ({})\n{sim}\n",
                    circuit.name, opts.policy
                ));
                if profile {
                    report.push_str(&qccd_obs::summary_table());
                }
            }
        }
    }
    emit(&report, &opts.out)
}

// ------------------------------------------------------------------ sweep

fn cmd_sweep(args: &[String]) -> Result<(), String> {
    let opts = parse_common(args, &["--param", "--values"], &[])?;
    let circuit = require_circuit(&opts)?;
    let param = opts
        .extra_values
        .iter()
        .find(|(k, _)| k == "--param")
        .map(|(_, v)| v.clone())
        .unwrap_or_else(|| "proximity".to_owned());
    let values: Vec<u32> = match opts.extra_values.iter().find(|(k, _)| k == "--values") {
        Some((_, list)) => list
            .split(',')
            .map(|v| parse_num(v.trim(), "--values"))
            .collect::<Result<_, _>>()?,
        None => match param.as_str() {
            "proximity" => vec![1, 2, 3, 4, 6, 8, 12, 16, 24],
            _ => vec![2, 3, 4, 6, 8],
        },
    };
    if values.is_empty() {
        return Err("--values must name at least one value".to_owned());
    }
    opts.reject_flags(
        &["--policy"],
        "sweep always tabulates the baseline against the optimized policy",
    )?;
    if param == "proximity" {
        opts.reject_flags(
            &["--proximity"],
            "the proximity sweep sets the proximity from --values",
        )?;
    }
    if param == "traps" {
        opts.reject_flags(
            &["--traps"],
            "the traps sweep sets the trap count from --values",
        )?;
    }

    struct Row {
        value: u32,
        baseline: usize,
        optimized: usize,
    }
    let mut rows = Vec::with_capacity(values.len());
    for &value in &values {
        let (machine, base_cfg, opt_cfg) = match param.as_str() {
            "proximity" => (
                opts.machine.build()?,
                build_config(
                    "baseline",
                    None,
                    &opts.router,
                    &opts.timing,
                    &opts.objective,
                    &opts.score_mode,
                    opts.jobs,
                )?,
                build_config(
                    "optimized",
                    Some(value),
                    &opts.router,
                    &opts.timing,
                    &opts.objective,
                    &opts.score_mode,
                    opts.jobs,
                )?,
            ),
            "traps" => {
                let mut m = MachineOptions {
                    traps: value,
                    ..MachineOptions::default()
                };
                m.capacity = opts.machine.capacity;
                m.comm = opts.machine.comm;
                m.topology = opts.machine.topology.clone();
                (
                    m.build()?,
                    build_config(
                        "baseline",
                        None,
                        &opts.router,
                        &opts.timing,
                        &opts.objective,
                        &opts.score_mode,
                        opts.jobs,
                    )?,
                    build_config(
                        "optimized",
                        opts.proximity,
                        &opts.router,
                        &opts.timing,
                        &opts.objective,
                        &opts.score_mode,
                        opts.jobs,
                    )?,
                )
            }
            other => {
                return Err(format!(
                    "unknown sweep parameter `{other}` (expected proximity or traps)"
                ))
            }
        };
        let (base, _, _, _) = timed(
            &circuit.circuit,
            &machine,
            &base_cfg,
            opts.router == "packed",
        )?;
        let (opt, _, _, _) = timed(
            &circuit.circuit,
            &machine,
            &opt_cfg,
            opts.router == "packed",
        )?;
        rows.push(Row {
            value,
            baseline: base.stats.shuttles,
            optimized: opt.stats.shuttles,
        });
    }

    let mut report = String::new();
    match opts.format.as_str() {
        "json" => {
            let value = Json::obj(vec![
                ("circuit", Json::str(&circuit.name)),
                ("param", Json::str(&param)),
                (
                    "rows",
                    Json::Arr(
                        rows.iter()
                            .map(|r| {
                                Json::obj(vec![
                                    (param.as_str(), Json::int(r.value as usize)),
                                    ("baseline_shuttles", Json::int(r.baseline)),
                                    ("optimized_shuttles", Json::int(r.optimized)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]);
            report.push_str(&value.to_string());
            report.push('\n');
        }
        "csv" => {
            report.push_str(&format!("{param},baseline_shuttles,optimized_shuttles\n"));
            for r in &rows {
                report.push_str(&output::csv_row(&[
                    r.value.to_string(),
                    r.baseline.to_string(),
                    r.optimized.to_string(),
                ]));
                report.push('\n');
            }
        }
        _ => {
            report.push_str(&format!(
                "# sweep of {param} for {} (baseline vs optimized shuttles)\n",
                circuit.name
            ));
            report.push_str(&format!(
                "{:>10} {:>10} {:>10}\n",
                param, "baseline", "optimized"
            ));
            for r in &rows {
                report.push_str(&format!(
                    "{:>10} {:>10} {:>10}\n",
                    r.value, r.baseline, r.optimized
                ));
            }
        }
    }
    emit(&report, &opts.out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    /// Malformed numeric flags are typed usage errors that quote the
    /// offending value — never a panic, never a silent default.
    #[test]
    fn malformed_numeric_flags_name_the_offending_value() {
        let err = parse_common(&args(&["--jobs", "many"]), &[], &[])
            .err()
            .unwrap();
        assert_eq!(err, "--jobs: `many` is not a valid number");
        let err = parse_common(&args(&["--jobs", "-2"]), &[], &[])
            .err()
            .unwrap();
        assert_eq!(err, "--jobs: `-2` is not a valid number");
        let err = parse_common(&args(&["--jobs", "0"]), &[], &[])
            .err()
            .unwrap();
        assert_eq!(err, "--jobs must be at least 1, got `0`");
        let err = parse_common(&args(&["--traps", "3.5"]), &[], &[])
            .err()
            .unwrap();
        assert_eq!(err, "--traps: `3.5` is not a valid number");
        let err = explain::cmd_explain(&args(&["--top", "five"])).unwrap_err();
        assert_eq!(err, "--top: `five` is not a valid number");
    }

    #[test]
    fn jobs_flag_parses_and_reaches_the_config() {
        let opts = parse_common(&args(&[]), &[], &[]).unwrap();
        assert_eq!(opts.jobs, 1, "default is sequential");
        let opts = parse_common(&args(&["--jobs", "4"]), &[], &[]).unwrap();
        assert_eq!(opts.jobs, 4);
        let config = build_config(
            "optimized",
            None,
            "packed",
            "realistic",
            "clock",
            "delta",
            4,
        )
        .unwrap();
        assert_eq!(config.jobs, 4);
        let config =
            build_config("baseline", None, "serial", "ideal", "shuttles", "delta", 2).unwrap();
        assert_eq!(config.jobs, 2);
    }
}
