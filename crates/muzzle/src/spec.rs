//! Parsing of `--circuit` and machine-shape options into workspace types.

use qccd_circuit::generators::{qaoa, qft, quadratic_form, random_circuit, square_root, supremacy};
use qccd_circuit::parser::parse_program;
use qccd_circuit::Circuit;
use qccd_machine::{MachineSpec, TrapTopology, ZoneLayout};

/// A parsed `--circuit` argument: the circuit plus a display name.
pub struct CircuitSpec {
    /// Canonical display name (e.g. `qft:16`).
    pub name: String,
    /// The generated or parsed circuit.
    pub circuit: Circuit,
}

/// Parses a `--circuit` spec.
///
/// Grammar: `family:dims` with dimensions separated by `x` and an optional
/// `@seed` suffix, or `file:PATH` (a program-text file; pass `--qubits`).
///
/// | Spec | Meaning |
/// |------|---------|
/// | `qft:16` | 16-qubit quantum Fourier transform |
/// | `qaoa:64x13[@seed]` | QAOA MaxCut, 64 qubits × 13 rounds |
/// | `supremacy:8x8x20` | supremacy-style grid, 8×8 qubits × 20 cycles |
/// | `sqrt:78x9` | Grover-style square root, 78 qubits × 9 blocks |
/// | `quadform:64x3400` | QuadraticForm with ≈3400 two-qubit gates |
/// | `random:60x1438[@seed]` | uniform random two-qubit circuit |
/// | `file:prog.txt` | program text in the paper's listing format |
pub fn parse_circuit(spec: &str, file_qubits: Option<u32>) -> Result<CircuitSpec, String> {
    let (family, rest) = spec
        .split_once(':')
        .ok_or_else(|| format!("circuit spec `{spec}` needs the form family:dims"))?;
    if family == "file" {
        let qubits =
            file_qubits.ok_or_else(|| "file: circuits need an explicit --qubits N".to_owned())?;
        let text = std::fs::read_to_string(rest)
            .map_err(|e| format!("cannot read circuit file `{rest}`: {e}"))?;
        let circuit =
            parse_program(&text, qubits).map_err(|e| format!("parse error in `{rest}`: {e}"))?;
        return Ok(CircuitSpec {
            name: format!("file:{rest}"),
            circuit,
        });
    }

    let (dims_text, seed) = match rest.split_once('@') {
        Some((d, s)) => (
            d,
            Some(
                s.parse::<u64>()
                    .map_err(|_| format!("bad seed `{s}` in circuit spec `{spec}`"))?,
            ),
        ),
        None => (rest, None),
    };
    let dims: Vec<u64> = dims_text
        .split('x')
        .map(|d| {
            d.parse::<u32>()
                .map(u64::from)
                .map_err(|_| format!("bad dimension `{d}` in circuit spec `{spec}`"))
        })
        .collect::<Result<_, _>>()?;
    // Only seeded families may carry an @seed suffix; accepting it anywhere
    // else would let seed sweeps silently produce identical circuits.
    if seed.is_some() && !matches!(family, "qaoa" | "random") {
        return Err(format!(
            "circuit family `{family}` is deterministic and takes no @seed (in `{spec}`)"
        ));
    }

    let expect = |n: usize| -> Result<(), String> {
        if dims.len() == n {
            Ok(())
        } else {
            Err(format!(
                "circuit family `{family}` takes {n} dimension(s), got {} in `{spec}`",
                dims.len()
            ))
        }
    };

    let circuit = match family {
        "qft" => {
            expect(1)?;
            qft(dims[0] as u32)
        }
        "qaoa" => {
            expect(2)?;
            qaoa(dims[0] as u32, dims[1] as u32, seed.unwrap_or(0xA0A0))
        }
        "supremacy" => {
            expect(3)?;
            supremacy(dims[0] as u32, dims[1] as u32, dims[2] as u32)
        }
        "sqrt" => {
            expect(2)?;
            square_root(dims[0] as u32, dims[1] as u32)
        }
        "quadform" => {
            expect(2)?;
            quadratic_form(dims[0] as u32, dims[1] as usize)
        }
        "random" => {
            expect(2)?;
            random_circuit(dims[0] as u32, dims[1] as usize, seed.unwrap_or(7))
        }
        other => {
            return Err(format!(
                "unknown circuit family `{other}` \
                 (expected qft, qaoa, supremacy, sqrt, quadform, random, or file)"
            ))
        }
    };
    Ok(CircuitSpec {
        name: spec.to_owned(),
        circuit,
    })
}

/// Machine-shape options shared by every subcommand. Defaults to the
/// paper's L6 evaluation platform (§IV-A): 6 linear traps, capacity 17,
/// communication capacity 2.
pub struct MachineOptions {
    /// Number of traps (`--traps`).
    pub traps: u32,
    /// Total per-trap capacity (`--capacity`).
    pub capacity: u32,
    /// Communication capacity (`--comm`).
    pub comm: u32,
    /// Interconnect shape (`--topology linear[:N]|ring[:N]|grid:RxC`;
    /// sized forms override `--traps`).
    pub topology: String,
    /// Per-trap zone layout (`--zones GATE:STORAGE:LOADING`; `None` keeps
    /// the paper's homogeneous single-gate-zone traps).
    pub zones: Option<String>,
}

impl Default for MachineOptions {
    fn default() -> Self {
        MachineOptions {
            traps: 6,
            capacity: 17,
            comm: 2,
            topology: "linear".to_owned(),
            zones: None,
        }
    }
}

impl MachineOptions {
    /// Builds the validated [`MachineSpec`].
    ///
    /// Topology grammar: `linear` / `ring` take their size from `--traps`;
    /// the explicitly-sized forms `linear:N`, `ring:N` and `grid:RxC` name
    /// their own trap count (and override `--traps`). Malformed or
    /// degenerate specs (`grid:0x3`, `ring:1`, `linear:x`) are rejected
    /// with a parse error.
    pub fn build(&self) -> Result<MachineSpec, String> {
        let topology = parse_topology(&self.topology, self.traps)?;
        let spec =
            MachineSpec::new(topology, self.capacity, self.comm).map_err(|e| e.to_string())?;
        match &self.zones {
            None => Ok(spec),
            Some(text) => {
                let layout = parse_zones(text)?;
                spec.with_zone_layout(layout).map_err(|e| e.to_string())
            }
        }
    }
}

/// Parses a `--zones GATE:STORAGE:LOADING` spec (e.g. `13:2:2`).
fn parse_zones(text: &str) -> Result<ZoneLayout, String> {
    let parts: Vec<&str> = text.split(':').collect();
    let [gate, storage, loading] = parts.as_slice() else {
        return Err(format!(
            "--zones needs GATE:STORAGE:LOADING (three zone sizes), got `{text}`"
        ));
    };
    let num = |part: &str| -> Result<u32, String> {
        part.parse()
            .map_err(|_| format!("bad zone size `{part}` in `--zones {text}`"))
    };
    ZoneLayout::new(num(gate)?, num(storage)?, num(loading)?).map_err(|e| e.to_string())
}

/// Parses a `--topology` spec; `default_traps` sizes the bare
/// `linear`/`ring` forms.
fn parse_topology(spec: &str, default_traps: u32) -> Result<TrapTopology, String> {
    let (family, size) = match spec.split_once(':') {
        Some((f, s)) => (f, Some(s)),
        None => (spec, None),
    };
    let sized = |text: Option<&str>| -> Result<u32, String> {
        match text {
            None => Ok(default_traps),
            Some(t) => t
                .parse::<u32>()
                .map_err(|_| format!("bad trap count `{t}` in topology `{spec}`")),
        }
    };
    match family {
        "linear" => {
            let n = sized(size)?;
            if n == 0 {
                return Err(format!(
                    "linear topology needs at least 1 trap (in `{spec}`)"
                ));
            }
            Ok(TrapTopology::linear(n))
        }
        "ring" => {
            let n = sized(size)?;
            if n < 3 {
                return Err(format!(
                    "ring topology needs at least 3 traps, got {n} (in `{spec}`)"
                ));
            }
            Ok(TrapTopology::ring(n))
        }
        "grid" => {
            let dims = size.ok_or_else(|| format!("grid topology needs grid:RxC, got `{spec}`"))?;
            let (r, c) = dims
                .split_once('x')
                .ok_or_else(|| format!("grid topology needs grid:RxC, got `{spec}`"))?;
            let rows: u32 = r.parse().map_err(|_| format!("bad grid rows `{r}`"))?;
            let cols: u32 = c.parse().map_err(|_| format!("bad grid cols `{c}`"))?;
            if rows == 0 || cols == 0 {
                return Err(format!(
                    "grid dimensions must be at least 1x1, got {rows}x{cols} (in `{spec}`)"
                ));
            }
            Ok(TrapTopology::grid(rows, cols))
        }
        other => Err(format!(
            "unknown topology `{other}` (expected linear[:N], ring[:N], or grid:RxC)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_family() {
        for (spec, qubits, gates) in [
            ("qft:16", 16, 240), // 2 MS per controlled-phase: n(n-1)
            ("qaoa:16x2", 16, 48),
            ("supremacy:4x4x12", 16, 0), // gate count checked loosely below
            ("sqrt:16x3", 16, 0),
            ("quadform:16x200", 16, 200),
            ("random:18x200", 18, 200),
        ] {
            let c = parse_circuit(spec, None).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(c.circuit.num_qubits(), qubits, "{spec}");
            if gates > 0 {
                assert_eq!(c.circuit.two_qubit_gate_count(), gates, "{spec}");
            }
            assert_eq!(c.name, spec);
        }
    }

    #[test]
    fn seed_suffix_changes_random_circuits() {
        let a = parse_circuit("random:12x50@1", None).unwrap();
        let b = parse_circuit("random:12x50@2", None).unwrap();
        assert_ne!(a.circuit, b.circuit);
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(parse_circuit("qft", None).is_err());
        assert!(parse_circuit("qft:16x2", None).is_err());
        assert!(parse_circuit("nosuch:4", None).is_err());
        assert!(parse_circuit("random:axb", None).is_err());
        assert!(parse_circuit("random:12x50@zz", None).is_err());
        assert!(
            parse_circuit("file:nope.txt", None).is_err(),
            "file needs --qubits"
        );
    }

    #[test]
    fn default_machine_is_paper_l6() {
        let spec = MachineOptions::default().build().unwrap();
        assert_eq!(spec, MachineSpec::paper_l6());
    }

    #[test]
    fn zones_option_builds_multi_zone_machines() {
        let mut opts = MachineOptions {
            zones: Some("13:2:2".to_owned()),
            ..MachineOptions::default()
        };
        let spec = opts.build().unwrap();
        assert!(!spec.zone_layout().is_single());
        assert_eq!(spec.zone_layout().gate, 13);
        assert_eq!(spec.to_string(), "L6(cap 17, comm 2, zones 13+2+2)");
        for (zones, needle) in [
            ("13:2", "three zone sizes"),
            ("a:2:2", "bad zone size"),
            ("0:15:2", "no gate zone"),
            ("12:2:2", "sum to 16"),    // != capacity 17
            ("14:2:1", "loading zone"), // comm 2 > loading 1
        ] {
            opts.zones = Some(zones.to_owned());
            let err = opts.build().unwrap_err();
            assert!(err.contains(needle), "`{zones}` → `{err}`");
        }
    }

    #[test]
    fn builds_ring_and_grid() {
        let mut opts = MachineOptions {
            traps: 4,
            capacity: 8,
            comm: 2,
            topology: "ring".to_owned(),
            zones: None,
        };
        assert_eq!(opts.build().unwrap().topology().to_string(), "R4");
        opts.topology = "grid:2x2".to_owned();
        assert_eq!(opts.build().unwrap().topology().to_string(), "G2x2");
        opts.topology = "torus".to_owned();
        assert!(opts.build().is_err());
    }

    #[test]
    fn sized_topology_specs_override_traps() {
        let mut opts = MachineOptions {
            traps: 4,
            capacity: 8,
            comm: 2,
            topology: "linear:7".to_owned(),
            zones: None,
        };
        assert_eq!(opts.build().unwrap().topology().to_string(), "L7");
        opts.topology = "ring:5".to_owned();
        assert_eq!(opts.build().unwrap().topology().to_string(), "R5");
        opts.topology = "grid:2x3".to_owned();
        assert_eq!(opts.build().unwrap().topology().to_string(), "G2x3");
    }

    #[test]
    fn malformed_topology_specs_are_rejected() {
        let base = MachineOptions::default;
        for (spec, needle) in [
            ("grid:0x3", "at least 1x1"),
            ("grid:3x0", "at least 1x1"),
            ("ring:1", "at least 3 traps"),
            ("ring:2", "at least 3 traps"),
            ("linear:0", "at least 1 trap"),
            ("linear:x", "bad trap count"),
            ("grid:axb", "bad grid rows"),
            ("grid:3", "grid:RxC"),
            ("grid", "grid:RxC"),
            ("moebius:4", "unknown topology"),
        ] {
            let mut opts = base();
            opts.topology = spec.to_owned();
            let err = opts.build().unwrap_err();
            assert!(err.contains(needle), "`{spec}` → `{err}`");
        }
    }
}
