//! The muzzle-shuttle QCCD compiler — the paper's primary contribution.
//!
//! Compiles a logical quantum circuit onto a multi-trap trapped-ion machine,
//! inserting the shuttle operations needed to co-locate every two-qubit
//! gate's ions. Two complete policy stacks are provided:
//!
//! * **Baseline** ([`CompilerConfig::baseline`]) — the QCCD compiler of
//!   Murali et al. (ISCA'20) as characterised in the paper: excess-capacity
//!   shuttle direction (Listing 1), no gate re-ordering, trap-0-first
//!   re-balancing routed by min-cost max-flow, chain-end ion eviction.
//! * **Optimized** ([`CompilerConfig::optimized`]) — the paper's three
//!   heuristics: future-ops shuttle direction with gate-proximity cutoff
//!   (§III-A), opportunistic gate re-ordering (§III-B, Algorithm 1), and
//!   nearest-neighbour-first re-balancing with max-score ion selection
//!   (§III-C, Algorithm 2).
//!
//! Every compile is validated by replay before being returned, so a returned
//! [`CompileResult`] is guaranteed executable: gates in dependency order,
//! operands co-located, shuttles legal.
//!
//! # Example
//!
//! ```
//! use qccd_circuit::generators::qft;
//! use qccd_core::{compile, CompilerConfig};
//! use qccd_machine::MachineSpec;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let circuit = qft(16);
//! let machine = MachineSpec::linear(2, 10, 2)?;
//! let baseline = compile(&circuit, &machine, &CompilerConfig::baseline())?;
//! let optimized = compile(&circuit, &machine, &CompilerConfig::optimized())?;
//! assert!(optimized.stats.shuttles <= baseline.stats.shuttles);
//! # Ok(())
//! # }
//! ```

mod analysis;
mod config;
mod error;
mod mapping;
mod objective;
mod policies;
mod rebalance;
mod scheduler;
mod stats;

pub use analysis::ScheduleAnalysis;
pub use config::{
    CompilerConfig, DirectionPolicy, IonSelection, MappingPolicy, Objective, RebalancePolicy,
    ScoreMode,
};
pub use error::CompileError;
pub use mapping::initial_mapping;
pub use policies::{
    decide_direction, decide_direction_open, DirectionChoice, MoveDecision, MoveScores,
};
pub use scheduler::{compile, compile_with_mapping, CompileResult};
pub use stats::CompileStats;

// Routing and timing types surface in the compiler's public API
// (`CompilerConfig`, `CompileResult`); re-export them so most users need
// only `qccd-core`.
pub use qccd_route::{RouterPolicy, TransportError, TransportRound, TransportSchedule};
pub use qccd_timing::{Timeline, TimelineEvent, TimingModel};
