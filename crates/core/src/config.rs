//! Compiler configuration: which policy fills each decision point.

use qccd_route::RouterPolicy;
use qccd_timing::TimingModel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which ion moves when a two-qubit gate spans two traps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DirectionPolicy {
    /// The baseline policy of Murali et al. (Listing 1 of the paper):
    /// compare the excess capacities of the two endpoint traps and move
    /// into the roomier one; on a tie, move the gate's first ion.
    ExcessCapacity,
    /// The paper's future-ops policy (§III-A): compute a move score from
    /// the near-future gates involving either ion and move toward the trap
    /// that satisfies more of them, with the §III-A3 proximity cutoff at
    /// the paper's sweet spot of 6.
    ///
    /// The cutoff distance is measured in **dependency-graph layers**
    /// between consecutive relevant gates. For the serial programs the
    /// paper illustrates with (Figs. 4-5) this is identical to counting
    /// intervening gates; for wide NISQ circuits (where one layer holds
    /// ~30 parallel gates) it is the scale-invariant reading under which a
    /// threshold of 6 reaches each ion's next few gates, as the paper's
    /// reported reductions require. The literal intervening-gate count is
    /// available as [`DirectionPolicy::FutureOpsGateDistance`] for
    /// ablation. Ties fall back to [`DirectionPolicy::ExcessCapacity`].
    FutureOps {
        /// Maximum layer gap between consecutive *relevant* gates before
        /// the scan stops.
        proximity: u32,
    },
    /// Future-ops with the proximity distance measured literally as the
    /// number of intervening gates in the planned order (the paper's text
    /// read word-for-word). On wide circuits a small threshold excludes
    /// essentially all future gates, degenerating to the excess-capacity
    /// fallback — kept for the ablation benches.
    FutureOpsGateDistance {
        /// Maximum number of intervening gates between consecutive
        /// relevant gates before the scan stops.
        proximity: u32,
    },
}

/// How a destination trap is chosen when evicting an ion from a full trap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RebalancePolicy {
    /// Baseline: scan traps from `T0` upward and take the first with excess
    /// capacity, routing the eviction with min-cost max-flow (§III-C1:
    /// "the search for a destination trap always starts with T0").
    FromTrapZero,
    /// The paper's Algorithm 2: among traps with excess capacity, pick the
    /// one nearest to the blocked trap on the topology.
    NearestNeighbor,
}

/// Which ion is evicted from a full trap during re-balancing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IonSelection {
    /// Baseline: the ion at the end of the chain (cheapest to split off).
    ChainEnd,
    /// The paper's max-score heuristic (§III-C2): prefer ions with many
    /// remaining gates in the destination trap and few in the source trap,
    /// `score = wd·#dest − ws·#source`. On equal counts the weights shift
    /// to 0.49/0.51 so the score cannot be zero.
    MaxScore {
        /// Weight on gates in the destination trap (paper: 0.5).
        wd: f64,
        /// Weight on gates in the source trap (paper: 0.5).
        ws: f64,
    },
}

/// What the compile loop optimizes at every open decision.
///
/// The paper's heuristics minimize shuttle *count*; the hardware pays
/// timed *makespan*. PR 4 measured that post-compile batching finds
/// nothing left to fix on compiled traffic — the clock has to be optimized
/// at the point of choice, inside the loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Objective {
    /// The paper's objective: minimize shuttle count. Every decision rule
    /// is the published heuristic, bit-for-bit identical to the historical
    /// compiler. The default.
    Shuttles,
    /// Timeline-driven: thread an incremental
    /// [`LowerState`](qccd_timing::LowerState) through the compile loop
    /// and break the decisions the paper leaves open on *projected
    /// makespan* under [`CompilerConfig::timing`] — direction-score ties,
    /// re-balancing destination ties, and wide gate-free layers planned as
    /// multi-commodity flows instead of one move at a time. Routes are
    /// priced by timed segment duration (junction-aware) rather than unit
    /// hops.
    Clock,
}

/// How the clock objective prices speculative candidates.
///
/// Both modes are **bit-for-bit identical** in what they compute — the
/// `delta_properties` differential harness and the `paper_eval delta` CI
/// gate pin the equality — so the choice is purely a speed/oracle knob.
/// Meaningless under [`Objective::Shuttles`] (nothing is speculated).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScoreMode {
    /// Full re-lower oracle: replay the entire committed schedule plus
    /// the candidate from the initial mapping — O(n) per candidate,
    /// quadratic over the compile loop. Kept as the differential
    /// reference the delta path is validated against.
    Full,
    /// O(delta): price the candidate by touching only the trap clocks and
    /// ion availability it uses, with undo records instead of a cloned
    /// fold ([`DeltaScorer`](qccd_timing::DeltaScorer)). The default.
    #[default]
    Delta,
}

/// How ions are initially placed into traps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MappingPolicy {
    /// Fill traps in qubit order, `total − comm` ions per trap.
    RoundRobin,
    /// The "popular greedy initial mapping policy \[14\]" both compilers use
    /// (§IV-E3): place qubits one at a time into the non-full trap with the
    /// highest interaction weight to the qubits already there.
    GreedyInteraction,
    /// Uniform random placement (load-balanced), seeded — the §IV-E3
    /// "different initial mapping policies can be explored" ablation's
    /// pessimistic end.
    RandomBalanced {
        /// RNG seed; placement is deterministic in it.
        seed: u64,
    },
}

/// Full compiler configuration.
///
/// Use [`CompilerConfig::baseline`] / [`CompilerConfig::optimized`] for the
/// paper's two comparison points, or toggle fields individually for
/// ablation studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompilerConfig {
    /// Shuttle-direction policy.
    pub direction: DirectionPolicy,
    /// Enable opportunistic gate re-ordering (§III-B, Algorithm 1).
    pub reorder: bool,
    /// Re-balancing destination policy.
    pub rebalance: RebalancePolicy,
    /// Re-balancing ion-selection policy.
    pub ion_selection: IonSelection,
    /// Initial mapping policy.
    pub mapping: MappingPolicy,
    /// Shuttle routing and transport scheduling policy
    /// ([`RouterPolicy::Serial`] reproduces the paper's one-ion-at-a-time
    /// executor; [`RouterPolicy::Congestion`] prices routes by congestion
    /// and trap fullness and packs transport into concurrent rounds).
    pub router: RouterPolicy,
    /// Lookahead round packing: first-fit backfill of shuttle hops into
    /// earlier compatible rounds of the same gate-free run
    /// (`TransportSchedule::pack_lookahead`). Only meaningful with the
    /// congestion router; the serial router's one-hop rounds are the
    /// paper's executor and stay untouched. Off by default.
    pub lookahead: bool,
    /// Device timing model used to lower the compiled schedule into the
    /// timed event timeline attached to every
    /// [`CompileResult`](crate::CompileResult). Defaults to
    /// [`TimingModel::ideal`] — the uniform-hop model matching the paper's
    /// shuttle counting.
    pub timing: TimingModel,
    /// What the compile loop optimizes at open decision points
    /// ([`Objective::Shuttles`] default — paper parity;
    /// [`Objective::Clock`] scores direction/rebalance/layer decisions on
    /// the projected device clock under [`timing`](CompilerConfig::timing)).
    pub objective: Objective,
    /// How [`Objective::Clock`] prices speculative candidates: the O(delta)
    /// scorer (default) or the O(suffix) clone-and-re-lower oracle. The
    /// two are bit-for-bit identical; `Full` exists as the differential
    /// reference. Ignored under [`Objective::Shuttles`].
    #[serde(default)]
    pub score_mode: ScoreMode,
    /// Worker threads for speculative candidate scoring (`--jobs`). 1
    /// (the default) scores sequentially; any width produces bit-for-bit
    /// identical output — candidates shard over fixed index ranges and
    /// reduce in candidate-index order, never completion order. Only the
    /// clock objective and the pack pipeline spawn workers.
    #[serde(default = "default_jobs")]
    pub jobs: usize,
}

/// Serde default for [`CompilerConfig::jobs`]: sequential.
fn default_jobs() -> usize {
    1
}

impl CompilerConfig {
    /// The paper's default proximity parameter (§III-A3).
    pub const DEFAULT_PROXIMITY: u32 = 6;

    /// The baseline compiler of Murali et al. (ISCA'20) as characterised in
    /// §III of the paper.
    pub fn baseline() -> Self {
        CompilerConfig {
            direction: DirectionPolicy::ExcessCapacity,
            reorder: false,
            rebalance: RebalancePolicy::FromTrapZero,
            ion_selection: IonSelection::ChainEnd,
            mapping: MappingPolicy::GreedyInteraction,
            router: RouterPolicy::Serial,
            lookahead: false,
            timing: TimingModel::ideal(),
            objective: Objective::Shuttles,
            score_mode: ScoreMode::Delta,
            jobs: default_jobs(),
        }
    }

    /// The paper's optimized compiler: all three heuristics enabled with
    /// the published parameters.
    pub fn optimized() -> Self {
        CompilerConfig {
            direction: DirectionPolicy::FutureOps {
                proximity: Self::DEFAULT_PROXIMITY,
            },
            reorder: true,
            rebalance: RebalancePolicy::NearestNeighbor,
            ion_selection: IonSelection::MaxScore { wd: 0.5, ws: 0.5 },
            mapping: MappingPolicy::GreedyInteraction,
            router: RouterPolicy::Serial,
            lookahead: false,
            timing: TimingModel::ideal(),
            objective: Objective::Shuttles,
            score_mode: ScoreMode::Delta,
            jobs: default_jobs(),
        }
    }

    /// The optimized compiler with a non-default proximity parameter
    /// (for the §III-A3 design-parameter sweep).
    pub fn optimized_with_proximity(proximity: u32) -> Self {
        CompilerConfig {
            direction: DirectionPolicy::FutureOps { proximity },
            ..Self::optimized()
        }
    }

    /// The given configuration with the congestion-aware router and
    /// concurrent transport scheduling enabled.
    pub fn with_router(self, router: RouterPolicy) -> Self {
        CompilerConfig { router, ..self }
    }

    /// The given configuration with lookahead round packing toggled.
    pub fn with_lookahead(self, lookahead: bool) -> Self {
        CompilerConfig { lookahead, ..self }
    }

    /// The given configuration with a different device timing model.
    pub fn with_timing(self, timing: TimingModel) -> Self {
        CompilerConfig { timing, ..self }
    }

    /// The given configuration with a different compile-loop objective.
    pub fn with_objective(self, objective: Objective) -> Self {
        CompilerConfig { objective, ..self }
    }

    /// The given configuration with a different speculative scoring mode
    /// (clock objective only; see [`ScoreMode`]).
    pub fn with_score_mode(self, score_mode: ScoreMode) -> Self {
        CompilerConfig { score_mode, ..self }
    }

    /// The given configuration with a different scoring-pool width
    /// (`--jobs`; 0 is normalized to 1). Output is bit-for-bit identical
    /// at every width.
    pub fn with_jobs(self, jobs: usize) -> Self {
        CompilerConfig {
            jobs: jobs.max(1),
            ..self
        }
    }
}

impl Default for CompilerConfig {
    fn default() -> Self {
        Self::optimized()
    }
}

impl fmt::Display for CompilerConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = match self.direction {
            DirectionPolicy::ExcessCapacity => "ec".to_owned(),
            DirectionPolicy::FutureOps { proximity } => format!("future-ops(p={proximity})"),
            DirectionPolicy::FutureOpsGateDistance { proximity } => {
                format!("future-ops-gatedist(p={proximity})")
            }
        };
        let reb = match self.rebalance {
            RebalancePolicy::FromTrapZero => "trap0",
            RebalancePolicy::NearestNeighbor => "nn",
        };
        let ion = match self.ion_selection {
            IonSelection::ChainEnd => "chain-end",
            IonSelection::MaxScore { .. } => "max-score",
        };
        write!(
            f,
            "dir={dir} reorder={} rebalance={reb} ion={ion} router={}",
            self.reorder, self.router
        )?;
        if self.lookahead {
            write!(f, "+lookahead")?;
        }
        if self.timing != TimingModel::ideal() {
            write!(f, " timing={}", self.timing)?;
        }
        if self.objective == Objective::Clock {
            write!(f, " objective=clock")?;
        }
        if self.score_mode == ScoreMode::Full {
            write!(f, " score=full")?;
        }
        if self.jobs != 1 {
            write!(f, " jobs={}", self.jobs)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let b = CompilerConfig::baseline();
        assert_eq!(b.direction, DirectionPolicy::ExcessCapacity);
        assert!(!b.reorder);
        assert_eq!(b.rebalance, RebalancePolicy::FromTrapZero);

        let o = CompilerConfig::optimized();
        assert_eq!(o.direction, DirectionPolicy::FutureOps { proximity: 6 });
        assert!(o.reorder);
        assert_eq!(o.rebalance, RebalancePolicy::NearestNeighbor);
        assert_eq!(o.ion_selection, IonSelection::MaxScore { wd: 0.5, ws: 0.5 });
    }

    #[test]
    fn default_is_optimized() {
        assert_eq!(CompilerConfig::default(), CompilerConfig::optimized());
    }

    #[test]
    fn proximity_override() {
        let c = CompilerConfig::optimized_with_proximity(12);
        assert_eq!(c.direction, DirectionPolicy::FutureOps { proximity: 12 });
        assert!(c.reorder);
    }

    #[test]
    fn display_is_informative() {
        let s = CompilerConfig::optimized().to_string();
        assert!(s.contains("future-ops(p=6)"));
        assert!(s.contains("reorder=true"));
        assert!(s.contains("router=serial"));
    }

    #[test]
    fn timing_defaults_to_ideal_and_lookahead_off() {
        let c = CompilerConfig::optimized();
        assert_eq!(c.timing, TimingModel::ideal());
        assert!(!c.lookahead);
        // Defaults keep the display form unchanged from paper parity.
        assert!(!c.to_string().contains("timing="));
        let c = c
            .with_router(RouterPolicy::congestion())
            .with_lookahead(true)
            .with_timing(TimingModel::realistic());
        assert!(c.to_string().contains("+lookahead"));
        assert!(c.to_string().contains("timing=realistic"));
    }

    #[test]
    fn score_mode_defaults_to_delta_and_full_is_displayed() {
        let c = CompilerConfig::optimized();
        assert_eq!(c.score_mode, ScoreMode::Delta);
        assert!(!c.to_string().contains("score="));
        let c = c
            .with_objective(Objective::Clock)
            .with_score_mode(ScoreMode::Full);
        assert!(c.to_string().contains("objective=clock"));
        assert!(c.to_string().contains("score=full"));
        assert_eq!(ScoreMode::default(), ScoreMode::Delta);
    }

    #[test]
    fn jobs_defaults_to_sequential_and_is_overridable() {
        let c = CompilerConfig::optimized();
        assert_eq!(c.jobs, 1);
        assert!(!c.to_string().contains("jobs="));
        let c = c.with_jobs(4);
        assert_eq!(c.jobs, 4);
        assert!(c.to_string().contains("jobs=4"));
        assert_eq!(c.with_jobs(0).jobs, 1, "0 normalizes to sequential");
    }

    #[test]
    fn router_defaults_to_serial_and_is_overridable() {
        assert_eq!(CompilerConfig::baseline().router, RouterPolicy::Serial);
        assert_eq!(CompilerConfig::optimized().router, RouterPolicy::Serial);
        let c = CompilerConfig::optimized().with_router(RouterPolicy::congestion());
        assert!(c.router.is_congestion());
        assert!(c.to_string().contains("router=congestion(penalty=6)"));
    }
}
