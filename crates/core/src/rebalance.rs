//! Trap re-balancing: destination choice, ion choice, and eviction routing.
//!
//! Baseline (§III-C1): destination search starts from trap 0; the eviction
//! route is computed with min-cost max-flow over the trap topology (as in
//! QCCDSim). Optimized (§III-C2, Algorithm 2): nearest-neighbour-first
//! destination, max-score ion selection.

use crate::config::{IonSelection, RebalancePolicy};
use qccd_circuit::{Circuit, GateId};
use qccd_flow::{min_cost_max_flow, FlowNetwork};
use qccd_machine::{IonId, MachineState, TrapId, TrapTopology};
use std::collections::VecDeque;

/// Picks the destination trap for an ion evicted from `blocked`.
///
/// Candidates are traps with excess capacity, excluding `blocked` itself and
/// everything in `avoid` (traps the caller is actively trying to keep space
/// in). Returns `None` when no candidate exists.
pub(crate) fn choose_destination(
    policy: RebalancePolicy,
    state: &MachineState,
    blocked: TrapId,
    avoid: &[TrapId],
) -> Option<TrapId> {
    let topology = state.spec().topology();
    let candidates = topology
        .traps()
        .filter(|&t| t != blocked && !avoid.contains(&t) && !state.is_full(t));
    match policy {
        // "the search for a destination trap always starts with T0" — the
        // first candidate in index order wins, however far away it is.
        RebalancePolicy::FromTrapZero => candidates.min_by_key(|t| t.0),
        // Algorithm 2: nearest candidate by topology distance; ties break
        // toward the lower trap index (the hash-table argmin of the paper
        // is order-dependent; index order is the deterministic choice).
        RebalancePolicy::NearestNeighbor => candidates
            .filter_map(|t| topology.distance(blocked, t).map(|d| (d, t)))
            .min_by_key(|&(d, t)| (d, t.0))
            .map(|(_, t)| t),
    }
}

/// The full *tie set* behind [`choose_destination`]: every candidate the
/// policy considers equally good, in the policy's own deterministic order
/// (the first entry is exactly what `choose_destination` returns).
///
/// Under [`RebalancePolicy::FromTrapZero`] the set is a singleton (the
/// paper's T0-first scan is total). Under
/// [`RebalancePolicy::NearestNeighbor`] it holds every non-full trap at
/// the minimal topology distance, ascending by trap index — the paper's
/// hash-table argmin is order-dependent there, i.e. the choice is *open*,
/// and the clock objective re-arbitrates it on projected makespan.
pub(crate) fn destination_candidates(
    policy: RebalancePolicy,
    state: &MachineState,
    blocked: TrapId,
    avoid: &[TrapId],
) -> Vec<TrapId> {
    let topology = state.spec().topology();
    let candidates = topology
        .traps()
        .filter(|&t| t != blocked && !avoid.contains(&t) && !state.is_full(t));
    match policy {
        RebalancePolicy::FromTrapZero => candidates.min_by_key(|t| t.0).into_iter().collect(),
        RebalancePolicy::NearestNeighbor => {
            let mut scored: Vec<(u32, TrapId)> = candidates
                .filter_map(|t| topology.distance(blocked, t).map(|d| (d, t)))
                .collect();
            scored.sort_by_key(|&(d, t)| (d, t.0));
            let Some(&(best, _)) = scored.first() else {
                return Vec::new();
            };
            scored
                .into_iter()
                .take_while(|&(d, _)| d == best)
                .map(|(_, t)| t)
                .collect()
        }
    }
}

/// Picks which ion leaves `blocked` toward `dest`.
///
/// `pending` is the planned order of unexecuted gates — the max-score
/// heuristic counts each candidate ion's remaining gates whose partner sits
/// in the destination vs. the source trap (§III-C2). Ions in `keep` are
/// never evicted (the scheduler protects gate operands this way).
/// Returns `None` if every ion in the trap is protected.
pub(crate) fn choose_ion(
    selection: IonSelection,
    circuit: &Circuit,
    state: &MachineState,
    pending: &VecDeque<GateId>,
    blocked: TrapId,
    dest: TrapId,
    keep: &[IonId],
) -> Option<IonId> {
    let chain = state.chain(blocked);
    let candidates: Vec<IonId> = chain
        .iter()
        .copied()
        .filter(|i| !keep.contains(i))
        .collect();
    if candidates.is_empty() {
        return None;
    }
    match selection {
        // Baseline: the chain-end ion is the cheapest split.
        IonSelection::ChainEnd => candidates.last().copied(),
        IonSelection::MaxScore { wd, ws } => {
            // One pass over the remaining gates accumulating, for every ion
            // currently in `blocked`, how many of its gates have a partner
            // in `dest` (pull) vs. in `blocked` (anchor).
            let mut dest_count = vec![0u32; state.num_ions() as usize];
            let mut src_count = vec![0u32; state.num_ions() as usize];
            for &gid in pending {
                let Some((x, y)) = circuit.gate(gid).two_qubit_operands() else {
                    continue;
                };
                let (ix, iy) = (IonId::from(x), IonId::from(y));
                for (ion, partner) in [(ix, iy), (iy, ix)] {
                    if state.trap_of(ion) != blocked {
                        continue;
                    }
                    let pt = state.trap_of(partner);
                    if pt == dest {
                        dest_count[ion.index()] += 1;
                    } else if pt == blocked {
                        src_count[ion.index()] += 1;
                    }
                }
            }
            let score = |ion: IonId| -> f64 {
                let d = f64::from(dest_count[ion.index()]);
                let s = f64::from(src_count[ion.index()]);
                if dest_count[ion.index()] == src_count[ion.index()] {
                    // §III-C2: equal counts shift weights to 0.49/0.51 so
                    // the score cannot be zero.
                    0.49 * d - 0.51 * s
                } else {
                    wd * d - ws * s
                }
            };
            // Highest score wins; ties break toward the chain end (cheaper
            // split), i.e. the *last* maximal candidate in chain order.
            let mut best = candidates[0];
            let mut best_score = score(best);
            for &ion in &candidates[1..] {
                let s = score(ion);
                if s >= best_score {
                    best = ion;
                    best_score = s;
                }
            }
            Some(best)
        }
    }
}

/// Computes the eviction route from `blocked` to `dest` (inclusive).
///
/// The baseline formulates the move as a unit of min-cost max-flow over the
/// trap graph (unit cost per shuttle segment), mirroring QCCDSim's MCMF
/// re-balancer; the optimized compiler takes the plain BFS shortest path.
/// Both return the same hop count on simple topologies — the *policy*
/// difference the paper highlights is in the destination choice.
pub(crate) fn eviction_route(
    policy: RebalancePolicy,
    topology: &TrapTopology,
    blocked: TrapId,
    dest: TrapId,
) -> Option<Vec<TrapId>> {
    match policy {
        RebalancePolicy::NearestNeighbor => topology.shortest_path(blocked, dest),
        RebalancePolicy::FromTrapZero => mcmf_route(topology, blocked, dest),
    }
}

/// Routes one unit of flow from `from` to `to` with min-cost max-flow and
/// extracts the resulting trap path.
fn mcmf_route(topology: &TrapTopology, from: TrapId, to: TrapId) -> Option<Vec<TrapId>> {
    if from == to {
        return Some(vec![from]);
    }
    let n = topology.num_traps() as usize;
    // Node n is a super-source limiting the flow to a single ion.
    let mut net = FlowNetwork::new(n + 1);
    for t in topology.traps() {
        for nb in topology.neighbors(t) {
            net.add_edge(t.index(), nb.index(), 1, 1);
        }
    }
    net.add_edge(n, from.index(), 1, 0);
    let result = min_cost_max_flow(&mut net, n, to.index());
    if result.flow != 1 {
        return None;
    }
    // Follow the unit of flow from `from` to `to`.
    let flows = net.forward_flows();
    let mut path = vec![from];
    let mut cur = from.index();
    let mut used = vec![false; flows.len()];
    while cur != to.index() {
        let (idx, &(_, next, _)) = flows
            .iter()
            .enumerate()
            .find(|(i, (s, _, f))| !used[*i] && *s == cur && *f > 0)
            .expect("flow conservation guarantees an outgoing unit");
        used[idx] = true;
        cur = next;
        path.push(TrapId(next as u32));
        if path.len() > n + 1 {
            return None; // defensive: malformed flow
        }
    }
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::{Opcode, Qubit};
    use qccd_machine::{InitialMapping, MachineSpec, MachineState};

    /// Fig. 7 scenario: L6, T4 full, excess capacities
    /// T0=2, T1=1, T2=4, T3=2, T4=0, T5=5.
    fn fig7_state() -> MachineState {
        let spec = MachineSpec::linear(6, 6, 1).unwrap();
        // occupancies: 4, 5, 2, 4, 6, 1
        let occupancy = [4u32, 5, 2, 4, 6, 1];
        let mut traps = Vec::new();
        for (t, &occ) in occupancy.iter().enumerate() {
            for _ in 0..occ {
                traps.push(TrapId(t as u32));
            }
        }
        // Capacity 6, comm 1 → initial cap 5 < occupancy 6 of T4. Build with
        // a looser spec then shuttle one ion in to reach fullness.
        let mapping = {
            let mut t = traps.clone();
            // Move one of T4's ions to T5 for the initial load...
            let pos = t.iter().position(|&x| x == TrapId(4)).unwrap();
            t[pos] = TrapId(5);
            InitialMapping::from_traps(&spec, t).unwrap()
        };
        let mut state = MachineState::with_mapping(&spec, &mapping).unwrap();
        // ...then shuttle it back so T4 is genuinely full (occupancy 6).
        let ion = state.chain(TrapId(5))[0];
        state.shuttle(ion, TrapId(4)).unwrap();
        assert_eq!(state.excess_capacity(TrapId(4)), 0);
        assert_eq!(state.excess_capacity(TrapId(0)), 2);
        state
    }

    #[test]
    fn fig7_baseline_sends_to_t0() {
        let state = fig7_state();
        let dest = choose_destination(RebalancePolicy::FromTrapZero, &state, TrapId(4), &[]);
        assert_eq!(dest, Some(TrapId(0)), "baseline scans from T0");
        let route = eviction_route(
            RebalancePolicy::FromTrapZero,
            state.spec().topology(),
            TrapId(4),
            TrapId(0),
        )
        .unwrap();
        assert_eq!(route.len() - 1, 4, "4 shuttles, as Fig. 7 says");
    }

    #[test]
    fn fig7_nearest_neighbor_sends_to_t3_or_t5() {
        let state = fig7_state();
        let dest =
            choose_destination(RebalancePolicy::NearestNeighbor, &state, TrapId(4), &[]).unwrap();
        assert!(
            dest == TrapId(3) || dest == TrapId(5),
            "improved logic picks a 1-hop neighbour, got {dest}"
        );
        let route = eviction_route(
            RebalancePolicy::NearestNeighbor,
            state.spec().topology(),
            TrapId(4),
            dest,
        )
        .unwrap();
        assert_eq!(route.len() - 1, 1, "only 1 shuttle needed");
    }

    #[test]
    fn destination_candidates_expose_the_tie_set() {
        // Fig. 7: T3 and T5 are both 1 hop from blocked T4 — an open tie
        // under nearest-neighbour; the first candidate is the
        // choose_destination pick.
        let state = fig7_state();
        let ties = destination_candidates(RebalancePolicy::NearestNeighbor, &state, TrapId(4), &[]);
        assert_eq!(ties, vec![TrapId(3), TrapId(5)]);
        assert_eq!(
            choose_destination(RebalancePolicy::NearestNeighbor, &state, TrapId(4), &[]),
            Some(ties[0])
        );
        // The baseline's T0-first scan is total: a singleton.
        let t0 = destination_candidates(RebalancePolicy::FromTrapZero, &state, TrapId(4), &[]);
        assert_eq!(t0, vec![TrapId(0)]);
    }

    #[test]
    fn avoid_list_respected() {
        let state = fig7_state();
        let dest = choose_destination(
            RebalancePolicy::NearestNeighbor,
            &state,
            TrapId(4),
            &[TrapId(3), TrapId(5)],
        );
        assert_eq!(dest, Some(TrapId(2)), "next nearest after avoided traps");
    }

    #[test]
    fn no_destination_returns_none() {
        // 1-trap machine: nothing to evict to.
        let spec = MachineSpec::linear(1, 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 2).unwrap();
        let state = MachineState::with_mapping(&spec, &mapping).unwrap();
        assert_eq!(
            choose_destination(RebalancePolicy::NearestNeighbor, &state, TrapId(0), &[]),
            None
        );
    }

    #[test]
    fn chain_end_selection_skips_kept_ions() {
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 4).unwrap();
        let state = MachineState::with_mapping(&spec, &mapping).unwrap();
        let c = Circuit::new(4);
        let pending = VecDeque::new();
        // T0 chain = [0, 1, 2]; keep ion 2 → pick ion 1.
        let ion = choose_ion(
            IonSelection::ChainEnd,
            &c,
            &state,
            &pending,
            TrapId(0),
            TrapId(1),
            &[IonId(2)],
        );
        assert_eq!(ion, Some(IonId(1)));
    }

    #[test]
    fn max_score_prefers_ion_with_dest_gates() {
        // Ions 0,1,2 in T0; ion 3 in T1. Ion 1 has two pending gates with
        // ion 3 (partner in dest) — it should be evicted toward T1.
        let mut c = Circuit::new(4);
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(3)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(3), Qubit(1)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(2)).unwrap(); // anchors 0 and 2 to T0
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(0), TrapId(0), TrapId(1)])
                .unwrap();
        let state = MachineState::with_mapping(&spec, &mapping).unwrap();
        let pending: VecDeque<GateId> = (0..3).map(GateId).collect();
        let ion = choose_ion(
            IonSelection::MaxScore { wd: 0.5, ws: 0.5 },
            &c,
            &state,
            &pending,
            TrapId(0),
            TrapId(1),
            &[],
        );
        assert_eq!(ion, Some(IonId(1)));
    }

    #[test]
    fn max_score_avoids_anchored_ions() {
        // Ion 0 has many local gates in T0 (negative score); ion 1 has none.
        let mut c = Circuit::new(4);
        for _ in 0..3 {
            c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(2)).unwrap();
        }
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(0), TrapId(0), TrapId(1)])
                .unwrap();
        let state = MachineState::with_mapping(&spec, &mapping).unwrap();
        let pending: VecDeque<GateId> = (0..3).map(GateId).collect();
        let ion = choose_ion(
            IonSelection::MaxScore { wd: 0.5, ws: 0.5 },
            &c,
            &state,
            &pending,
            TrapId(0),
            TrapId(1),
            &[],
        )
        .unwrap();
        assert_ne!(ion, IonId(0), "heavily anchored ion must not be evicted");
        assert_ne!(ion, IonId(2), "ion 2 is equally anchored");
        assert_eq!(ion, IonId(1));
    }

    #[test]
    fn all_kept_returns_none() {
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping = InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(1)]).unwrap();
        let state = MachineState::with_mapping(&spec, &mapping).unwrap();
        let c = Circuit::new(2);
        let pending = VecDeque::new();
        assert_eq!(
            choose_ion(
                IonSelection::ChainEnd,
                &c,
                &state,
                &pending,
                TrapId(0),
                TrapId(1),
                &[IonId(0)],
            ),
            None
        );
    }

    #[test]
    fn mcmf_route_is_shortest_on_line() {
        let topo = TrapTopology::linear(6);
        let route = mcmf_route(&topo, TrapId(4), TrapId(0)).unwrap();
        assert_eq!(
            route,
            vec![TrapId(4), TrapId(3), TrapId(2), TrapId(1), TrapId(0)]
        );
        assert_eq!(
            mcmf_route(&topo, TrapId(2), TrapId(2)).unwrap(),
            vec![TrapId(2)]
        );
    }

    #[test]
    fn mcmf_route_on_ring_takes_short_side() {
        let topo = TrapTopology::ring(6);
        let route = mcmf_route(&topo, TrapId(0), TrapId(5)).unwrap();
        assert_eq!(route, vec![TrapId(0), TrapId(5)]);
    }
}
