//! Initial mapping policies (greedy interaction placement, \[14\] in the paper).

use crate::config::MappingPolicy;
use crate::error::CompileError;
use qccd_circuit::stats::InteractionGraph;
use qccd_circuit::{Circuit, Qubit};
use qccd_machine::{InitialMapping, MachineSpec, TrapId};

/// Computes the initial ion→trap placement for `circuit` on `spec` under
/// the chosen policy.
///
/// The greedy policy places qubits in order of first use; each qubit goes
/// to the trap (with remaining initial capacity) holding the qubits it
/// interacts with most. This is the "popular greedy initial mapping policy"
/// the paper uses for both compilers (§IV-E3), so baseline and optimized
/// runs start from identical placements.
///
/// # Errors
///
/// Returns [`CompileError::CircuitTooLarge`] if the machine cannot host the
/// circuit's qubits.
pub fn initial_mapping(
    circuit: &Circuit,
    spec: &MachineSpec,
    policy: MappingPolicy,
) -> Result<InitialMapping, CompileError> {
    let n = circuit.num_qubits();
    if n > spec.initial_capacity() {
        return Err(CompileError::CircuitTooLarge {
            qubits: n,
            capacity: spec.initial_capacity(),
        });
    }
    match policy {
        MappingPolicy::RoundRobin => {
            InitialMapping::round_robin(spec, n).map_err(CompileError::from)
        }
        MappingPolicy::GreedyInteraction => Ok(greedy(circuit, spec)),
        MappingPolicy::RandomBalanced { seed } => Ok(random_balanced(circuit, spec, seed)),
    }
}

/// Load-balanced random placement: a random qubit permutation dealt to
/// traps round-robin. Keeps per-trap loads within one of each other while
/// destroying all interaction locality — the pessimistic mapping baseline.
fn random_balanced(circuit: &Circuit, spec: &MachineSpec, seed: u64) -> InitialMapping {
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let n = circuit.num_qubits();
    let mut order: Vec<u32> = (0..n).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let num_traps = spec.num_traps();
    let mut traps = vec![qccd_machine::TrapId(0); n as usize];
    for (pos, &q) in order.iter().enumerate() {
        traps[q as usize] = qccd_machine::TrapId(pos as u32 % num_traps);
    }
    InitialMapping::from_traps(spec, traps)
        .expect("round-robin dealing never exceeds initial capacity (capacity check ran above)")
}

fn greedy(circuit: &Circuit, spec: &MachineSpec) -> InitialMapping {
    let n = circuit.num_qubits() as usize;
    let graph = InteractionGraph::build(circuit);
    let num_traps = spec.num_traps() as usize;
    // Balance the initial load across traps (as QCCDSim's placement does):
    // a trap takes at most ceil(n / traps) ions, never exceeding the
    // initial capacity. Balanced slack keeps excess capacity available
    // everywhere, which both compilers rely on during execution.
    let cap = (n.div_ceil(num_traps)).min(spec.initial_capacity_per_trap() as usize);

    // Order qubits by first appearance in the program; untouched qubits last.
    let mut first_use = vec![usize::MAX; n];
    for (pos, g) in circuit.gates().iter().enumerate() {
        for q in g.qubits.iter() {
            if first_use[q.index()] == usize::MAX {
                first_use[q.index()] = pos;
            }
        }
    }
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&q| (first_use[q as usize], q));

    let mut trap_of: Vec<Option<TrapId>> = vec![None; n];
    let mut loads = vec![0usize; num_traps];

    for &q in &order {
        let qubit = Qubit(q);
        // Affinity of `qubit` to each trap = summed interaction weight with
        // qubits already placed there.
        let mut best: Option<(u64, usize)> = None; // (affinity, trap index); max affinity, min index
        for (t, &load) in loads.iter().enumerate() {
            if load >= cap {
                continue;
            }
            let affinity: u64 = trap_of
                .iter()
                .enumerate()
                .filter(|(_, placed)| **placed == Some(TrapId(t as u32)))
                .map(|(other, _)| u64::from(graph.weight(qubit, Qubit(other as u32))))
                .sum();
            let better = match best {
                None => true,
                Some((a, _)) => affinity > a,
            };
            if better {
                best = Some((affinity, t));
            }
        }
        let (_, t) = best.expect("capacity check guarantees a non-full trap exists");
        trap_of[q as usize] = Some(TrapId(t as u32));
        loads[t] += 1;
    }

    let traps: Vec<TrapId> = trap_of
        .into_iter()
        .map(|t| t.expect("every qubit was placed"))
        .collect();
    InitialMapping::from_traps(spec, traps).expect("greedy placement respects capacities")
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::Opcode;
    use qccd_machine::IonId;

    #[test]
    fn greedy_co_locates_interacting_qubits() {
        // Two independent clusters: {0,1,2} heavily interacting, {3,4,5} heavily
        // interacting. With 2 traps of initial capacity 3, greedy must put
        // each cluster in one trap.
        let mut c = Circuit::new(6);
        for _ in 0..5 {
            c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
            c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(2)).unwrap();
            c.push_two_qubit(Opcode::Ms, Qubit(3), Qubit(4)).unwrap();
            c.push_two_qubit(Opcode::Ms, Qubit(4), Qubit(5)).unwrap();
        }
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let m = initial_mapping(&c, &spec, MappingPolicy::GreedyInteraction).unwrap();
        let t0 = m.trap_of(IonId(0));
        assert_eq!(m.trap_of(IonId(1)), t0);
        assert_eq!(m.trap_of(IonId(2)), t0);
        let t3 = m.trap_of(IonId(3));
        assert_ne!(t3, t0);
        assert_eq!(m.trap_of(IonId(4)), t3);
        assert_eq!(m.trap_of(IonId(5)), t3);
    }

    #[test]
    fn greedy_respects_capacity() {
        // All qubits interact with qubit 0; they cannot all fit in one trap.
        let mut c = Circuit::new(8);
        for q in 1..8 {
            c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(q)).unwrap();
        }
        let spec = MachineSpec::linear(2, 5, 1).unwrap();
        let m = initial_mapping(&c, &spec, MappingPolicy::GreedyInteraction).unwrap();
        let mut loads = [0u32; 2];
        for i in 0..8 {
            loads[m.trap_of(IonId(i)).index()] += 1;
        }
        assert!(loads.iter().all(|&l| l <= 4));
        assert_eq!(loads.iter().sum::<u32>(), 8);
    }

    #[test]
    fn rejects_oversized_circuit() {
        let c = Circuit::new(10);
        let spec = MachineSpec::linear(2, 4, 1).unwrap(); // capacity 6
        let err = initial_mapping(&c, &spec, MappingPolicy::GreedyInteraction).unwrap_err();
        assert_eq!(
            err,
            CompileError::CircuitTooLarge {
                qubits: 10,
                capacity: 6
            }
        );
    }

    #[test]
    fn round_robin_policy_works() {
        let c = Circuit::new(6);
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let m = initial_mapping(&c, &spec, MappingPolicy::RoundRobin).unwrap();
        assert_eq!(m.trap_of(IonId(0)), TrapId(0));
        assert_eq!(m.trap_of(IonId(5)), TrapId(1));
    }

    #[test]
    fn untouched_qubits_still_placed() {
        let mut c = Circuit::new(5);
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        let spec = MachineSpec::linear(3, 3, 1).unwrap();
        let m = initial_mapping(&c, &spec, MappingPolicy::GreedyInteraction).unwrap();
        assert_eq!(m.num_ions(), 5);
    }
}
