//! Compile statistics.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Counters collected during one compile.
///
/// `shuttles` is the paper's headline metric (Table II). The finer-grained
/// counters expose how each heuristic contributed, for the ablation benches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CompileStats {
    /// Total shuttle hops emitted (gate moves + re-balancing).
    pub shuttles: usize,
    /// Shuttle hops emitted by re-balancing evictions only.
    pub rebalance_shuttles: usize,
    /// Gates executed (always equals the circuit's gate count on success).
    pub gate_ops: usize,
    /// Gates that executed without any shuttle (operands already co-located).
    pub local_gates: usize,
    /// Times the gate re-ordering heuristic hoisted a candidate (§III-B).
    pub reorders: usize,
    /// Times a full trap was relieved by evicting an ion (§III-C).
    pub rebalances: usize,
    /// Times the favourable direction was blocked and the opposite
    /// direction was taken instead.
    pub opposite_direction_moves: usize,
    /// Concurrent transport depth: the number of rounds of edge-disjoint
    /// simultaneous shuttles the schedule packs into. Equals `shuttles`
    /// under the serial router (one hop per round); lower under the
    /// congestion router whenever independent hops share a round.
    pub transport_depth: usize,
    /// Open decisions (tied §III-A direction scores, tied re-balancing
    /// destinations) the clock objective re-arbitrated on projected
    /// makespan. Always 0 under the shuttle-count objective.
    pub clock_ties: usize,
    /// Gate-free layers the clock objective planned as one batched
    /// multi-commodity flow instead of one move at a time.
    pub batched_layers: usize,
    /// Shuttle hops emitted by batched layers (each also counts in
    /// `shuttles`).
    pub batched_hops: usize,
    /// Speculative candidates the clock objective priced (via the delta
    /// scorer or the full re-lower oracle, per
    /// [`ScoreMode`](crate::config::ScoreMode)). Always 0 under the
    /// shuttle-count objective.
    pub clock_speculations: usize,
}

impl fmt::Display for CompileStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} shuttles ({} from rebalancing, depth {}), {} gates ({} local), {} reorders, {} rebalances",
            self.shuttles,
            self.rebalance_shuttles,
            self.transport_depth,
            self.gate_ops,
            self.local_gates,
            self.reorders,
            self.rebalances
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_counters() {
        let s = CompileStats {
            shuttles: 10,
            rebalance_shuttles: 2,
            gate_ops: 50,
            local_gates: 40,
            reorders: 1,
            rebalances: 2,
            opposite_direction_moves: 0,
            transport_depth: 8,
            clock_ties: 0,
            batched_layers: 0,
            batched_hops: 0,
            clock_speculations: 0,
        };
        let text = s.to_string();
        assert!(text.contains("10 shuttles"));
        assert!(text.contains("depth 8"));
        assert!(text.contains("1 reorders"));
    }
}
