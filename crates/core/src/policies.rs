//! Shuttle-direction policies: baseline excess-capacity (Listing 1) and
//! the paper's future-ops move score (§III-A).

use crate::config::DirectionPolicy;
use qccd_circuit::{Circuit, DependencyDag, GateId, Qubit};
use qccd_machine::{IonId, MachineState, TrapId};
use std::collections::VecDeque;

/// The outcome of a shuttle-direction decision for a cross-trap gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MoveDecision {
    /// The ion that will move.
    pub ion: IonId,
    /// Its current trap.
    pub from: TrapId,
    /// The trap it will move to (the other operand's trap).
    pub to: TrapId,
}

impl MoveDecision {
    /// The decision that moves the *other* ion instead.
    pub fn opposite(self, other_ion: IonId) -> MoveDecision {
        MoveDecision {
            ion: other_ion,
            from: self.to,
            to: self.from,
        }
    }
}

/// The two move scores of §III-A2, exposed for tests and diagnostics
/// (Table I of the paper reports exactly these numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MoveScores {
    /// `ionA(A→B)` move score: future gates satisfied if both ions end up
    /// in `trapB`.
    pub a_to_b: u32,
    /// `ionB(B→A)` move score: future gates satisfied if both ions end up
    /// in `trapA`.
    pub b_to_a: u32,
}

/// How the §III-A3 proximity gap between consecutive relevant gates is
/// measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProximityMetric {
    /// Gap in dependency-graph layers (scale-invariant; the default).
    Layers,
    /// Gap in intervening gates of the planned order (the paper's text
    /// read literally; kept for ablation).
    Gates,
}

/// A direction decision plus the §III-A tie information a timed objective
/// needs: when the move scores tie, *both* orientations are genuinely open
/// — the paper's text does not specify one — and `alternative` carries the
/// orientation the excess-capacity fallback rejected, so a clock-driven
/// compiler can re-arbitrate the tie on projected makespan instead. The
/// re-arbitration prices each orientation's planned walk speculatively
/// (O(delta) by default, the full re-lower oracle under
/// `--score-mode full`; the two are pinned bit-for-bit identical), so
/// surfacing the alternative never changes what the configured policy
/// alone would decide.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DirectionChoice {
    /// The decision the configured policy arrives at (ties broken by the
    /// excess-capacity fallback, as always).
    pub decision: MoveDecision,
    /// The other orientation, present only when the future-ops move scores
    /// tied and the decision was therefore open.
    pub alternative: Option<MoveDecision>,
}

/// Decides which ion of the cross-trap gate at `pending[active_pos]` moves.
///
/// `pending` is the planned execution order of the not-yet-executed gates
/// (layer-sorted); the scan for future operations walks it forward from the
/// active gate. Ion positions are taken from the *current* machine state —
/// the paper's proximity cutoff exists precisely because distant future
/// gates "may not represent ion locations correctly" (§III-A3).
///
/// # Panics
///
/// Panics if the active gate is not a two-qubit gate spanning two traps —
/// the scheduler only calls this for gates that need a shuttle.
pub fn decide_direction(
    policy: DirectionPolicy,
    circuit: &Circuit,
    dag: &DependencyDag,
    state: &MachineState,
    pending: &VecDeque<GateId>,
    active_pos: usize,
) -> MoveDecision {
    decide_direction_open(policy, circuit, dag, state, pending, active_pos).decision
}

/// [`decide_direction`] with the tie surfaced: identical decision, plus
/// the rejected orientation whenever the §III-A move scores tied (see
/// [`DirectionChoice`]). The shuttle-count objective ignores the
/// alternative; the clock objective scores both on the projected device
/// clock.
pub fn decide_direction_open(
    policy: DirectionPolicy,
    circuit: &Circuit,
    dag: &DependencyDag,
    state: &MachineState,
    pending: &VecDeque<GateId>,
    active_pos: usize,
) -> DirectionChoice {
    let gate = circuit.gate(pending[active_pos]);
    let (qa, qb) = gate
        .two_qubit_operands()
        .expect("direction decision requires a two-qubit gate");
    let (ion_a, ion_b) = (IonId::from(qa), IonId::from(qb));
    let (trap_a, trap_b) = (state.trap_of(ion_a), state.trap_of(ion_b));
    assert_ne!(trap_a, trap_b, "gate operands are already co-located");

    let scored = |metric: ProximityMetric, proximity: u32| -> DirectionChoice {
        let scores = move_scores(
            circuit, dag, state, pending, active_pos, qa, qb, trap_a, trap_b, proximity, metric,
        );
        if scores.a_to_b > scores.b_to_a {
            DirectionChoice {
                decision: MoveDecision {
                    ion: ion_a,
                    from: trap_a,
                    to: trap_b,
                },
                alternative: None,
            }
        } else if scores.b_to_a > scores.a_to_b {
            DirectionChoice {
                decision: MoveDecision {
                    ion: ion_b,
                    from: trap_b,
                    to: trap_a,
                },
                alternative: None,
            }
        } else {
            // Tie: the paper does not specify; fall back to the
            // excess-capacity rule, which both compilers share — and
            // surface the rejected orientation as an open alternative.
            let decision = excess_capacity_direction(state, ion_a, ion_b, trap_a, trap_b);
            let other = if decision.ion == ion_a { ion_b } else { ion_a };
            qccd_obs::debug("core.direction", || {
                format!(
                    "open tie: ion {} {}->{} (alt ion {}), excess-capacity rule decided",
                    decision.ion.index(),
                    decision.from.index(),
                    decision.to.index(),
                    other.index(),
                )
            });
            DirectionChoice {
                decision,
                alternative: Some(decision.opposite(other)),
            }
        }
    };

    match policy {
        DirectionPolicy::ExcessCapacity => DirectionChoice {
            decision: excess_capacity_direction(state, ion_a, ion_b, trap_a, trap_b),
            alternative: None,
        },
        DirectionPolicy::FutureOps { proximity } => scored(ProximityMetric::Layers, proximity),
        DirectionPolicy::FutureOpsGateDistance { proximity } => {
            scored(ProximityMetric::Gates, proximity)
        }
    }
}

/// Listing 1 of the paper. `ion_a` is the gate's first operand
/// ("trap0" in the listing), `ion_b` the second ("trap1").
fn excess_capacity_direction(
    state: &MachineState,
    ion_a: IonId,
    ion_b: IonId,
    trap_a: TrapId,
    trap_b: TrapId,
) -> MoveDecision {
    let (ec_a, ec_b) = (state.excess_capacity(trap_a), state.excess_capacity(trap_b));
    if ec_a <= ec_b {
        // Listing 1 lines 1-4: strictly-less moves trap0 → trap1, and the
        // tie also moves the 1st ion of the gate.
        MoveDecision {
            ion: ion_a,
            from: trap_a,
            to: trap_b,
        }
    } else {
        MoveDecision {
            ion: ion_b,
            from: trap_b,
            to: trap_a,
        }
    }
}

/// Computes the §III-A2 move scores for the active gate, honouring the
/// §III-A3 proximity cutoff.
///
/// Scanning walks `pending` past the active gate. A gate is *relevant* if
/// it involves `qa` or `qb`. When the gap since the previous relevant gate
/// (measured per `metric`) exceeds `proximity`, the scan stops and all
/// later gates are excluded.
#[allow(clippy::too_many_arguments)]
pub(crate) fn move_scores(
    circuit: &Circuit,
    dag: &DependencyDag,
    state: &MachineState,
    pending: &VecDeque<GateId>,
    active_pos: usize,
    qa: Qubit,
    qb: Qubit,
    trap_a: TrapId,
    trap_b: TrapId,
    proximity: u32,
    metric: ProximityMetric,
) -> MoveScores {
    let mut scores = MoveScores::default();
    let mut last_pos = active_pos;
    let mut last_layer = dag.layer_of(pending[active_pos]);
    #[allow(clippy::needless_range_loop)] // VecDeque range iteration needs indices for gap math
    for pos in (active_pos + 1)..pending.len() {
        let gid = pending[pos];
        // Gap from the previous relevant gate, in the configured unit. The
        // queue is layer-sorted and positions only grow, so once the gap
        // exceeds the cutoff for a *non-relevant* gate no later relevant
        // gate can be back within range — break either way.
        let gap = match metric {
            ProximityMetric::Layers => u64::from(dag.layer_of(gid).saturating_sub(last_layer)),
            ProximityMetric::Gates => (pos - last_pos - 1) as u64,
        };
        if gap > u64::from(proximity) {
            break;
        }
        let gate = circuit.gate(gid);
        let Some((x, y)) = gate.two_qubit_operands() else {
            continue; // single-qubit gates only widen the gap
        };
        if x != qa && x != qb && y != qa && y != qb {
            continue;
        }
        last_pos = pos;
        last_layer = dag.layer_of(gid);
        for (p, partner) in [(x, y), (y, x)] {
            if p != qa && p != qb {
                continue;
            }
            let partner_trap = state.trap_of(IonId::from(partner));
            if partner_trap == trap_b {
                scores.a_to_b += 1;
            } else if partner_trap == trap_a {
                scores.b_to_a += 1;
            }
            // Partners in third traps influence neither direction.
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_circuit::Opcode;
    use qccd_machine::{InitialMapping, MachineSpec};

    /// Builds the Fig. 4 scenario: 2 traps of capacity 4; ions 0,1 in T0;
    /// ions 2,3,4 in T1. Gates A-D.
    fn fig4() -> (Circuit, DependencyDag, MachineState, VecDeque<GateId>) {
        let mut c = Circuit::new(5);
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(2)).unwrap(); // A
        c.push_two_qubit(Opcode::Ms, Qubit(2), Qubit(3)).unwrap(); // B
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(2)).unwrap(); // C
        c.push_two_qubit(Opcode::Ms, Qubit(2), Qubit(4)).unwrap(); // D
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping = InitialMapping::from_traps(
            &spec,
            vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1), TrapId(1)],
        )
        .unwrap();
        let state = MachineState::with_mapping(&spec, &mapping).unwrap();
        let dag = c.dependency_dag();
        let pending: VecDeque<GateId> = (0..4).map(GateId).collect();
        (c, dag, state, pending)
    }

    #[test]
    fn paper_table1_move_score() {
        // Table I: ionA=1, ionB=2, trapA=T0, trapB=T1.
        // ionA(A→B) = 3 (Gate-C + Gates B,D), ionB(B→A) = 1 (Gate-C).
        let (c, dag, state, pending) = fig4();
        for metric in [ProximityMetric::Layers, ProximityMetric::Gates] {
            let scores = move_scores(
                &c,
                &dag,
                &state,
                &pending,
                0,
                Qubit(1),
                Qubit(2),
                TrapId(0),
                TrapId(1),
                6,
                metric,
            );
            assert_eq!(
                scores,
                MoveScores {
                    a_to_b: 3,
                    b_to_a: 1
                },
                "metric {metric:?}"
            );
        }
    }

    #[test]
    fn future_ops_moves_ion1_to_t1() {
        // §III-A2: "ionA = 1 will move from trapA (T0) to trapB (T1)".
        let (c, dag, state, pending) = fig4();
        let d = decide_direction(
            DirectionPolicy::FutureOps { proximity: 6 },
            &c,
            &dag,
            &state,
            &pending,
            0,
        );
        assert_eq!(
            d,
            MoveDecision {
                ion: IonId(1),
                from: TrapId(0),
                to: TrapId(1)
            }
        );
    }

    #[test]
    fn excess_capacity_moves_ion2_to_t0() {
        // Fig. 4: EC(T0)=2 > EC(T1)=1, so the baseline moves ion 2 into T0.
        let (c, dag, state, pending) = fig4();
        let d = decide_direction(
            DirectionPolicy::ExcessCapacity,
            &c,
            &dag,
            &state,
            &pending,
            0,
        );
        assert_eq!(
            d,
            MoveDecision {
                ion: IonId(2),
                from: TrapId(1),
                to: TrapId(0)
            }
        );
    }

    #[test]
    fn excess_capacity_tie_moves_first_ion() {
        let mut c = Circuit::new(4);
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(2)).unwrap();
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        // 2 ions per trap: equal ECs.
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1)])
                .unwrap();
        let state = MachineState::with_mapping(&spec, &mapping).unwrap();
        let dag = c.dependency_dag();
        let pending: VecDeque<GateId> = [GateId(0)].into_iter().collect();
        let d = decide_direction(
            DirectionPolicy::ExcessCapacity,
            &c,
            &dag,
            &state,
            &pending,
            0,
        );
        assert_eq!(d.ion, IonId(0), "tie moves the gate's first ion");
        assert_eq!(d.to, TrapId(1));
    }

    /// Builds the Fig. 5 scenario: relevant gates 1 and 3 are close; gate
    /// 11 is separated from gate 3 by a 7-gate (and 7-layer) filler chain.
    fn fig5() -> (Circuit, DependencyDag, MachineState, VecDeque<GateId>) {
        let mut c = Circuit::new(10);
        let (a, b, cc, d) = (Qubit(0), Qubit(1), Qubit(2), Qubit(3));
        c.push_two_qubit(Opcode::Ms, a, b).unwrap(); // 1 (active)
        c.push_two_qubit(Opcode::Ms, cc, Qubit(4)).unwrap(); // 2 (filler)
        c.push_two_qubit(Opcode::Ms, a, cc).unwrap(); // 3 relevant

        // Filler chain on qubits 8-9: each gate depends on the previous,
        // pushing layers (and positions) 7 deep.
        for _ in 0..7 {
            c.push_two_qubit(Opcode::Ms, Qubit(8), Qubit(9)).unwrap(); // 4..=10
        }
        // Gate 11 involves b and d, with d fed through the filler chain so
        // its layer is deep under both metrics.
        c.push_two_qubit(Opcode::Ms, Qubit(9), d).unwrap(); // chains d deep
        c.push_two_qubit(Opcode::Ms, b, d).unwrap(); // "gate 11" relevant but distant
        let spec = MachineSpec::linear(2, 8, 2).unwrap();
        let mapping = InitialMapping::from_traps(
            &spec,
            vec![
                TrapId(0), // a
                TrapId(1), // b
                TrapId(1), // c  (so gate 3 counts toward a_to_b)
                TrapId(1), // d  (gate 11 would also count toward a_to_b)
                TrapId(0),
                TrapId(0),
                TrapId(0),
                TrapId(1),
                TrapId(1),
                TrapId(0),
            ],
        )
        .unwrap();
        let state = MachineState::with_mapping(&spec, &mapping).unwrap();
        let dag = c.dependency_dag();
        let pending: VecDeque<GateId> = dag.topological_order().into();
        // The active gate (a,b) must be at the front for the scan.
        assert_eq!(pending[0], GateId(0));
        (c, dag, state, pending)
    }

    #[test]
    fn proximity_excludes_distant_gates_both_metrics() {
        // Fig. 5: gate 3 is close (considered); the late (b,d) gate is
        // beyond the proximity-6 horizon under both metrics.
        let (c, dag, state, pending) = fig5();
        for metric in [ProximityMetric::Layers, ProximityMetric::Gates] {
            let near = move_scores(
                &c,
                &dag,
                &state,
                &pending,
                0,
                Qubit(0),
                Qubit(1),
                TrapId(0),
                TrapId(1),
                6,
                metric,
            );
            assert_eq!(
                near,
                MoveScores {
                    a_to_b: 1,
                    b_to_a: 0
                },
                "only gate 3 counts under {metric:?}"
            );
            // A generous proximity includes the distant gate too.
            let far = move_scores(
                &c,
                &dag,
                &state,
                &pending,
                0,
                Qubit(0),
                Qubit(1),
                TrapId(0),
                TrapId(1),
                50,
                metric,
            );
            assert_eq!(
                far,
                MoveScores {
                    a_to_b: 2,
                    b_to_a: 0
                },
                "distant gate included under {metric:?} with proximity 50"
            );
        }
    }

    #[test]
    fn layer_metric_sees_parallel_relevant_gates() {
        // A wide layer: 20 independent filler gates sit between the active
        // gate and the relevant gate *in position*, but everything is in
        // layers 0-1. The layer metric keeps the relevant gate; the literal
        // gate metric discards it at proximity 6.
        let mut c = Circuit::new(46);
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap(); // active
        for i in 0..20 {
            let base = 4 + 2 * i;
            c.push_two_qubit(Opcode::Ms, Qubit(base), Qubit(base + 1))
                .unwrap();
        }
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(2)).unwrap(); // relevant, layer 1
        let spec = MachineSpec::linear(2, 60, 2).unwrap();
        // Qubits 1 and 2 live in T1; qubit 0 and all fillers in T0.
        let traps: Vec<TrapId> = (0..46)
            .map(|q| {
                if q == 1 || q == 2 {
                    TrapId(1)
                } else {
                    TrapId(0)
                }
            })
            .collect();
        let mapping = InitialMapping::from_traps(&spec, traps).unwrap();
        let state = MachineState::with_mapping(&spec, &mapping).unwrap();
        let dag = c.dependency_dag();
        let pending: VecDeque<GateId> = dag.topological_order().into();
        assert_eq!(pending[0], GateId(0));

        let layers = move_scores(
            &c,
            &dag,
            &state,
            &pending,
            0,
            Qubit(0),
            Qubit(1),
            TrapId(0),
            TrapId(1),
            6,
            ProximityMetric::Layers,
        );
        assert_eq!(
            layers,
            MoveScores {
                a_to_b: 1,
                b_to_a: 0
            }
        );

        let gates = move_scores(
            &c,
            &dag,
            &state,
            &pending,
            0,
            Qubit(0),
            Qubit(1),
            TrapId(0),
            TrapId(1),
            6,
            ProximityMetric::Gates,
        );
        assert_eq!(
            gates,
            MoveScores::default(),
            "literal gate distance discards the relevant gate behind 20 fillers"
        );
    }

    #[test]
    fn tie_falls_back_to_excess_capacity() {
        // No future gates at all: scores tie at 0; EC rule must decide.
        let mut c = Circuit::new(5);
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(2)).unwrap();
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping = InitialMapping::from_traps(
            &spec,
            vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1), TrapId(1)],
        )
        .unwrap();
        let state = MachineState::with_mapping(&spec, &mapping).unwrap();
        let dag = c.dependency_dag();
        let pending: VecDeque<GateId> = [GateId(0)].into_iter().collect();
        let d = decide_direction(
            DirectionPolicy::FutureOps { proximity: 6 },
            &c,
            &dag,
            &state,
            &pending,
            0,
        );
        // EC(T0)=2 > EC(T1)=1: move ion 2 into T0 (same as baseline test).
        assert_eq!(d.ion, IonId(2));
    }

    #[test]
    fn open_ties_surface_both_orientations() {
        // No future gates: the scores tie, so the decision is open and the
        // alternative is the opposite orientation of the EC choice.
        let mut c = Circuit::new(5);
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(2)).unwrap();
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping = InitialMapping::from_traps(
            &spec,
            vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1), TrapId(1)],
        )
        .unwrap();
        let state = MachineState::with_mapping(&spec, &mapping).unwrap();
        let dag = c.dependency_dag();
        let pending: VecDeque<GateId> = [GateId(0)].into_iter().collect();
        let choice = decide_direction_open(
            DirectionPolicy::FutureOps { proximity: 6 },
            &c,
            &dag,
            &state,
            &pending,
            0,
        );
        let alt = choice.alternative.expect("scoreless gate ties");
        assert_ne!(choice.decision.ion, alt.ion);
        assert_eq!(choice.decision.from, alt.to);
        assert_eq!(choice.decision.to, alt.from);

        // A decisive score (the Fig. 4 setup) surfaces no alternative, and
        // the EC policy never does.
        let (c, dag, state, pending) = fig4();
        let decisive = decide_direction_open(
            DirectionPolicy::FutureOps { proximity: 6 },
            &c,
            &dag,
            &state,
            &pending,
            0,
        );
        assert_eq!(decisive.alternative, None);
        let ec = decide_direction_open(
            DirectionPolicy::ExcessCapacity,
            &c,
            &dag,
            &state,
            &pending,
            0,
        );
        assert_eq!(ec.alternative, None);
    }

    #[test]
    fn partners_in_third_traps_are_neutral() {
        let mut c = Circuit::new(6);
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap(); // active
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(5)).unwrap(); // partner in T2
        let spec = MachineSpec::linear(3, 4, 1).unwrap();
        let mapping = InitialMapping::from_traps(
            &spec,
            vec![
                TrapId(0),
                TrapId(1),
                TrapId(0),
                TrapId(1),
                TrapId(2),
                TrapId(2),
            ],
        )
        .unwrap();
        let state = MachineState::with_mapping(&spec, &mapping).unwrap();
        let dag = c.dependency_dag();
        let pending: VecDeque<GateId> = (0..2).map(GateId).collect();
        let s = move_scores(
            &c,
            &dag,
            &state,
            &pending,
            0,
            Qubit(0),
            Qubit(1),
            TrapId(0),
            TrapId(1),
            6,
            ProximityMetric::Layers,
        );
        assert_eq!(s, MoveScores::default());
    }

    #[test]
    fn opposite_decision() {
        let d = MoveDecision {
            ion: IonId(1),
            from: TrapId(0),
            to: TrapId(1),
        };
        let o = d.opposite(IonId(2));
        assert_eq!(
            o,
            MoveDecision {
                ion: IonId(2),
                from: TrapId(1),
                to: TrapId(0)
            }
        );
    }
}
