//! Post-compilation schedule analysis: where the shuttles went.
//!
//! Answers the questions the paper's discussion sections raise — which ions
//! travel, between which traps, and how shuttle effort relates to gate
//! count — for any compiled [`Schedule`].

use qccd_machine::{IonId, Operation, Schedule, TrapId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Aggregate movement analysis of a compiled schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleAnalysis {
    /// Shuttle hops between each ordered trap pair: `flow[from][to]`.
    pub trap_flow: Vec<Vec<usize>>,
    /// Shuttle hops performed by each ion, indexed by ion id.
    pub ion_travel: Vec<usize>,
    /// Gates executed in each trap.
    pub trap_gates: Vec<usize>,
    /// Total shuttle hops.
    pub shuttles: usize,
    /// Total gates.
    pub gates: usize,
}

impl ScheduleAnalysis {
    /// Analyses `schedule` for a machine with `num_traps` traps and
    /// `num_ions` ions.
    pub fn analyze(schedule: &Schedule, num_traps: u32, num_ions: u32) -> Self {
        let mut trap_flow = vec![vec![0usize; num_traps as usize]; num_traps as usize];
        let mut ion_travel = vec![0usize; num_ions as usize];
        let mut trap_gates = vec![0usize; num_traps as usize];
        let mut shuttles = 0usize;
        let mut gates = 0usize;
        for op in &schedule.operations {
            match *op {
                Operation::Shuttle { ion, from, to } => {
                    trap_flow[from.index()][to.index()] += 1;
                    ion_travel[ion.index()] += 1;
                    shuttles += 1;
                }
                Operation::Gate { trap, .. } => {
                    trap_gates[trap.index()] += 1;
                    gates += 1;
                }
            }
        }
        ScheduleAnalysis {
            trap_flow,
            ion_travel,
            trap_gates,
            shuttles,
            gates,
        }
    }

    /// Shuttle-to-gate ratio — the quantity §IV-C correlates with fidelity
    /// improvement.
    pub fn shuttle_to_gate_ratio(&self) -> f64 {
        if self.gates == 0 {
            return 0.0;
        }
        self.shuttles as f64 / self.gates as f64
    }

    /// The most-travelled ion and its hop count, if any ion moved.
    pub fn busiest_ion(&self) -> Option<(IonId, usize)> {
        self.ion_travel
            .iter()
            .enumerate()
            .max_by_key(|(_, &hops)| hops)
            .filter(|(_, &hops)| hops > 0)
            .map(|(i, &hops)| (IonId(i as u32), hops))
    }

    /// Fraction of ions that never shuttle — high values mean the initial
    /// mapping plus direction policy kept most ions stationary.
    pub fn stationary_ion_fraction(&self) -> f64 {
        if self.ion_travel.is_empty() {
            return 1.0;
        }
        self.ion_travel.iter().filter(|&&h| h == 0).count() as f64 / self.ion_travel.len() as f64
    }

    /// Net ion flow between a trap pair: hops `a→b` minus hops `b→a`.
    /// Large one-way imbalances indicate migration (the QFT "pile-up"
    /// pattern discussed in EXPERIMENTS.md).
    pub fn net_flow(&self, a: TrapId, b: TrapId) -> i64 {
        self.trap_flow[a.index()][b.index()] as i64 - self.trap_flow[b.index()][a.index()] as i64
    }

    /// Ping-pong volume between a trap pair: `2 × min(a→b, b→a)` — the
    /// back-and-forth traffic the future-ops policy exists to remove
    /// (Fig. 4's pathology).
    pub fn ping_pong_volume(&self, a: TrapId, b: TrapId) -> usize {
        2 * self.trap_flow[a.index()][b.index()].min(self.trap_flow[b.index()][a.index()])
    }

    /// Total ping-pong volume across all trap pairs.
    pub fn total_ping_pong(&self) -> usize {
        let n = self.trap_flow.len();
        let mut total = 0;
        for a in 0..n {
            for b in (a + 1)..n {
                total += self.ping_pong_volume(TrapId(a as u32), TrapId(b as u32));
            }
        }
        total
    }
}

impl fmt::Display for ScheduleAnalysis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} shuttles / {} gates (ratio {:.3}), {:.0}% ions stationary, ping-pong {}",
            self.shuttles,
            self.gates,
            self.shuttle_to_gate_ratio(),
            100.0 * self.stationary_ion_fraction(),
            self.total_ping_pong()
        )?;
        write!(f, "gates per trap: {:?}", self.trap_gates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compile, compile_with_mapping, CompilerConfig};
    use qccd_circuit::generators::random_circuit;
    use qccd_circuit::{Circuit, Opcode, Qubit};
    use qccd_machine::{InitialMapping, MachineSpec};

    #[test]
    fn counts_match_schedule_stats() {
        let spec = MachineSpec::linear(3, 8, 2).unwrap();
        let circuit = random_circuit(12, 100, 5);
        let r = compile(&circuit, &spec, &CompilerConfig::optimized()).unwrap();
        let a = ScheduleAnalysis::analyze(&r.schedule, 3, 12);
        assert_eq!(a.shuttles, r.stats.shuttles);
        assert_eq!(a.gates, 100);
        assert_eq!(a.ion_travel.iter().sum::<usize>(), a.shuttles);
        assert_eq!(a.trap_gates.iter().sum::<usize>(), 100);
    }

    #[test]
    fn fig4_baseline_ping_pongs_optimized_does_not() {
        // The Fig. 4 program: baseline shuttles ion 2 back and forth.
        let mut c = Circuit::new(5);
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(2)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(2), Qubit(3)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(1), Qubit(2)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(2), Qubit(4)).unwrap();
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping = InitialMapping::from_traps(
            &spec,
            vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1), TrapId(1)],
        )
        .unwrap();
        let base =
            compile_with_mapping(&c, &spec, &CompilerConfig::baseline(), mapping.clone()).unwrap();
        let opt = compile_with_mapping(&c, &spec, &CompilerConfig::optimized(), mapping).unwrap();
        let base_a = ScheduleAnalysis::analyze(&base.schedule, 2, 5);
        let opt_a = ScheduleAnalysis::analyze(&opt.schedule, 2, 5);
        assert_eq!(base_a.ping_pong_volume(TrapId(0), TrapId(1)), 4);
        assert_eq!(opt_a.total_ping_pong(), 0);
        assert_eq!(base_a.busiest_ion(), Some((IonId(2), 4)));
        assert_eq!(opt_a.busiest_ion(), Some((IonId(1), 1)));
    }

    #[test]
    fn net_flow_is_antisymmetric() {
        let spec = MachineSpec::linear(3, 8, 2).unwrap();
        let circuit = random_circuit(12, 120, 8);
        let r = compile(&circuit, &spec, &CompilerConfig::optimized()).unwrap();
        let a = ScheduleAnalysis::analyze(&r.schedule, 3, 12);
        for x in 0..3u32 {
            for y in 0..3u32 {
                assert_eq!(
                    a.net_flow(TrapId(x), TrapId(y)),
                    -a.net_flow(TrapId(y), TrapId(x))
                );
            }
        }
    }

    #[test]
    fn stationary_fraction_bounds() {
        let spec = MachineSpec::linear(2, 8, 2).unwrap();
        let circuit = Circuit::new(4);
        let r = compile(&circuit, &spec, &CompilerConfig::optimized()).unwrap();
        let a = ScheduleAnalysis::analyze(&r.schedule, 2, 4);
        assert_eq!(a.stationary_ion_fraction(), 1.0);
        assert_eq!(a.busiest_ion(), None);
        assert_eq!(a.shuttle_to_gate_ratio(), 0.0);
    }

    #[test]
    fn display_summarises() {
        let spec = MachineSpec::linear(2, 8, 2).unwrap();
        let circuit = random_circuit(8, 40, 2);
        let r = compile(&circuit, &spec, &CompilerConfig::optimized()).unwrap();
        let a = ScheduleAnalysis::analyze(&r.schedule, 2, 8);
        let text = a.to_string();
        assert!(text.contains("gates per trap"));
        assert!(text.contains("ratio"));
    }
}
