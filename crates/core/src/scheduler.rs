//! The compile loop: earliest-ready-gate-first scheduling with pluggable
//! shuttle-direction, re-ordering, and re-balancing policies.

use crate::config::{CompilerConfig, Objective, RebalancePolicy};
use crate::error::CompileError;
use crate::mapping::initial_mapping;
use crate::objective::{edge_weight, ClockScorer};
use crate::policies::{decide_direction, decide_direction_open, MoveDecision};
use crate::rebalance::{choose_destination, choose_ion, destination_candidates, eviction_route};
use crate::stats::CompileStats;
use qccd_circuit::{Circuit, DependencyDag, GateId, GateQubits, ReadySet};
use qccd_flow::{route_commodities, Commodity};
use qccd_machine::{InitialMapping, IonId, MachineSpec, MachineState, Operation, Schedule, TrapId};
use qccd_route::{
    plan_eviction_weighted, plan_route, plan_route_weighted, route_budget, EdgeLoad, RouterPolicy,
    TransportSchedule,
};
use qccd_timing::Timeline;
use std::collections::VecDeque;

/// Open decisions the clock objective re-decided on projected makespan
/// (both [`decide`](Scheduler::decide) and eviction-side ties).
static CLOCK_TIES: qccd_obs::Counter = qccd_obs::Counter::new("core.clock_ties");

/// A compiled program plus its compile-time statistics.
#[derive(Debug, Clone)]
pub struct CompileResult {
    /// The validated, executable schedule.
    pub schedule: Schedule,
    /// The schedule's shuttle traffic packed into concurrent transport
    /// rounds (one hop per round under the serial router), replay-validated
    /// against the machine's per-edge and junction rules.
    pub transport: TransportSchedule,
    /// The schedule lowered onto the device clock under the configured
    /// [`TimingModel`](qccd_timing::TimingModel)
    /// ([`CompilerConfig::timing`]): every gate, transport round and zone
    /// move with explicit start/end times. `timeline.makespan_us` is the
    /// compiler's timed-makespan estimate without running the simulator.
    pub timeline: Timeline,
    /// The timing model `timeline` was lowered under
    /// ([`CompilerConfig::timing`]) — recorded so downstream optimizers
    /// scoring under the same model can reuse the timeline instead of
    /// re-lowering the whole schedule.
    pub timing: qccd_timing::TimingModel,
    /// The clock objective's threaded fold result: the serial-round timed
    /// makespan of the committed schedule under
    /// [`timing`](CompileResult::timing), bit-for-bit equal to a fresh
    /// transport-less `lower()` of `schedule` (the chunked fold *is* that
    /// fold — the objective property tests pin the equality). `None`
    /// under the default shuttle-count objective. Like the compile-time
    /// counters, this describes the original compile and survives
    /// [`with_transport`](CompileResult::with_transport) rewrites.
    pub clock_serial_makespan_us: Option<f64>,
    /// Counters collected during compilation.
    pub stats: CompileStats,
}

impl CompileResult {
    /// Pack hook: this result rebuilt around a transformed schedule,
    /// transport and timeline — a provably-equivalent rewrite produced by
    /// a post-compile transport optimizer such as `qccd-pack`.
    ///
    /// The schedule-derived counters (`shuttles`, `transport_depth`) are
    /// refreshed from the new parts; the compile-time counters (reorders,
    /// rebalances, ...) describe the original compile and are kept, as is
    /// the recorded [`timing`](CompileResult::timing) model — the
    /// replacement `timeline` must be lowered under that same model. The
    /// caller is responsible for having validated the replacement (replay
    /// equivalence, transport coverage, timeline resources) — `qccd-pack`
    /// refuses to hand back anything unvalidated.
    pub fn with_transport(
        mut self,
        schedule: Schedule,
        transport: TransportSchedule,
        timeline: Timeline,
    ) -> Self {
        self.stats.shuttles = schedule.stats().shuttles;
        self.stats.transport_depth = transport.depth();
        self.schedule = schedule;
        self.transport = transport;
        self.timeline = timeline;
        self
    }
}

/// Compiles `circuit` onto `spec` under `config`.
///
/// The returned schedule is replay-validated before being returned: every
/// gate executes exactly once in dependency order with co-located operands,
/// and every shuttle hop is legal.
///
/// # Errors
///
/// * [`CompileError::CircuitTooLarge`] — more qubits than the machine hosts.
/// * [`CompileError::ShuttleDeadlock`] — re-balancing could not free space
///   (pathologically over-subscribed machines).
/// * [`CompileError::InternalValidation`] — the produced schedule failed
///   replay validation (a compiler bug, never silent).
///
/// # Example
///
/// ```
/// use qccd_circuit::generators::supremacy;
/// use qccd_core::{compile, CompilerConfig};
/// use qccd_machine::MachineSpec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let result = compile(
///     &supremacy(4, 4, 8),
///     &MachineSpec::linear(2, 10, 2)?,
///     &CompilerConfig::optimized(),
/// )?;
/// println!("{} shuttles", result.stats.shuttles);
/// # Ok(())
/// # }
/// ```
pub fn compile(
    circuit: &Circuit,
    spec: &MachineSpec,
    config: &CompilerConfig,
) -> Result<CompileResult, CompileError> {
    let mapping = initial_mapping(circuit, spec, config.mapping)?;
    compile_with_mapping(circuit, spec, config, mapping)
}

/// Compiles with a caller-provided initial mapping (for mapping-policy
/// ablations and tests that pin exact placements).
///
/// # Errors
///
/// As [`compile`], plus [`CompileError::Machine`] if the mapping does not
/// fit the spec.
pub fn compile_with_mapping(
    circuit: &Circuit,
    spec: &MachineSpec,
    config: &CompilerConfig,
    mapping: InitialMapping,
) -> Result<CompileResult, CompileError> {
    let _phase = qccd_obs::span("compile");
    let state = MachineState::with_mapping(spec, &mapping)?;
    let dag = circuit.dependency_dag();
    let ready = dag.ready_set();
    let pending: VecDeque<GateId> = dag.topological_order().into();
    let clock = match config.objective {
        Objective::Shuttles => None,
        // The clock objective threads the transport-less lowering fold
        // through the loop; every candidate at an open decision is scored
        // by a speculative advance from this state — O(delta) by default,
        // O(suffix) under the `ScoreMode::Full` differential oracle.
        Objective::Clock => Some(
            ClockScorer::new(
                &mapping,
                spec,
                &config.timing,
                config.score_mode,
                config.jobs,
            )
            .map_err(CompileError::InternalTimeline)?,
        ),
    };
    let mut scheduler = Scheduler {
        circuit,
        config,
        dag,
        ready,
        edge_load: EdgeLoad::new(spec.num_traps()),
        state,
        pending,
        ops: Vec::with_capacity(circuit.len() * 2),
        stats: CompileStats::default(),
        in_rebalance: false,
        clock,
    };
    scheduler.run()?;
    let clock_serial_makespan_us = scheduler.clock.as_ref().map(ClockScorer::makespan_us);
    scheduler.stats.clock_speculations = scheduler
        .clock
        .as_ref()
        .map_or(0, ClockScorer::speculations);
    let schedule = Schedule::new(mapping, scheduler.ops);
    schedule
        .validate(circuit, spec)
        .map_err(CompileError::InternalValidation)?;
    let transport = match config.router {
        RouterPolicy::Serial => TransportSchedule::pack_serial(&schedule),
        RouterPolicy::Congestion { .. } if config.lookahead => {
            TransportSchedule::pack_lookahead(&schedule, spec)
                .map_err(CompileError::InternalTransport)?
        }
        RouterPolicy::Congestion { .. } => TransportSchedule::pack_concurrent(&schedule, spec)
            .map_err(CompileError::InternalTransport)?,
    };
    // Lookahead rounds reorder hops within gate-free runs, so they answer
    // to the relaxed (multiset + replay + final-mapping) validator. The
    // packer already runs that replay once per gate-free run while
    // building (and debug builds re-validate inside `pack_lookahead`), so
    // release builds skip the redundant whole-schedule second pass — the
    // lookahead hot-path cleanup. The other packers preserve flat order
    // and must pass the strict validator.
    if !(config.lookahead && config.router.is_congestion()) {
        transport
            .validate(&schedule, spec)
            .map_err(CompileError::InternalTransport)?;
    }
    let timeline = qccd_timing::lower(&schedule, Some(&transport), circuit, spec, &config.timing)
        .map_err(CompileError::InternalTimeline)?;
    let mut stats = scheduler.stats;
    stats.transport_depth = transport.depth();
    Ok(CompileResult {
        schedule,
        transport,
        timeline,
        timing: config.timing,
        clock_serial_makespan_us,
        stats,
    })
}

struct Scheduler<'a> {
    circuit: &'a Circuit,
    config: &'a CompilerConfig,
    dag: DependencyDag,
    ready: ReadySet,
    /// Decaying per-segment traffic counters feeding the congestion
    /// router's edge pricing (ignored by the serial router).
    edge_load: EdgeLoad,
    state: MachineState,
    /// Planned execution order of not-yet-executed gates; front = active.
    /// Always a subsequence of the initial (layer, id)-sorted topological
    /// order, so layers are non-decreasing along the queue.
    pending: VecDeque<GateId>,
    ops: Vec<Operation>,
    stats: CompileStats,
    /// Set while shuttles belong to a re-balancing eviction, for stats.
    in_rebalance: bool,
    /// The clock objective's threaded lowering fold ([`Objective::Clock`]
    /// only; `None` keeps every paper decision rule bit-for-bit).
    clock: Option<ClockScorer>,
}

impl Scheduler<'_> {
    /// Maximum re-balancing recursion depth before declaring deadlock.
    fn depth_limit(&self) -> u32 {
        2 * self.state.spec().num_traps() + 4
    }

    /// Advances the clock fold through the operation just pushed onto
    /// `self.ops` (no-op under the shuttle-count objective).
    fn commit_clock(&mut self, op: Operation) -> Result<(), CompileError> {
        if let Some(clock) = self.clock.as_mut() {
            clock
                .commit(&op, self.circuit, self.state.spec())
                .map_err(CompileError::InternalTimeline)?;
        }
        Ok(())
    }

    fn run(&mut self) -> Result<(), CompileError> {
        while !self.pending.is_empty() {
            if self.config.reorder {
                self.drain_local_ready_gates()?;
                if self.pending.is_empty() {
                    break;
                }
            }
            self.execute_at(0, self.config.reorder)?;
        }
        Ok(())
    }

    /// Executes every ready gate in the front window of the queue whose
    /// operands are already co-located. Local gates move no ions, so this
    /// costs nothing; retiring them keeps already-satisfied gates out of
    /// the §III-A move-score scans and unlocks their successors earlier.
    /// Gated on the re-ordering heuristic: the baseline compiler executes
    /// strictly in plan order.
    fn drain_local_ready_gates(&mut self) -> Result<(), CompileError> {
        // One forward pass suffices: local gates move no ions (locality
        // never changes during the drain), and the queue is topologically
        // ordered, so any gate a drain execution makes ready sits at a
        // later position the cursor has yet to reach.
        let window = Self::REORDER_WINDOW.min(self.pending.len());
        let mut pos = 0;
        while pos < window.min(self.pending.len()) {
            let gid = self.pending[pos];
            let local = match self.circuit.gate(gid).qubits {
                GateQubits::One(_) => true,
                GateQubits::Two(a, b) => {
                    self.state.trap_of(IonId::from(a)) == self.state.trap_of(IonId::from(b))
                }
            };
            if local && self.ready.is_ready(gid) {
                self.execute_at(pos, false)?;
                // Do not advance: the next gate slid into `pos`.
            } else {
                pos += 1;
            }
        }
        Ok(())
    }

    /// Executes the gate at `pending[pos]`, inserting shuttles as needed,
    /// then removes it from the queue. With `allow_reorder`, a blocked
    /// favourable direction may first hoist-and-execute a candidate gate
    /// found *after* `pos` (so `pos` stays valid throughout).
    fn execute_at(&mut self, pos: usize, allow_reorder: bool) -> Result<(), CompileError> {
        let gate_id = self.pending[pos];
        let gate = self.circuit.gate(gate_id);
        let exec_trap = match gate.qubits {
            GateQubits::One(q) => {
                self.stats.local_gates += 1;
                self.state.trap_of(IonId::from(q))
            }
            GateQubits::Two(a, b) => {
                let (ia, ib) = (IonId::from(a), IonId::from(b));
                if self.state.trap_of(ia) == self.state.trap_of(ib) {
                    self.stats.local_gates += 1;
                } else {
                    self.shuttle_for_gate(pos, allow_reorder)?;
                }
                debug_assert_eq!(self.state.trap_of(ia), self.state.trap_of(ib));
                self.state.trap_of(ia)
            }
        };
        let gate_op = Operation::Gate {
            gate: gate_id,
            trap: exec_trap,
        };
        self.ops.push(gate_op);
        self.commit_clock(gate_op)?;
        self.stats.gate_ops += 1;
        // Each retired gate ages the congestion picture: only traffic from
        // the recent past should price routes.
        self.edge_load.decay();
        self.ready.mark_done(&self.dag, gate_id);
        self.pending.remove(pos);
        Ok(())
    }

    /// Brings the operands of the two-qubit gate at `pending[pos]` into the
    /// same trap.
    fn shuttle_for_gate(&mut self, pos: usize, allow_reorder: bool) -> Result<(), CompileError> {
        let (qa, qb) = self
            .circuit
            .gate(self.pending[pos])
            .two_qubit_operands()
            .expect("only two-qubit gates need shuttles");
        let (ia, ib) = (IonId::from(qa), IonId::from(qb));

        let mut decision = self.decide(pos);

        // §III-B: if the favourable destination is full, try to hoist a
        // nearby ready gate whose own favourable move *leaves* that trap
        // (Algorithm 1, generalised — see `find_reorder_candidate`).
        if self.state.is_full(decision.to) && allow_reorder {
            if let Some(cand_pos) = self.find_reorder_candidate(pos, decision.to) {
                self.stats.reorders += 1;
                self.execute_at(cand_pos, false)?;
                // The hoisted gate may have moved one of our operands.
                if self.state.trap_of(ia) == self.state.trap_of(ib) {
                    return Ok(());
                }
                decision = self.decide(pos);
            }
        }

        // Favourable direction still blocked. If the move score strongly
        // favours the full trap (many upcoming gates live there), evicting
        // one ion and keeping the favourable direction amortises over those
        // gates; on a thin margin, moving the other ion out is cheaper.
        if self.state.is_full(decision.to) {
            let other = if decision.ion == ia { ib } else { ia };
            let opposite = decision.opposite(other);
            // Experiments show eviction cascades cost more than they save
            // even when the score strongly favours the full trap, so the
            // opposite move is always preferred when it has room.
            if !self.state.is_full(opposite.to) {
                decision = opposite;
                self.stats.opposite_direction_moves += 1;
            } else {
                let stationary = other;
                let mut attempts = 0u32;
                while self.state.is_full(decision.to) {
                    if attempts > self.depth_limit() {
                        return Err(CompileError::ShuttleDeadlock { trap: decision.to });
                    }
                    attempts += 1;
                    self.rebalance(decision.to, &[stationary], &[decision.from])?;
                }
            }
        }

        let stationary = if decision.ion == ia { ib } else { ia };
        // Clock objective: plan the window's open moves as one batched
        // multi-commodity layer (PR 4 measured that these decisions are
        // closed by the time a post-compile pass sees them).
        if self.try_batched_move(pos, decision, stationary)? {
            return Ok(());
        }
        self.move_ion(decision, stationary)
    }

    /// Directs the cross-trap gate at `pending[pos]`. The configured
    /// policy decides as always; under the clock objective a *tied*
    /// §III-A move score — the one case the paper leaves open — is broken
    /// on projected makespan instead of the excess-capacity fallback:
    /// both orientations' planned walks are speculatively lowered from
    /// the live fold and the earlier projected clock wins. Infeasible
    /// walks (evictions needed) score as unboundedly late; a projected
    /// dead heat keeps the excess-capacity choice, so the tie-break is
    /// deterministic.
    fn decide(&mut self, pos: usize) -> MoveDecision {
        let _phase = qccd_obs::span("direction-scan");
        let choice = decide_direction_open(
            self.config.direction,
            self.circuit,
            &self.dag,
            &self.state,
            &self.pending,
            pos,
        );
        let (Some(alt), Some(clock)) = (choice.alternative, self.clock.as_mut()) else {
            return choice.decision;
        };
        let model = clock.model();
        let plan_walk = |d: &MoveDecision| -> Option<(IonId, Vec<TrapId>)> {
            let topology = self.state.spec().topology();
            let weight = |a: TrapId, b: TrapId| edge_weight(&model, topology, a, b);
            let plan = plan_route_weighted(
                self.config.router,
                &self.state,
                d.from,
                d.to,
                &self.edge_load,
                Some(&weight),
            )?;
            if self.state.is_full(d.to) || plan.full_interior_traps > 0 {
                return None; // needs evictions the walk cannot price
            }
            Some((d.ion, plan.path))
        };
        // Candidate collection decoupled from scoring: plan both
        // orientations first (planner call order unchanged), then price
        // the plannable walks as one batch reduced in candidate-index
        // order — identical projections at any `--jobs` width.
        let planned = [plan_walk(&choice.decision), plan_walk(&alt)];
        let walks: Vec<(IonId, Vec<TrapId>)> = planned.iter().flatten().cloned().collect();
        let mut scores = clock
            .score_walks(&walks, self.circuit, self.state.spec())
            .into_iter();
        let [score_keep, score_alt] = planned.map(|p| p.and_then(|_| scores.next().flatten()));
        let decided = match (score_keep, score_alt) {
            (Some(a), Some(b)) if b < a => Some(alt),
            (None, Some(_)) => Some(alt),
            _ => None,
        };
        match decided {
            Some(alt) => {
                self.stats.clock_ties += 1;
                CLOCK_TIES.incr();
                alt
            }
            None => choice.decision,
        }
    }

    /// Upper bound on the movers one batched layer plans jointly.
    const BATCH_LIMIT: usize = 8;

    /// Clock objective: plans the active move *together with* the
    /// favourable moves of other ready cross-trap gates in the window as
    /// one multi-commodity flow ([`route_commodities`]) over timed edge
    /// costs, and emits the routed walks layer by layer — the k-th hops
    /// of all commodities side by side, exactly the shape the round
    /// packers turn into wide rounds. Returns `Ok(false)` (and changes
    /// nothing) whenever batching does not apply: shuttle-count
    /// objective, fewer than two unblocked movers, or a rewrite that does
    /// not replay legally — the one-move-at-a-time path with its eviction
    /// machinery is the fallback.
    fn try_batched_move(
        &mut self,
        pos: usize,
        decision: MoveDecision,
        stationary: IonId,
    ) -> Result<bool, CompileError> {
        let Some(clock) = self.clock.as_ref() else {
            return Ok(false);
        };
        let _phase = qccd_obs::span("batching");
        let model = clock.model();
        let topology = self.state.spec().topology();

        // The active mover plus every ready cross-trap gate in the window
        // whose favourable move is unblocked. Claimed ions (gate operands
        // of already-batched gates) stay put so each batched gate finds
        // its operands where the plan leaves them.
        let mut movers: Vec<(IonId, TrapId, TrapId)> =
            vec![(decision.ion, decision.from, decision.to)];
        let mut claimed: Vec<IonId> = vec![decision.ion, stationary];
        let end = (pos + 1 + Self::REORDER_WINDOW).min(self.pending.len());
        // Cheap feasibility precheck before any §III-A window arbitration:
        // a gate can only join the batch if it is ready, cross-trap, and
        // claims no already-claimed ion, and the loop below only ever
        // *grows* `claimed` — so counting window gates that pass these
        // filters against the initial claim set upper-bounds the movers
        // the loop can accept. Zero such gates means the batch stays a
        // solo move; skip the per-gate direction scoring entirely (the
        // dominant cost of probing unbatchable windows).
        let joinable = (pos + 1..end).any(|p| {
            let gid = self.pending[p];
            if !self.ready.is_ready(gid) {
                return false;
            }
            let Some((xa, xb)) = self.circuit.gate(gid).two_qubit_operands() else {
                return false;
            };
            let (ja, jb) = (IonId::from(xa), IonId::from(xb));
            self.state.trap_of(ja) != self.state.trap_of(jb)
                && !claimed.contains(&ja)
                && !claimed.contains(&jb)
        });
        if !joinable {
            return Ok(false);
        }
        for p in (pos + 1)..end {
            if movers.len() >= Self::BATCH_LIMIT {
                break;
            }
            let gid = self.pending[p];
            if !self.ready.is_ready(gid) {
                continue;
            }
            let Some((xa, xb)) = self.circuit.gate(gid).two_qubit_operands() else {
                continue;
            };
            let (ja, jb) = (IonId::from(xa), IonId::from(xb));
            if self.state.trap_of(ja) == self.state.trap_of(jb)
                || claimed.contains(&ja)
                || claimed.contains(&jb)
            {
                continue;
            }
            let d = decide_direction(
                self.config.direction,
                self.circuit,
                &self.dag,
                &self.state,
                &self.pending,
                p,
            );
            if self.state.is_full(d.to) {
                continue;
            }
            movers.push((d.ion, d.from, d.to));
            claimed.push(ja);
            claimed.push(jb);
        }
        if movers.len() < 2 {
            return Ok(false);
        }

        // Joint plan: pairwise edge-disjoint paths over timed edge costs
        // (junction-aware), full destinations surcharged to steer the
        // capacity-blind flow away from likely-illegal corridors.
        let commodities: Vec<Commodity> = movers
            .iter()
            .map(|&(_, a, b)| Commodity {
                source: a.index(),
                sink: b.index(),
            })
            .collect();
        let cost = |a: usize, b: usize| -> i64 {
            let (ta, tb) = (TrapId(a as u32), TrapId(b as u32));
            let mut c = i64::from(edge_weight(&model, topology, ta, tb));
            if self.state.is_full(tb) {
                c += 1_000;
            }
            c
        };
        let routed = route_commodities(topology.adjacency(), &commodities, cost);

        // Per-commodity fallback to the full-free shortest path; a mover
        // with no full-free route is dropped (the active mover aborts the
        // whole batch — its evictions belong to the solo machinery).
        let full_free = |path: &[TrapId], to: TrapId| {
            path.iter()
                .all(|&t| t == to || t == path[0] || !self.state.is_full(t))
        };
        let mut walks: Vec<(IonId, Vec<TrapId>)> = Vec::with_capacity(movers.len());
        for (k, route) in routed.into_iter().enumerate() {
            let (ion, from, to) = movers[k];
            let path = route
                .map(|p| p.into_iter().map(|t| TrapId(t as u32)).collect::<Vec<_>>())
                .filter(|p| full_free(p, to))
                .or_else(|| {
                    topology.shortest_path_filtered(from, to, |t| t == to || !self.state.is_full(t))
                });
            match path {
                Some(p) => walks.push((ion, p)),
                None if k == 0 => return Ok(false),
                None => {}
            }
        }
        if walks.len() < 2 {
            return Ok(false);
        }

        // Legalize by replay on a scratch state: sweep layer by layer,
        // each walk advancing one hop per sweep where capacity allows
        // (an eviction-shaped interleave resolves itself this way). A
        // sweep without progress means the rewrite cannot be serialized —
        // abort with nothing emitted.
        let mut replay = self.state.clone();
        let mut cursor = vec![0usize; walks.len()];
        let mut emitted: Vec<(IonId, TrapId)> = Vec::new();
        loop {
            let mut progressed = false;
            let mut outstanding = false;
            for (c, (ion, path)) in walks.iter().enumerate() {
                if cursor[c] + 1 >= path.len() {
                    continue;
                }
                outstanding = true;
                let to = path[cursor[c] + 1];
                if replay.shuttle(*ion, to).is_ok() {
                    emitted.push((*ion, to));
                    cursor[c] += 1;
                    progressed = true;
                }
            }
            if !outstanding {
                break;
            }
            if !progressed {
                return Ok(false);
            }
        }

        // Commit through the normal hop path (stats, edge load, fold).
        self.stats.batched_layers += 1;
        self.stats.batched_hops += emitted.len();
        for (ion, to) in emitted {
            self.hop(ion, to)?;
        }
        debug_assert_eq!(self.state.trap_of(decision.ion), decision.to);
        Ok(true)
    }

    /// Moves `decision.ion` hop-by-hop to `decision.to` along planner
    /// routes, re-balancing full traps encountered on the way.
    ///
    /// The route is re-planned from the ion's current trap each hop (the
    /// state changes under it as evictions run), and total hops are
    /// bounded by the planner's routed-path-length budget
    /// ([`route_budget`]): exhausting it is a typed
    /// [`CompileError::RouteExhausted`], never a silent cap.
    fn move_ion(&mut self, decision: MoveDecision, stationary: IonId) -> Result<(), CompileError> {
        let MoveDecision { ion, to: dest, .. } = decision;
        let start = self.state.trap_of(ion);
        let budget = route_budget(self.state.spec().topology(), start, dest).ok_or(
            CompileError::Unreachable {
                ion,
                from: start,
                to: dest,
            },
        )?;
        let mut hops = 0u32;
        while self.state.trap_of(ion) != dest {
            if hops >= budget {
                return Err(CompileError::RouteExhausted {
                    ion,
                    from: start,
                    to: dest,
                    budget,
                });
            }
            hops += 1;
            let cur = self.state.trap_of(ion);
            // Serial router: prefer a route whose interior traps have room,
            // falling back to the unconditional shortest path. Congestion
            // router: min-cost route under eviction-penalty and edge-load
            // pricing — it crosses a full trap (re-balancing it below) when
            // every detour costs more than the eviction.
            // Routes only come back `None` on a disconnected topology
            // (fullness never severs reachability, only prices it).
            // The clock objective prices segments by timed duration
            // (junction-aware) instead of unit hops.
            let plan = match self.clock.as_ref() {
                Some(clock) => {
                    let model = clock.model();
                    let topology = self.state.spec().topology();
                    let weight = |a: TrapId, b: TrapId| edge_weight(&model, topology, a, b);
                    plan_route_weighted(
                        self.config.router,
                        &self.state,
                        cur,
                        dest,
                        &self.edge_load,
                        Some(&weight),
                    )
                }
                None => plan_route(self.config.router, &self.state, cur, dest, &self.edge_load),
            }
            .ok_or(CompileError::Unreachable {
                ion,
                from: start,
                to: dest,
            })?;
            let next = plan.path[1];
            let mut attempts = 0u32;
            while self.state.is_full(next) {
                // Traffic block (§III-C): next trap on the route is full.
                // Deep eviction chains may pass through `cur`, so the moving
                // ion protects itself via the keep list too. Evictions can
                // themselves refill `next`; loop until it has room.
                if attempts > self.depth_limit() {
                    return Err(CompileError::ShuttleDeadlock { trap: next });
                }
                attempts += 1;
                // `cur` is not avoided: the moving ion departs it right
                // after the eviction, so parking an evicted ion there is
                // safe and often the nearest option (Fig. 7's 1-hop case).
                self.rebalance(next, &[stationary, ion], &[dest])?;
            }
            self.hop(ion, next)?;
        }
        Ok(())
    }

    /// Emits one validated shuttle hop.
    fn hop(&mut self, ion: IonId, to: TrapId) -> Result<(), CompileError> {
        let from = self.state.trap_of(ion);
        self.state.shuttle(ion, to)?;
        self.edge_load.record(from, to);
        let op = Operation::Shuttle { ion, from, to };
        self.ops.push(op);
        self.commit_clock(op)?;
        self.stats.shuttles += 1;
        if self.in_rebalance {
            self.stats.rebalance_shuttles += 1;
        }
        Ok(())
    }

    /// Relieves the full trap `blocked` by evicting one ion (§III-C).
    ///
    /// `keep` lists ions that must stay put (active gate operands); `avoid`
    /// lists traps the eviction should not fill (the active move's
    /// endpoints). Entirely iterative: congestion on the eviction route is
    /// resolved by *cascade-clearing* — shifting one ion forward out of each
    /// full trap along the remaining route, processed from the destination
    /// end backward, which is always legal because entries into a trap only
    /// ever come from the step after its own clearing.
    ///
    /// Under the congestion router with the nearest-neighbour rebalance
    /// policy, the destination and route are priced together on the
    /// planner's MCMF network ([`plan_eviction`]): hop count still
    /// dominates (the destination stays a nearest non-full trap), but ties
    /// break toward cold corridors and routes avoid full interior traps
    /// when an equal-cost detour exists. The baseline `FromTrapZero`
    /// policy keeps the paper's T0-first rule even under the congestion
    /// router (the policy *is* the thing a baseline comparison measures),
    /// and the serial router keeps every paper policy bit-for-bit.
    fn rebalance(
        &mut self,
        blocked: TrapId,
        keep: &[IonId],
        avoid: &[TrapId],
    ) -> Result<(), CompileError> {
        let _phase = qccd_obs::span("rebalance");
        self.stats.rebalances += 1;
        // Clock objective: when several destinations are equally near —
        // the paper's hash-table argmin is order-dependent there, i.e.
        // the choice is open — break the tie on projected makespan by
        // speculatively lowering each candidate's eviction walk from the
        // live fold. `None` (no tie, or no scorable candidate) falls
        // through to the standard machinery.
        let clock_pick = self.clock_eviction(blocked, keep, avoid);
        // The avoid list is a preference (keep space in the active move's
        // endpoints); when it excludes every candidate — easy on 2-3-trap
        // machines — relax it rather than deadlock.
        let priced = match (self.config.router, self.config.rebalance) {
            _ if clock_pick.is_some() => clock_pick,
            (RouterPolicy::Congestion { full_trap_penalty }, RebalancePolicy::NearestNeighbor) => {
                let weight_hook = self.clock.as_ref().map(ClockScorer::model);
                let topology = self.state.spec().topology();
                let weight = weight_hook
                    .map(|model| move |a: TrapId, b: TrapId| edge_weight(&model, topology, a, b));
                let weight = weight.as_ref().map(|w| w as &dyn Fn(TrapId, TrapId) -> u32);
                plan_eviction_weighted(
                    &self.state,
                    blocked,
                    avoid,
                    &self.edge_load,
                    full_trap_penalty,
                    weight,
                )
                .or_else(|| {
                    plan_eviction_weighted(
                        &self.state,
                        blocked,
                        &[],
                        &self.edge_load,
                        full_trap_penalty,
                        weight,
                    )
                })
            }
            _ => None,
        };
        let (dest, priced_route) = match priced {
            Some((dest, route)) => (dest, Some(route)),
            None => {
                let dest = choose_destination(self.config.rebalance, &self.state, blocked, avoid)
                    .or_else(|| {
                        choose_destination(self.config.rebalance, &self.state, blocked, &[])
                    })
                    .ok_or(CompileError::ShuttleDeadlock { trap: blocked })?;
                (dest, None)
            }
        };
        let ion = choose_ion(
            self.config.ion_selection,
            self.circuit,
            &self.state,
            &self.pending,
            blocked,
            dest,
            keep,
        )
        .ok_or(CompileError::ShuttleDeadlock { trap: blocked })?;
        let route = match priced_route {
            Some(route) => route,
            None => eviction_route(
                self.config.rebalance,
                self.state.spec().topology(),
                blocked,
                dest,
            )
            .ok_or(CompileError::ShuttleDeadlock { trap: blocked })?,
        };

        let was_in_rebalance = self.in_rebalance;
        self.in_rebalance = true;
        let result = self.walk_eviction(ion, route, keep);
        self.in_rebalance = was_in_rebalance;
        result
    }

    /// Clock objective's re-balancing destination tie-break: scores every
    /// destination in the policy's tie set (see [`destination_candidates`])
    /// by speculatively lowering its eviction walk — the policy-selected
    /// ion along a full-free (else policy) route — from the live fold, and
    /// returns the destination+route with the earliest projected clock.
    /// `None` when there is no open tie, no scorer, or nothing scores (a
    /// walk needing cascade-clears cannot be priced speculatively): the
    /// standard machinery then decides exactly as it always has.
    fn clock_eviction(
        &mut self,
        blocked: TrapId,
        keep: &[IonId],
        avoid: &[TrapId],
    ) -> Option<(TrapId, Vec<TrapId>)> {
        let clock = self.clock.as_mut()?;
        let candidates = destination_candidates(self.config.rebalance, &self.state, blocked, avoid);
        if candidates.len() < 2 {
            return None;
        }
        let topology = self.state.spec().topology();
        // Candidate collection decoupled from scoring: gather every
        // destination's (ion, route) up to the first unroutable candidate
        // — which still aborts the whole tie-break, exactly as the
        // sequential interleaving did, but only after the collected
        // prefix is priced (the prefix was scored before the abort in
        // the old loop too, so stats and counters stay bit-for-bit).
        let mut collected: Vec<(TrapId, Vec<TrapId>)> = Vec::new();
        let mut walks: Vec<(IonId, Vec<TrapId>)> = Vec::new();
        let mut aborted = false;
        for dest in candidates {
            let Some(ion) = choose_ion(
                self.config.ion_selection,
                self.circuit,
                &self.state,
                &self.pending,
                blocked,
                dest,
                keep,
            ) else {
                aborted = true;
                break;
            };
            let Some(route) = topology
                .shortest_path_filtered(blocked, dest, |t| t == dest || !self.state.is_full(t))
                .or_else(|| eviction_route(self.config.rebalance, topology, blocked, dest))
            else {
                aborted = true;
                break;
            };
            walks.push((ion, route.clone()));
            collected.push((dest, route));
        }
        let scores = clock.score_walks(&walks, self.circuit, self.state.spec());
        if aborted {
            return None;
        }
        // Reduce in candidate-index order; strict `<` keeps the first of
        // equal minimums, matching the sequential fold.
        let mut best: Option<(f64, usize)> = None;
        for (i, score) in scores.into_iter().enumerate() {
            let Some(score) = score else { continue };
            if best.is_none_or(|(b, _)| score < b) {
                best = Some((score, i));
            }
        }
        let (_, idx) = best?;
        let (dest, route) = collected.swap_remove(idx);
        self.stats.clock_ties += 1;
        CLOCK_TIES.incr();
        Some((dest, route))
    }

    /// Walks the evicted `ion` along `route` to its destination, cascade-
    /// clearing full traps on the way and re-routing if the destination
    /// itself fills up. Total hops are bounded; no recursion.
    fn walk_eviction(
        &mut self,
        ion: IonId,
        mut route: Vec<TrapId>,
        keep: &[IonId],
    ) -> Result<(), CompileError> {
        let mut keep_all: Vec<IonId> = keep.to_vec();
        keep_all.push(ion);
        let hop_limit = 6 * self.state.spec().num_traps() + 12;
        let mut hops = 0u32;
        let mut idx = 0usize;
        while idx + 1 < route.len() {
            if hops > hop_limit {
                return Err(CompileError::ShuttleDeadlock {
                    trap: route[idx + 1],
                });
            }
            let next = route[idx + 1];
            if self.state.is_full(next) {
                let dest_unreachable = idx + 2 >= route.len();
                if !dest_unreachable {
                    // Cascade-clear the remaining interior, far end first.
                    // Each full trap shifts one ion one segment forward; the
                    // shift target is never full at shift time because
                    // nothing enters a trap before its own step runs.
                    for j in ((idx + 1)..route.len() - 1).rev() {
                        if !self.state.is_full(route[j]) || self.state.is_full(route[j + 1]) {
                            continue;
                        }
                        let shifted = choose_ion(
                            self.config.ion_selection,
                            self.circuit,
                            &self.state,
                            &self.pending,
                            route[j],
                            route[j + 1],
                            &keep_all,
                        )
                        .ok_or(CompileError::ShuttleDeadlock { trap: route[j] })?;
                        self.hop(shifted, route[j + 1])?;
                        hops += 1;
                    }
                }
                if self.state.is_full(next) {
                    // The destination filled up since it was chosen, or the
                    // whole remaining route is jammed solid: re-route from
                    // the current trap to a fresh (currently non-full)
                    // destination, preferring a route with free interiors.
                    let cur = route[idx];
                    let new_dest = choose_destination(self.config.rebalance, &self.state, cur, &[])
                        .ok_or(CompileError::ShuttleDeadlock { trap: cur })?;
                    let topology = self.state.spec().topology();
                    route = topology
                        .shortest_path_filtered(cur, new_dest, |t| {
                            t == new_dest || !self.state.is_full(t)
                        })
                        .or_else(|| eviction_route(self.config.rebalance, topology, cur, new_dest))
                        .ok_or(CompileError::ShuttleDeadlock { trap: cur })?;
                    idx = 0;
                    hops += 1; // re-routing consumes budget to guarantee exit
                    continue;
                }
            }
            self.hop(ion, next)?;
            hops += 1;
            idx += 1;
        }
        Ok(())
    }

    /// Bounded lookahead of the drain pass and the Algorithm-1 candidate
    /// scan, keeping both linear in compile time.
    const REORDER_WINDOW: usize = 128;

    /// Algorithm 1 (generalised): find a pending, ready gate near the
    /// active gate whose favourable shuttle direction moves an ion *out of*
    /// `old_destination`, freeing a slot there. Returns its position in
    /// `pending` (always after `active_pos`). Hoisting any *ready* gate is
    /// dependency-legal, so the scan is not limited to the active gate's
    /// layer (serial circuits have singleton layers and would never find a
    /// candidate); the window bounds compile time.
    fn find_reorder_candidate(&self, active_pos: usize, old_destination: TrapId) -> Option<usize> {
        let end = (active_pos + 1 + Self::REORDER_WINDOW).min(self.pending.len());
        for pos in (active_pos + 1)..end {
            let gid = self.pending[pos];
            if !self.ready.is_ready(gid) {
                continue;
            }
            let Some((qa, qb)) = self.circuit.gate(gid).two_qubit_operands() else {
                continue;
            };
            let (ia, ib) = (IonId::from(qa), IonId::from(qb));
            if self.state.trap_of(ia) == self.state.trap_of(ib) {
                continue; // local gate frees nothing
            }
            let dir = decide_direction(
                self.config.direction,
                self.circuit,
                &self.dag,
                &self.state,
                &self.pending,
                pos,
            );
            if dir.from == old_destination && !self.state.is_full(dir.to) {
                return Some(pos);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DirectionPolicy, IonSelection, MappingPolicy, RebalancePolicy};
    use qccd_circuit::{Opcode, Qubit};

    fn ms(c: &mut Circuit, a: u32, b: u32) {
        c.push_two_qubit(Opcode::Ms, Qubit(a), Qubit(b)).unwrap();
    }

    /// The Fig. 4 program: baseline ping-pongs (4 shuttles), future-ops
    /// moves ion 1 once (1 shuttle).
    fn fig4_setup() -> (Circuit, MachineSpec, InitialMapping) {
        let mut c = Circuit::new(5);
        ms(&mut c, 1, 2); // A
        ms(&mut c, 2, 3); // B
        ms(&mut c, 1, 2); // C
        ms(&mut c, 2, 4); // D
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping = InitialMapping::from_traps(
            &spec,
            vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1), TrapId(1)],
        )
        .unwrap();
        (c, spec, mapping)
    }

    #[test]
    fn fig4_baseline_ping_pongs_4_shuttles() {
        let (c, spec, mapping) = fig4_setup();
        let r = compile_with_mapping(&c, &spec, &CompilerConfig::baseline(), mapping).unwrap();
        assert_eq!(
            r.stats.shuttles, 4,
            "EC policy shuttles ion 2 back and forth"
        );
    }

    #[test]
    fn fig4_future_ops_needs_1_shuttle() {
        let (c, spec, mapping) = fig4_setup();
        let r = compile_with_mapping(&c, &spec, &CompilerConfig::optimized(), mapping).unwrap();
        assert_eq!(
            r.stats.shuttles, 1,
            "moving ion 1 to T1 satisfies all four gates"
        );
    }

    #[test]
    fn co_located_circuit_needs_no_shuttles() {
        // Two independent 2-qubit clusters: the balanced greedy mapping
        // puts one cluster per trap, so no gate ever crosses traps.
        let mut c = Circuit::new(4);
        ms(&mut c, 0, 1);
        ms(&mut c, 2, 3);
        ms(&mut c, 1, 0);
        ms(&mut c, 3, 2);
        let spec = MachineSpec::linear(2, 10, 2).unwrap();
        for config in [CompilerConfig::baseline(), CompilerConfig::optimized()] {
            let r = compile(&c, &spec, &config).unwrap();
            assert_eq!(
                r.stats.shuttles, 0,
                "greedy mapping co-locates each cluster"
            );
            assert_eq!(r.stats.local_gates, 4);
        }
    }

    #[test]
    fn single_qubit_gates_never_shuttle() {
        let mut c = Circuit::new(6);
        for q in 0..6 {
            c.push_single_qubit(Opcode::H, Qubit(q)).unwrap();
        }
        let spec = MachineSpec::linear(3, 3, 1).unwrap();
        let r = compile(&c, &spec, &CompilerConfig::optimized()).unwrap();
        assert_eq!(r.stats.shuttles, 0);
        assert_eq!(r.stats.gate_ops, 6);
    }

    #[test]
    fn empty_circuit_compiles() {
        let c = Circuit::new(4);
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let r = compile(&c, &spec, &CompilerConfig::optimized()).unwrap();
        assert!(r.schedule.operations.is_empty());
    }

    #[test]
    fn distant_traps_cost_distance_hops() {
        // Two interacting qubits pinned to the ends of an L4 machine.
        let mut c = Circuit::new(4);
        ms(&mut c, 0, 3);
        let spec = MachineSpec::linear(4, 4, 1).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(1), TrapId(2), TrapId(3)])
                .unwrap();
        let r = compile_with_mapping(&c, &spec, &CompilerConfig::optimized(), mapping).unwrap();
        assert_eq!(r.stats.shuttles, 3, "3 hops across L4");
    }

    #[test]
    fn full_destination_triggers_rebalance_or_opposite() {
        // T1 full; gate needs ions 0 (T0) and 3 (T1).
        let mut c = Circuit::new(6);
        ms(&mut c, 0, 3);
        // Anchor ion 3's future in T1 so future-ops wants 0 → T1.
        ms(&mut c, 3, 4);
        ms(&mut c, 3, 5);
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping = InitialMapping::from_traps(
            &spec,
            vec![
                TrapId(0),
                TrapId(0),
                TrapId(0),
                TrapId(1),
                TrapId(1),
                TrapId(1),
            ],
        )
        .unwrap();
        // Fill T1 to capacity 4 is impossible via initial mapping (cap 3),
        // so this exercises the non-full path; the full-trap cases are
        // covered by the integration tests on saturated machines.
        let r = compile_with_mapping(&c, &spec, &CompilerConfig::optimized(), mapping).unwrap();
        assert!(r.stats.shuttles >= 1);
    }

    #[test]
    fn reorder_saves_shuttles_when_destination_full() {
        // Engineered Fig. 6-style scenario on L3 (capacity 4, comm 1):
        // T0 = {0, 6}, T1 = {1, 2, 3}, T2 = {4, 5, 7}.
        //
        //   g0 (6,1): future gate g3 (6,2) pulls ion 6 into T1 → T1 FULL.
        //   g1 (0,2): ACTIVE — future gate g4 (0,3) wants ion 0 → T1, full.
        //   g2 (3,5): same-layer candidate — future gate g5 (3,4) wants
        //             ion 3 OUT of T1 into T2, freeing a slot.
        //
        // With re-ordering, g2 is hoisted before g1 (Algorithm 1).
        let mut c = Circuit::new(8);
        ms(&mut c, 6, 1); // g0
        ms(&mut c, 0, 2); // g1 (active when blocked)
        ms(&mut c, 3, 5); // g2 (candidate, same layer 0)
        ms(&mut c, 6, 2); // g3
        ms(&mut c, 0, 3); // g4
        ms(&mut c, 3, 4); // g5
        let spec = MachineSpec::linear(3, 4, 1).unwrap();
        let mapping = InitialMapping::from_traps(
            &spec,
            vec![
                TrapId(0), // 0
                TrapId(1), // 1
                TrapId(1), // 2
                TrapId(1), // 3
                TrapId(2), // 4
                TrapId(2), // 5
                TrapId(0), // 6
                TrapId(2), // 7
            ],
        )
        .unwrap();
        let with_reorder =
            compile_with_mapping(&c, &spec, &CompilerConfig::optimized(), mapping.clone()).unwrap();
        assert!(
            with_reorder.stats.reorders >= 1,
            "the engineered blockage must trigger Algorithm 1"
        );
        let mut no_reorder_cfg = CompilerConfig::optimized();
        no_reorder_cfg.reorder = false;
        let without = compile_with_mapping(&c, &spec, &no_reorder_cfg, mapping).unwrap();
        assert!(
            with_reorder.stats.shuttles <= without.stats.shuttles,
            "re-ordering must not cost extra shuttles here ({} vs {})",
            with_reorder.stats.shuttles,
            without.stats.shuttles
        );
    }

    #[test]
    fn stats_gate_count_matches_circuit() {
        let mut c = Circuit::new(6);
        for i in 0..5 {
            ms(&mut c, i, (i + 1) % 6);
        }
        let spec = MachineSpec::linear(3, 4, 2).unwrap();
        let r = compile(&c, &spec, &CompilerConfig::optimized()).unwrap();
        assert_eq!(r.stats.gate_ops, 5);
        assert_eq!(r.schedule.stats().gates, 5);
        assert_eq!(r.schedule.stats().shuttles, r.stats.shuttles);
    }

    #[test]
    fn disconnected_topology_reports_unreachable() {
        use qccd_machine::TrapTopology;
        // T2 is an island: a gate spanning T0 and T2 cannot be routed.
        let topology = TrapTopology::try_custom(3, &[(0, 1)]).unwrap();
        let spec = MachineSpec::new(topology, 4, 1).unwrap();
        let mapping = InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(2)]).unwrap();
        let mut c = Circuit::new(2);
        ms(&mut c, 0, 1);
        for router in [RouterPolicy::Serial, RouterPolicy::congestion()] {
            let config = CompilerConfig::optimized().with_router(router);
            assert!(matches!(
                compile_with_mapping(&c, &spec, &config, mapping.clone()),
                Err(CompileError::Unreachable { .. })
            ));
        }
    }

    #[test]
    fn rejects_oversized_circuit() {
        let c = Circuit::new(20);
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        assert!(matches!(
            compile(&c, &spec, &CompilerConfig::optimized()),
            Err(CompileError::CircuitTooLarge { .. })
        ));
    }

    #[test]
    fn all_policy_combinations_produce_valid_schedules() {
        use qccd_circuit::generators::random_circuit;
        let c = random_circuit(12, 60, 42);
        let spec = MachineSpec::linear(3, 6, 2).unwrap();
        for direction in [
            DirectionPolicy::ExcessCapacity,
            DirectionPolicy::FutureOps { proximity: 6 },
        ] {
            for reorder in [false, true] {
                for rebalance in [
                    RebalancePolicy::FromTrapZero,
                    RebalancePolicy::NearestNeighbor,
                ] {
                    for ion_selection in [
                        IonSelection::ChainEnd,
                        IonSelection::MaxScore { wd: 0.5, ws: 0.5 },
                    ] {
                        for router in [RouterPolicy::Serial, RouterPolicy::congestion()] {
                            let config = CompilerConfig {
                                direction,
                                reorder,
                                rebalance,
                                ion_selection,
                                mapping: MappingPolicy::GreedyInteraction,
                                router,
                                ..CompilerConfig::baseline()
                            };
                            // compile() validates by replay internally —
                            // both the flat schedule and the transport
                            // rounds.
                            let r = compile(&c, &spec, &config)
                                .unwrap_or_else(|e| panic!("{config}: {e}"));
                            assert_eq!(r.stats.gate_ops, 60);
                            assert_eq!(r.transport.num_moves(), r.stats.shuttles);
                            assert!(r.stats.transport_depth <= r.stats.shuttles);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cascade_eviction_through_jammed_corridor() {
        // comm capacity 0 lets traps start genuinely full. L5 with
        // T1, T2, T3 all full and a gate between end traps T0 and T4:
        // the mover must cross three jammed traps, forcing cascade-clears.
        let spec = MachineSpec::linear(5, 3, 0).unwrap();
        let mut traps = Vec::new();
        for (t, occ) in [1u32, 3, 3, 3, 1].into_iter().enumerate() {
            for _ in 0..occ {
                traps.push(TrapId(t as u32));
            }
        }
        let mapping = InitialMapping::from_traps(&spec, traps).unwrap();
        // Qubit 0 in T0; qubit 10 in T4.
        let mut c = Circuit::new(11);
        ms(&mut c, 0, 10);
        for config in [CompilerConfig::baseline(), CompilerConfig::optimized()] {
            let r = compile_with_mapping(&c, &spec, &config, mapping.clone())
                .unwrap_or_else(|e| panic!("{config}: {e}"));
            // The schedule validated internally; the corridor must have
            // triggered at least one re-balancing eviction.
            assert!(r.stats.rebalances >= 1, "{config}");
            assert!(r.stats.shuttles >= 4, "{config}: 4 hops minimum");
        }
    }

    #[test]
    fn full_destination_with_full_opposite_rebalances() {
        // Both endpoint traps full: the scheduler must evict, not error.
        let spec = MachineSpec::linear(3, 3, 0).unwrap();
        let mapping = InitialMapping::from_traps(
            &spec,
            vec![
                TrapId(0),
                TrapId(0),
                TrapId(0),
                TrapId(1),
                TrapId(1),
                TrapId(1),
            ],
        )
        .unwrap();
        let mut c = Circuit::new(6);
        ms(&mut c, 0, 3);
        for config in [CompilerConfig::baseline(), CompilerConfig::optimized()] {
            let r = compile_with_mapping(&c, &spec, &config, mapping.clone())
                .unwrap_or_else(|e| panic!("{config}: {e}"));
            assert!(r.stats.rebalances >= 1, "{config}");
        }
    }

    #[test]
    fn drains_local_ready_gates_ahead_of_blocked_work() {
        // g0 is cross-trap; g1 and g2 are local and independent of g0. With
        // re-ordering (optimized), the drain pass must retire g1/g2 before
        // g0's shuttle, so the schedule leads with the two local gates.
        let mut c = Circuit::new(6);
        ms(&mut c, 0, 3); // g0: spans T0/T1
        ms(&mut c, 1, 2); // g1: local to T0
        ms(&mut c, 4, 5); // g2: local to T1
        let spec = MachineSpec::linear(2, 6, 2).unwrap();
        let mapping = InitialMapping::from_traps(
            &spec,
            vec![
                TrapId(0),
                TrapId(0),
                TrapId(0),
                TrapId(1),
                TrapId(1),
                TrapId(1),
            ],
        )
        .unwrap();
        let r =
            compile_with_mapping(&c, &spec, &CompilerConfig::optimized(), mapping.clone()).unwrap();
        let first_two: Vec<GateId> = r
            .schedule
            .operations
            .iter()
            .filter_map(|op| match op {
                Operation::Gate { gate, .. } => Some(*gate),
                Operation::Shuttle { .. } => None,
            })
            .take(2)
            .collect();
        assert_eq!(
            first_two,
            vec![GateId(1), GateId(2)],
            "local gates drain first"
        );

        // The baseline executes strictly in plan order: g0 comes first.
        let b = compile_with_mapping(&c, &spec, &CompilerConfig::baseline(), mapping).unwrap();
        let first = b.schedule.operations.iter().find_map(|op| match op {
            Operation::Gate { gate, .. } => Some(*gate),
            Operation::Shuttle { .. } => None,
        });
        assert_eq!(first, Some(GateId(0)));
    }

    #[test]
    fn optimized_beats_baseline_on_random_circuit() {
        use qccd_circuit::generators::random_circuit;
        let c = random_circuit(30, 300, 7);
        let spec = MachineSpec::linear(4, 10, 2).unwrap();
        let base = compile(&c, &spec, &CompilerConfig::baseline()).unwrap();
        let opt = compile(&c, &spec, &CompilerConfig::optimized()).unwrap();
        assert!(
            opt.stats.shuttles < base.stats.shuttles,
            "optimized {} >= baseline {}",
            opt.stats.shuttles,
            base.stats.shuttles
        );
    }
}
