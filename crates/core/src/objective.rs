//! The clock objective's scoring harness: an incremental
//! [`DeltaScorer`] threaded through the compile loop.
//!
//! Under [`Objective::Clock`](crate::config::Objective::Clock) the
//! scheduler commits every emitted operation into this fold (each shuttle
//! as a synthetic single-hop round, exactly the transport-less
//! [`lower`](qccd_timing::lower) fold), so at every open decision the
//! *projected* makespan of each candidate is a speculative advance from
//! the live checkpoint — never an O(n) re-lower. Chunked advancing is
//! bit-for-bit equal to one whole-schedule `lower` call (property-tested
//! in `qccd-timing`), so the fold's final makespan is exactly what a fresh
//! `lower(schedule, None, ..)` of the committed schedule reports — the
//! invariant the objective property tests pin.
//!
//! Speculation itself runs in one of two bit-for-bit identical modes
//! ([`ScoreMode`]): the O(delta) path that touches only the candidate's
//! resources with undo records, or the full re-lower oracle
//! (`--score-mode full`) that replays the whole committed schedule plus
//! the candidate from the initial mapping — O(n) per candidate, the
//! naive baseline the delta engine replaces, kept as the differential
//! reference. The `delta_properties` harness and the `paper_eval delta`
//! CI gate pin the two modes to each other on every decision of every
//! paper benchmark.

use crate::config::ScoreMode;
use qccd_circuit::Circuit;
use qccd_machine::{InitialMapping, IonId, MachineSpec, Operation, TrapId, TrapTopology};
use qccd_timing::{DeltaScorer, LowerError, ScoreArena, TimingModel, WorkerPool};

/// Candidate walks priced by [`ClockScorer::score_walk`] /
/// [`ClockScorer::score_walks`] across all compiles (every speculative
/// advance, both score modes).
static CANDIDATES_SCORED: qccd_obs::Counter = qccd_obs::Counter::new("core.candidates_scored");

thread_local! {
    /// Per-thread overlay arena: the sequential path and every pool
    /// worker reuse their own, keeping batch scoring allocation-free
    /// without sharing any mutable state between workers.
    static SCORE_ARENA: std::cell::RefCell<ScoreArena> =
        std::cell::RefCell::new(ScoreArena::new());
}

/// The threaded fold plus the timing model, scoring mode and worker pool
/// it runs under.
#[derive(Debug, Clone)]
pub(crate) struct ClockScorer {
    delta: DeltaScorer,
    model: TimingModel,
    mode: ScoreMode,
    pool: WorkerPool,
}

impl ClockScorer {
    /// Starts the fold at time zero over `mapping`. `jobs` is the
    /// scoring-pool width (`--jobs`; 1 = sequential).
    pub fn new(
        mapping: &InitialMapping,
        spec: &MachineSpec,
        model: &TimingModel,
        mode: ScoreMode,
        jobs: usize,
    ) -> Result<Self, LowerError> {
        Ok(ClockScorer {
            delta: DeltaScorer::new(mapping, spec, model)?,
            model: *model,
            mode,
            pool: WorkerPool::new(jobs),
        })
    }

    /// The scoring model (the compiler config's timing model).
    pub fn model(&self) -> TimingModel {
        self.model
    }

    /// Candidates scored so far (for the `clock_speculations` counter).
    pub fn speculations(&self) -> usize {
        self.delta.speculations()
    }

    /// Advances the fold through one committed operation. Errors are
    /// compiler bugs (the machine state already accepted the operation),
    /// surfaced as typed internal errors, never silent.
    pub fn commit(
        &mut self,
        op: &Operation,
        circuit: &Circuit,
        spec: &MachineSpec,
    ) -> Result<(), LowerError> {
        self.delta.commit(op, circuit, spec)
    }

    /// The fold's makespan so far, µs.
    pub fn makespan_us(&self) -> f64 {
        self.delta.makespan_us()
    }

    /// Projected makespan after speculatively walking `ion` along the
    /// inclusive trap path `path` from the live checkpoint. `None` when
    /// the walk is illegal from here (e.g. a full trap on the way) — the
    /// candidate needs evictions this score cannot price. The sequential
    /// reference the batch path is tested against; the compile loop
    /// itself always goes through [`score_walks`](Self::score_walks).
    #[cfg(test)]
    pub fn score_walk(
        &mut self,
        ion: IonId,
        path: &[TrapId],
        circuit: &Circuit,
        spec: &MachineSpec,
    ) -> Option<f64> {
        self.delta.note_speculations(1);
        score_one(&self.delta, self.mode, ion, path, circuit, spec)
    }

    /// Prices a batch of candidate walks, one projection per walk in
    /// **candidate-index order** — the batch analogue of calling
    /// [`score_walk`](Self::score_walk) in a loop, bit-for-bit. Batches
    /// at or above the pool's sequential cutoff shard across the worker
    /// pool; each worker reads the fold immutably and prices with its own
    /// thread-local arena, and shard results are concatenated in index
    /// order, never completion order — so `--jobs N` and `--jobs 1`
    /// produce identical projections, stats and counters.
    pub fn score_walks(
        &mut self,
        walks: &[(IonId, Vec<TrapId>)],
        circuit: &Circuit,
        spec: &MachineSpec,
    ) -> Vec<Option<f64>> {
        // Account for the whole batch up front so the speculation stat is
        // independent of sharding.
        self.delta.note_speculations(walks.len());
        let delta = &self.delta;
        let mode = self.mode;
        self.pool
            .map_indexed(walks.len(), qccd_timing::SEQUENTIAL_CUTOFF, |i| {
                let (ion, path) = &walks[i];
                score_one(delta, mode, *ion, path, circuit, spec)
            })
    }
}

/// One candidate-walk pricing: the shared per-walk body of the sequential
/// and batch paths (identical float-op sequence in both — the
/// determinism contract).
fn score_one(
    delta: &DeltaScorer,
    mode: ScoreMode,
    ion: IonId,
    path: &[TrapId],
    circuit: &Circuit,
    spec: &MachineSpec,
) -> Option<f64> {
    let _phase = qccd_obs::span("scoring");
    CANDIDATES_SCORED.incr();
    let ops: Vec<Operation> = path
        .windows(2)
        .map(|w| Operation::Shuttle {
            ion,
            from: w[0],
            to: w[1],
        })
        .collect();
    match mode {
        ScoreMode::Full => delta.score_ops_full_in(&ops, circuit, spec),
        ScoreMode::Delta => SCORE_ARENA
            .with(|arena| delta.score_ops_in(&ops, circuit, spec, &mut arena.borrow_mut())),
    }
}

/// Relative timed weight of traversing the segment `a → b` under `model`,
/// in sixteenths of a plain (junction-free) hop, never below 1 — the
/// [`EdgeWeightFn`](qccd_route::EdgeWeightFn) the clock objective feeds
/// the route planner so corridors price by device time, not unit hops.
/// Junction-free topologies (the paper's linear machines) weigh every
/// segment identically, reproducing unit-hop routing exactly.
pub(crate) fn edge_weight(
    model: &TimingModel,
    topology: &TrapTopology,
    a: TrapId,
    b: TrapId,
) -> u32 {
    let base = model.hop_us(0);
    if base <= 0.0 {
        return 1;
    }
    let junctions = TimingModel::junctions_crossed(topology, a, b);
    (((model.hop_us(junctions) / base) * 16.0).round() as u32).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_machine::TrapTopology;

    #[test]
    fn edge_weight_is_flat_on_linear_and_junction_heavy_on_grids() {
        let model = TimingModel::realistic();
        let line = TrapTopology::linear(4);
        assert_eq!(edge_weight(&model, &line, TrapId(0), TrapId(1)), 16);
        let grid = TrapTopology::grid(3, 3);
        // Hopping into the grid centre crosses junction endpoints: the
        // weighted cost must exceed a plain hop.
        assert!(edge_weight(&model, &grid, TrapId(1), TrapId(4)) > 16);
        // The ideal model prices junctions at nothing: flat everywhere.
        let ideal = TimingModel::ideal();
        assert_eq!(edge_weight(&ideal, &grid, TrapId(1), TrapId(4)), 16);
    }

    #[test]
    fn scorer_commit_tracks_walks_and_speculation_is_free() {
        use qccd_circuit::Circuit;
        use qccd_machine::MachineSpec;

        let spec = MachineSpec::linear(3, 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 6).unwrap();
        let circuit = Circuit::new(6);
        let model = TimingModel::realistic();
        for mode in [ScoreMode::Delta, ScoreMode::Full] {
            let mut scorer = ClockScorer::new(&mapping, &spec, &model, mode, 1).unwrap();
            assert_eq!(scorer.makespan_us(), 0.0);

            // Speculate a 2-hop walk, twice: identical projections, no
            // drift.
            let ion = IonId(0);
            let path = [TrapId(0), TrapId(1), TrapId(2)];
            let a = scorer.score_walk(ion, &path, &circuit, &spec).unwrap();
            let b = scorer.score_walk(ion, &path, &circuit, &spec).unwrap();
            assert_eq!(a, b);
            assert_eq!(scorer.makespan_us(), 0.0, "speculation never commits");

            // Committing the walk lands exactly on the projection.
            for w in path.windows(2) {
                scorer
                    .commit(
                        &Operation::Shuttle {
                            ion,
                            from: w[0],
                            to: w[1],
                        },
                        &circuit,
                        &spec,
                    )
                    .unwrap();
            }
            assert_eq!(scorer.makespan_us(), a);
        }
    }

    /// The two scoring modes are interchangeable: identical projections
    /// for identical walks from identical folds.
    #[test]
    fn delta_and_full_modes_project_identically() {
        use qccd_circuit::Circuit;
        use qccd_machine::MachineSpec;

        let spec = MachineSpec::new(TrapTopology::grid(2, 3), 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 10).unwrap();
        let circuit = Circuit::new(10);
        let model = TimingModel::realistic();
        let mut delta = ClockScorer::new(&mapping, &spec, &model, ScoreMode::Delta, 1).unwrap();
        let mut full = ClockScorer::new(&mapping, &spec, &model, ScoreMode::Full, 1).unwrap();
        // round_robin fills sequentially (3 per trap): ions 0-2 in T0,
        // 3-5 in T1, 6-8 in T2, 9 in T3.
        let walks: Vec<(IonId, Vec<TrapId>)> = vec![
            (IonId(0), vec![TrapId(0), TrapId(1), TrapId(2)]),
            (IonId(9), vec![TrapId(3), TrapId(4)]),
            (IonId(3), vec![TrapId(1), TrapId(4), TrapId(5)]),
        ];
        for (ion, path) in &walks {
            let d = delta.score_walk(*ion, path, &circuit, &spec);
            let f = full.score_walk(*ion, path, &circuit, &spec);
            assert_eq!(d, f, "walk of ion {ion:?} along {path:?}");
            // Commit the first hop so later walks price from a moved fold.
            let op = Operation::Shuttle {
                ion: *ion,
                from: path[0],
                to: path[1],
            };
            delta.commit(&op, &circuit, &spec).unwrap();
            full.commit(&op, &circuit, &spec).unwrap();
            assert_eq!(delta.makespan_us(), full.makespan_us());
        }
    }
}
