//! Compiler error type.

use qccd_machine::{IonId, MachineError, TrapId, ValidateScheduleError};
use qccd_route::TransportError;
use qccd_timing::LowerError;
use std::error::Error;
use std::fmt;

/// Errors raised by [`compile`](crate::compile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The circuit has more qubits than the machine can initially host.
    CircuitTooLarge {
        /// Qubits in the circuit.
        qubits: u32,
        /// Initial hosting capacity (`traps × (total − comm)`).
        capacity: u32,
    },
    /// A machine-level operation failed (invalid spec, etc.).
    Machine(MachineError),
    /// Re-balancing could not free space anywhere: every candidate
    /// destination was full or unreachable within the recursion budget.
    /// With a sane communication capacity (≥ 1 free slot per trap on
    /// average) this indicates an over-subscribed machine.
    ShuttleDeadlock {
        /// The trap that could not be freed.
        trap: TrapId,
    },
    /// No shuttle path connects an ion's trap to its destination — the
    /// topology is disconnected.
    Unreachable {
        /// The ion being routed.
        ion: IonId,
        /// Where the move started.
        from: TrapId,
        /// The unreachable destination.
        to: TrapId,
    },
    /// Routing an ion to its destination exhausted the planner's hop
    /// budget (the routed path length plus re-route slack; see
    /// `qccd_route::route_budget`): every re-plan kept hitting full
    /// traps. Replaces the old silent `4 × traps + 8` cap.
    RouteExhausted {
        /// The ion being routed.
        ion: IonId,
        /// Where the move started.
        from: TrapId,
        /// The unreached destination.
        to: TrapId,
        /// The exhausted hop budget.
        budget: u32,
    },
    /// The produced schedule failed replay validation — an internal
    /// compiler bug, reported rather than silently returned.
    InternalValidation(ValidateScheduleError),
    /// The round-packed transport schedule failed replay validation — an
    /// internal compiler bug, reported rather than silently returned.
    InternalTransport(TransportError),
    /// Lowering the compiled schedule onto the device clock failed — an
    /// internal compiler bug (or an invalid configured timing model),
    /// reported rather than silently returned.
    InternalTimeline(LowerError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::CircuitTooLarge { qubits, capacity } => write!(
                f,
                "circuit with {qubits} qubits exceeds machine initial capacity of {capacity} ions"
            ),
            CompileError::Machine(e) => write!(f, "machine error: {e}"),
            CompileError::ShuttleDeadlock { trap } => {
                write!(
                    f,
                    "re-balancing deadlock: no destination can relieve trap {trap}"
                )
            }
            CompileError::Unreachable { ion, from, to } => write!(
                f,
                "no shuttle path connects {from} to {to} for {ion}: the topology is disconnected"
            ),
            CompileError::RouteExhausted {
                ion,
                from,
                to,
                budget,
            } => write!(
                f,
                "routing {ion} from {from} to {to} exhausted its hop budget of {budget}"
            ),
            CompileError::InternalValidation(e) => {
                write!(
                    f,
                    "internal error: compiled schedule failed validation: {e}"
                )
            }
            CompileError::InternalTransport(e) => {
                write!(
                    f,
                    "internal error: transport schedule failed validation: {e}"
                )
            }
            CompileError::InternalTimeline(e) => {
                write!(f, "internal error: timeline lowering failed: {e}")
            }
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Machine(e) => Some(e),
            CompileError::InternalValidation(e) => Some(e),
            CompileError::InternalTransport(e) => Some(e),
            CompileError::InternalTimeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for CompileError {
    fn from(e: MachineError) -> Self {
        CompileError::Machine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = CompileError::CircuitTooLarge {
            qubits: 100,
            capacity: 90,
        };
        assert!(e.to_string().contains("100 qubits"));
        let e = CompileError::ShuttleDeadlock { trap: TrapId(4) };
        assert!(e.to_string().contains("T4"));
    }

    #[test]
    fn machine_error_converts_and_chains() {
        let e: CompileError = MachineError::NoTraps.into();
        assert!(e.source().is_some());
    }

    #[test]
    fn route_exhausted_names_the_move() {
        let e = CompileError::RouteExhausted {
            ion: IonId(3),
            from: TrapId(0),
            to: TrapId(5),
            budget: 21,
        };
        let text = e.to_string();
        assert!(text.contains("ion3"));
        assert!(text.contains("T5"));
        assert!(text.contains("21"));
    }
}
