//! Compiler error type.

use qccd_machine::{MachineError, TrapId, ValidateScheduleError};
use std::error::Error;
use std::fmt;

/// Errors raised by [`compile`](crate::compile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The circuit has more qubits than the machine can initially host.
    CircuitTooLarge {
        /// Qubits in the circuit.
        qubits: u32,
        /// Initial hosting capacity (`traps × (total − comm)`).
        capacity: u32,
    },
    /// A machine-level operation failed (invalid spec, etc.).
    Machine(MachineError),
    /// Re-balancing could not free space anywhere: every candidate
    /// destination was full or unreachable within the recursion budget.
    /// With a sane communication capacity (≥ 1 free slot per trap on
    /// average) this indicates an over-subscribed machine.
    ShuttleDeadlock {
        /// The trap that could not be freed.
        trap: TrapId,
    },
    /// The produced schedule failed replay validation — an internal
    /// compiler bug, reported rather than silently returned.
    InternalValidation(ValidateScheduleError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::CircuitTooLarge { qubits, capacity } => write!(
                f,
                "circuit with {qubits} qubits exceeds machine initial capacity of {capacity} ions"
            ),
            CompileError::Machine(e) => write!(f, "machine error: {e}"),
            CompileError::ShuttleDeadlock { trap } => {
                write!(
                    f,
                    "re-balancing deadlock: no destination can relieve trap {trap}"
                )
            }
            CompileError::InternalValidation(e) => {
                write!(
                    f,
                    "internal error: compiled schedule failed validation: {e}"
                )
            }
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Machine(e) => Some(e),
            CompileError::InternalValidation(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MachineError> for CompileError {
    fn from(e: MachineError) -> Self {
        CompileError::Machine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        let e = CompileError::CircuitTooLarge {
            qubits: 100,
            capacity: 90,
        };
        assert!(e.to_string().contains("100 qubits"));
        let e = CompileError::ShuttleDeadlock { trap: TrapId(4) };
        assert!(e.to_string().contains("T4"));
    }

    #[test]
    fn machine_error_converts_and_chains() {
        let e: CompileError = MachineError::NoTraps.into();
        assert!(e.source().is_some());
    }
}
