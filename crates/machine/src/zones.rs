//! Per-trap zone layout: gate / storage / loading regions.
//!
//! Full QCCD traps are not homogeneous: ions interact in a *gate zone*
//! (where laser beams address the chain), idle ions park in a *storage
//! zone*, and freshly shuttled ions arrive in a *loading zone* next to the
//! trap's junction ports (the region the spec's *communication capacity*
//! reserves). Moving an ion between zones is a physical operation with its
//! own duration — the timing model charges it as an intra-trap zone move.
//!
//! The default layout is a single gate zone spanning the whole trap, which
//! reproduces the paper's homogeneous-trap model (and the PR 2 numbers)
//! exactly: every ion is always gate-ready and no zone moves are ever
//! emitted.

use crate::error::MachineError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How one trap's capacity is partitioned into zones.
///
/// Positions in a trap's ion chain map onto zones front-to-back: the first
/// [`gate`](ZoneLayout::gate) chain slots are the gate zone, the next
/// [`storage`](ZoneLayout::storage) the storage zone, and the final
/// [`loading`](ZoneLayout::loading) the loading zone (merges append to the
/// chain end, so arrivals land in the loading zone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneLayout {
    /// Chain slots in the gate zone (where gates execute).
    pub gate: u32,
    /// Chain slots in the storage zone.
    pub storage: u32,
    /// Chain slots in the loading zone (where shuttled ions arrive; must
    /// cover the spec's communication capacity).
    pub loading: u32,
}

impl ZoneLayout {
    /// The homogeneous-trap layout: one gate zone spanning the whole
    /// capacity. This is the default and reproduces the paper's model.
    pub fn single(total_capacity: u32) -> Self {
        ZoneLayout {
            gate: total_capacity,
            storage: 0,
            loading: 0,
        }
    }

    /// A validated multi-zone layout.
    ///
    /// # Errors
    ///
    /// * [`MachineError::EmptyGateZone`] — `gate == 0` (a trap without a
    ///   gate zone cannot execute anything).
    /// * [`MachineError::GateZoneTooSmall`] — `gate == 1`: two-qubit gates
    ///   need both operand ions inside the gate zone at once.
    pub fn new(gate: u32, storage: u32, loading: u32) -> Result<Self, MachineError> {
        if gate == 0 {
            return Err(MachineError::EmptyGateZone);
        }
        if gate < 2 {
            return Err(MachineError::GateZoneTooSmall { gate });
        }
        Ok(ZoneLayout {
            gate,
            storage,
            loading,
        })
    }

    /// Total chain slots across all zones.
    pub fn total(&self) -> u32 {
        self.gate + self.storage + self.loading
    }

    /// `true` for the homogeneous single-gate-zone layout.
    pub fn is_single(&self) -> bool {
        self.storage == 0 && self.loading == 0
    }
}

impl fmt::Display for ZoneLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}+{}+{}", self.gate, self.storage, self.loading)
    }
}

/// Occupancy of one trap broken down by zone (positional: the chain fills
/// zones front-to-back).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ZoneOccupancy {
    /// Ions currently in the gate zone.
    pub gate: u32,
    /// Ions currently in the storage zone.
    pub storage: u32,
    /// Ions currently in the loading zone.
    pub loading: u32,
}

impl ZoneOccupancy {
    /// Splits a chain occupancy across `layout`'s zones front-to-back.
    pub fn from_occupancy(occupancy: u32, layout: &ZoneLayout) -> Self {
        let gate = occupancy.min(layout.gate);
        let storage = occupancy.saturating_sub(layout.gate).min(layout.storage);
        let loading = occupancy.saturating_sub(layout.gate + layout.storage);
        ZoneOccupancy {
            gate,
            storage,
            loading,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_layout_spans_capacity() {
        let z = ZoneLayout::single(17);
        assert!(z.is_single());
        assert_eq!(z.total(), 17);
        assert_eq!(z.to_string(), "17+0+0");
    }

    #[test]
    fn new_rejects_degenerate_gate_zones() {
        assert_eq!(
            ZoneLayout::new(0, 10, 2).unwrap_err(),
            MachineError::EmptyGateZone
        );
        assert_eq!(
            ZoneLayout::new(1, 10, 2).unwrap_err(),
            MachineError::GateZoneTooSmall { gate: 1 }
        );
        let z = ZoneLayout::new(13, 2, 2).unwrap();
        assert_eq!(z.total(), 17);
        assert!(!z.is_single());
    }

    #[test]
    fn zone_occupancy_fills_front_to_back() {
        let layout = ZoneLayout::new(3, 2, 1).unwrap();
        assert_eq!(
            ZoneOccupancy::from_occupancy(0, &layout),
            ZoneOccupancy::default()
        );
        assert_eq!(
            ZoneOccupancy::from_occupancy(2, &layout),
            ZoneOccupancy {
                gate: 2,
                storage: 0,
                loading: 0
            }
        );
        assert_eq!(
            ZoneOccupancy::from_occupancy(4, &layout),
            ZoneOccupancy {
                gate: 3,
                storage: 1,
                loading: 0
            }
        );
        assert_eq!(
            ZoneOccupancy::from_occupancy(6, &layout),
            ZoneOccupancy {
                gate: 3,
                storage: 2,
                loading: 1
            }
        );
    }
}
