//! Compiled operations: gates pinned to traps and shuttle hops.

use crate::ids::{IonId, TrapId};
use qccd_circuit::GateId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One operation in a compiled [`Schedule`](crate::Schedule).
///
/// A shuttle hop bundles the physical SPLIT → MOVE → MERGE sequence of
/// Fig. 3 of the paper: the ion splits from its chain in `from`, traverses
/// one shuttle-path segment, and merges into the chain in `to`. Multi-trap
/// moves appear as consecutive hops — the paper counts each hop as one
/// shuttle ("T4 sending ion to T0 needing 4 shuttles", Fig. 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Operation {
    /// Execute circuit gate `gate` inside `trap` (all operand ions must be
    /// co-located there).
    Gate {
        /// The circuit gate being executed.
        gate: GateId,
        /// The trap in which it executes.
        trap: TrapId,
    },
    /// Shuttle `ion` one hop from `from` to the adjacent trap `to`.
    Shuttle {
        /// The ion being moved.
        ion: IonId,
        /// Source trap.
        from: TrapId,
        /// Destination trap (must be adjacent to `from`).
        to: TrapId,
    },
}

impl Operation {
    /// Returns `true` for shuttle hops.
    pub fn is_shuttle(&self) -> bool {
        matches!(self, Operation::Shuttle { .. })
    }

    /// Returns `true` for gate executions.
    pub fn is_gate(&self) -> bool {
        matches!(self, Operation::Gate { .. })
    }
}

/// One single-hop shuttle move, as a member of a concurrent transport
/// round (see [`MachineState::apply_round`](crate::MachineState::apply_round)).
///
/// Identical payload to [`Operation::Shuttle`], but as a standalone struct
/// so transport schedulers can manipulate rounds of moves without carrying
/// the gate variant along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShuttleMove {
    /// The ion being moved.
    pub ion: IonId,
    /// Source trap.
    pub from: TrapId,
    /// Destination trap (must be adjacent to `from`).
    pub to: TrapId,
}

impl ShuttleMove {
    /// The move's shuttle-path segment with endpoints in canonical
    /// (low, high) order — two moves conflict in a round iff their
    /// segments are equal.
    pub fn segment(&self) -> (TrapId, TrapId) {
        if self.from.0 <= self.to.0 {
            (self.from, self.to)
        } else {
            (self.to, self.from)
        }
    }
}

impl fmt::Display for ShuttleMove {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} -> {}", self.ion, self.from, self.to)
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operation::Gate { gate, trap } => write!(f, "exec {gate} @ {trap}"),
            Operation::Shuttle { ion, from, to } => write!(f, "shuttle {ion}: {from} -> {to}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let g = Operation::Gate {
            gate: GateId(3),
            trap: TrapId(1),
        };
        let s = Operation::Shuttle {
            ion: IonId(2),
            from: TrapId(0),
            to: TrapId(1),
        };
        assert!(g.is_gate() && !g.is_shuttle());
        assert!(s.is_shuttle() && !s.is_gate());
    }

    #[test]
    fn display() {
        let s = Operation::Shuttle {
            ion: IonId(2),
            from: TrapId(0),
            to: TrapId(1),
        };
        assert_eq!(s.to_string(), "shuttle ion2: T0 -> T1");
    }
}
