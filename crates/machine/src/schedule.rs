//! Compiled schedules and their replay validator.

use crate::error::MachineError;
use crate::ids::IonId;
use crate::mapping::InitialMapping;
use crate::ops::Operation;
use crate::spec::MachineSpec;
use crate::state::MachineState;
use qccd_circuit::{Circuit, GateId, GateQubits};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A compiled program: the initial ion placement plus the ordered operation
/// stream (gates pinned to traps, interleaved with shuttle hops).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    /// Where each ion starts.
    pub initial_mapping: InitialMapping,
    /// The operation stream in execution order.
    pub operations: Vec<Operation>,
}

/// Aggregate counts over a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ScheduleStats {
    /// Total shuttle hops (the paper's "number of shuttles").
    pub shuttles: usize,
    /// Total gate executions.
    pub gates: usize,
}

impl Schedule {
    /// Creates a schedule from parts.
    pub fn new(initial_mapping: InitialMapping, operations: Vec<Operation>) -> Self {
        Schedule {
            initial_mapping,
            operations,
        }
    }

    /// Counts shuttles and gates.
    pub fn stats(&self) -> ScheduleStats {
        let shuttles = self.operations.iter().filter(|o| o.is_shuttle()).count();
        ScheduleStats {
            shuttles,
            gates: self.operations.len() - shuttles,
        }
    }

    /// Number of shuttle hops — the metric of Table II.
    pub fn shuttle_count(&self) -> usize {
        self.stats().shuttles
    }

    /// Renders the schedule as a human-readable program listing: the
    /// initial placement header followed by one operation per line.
    pub fn to_text(&self, circuit: &Circuit) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64 + self.operations.len() * 32);
        let _ = writeln!(
            out,
            "# initial mapping ({} ions)",
            self.initial_mapping.num_ions()
        );
        for (i, t) in self.initial_mapping.as_slice().iter().enumerate() {
            let _ = writeln!(out, "#   ion{i} @ {t}");
        }
        for op in &self.operations {
            match *op {
                Operation::Gate { gate, trap } => {
                    let _ = writeln!(out, "{} @ {trap}", circuit.gate(gate));
                }
                Operation::Shuttle { ion, from, to } => {
                    let _ = writeln!(out, "SHUTTLE {ion}: {from} -> {to};");
                }
            }
        }
        out
    }

    /// Replays the schedule against `circuit` on `spec`, verifying every
    /// compiled-program invariant:
    ///
    /// 1. every shuttle hop is legal (adjacent traps, destination not full);
    /// 2. at every gate execution all operand ions are co-located in the
    ///    stated trap;
    /// 3. every circuit gate executes exactly once;
    /// 4. execution order respects the gate-dependency DAG.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`ValidateScheduleError`].
    pub fn validate(
        &self,
        circuit: &Circuit,
        spec: &MachineSpec,
    ) -> Result<(), ValidateScheduleError> {
        let mut state = MachineState::with_mapping(spec, &self.initial_mapping)
            .map_err(ValidateScheduleError::BadMapping)?;
        let dag = circuit.dependency_dag();
        let mut ready = dag.ready_set();
        let mut executed = vec![false; circuit.len()];

        for (step, op) in self.operations.iter().enumerate() {
            match *op {
                Operation::Shuttle { ion, from, to } => {
                    if state.trap_of(ion) != from {
                        return Err(ValidateScheduleError::WrongSourceTrap { step, ion });
                    }
                    state
                        .shuttle(ion, to)
                        .map_err(|source| ValidateScheduleError::IllegalShuttle { step, source })?;
                }
                Operation::Gate { gate, trap } => {
                    if gate.index() >= circuit.len() {
                        return Err(ValidateScheduleError::UnknownGate { step, gate });
                    }
                    if executed[gate.index()] {
                        return Err(ValidateScheduleError::DuplicateGate { step, gate });
                    }
                    if !ready.is_ready(gate) {
                        return Err(ValidateScheduleError::DependencyViolation { step, gate });
                    }
                    let g = circuit.gate(gate);
                    for q in match g.qubits {
                        GateQubits::One(q) => vec![q],
                        GateQubits::Two(a, b) => vec![a, b],
                    } {
                        if state.trap_of(IonId::from(q)) != trap {
                            return Err(ValidateScheduleError::NotCoLocated { step, gate });
                        }
                    }
                    executed[gate.index()] = true;
                    ready.mark_done(&dag, gate);
                }
            }
        }

        if let Some(missing) = executed.iter().position(|&e| !e) {
            return Err(ValidateScheduleError::MissingGate {
                gate: GateId(missing as u32),
            });
        }
        Ok(())
    }
}

/// A violated schedule invariant, reported by [`Schedule::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateScheduleError {
    /// The initial mapping does not fit the machine spec.
    BadMapping(MachineError),
    /// A shuttle op claims the ion is in a trap it is not in.
    WrongSourceTrap {
        /// Operation index in the schedule.
        step: usize,
        /// The ion in question.
        ion: IonId,
    },
    /// A shuttle hop violated adjacency or capacity.
    IllegalShuttle {
        /// Operation index in the schedule.
        step: usize,
        /// The machine-level rejection.
        source: MachineError,
    },
    /// Gate id outside the circuit.
    UnknownGate {
        /// Operation index in the schedule.
        step: usize,
        /// The unknown gate.
        gate: GateId,
    },
    /// A gate executed twice.
    DuplicateGate {
        /// Operation index in the schedule.
        step: usize,
        /// The repeated gate.
        gate: GateId,
    },
    /// A gate executed before one of its DAG predecessors.
    DependencyViolation {
        /// Operation index in the schedule.
        step: usize,
        /// The premature gate.
        gate: GateId,
    },
    /// A gate executed while its operand ions were in different traps.
    NotCoLocated {
        /// Operation index in the schedule.
        step: usize,
        /// The gate in question.
        gate: GateId,
    },
    /// A circuit gate never executed.
    MissingGate {
        /// The unexecuted gate.
        gate: GateId,
    },
}

impl fmt::Display for ValidateScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateScheduleError::BadMapping(e) => write!(f, "invalid initial mapping: {e}"),
            ValidateScheduleError::WrongSourceTrap { step, ion } => {
                write!(f, "step {step}: shuttle source trap does not hold {ion}")
            }
            ValidateScheduleError::IllegalShuttle { step, source } => {
                write!(f, "step {step}: illegal shuttle: {source}")
            }
            ValidateScheduleError::UnknownGate { step, gate } => {
                write!(f, "step {step}: gate {gate} not in circuit")
            }
            ValidateScheduleError::DuplicateGate { step, gate } => {
                write!(f, "step {step}: gate {gate} executed twice")
            }
            ValidateScheduleError::DependencyViolation { step, gate } => {
                write!(
                    f,
                    "step {step}: gate {gate} executed before its dependencies"
                )
            }
            ValidateScheduleError::NotCoLocated { step, gate } => {
                write!(f, "step {step}: operands of gate {gate} are not co-located")
            }
            ValidateScheduleError::MissingGate { gate } => {
                write!(f, "gate {gate} never executed")
            }
        }
    }
}

impl Error for ValidateScheduleError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ValidateScheduleError::BadMapping(e)
            | ValidateScheduleError::IllegalShuttle { source: e, .. } => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::TrapId;
    use qccd_circuit::{Opcode, Qubit};

    fn two_trap_setup() -> (Circuit, MachineSpec, InitialMapping) {
        // Fig. 2a program on the Fig. 1 machine.
        let mut c = Circuit::new(6);
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(2), Qubit(3)).unwrap();
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 6).unwrap();
        (c, spec, mapping)
    }

    #[test]
    fn valid_schedule_passes() {
        let (c, spec, mapping) = two_trap_setup();
        let ops = vec![
            Operation::Gate {
                gate: GateId(0),
                trap: TrapId(0),
            },
            // Gate 1 needs ions 2 (T0) and 3 (T1): shuttle ion 2 over.
            Operation::Shuttle {
                ion: IonId(2),
                from: TrapId(0),
                to: TrapId(1),
            },
            Operation::Gate {
                gate: GateId(1),
                trap: TrapId(1),
            },
        ];
        let s = Schedule::new(mapping, ops);
        s.validate(&c, &spec).unwrap();
        assert_eq!(s.shuttle_count(), 1);
        assert_eq!(s.stats().gates, 2);
    }

    #[test]
    fn to_text_lists_every_operation() {
        let (c, spec, mapping) = two_trap_setup();
        let ops = vec![
            Operation::Gate {
                gate: GateId(0),
                trap: TrapId(0),
            },
            Operation::Shuttle {
                ion: IonId(2),
                from: TrapId(0),
                to: TrapId(1),
            },
            Operation::Gate {
                gate: GateId(1),
                trap: TrapId(1),
            },
        ];
        let s = Schedule::new(mapping, ops);
        s.validate(&c, &spec).unwrap();
        let text = s.to_text(&c);
        assert!(text.contains("MS q[0], q[1]; @ T0"));
        assert!(text.contains("SHUTTLE ion2: T0 -> T1;"));
        assert!(text.contains("MS q[2], q[3]; @ T1"));
        assert!(text.contains("ion5 @ T1"));
    }

    #[test]
    fn detects_not_co_located() {
        let (c, spec, mapping) = two_trap_setup();
        let ops = vec![
            Operation::Gate {
                gate: GateId(0),
                trap: TrapId(0),
            },
            Operation::Gate {
                gate: GateId(1),
                trap: TrapId(0),
            }, // ion 3 is in T1
        ];
        let err = Schedule::new(mapping, ops).validate(&c, &spec).unwrap_err();
        assert_eq!(
            err,
            ValidateScheduleError::NotCoLocated {
                step: 1,
                gate: GateId(1)
            }
        );
    }

    #[test]
    fn detects_missing_gate() {
        let (c, spec, mapping) = two_trap_setup();
        let ops = vec![Operation::Gate {
            gate: GateId(0),
            trap: TrapId(0),
        }];
        let err = Schedule::new(mapping, ops).validate(&c, &spec).unwrap_err();
        assert_eq!(err, ValidateScheduleError::MissingGate { gate: GateId(1) });
    }

    #[test]
    fn detects_duplicate_gate() {
        let (c, spec, mapping) = two_trap_setup();
        let g0 = Operation::Gate {
            gate: GateId(0),
            trap: TrapId(0),
        };
        let err = Schedule::new(mapping, vec![g0, g0])
            .validate(&c, &spec)
            .unwrap_err();
        assert_eq!(
            err,
            ValidateScheduleError::DuplicateGate {
                step: 1,
                gate: GateId(0)
            }
        );
    }

    #[test]
    fn detects_dependency_violation() {
        let mut c = Circuit::new(2);
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        c.push_two_qubit(Opcode::Ms, Qubit(0), Qubit(1)).unwrap();
        let spec = MachineSpec::linear(1, 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 2).unwrap();
        let ops = vec![
            Operation::Gate {
                gate: GateId(1),
                trap: TrapId(0),
            },
            Operation::Gate {
                gate: GateId(0),
                trap: TrapId(0),
            },
        ];
        let err = Schedule::new(mapping, ops).validate(&c, &spec).unwrap_err();
        assert_eq!(
            err,
            ValidateScheduleError::DependencyViolation {
                step: 0,
                gate: GateId(1)
            }
        );
    }

    #[test]
    fn detects_wrong_source_trap() {
        let (c, spec, mapping) = two_trap_setup();
        let ops = vec![Operation::Shuttle {
            ion: IonId(2),
            from: TrapId(1), // actually in T0
            to: TrapId(0),
        }];
        let err = Schedule::new(mapping, ops).validate(&c, &spec).unwrap_err();
        assert_eq!(
            err,
            ValidateScheduleError::WrongSourceTrap {
                step: 0,
                ion: IonId(2)
            }
        );
    }

    #[test]
    fn detects_illegal_shuttle_into_full_trap() {
        let (c, spec, mapping) = two_trap_setup();
        let ops = vec![
            Operation::Shuttle {
                ion: IonId(2),
                from: TrapId(0),
                to: TrapId(1),
            },
            // T1 now holds 4 ions (full): this hop must fail.
            Operation::Shuttle {
                ion: IonId(1),
                from: TrapId(0),
                to: TrapId(1),
            },
        ];
        let err = Schedule::new(mapping, ops).validate(&c, &spec).unwrap_err();
        assert!(matches!(
            err,
            ValidateScheduleError::IllegalShuttle { step: 1, .. }
        ));
        assert!(err.source().is_some());
    }
}
