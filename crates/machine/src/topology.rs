//! Trap interconnect topologies.

use crate::error::MachineError;
use crate::ids::TrapId;
use qccd_flow::Adjacency;
use serde::{Deserialize, Serialize};
use std::fmt;

/// How traps are interconnected by shuttle paths.
///
/// The paper evaluates on the "L6" topology — 6 traps connected in a line
/// (Fig. 7) — built by [`TrapTopology::linear`]`(6)`. Ring and grid
/// variants are provided for architecture exploration (Murali et al.
/// study G-shaped topologies too).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrapTopology {
    kind: TopologyKind,
    #[serde(skip, default = "empty_adjacency")]
    adj: Adjacency,
}

// Referenced by the `#[serde(default = "...")]` attribute below; the
// vendored serde stub ignores field attributes, so without this allow the
// compiler sees no non-test use.
#[allow(dead_code)]
fn empty_adjacency() -> Adjacency {
    Adjacency::new(0)
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum TopologyKind {
    Linear { n: u32 },
    Ring { n: u32 },
    Grid { rows: u32, cols: u32 },
    Custom { n: u32, edges: Vec<(u32, u32)> },
}

impl TrapTopology {
    /// `n` traps in a line: `T0 — T1 — … — T(n−1)` (the paper's "Ln").
    pub fn linear(n: u32) -> Self {
        TrapTopology {
            kind: TopologyKind::Linear { n },
            adj: Adjacency::line(n as usize),
        }
    }

    /// `n` traps in a ring.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3`.
    pub fn ring(n: u32) -> Self {
        TrapTopology {
            kind: TopologyKind::Ring { n },
            adj: Adjacency::ring(n as usize),
        }
    }

    /// `rows × cols` traps in a grid, row-major trap ids.
    pub fn grid(rows: u32, cols: u32) -> Self {
        TrapTopology {
            kind: TopologyKind::Grid { rows, cols },
            adj: Adjacency::grid(rows as usize, cols as usize),
        }
    }

    /// An arbitrary interconnect over `n` traps with explicit shuttle-path
    /// `edges` — for exploring machine layouts beyond lines, rings and
    /// grids (H-junctions, X-junctions, combs).
    ///
    /// # Panics
    ///
    /// Panics if the edge list is invalid; see [`TrapTopology::try_custom`]
    /// for the fallible constructor and the exact rejection rules.
    pub fn custom(n: u32, edges: &[(u32, u32)]) -> Self {
        Self::try_custom(n, edges).expect("invalid custom topology")
    }

    /// Fallible form of [`TrapTopology::custom`].
    ///
    /// # Errors
    ///
    /// * [`MachineError::TrapOutOfRange`] — an edge endpoint `>= n`.
    /// * [`MachineError::SelfLoopEdge`] — an edge connects a trap to itself.
    /// * [`MachineError::DuplicateEdge`] — the same segment (in either
    ///   orientation) is listed twice.
    pub fn try_custom(n: u32, edges: &[(u32, u32)]) -> Result<Self, MachineError> {
        let mut adj = Adjacency::new(n as usize);
        for &(a, b) in edges {
            for endpoint in [a, b] {
                if endpoint >= n {
                    return Err(MachineError::TrapOutOfRange {
                        trap: TrapId(endpoint),
                        num_traps: n,
                    });
                }
            }
            if a == b {
                return Err(MachineError::SelfLoopEdge { trap: TrapId(a) });
            }
            if adj.has_edge(a as usize, b as usize) {
                return Err(MachineError::DuplicateEdge {
                    a: TrapId(a),
                    b: TrapId(b),
                });
            }
            adj.add_edge(a as usize, b as usize);
        }
        Ok(TrapTopology {
            kind: TopologyKind::Custom {
                n,
                edges: edges.to_vec(),
            },
            adj,
        })
    }

    /// Rebuilds the adjacency structure after deserialisation.
    ///
    /// Serde skips the derived adjacency lists (they are pure functions of
    /// the topology kind); call this once on a deserialised value before
    /// issuing path queries.
    pub fn rebuild_adjacency(&mut self) {
        self.adj = match &self.kind {
            TopologyKind::Linear { n } => Adjacency::line(*n as usize),
            TopologyKind::Ring { n } => Adjacency::ring(*n as usize),
            TopologyKind::Grid { rows, cols } => Adjacency::grid(*rows as usize, *cols as usize),
            TopologyKind::Custom { n, edges } => {
                let mut adj = Adjacency::new(*n as usize);
                for &(a, b) in edges {
                    adj.add_edge(a as usize, b as usize);
                }
                adj
            }
        };
    }

    /// Number of traps.
    pub fn num_traps(&self) -> u32 {
        self.adj.len() as u32
    }

    /// Returns `true` if `a` and `b` share a shuttle-path segment.
    pub fn are_adjacent(&self, a: TrapId, b: TrapId) -> bool {
        self.adj.has_edge(a.index(), b.index())
    }

    /// Number of shuttle-path segments meeting at `t`.
    pub fn degree(&self, t: TrapId) -> u32 {
        self.adj.neighbors(t.index()).len() as u32
    }

    /// `true` when three or more shuttle paths meet at `t` — a T- or
    /// X-junction whose corner/swap hardware real QCCD transport must
    /// negotiate (linear segments and ring corners have degree ≤ 2).
    pub fn is_junction(&self, t: TrapId) -> bool {
        self.degree(t) >= 3
    }

    /// Neighbouring traps of `t`.
    pub fn neighbors(&self, t: TrapId) -> Vec<TrapId> {
        self.adj
            .neighbors(t.index())
            .iter()
            .map(|&i| TrapId(i as u32))
            .collect()
    }

    /// Hop distance between two traps, or `None` if disconnected.
    pub fn distance(&self, from: TrapId, to: TrapId) -> Option<u32> {
        self.adj
            .distance(from.index(), to.index())
            .map(|d| d as u32)
    }

    /// Shortest trap path `from → … → to` inclusive, or `None` if
    /// disconnected.
    pub fn shortest_path(&self, from: TrapId, to: TrapId) -> Option<Vec<TrapId>> {
        self.adj
            .shortest_path(from.index(), to.index())
            .map(|p| p.into_iter().map(|i| TrapId(i as u32)).collect())
    }

    /// Shortest path whose interior traps all satisfy `allowed` — used to
    /// route shuttles around full traps where possible.
    pub fn shortest_path_filtered(
        &self,
        from: TrapId,
        to: TrapId,
        allowed: impl Fn(TrapId) -> bool,
    ) -> Option<Vec<TrapId>> {
        self.adj
            .shortest_path_filtered(from.index(), to.index(), |i| allowed(TrapId(i as u32)))
            .map(|p| p.into_iter().map(|i| TrapId(i as u32)).collect())
    }

    /// All trap ids.
    pub fn traps(&self) -> impl Iterator<Item = TrapId> {
        (0..self.num_traps()).map(TrapId)
    }

    /// The topology's interconnect as `qccd-flow`'s [`Adjacency`] graph —
    /// the substrate the flow routines (multi-commodity routing, filtered
    /// BFS) consume directly, so callers need not rebuild it edge by edge.
    pub fn adjacency(&self) -> &Adjacency {
        &self.adj
    }
}

impl fmt::Display for TrapTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TopologyKind::Linear { n } => write!(f, "L{n}"),
            TopologyKind::Ring { n } => write!(f, "R{n}"),
            TopologyKind::Grid { rows, cols } => write!(f, "G{rows}x{cols}"),
            TopologyKind::Custom { n, edges } => write!(f, "C{n}e{}", edges.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l6_matches_paper() {
        let t = TrapTopology::linear(6);
        assert_eq!(t.num_traps(), 6);
        assert_eq!(t.to_string(), "L6");
        assert!(t.are_adjacent(TrapId(3), TrapId(4)));
        assert!(!t.are_adjacent(TrapId(0), TrapId(5)));
        // Fig. 7: T4 to T0 needs 4 shuttles.
        assert_eq!(t.distance(TrapId(4), TrapId(0)), Some(4));
        assert_eq!(t.distance(TrapId(4), TrapId(3)), Some(1));
    }

    #[test]
    fn shortest_path_endpoints_inclusive() {
        let t = TrapTopology::linear(4);
        assert_eq!(
            t.shortest_path(TrapId(0), TrapId(3)).unwrap(),
            vec![TrapId(0), TrapId(1), TrapId(2), TrapId(3)]
        );
    }

    #[test]
    fn ring_distance_wraps() {
        let t = TrapTopology::ring(6);
        assert_eq!(t.distance(TrapId(0), TrapId(5)), Some(1));
        assert_eq!(t.distance(TrapId(0), TrapId(3)), Some(3));
    }

    #[test]
    fn grid_neighbors() {
        let t = TrapTopology::grid(2, 3);
        let mut n = t.neighbors(TrapId(4)); // middle of bottom row
        n.sort_unstable();
        assert_eq!(n, vec![TrapId(1), TrapId(3), TrapId(5)]);
        assert_eq!(t.to_string(), "G2x3");
    }

    #[test]
    fn filtered_path_avoids_blocked_trap() {
        let t = TrapTopology::ring(6);
        let p = t
            .shortest_path_filtered(TrapId(0), TrapId(2), |trap| trap != TrapId(1))
            .expect("ring offers an alternative route");
        assert!(!p[1..p.len() - 1].contains(&TrapId(1)));
        assert_eq!(p.len(), 5); // 0-5-4-3-2
    }

    #[test]
    fn junction_classification() {
        let line = TrapTopology::linear(4);
        assert!(line.traps().all(|t| !line.is_junction(t)));
        let ring = TrapTopology::ring(6);
        assert!(ring.traps().all(|t| ring.degree(t) == 2));
        let grid = TrapTopology::grid(3, 3);
        assert_eq!(grid.degree(TrapId(4)), 4, "grid centre is an X-junction");
        assert!(
            grid.is_junction(TrapId(1)),
            "edge midpoints are T-junctions"
        );
        assert!(!grid.is_junction(TrapId(0)), "corners are not junctions");
    }

    #[test]
    fn custom_topology_h_junction() {
        // An H of 5 traps: 0-2, 1-2, 2-3, 3-4 (a junction at 2).
        let t = TrapTopology::custom(5, &[(0, 2), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(t.num_traps(), 5);
        assert_eq!(t.distance(TrapId(0), TrapId(1)), Some(2));
        assert_eq!(t.distance(TrapId(0), TrapId(4)), Some(3));
        assert_eq!(t.to_string(), "C5e4");
        let mut n = t.neighbors(TrapId(2));
        n.sort_unstable();
        assert_eq!(n, vec![TrapId(0), TrapId(1), TrapId(3)]);
    }

    #[test]
    fn try_custom_rejects_out_of_range_endpoint() {
        assert_eq!(
            TrapTopology::try_custom(3, &[(0, 1), (1, 3)]).unwrap_err(),
            MachineError::TrapOutOfRange {
                trap: TrapId(3),
                num_traps: 3
            }
        );
    }

    #[test]
    fn try_custom_rejects_self_loop() {
        assert_eq!(
            TrapTopology::try_custom(3, &[(0, 1), (2, 2)]).unwrap_err(),
            MachineError::SelfLoopEdge { trap: TrapId(2) }
        );
    }

    #[test]
    fn try_custom_rejects_duplicate_edge() {
        // Duplicates are rejected in either orientation.
        assert_eq!(
            TrapTopology::try_custom(3, &[(0, 1), (1, 0)]).unwrap_err(),
            MachineError::DuplicateEdge {
                a: TrapId(1),
                b: TrapId(0)
            }
        );
        assert_eq!(
            TrapTopology::try_custom(3, &[(1, 2), (1, 2)]).unwrap_err(),
            MachineError::DuplicateEdge {
                a: TrapId(1),
                b: TrapId(2)
            }
        );
    }

    #[test]
    #[should_panic(expected = "invalid custom topology")]
    fn custom_panics_on_invalid_edges() {
        let _ = TrapTopology::custom(2, &[(0, 0)]);
    }

    #[test]
    fn custom_topology_rebuilds() {
        let mut t = TrapTopology::custom(3, &[(0, 1), (1, 2)]);
        t.adj = super::empty_adjacency();
        t.rebuild_adjacency();
        assert_eq!(t.distance(TrapId(0), TrapId(2)), Some(2));
    }

    #[test]
    fn rebuild_adjacency_restores_structure() {
        // After deserialisation the adjacency field is empty; rebuild must
        // restore it from the topology kind.
        let mut t = TrapTopology::linear(6);
        t.adj = super::empty_adjacency();
        assert_eq!(t.distance(TrapId(0), TrapId(5)), None);
        t.rebuild_adjacency();
        assert_eq!(t.distance(TrapId(0), TrapId(5)), Some(5));
    }
}
