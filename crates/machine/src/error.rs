//! Error types for machine construction and state transitions.

use crate::ids::{IonId, TrapId};
use std::error::Error;
use std::fmt;

/// Errors raised by machine-spec validation and state transitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// A machine must have at least one trap.
    NoTraps,
    /// Communication capacity must be strictly less than total capacity,
    /// leaving room for at least one resident ion per trap.
    CommCapacityTooLarge {
        /// Total per-trap capacity.
        total: u32,
        /// Requested communication capacity.
        comm: u32,
    },
    /// Total capacity of zero is meaningless.
    ZeroCapacity,
    /// More ions requested than the machine can initially host
    /// (`traps × (total − comm)`).
    TooManyIons {
        /// Ions requested.
        ions: u32,
        /// Initial hosting capacity of the machine.
        initial_capacity: u32,
    },
    /// A trap id outside the machine.
    TrapOutOfRange {
        /// The offending trap.
        trap: TrapId,
        /// Number of traps in the machine.
        num_traps: u32,
    },
    /// An ion id outside the machine's register.
    IonOutOfRange {
        /// The offending ion.
        ion: IonId,
        /// Number of ions in the machine.
        num_ions: u32,
    },
    /// Shuttle target is not adjacent to the ion's current trap.
    NotAdjacent {
        /// Current trap.
        from: TrapId,
        /// Requested destination.
        to: TrapId,
    },
    /// Shuttle destination has no excess capacity.
    TrapFull {
        /// The full trap.
        trap: TrapId,
    },
    /// Shuttle source and destination are the same trap.
    SelfShuttle {
        /// The trap in question.
        trap: TrapId,
    },
    /// An initial mapping overfilled a trap beyond `total − comm`.
    MappingOverfill {
        /// The overfilled trap.
        trap: TrapId,
        /// Ions assigned to it.
        assigned: u32,
        /// Its initial hosting capacity (`total − comm`).
        initial_capacity: u32,
    },
    /// A shuttle move claims an ion is in a trap it is not in.
    WrongSourceTrap {
        /// The ion in question.
        ion: IonId,
        /// The trap the move claims it is in.
        claimed: TrapId,
        /// The trap it is actually in.
        actual: TrapId,
    },
    /// A custom topology edge connects a trap to itself.
    SelfLoopEdge {
        /// The trap with the self-loop.
        trap: TrapId,
    },
    /// A custom topology lists the same shuttle-path segment twice.
    DuplicateEdge {
        /// First endpoint.
        a: TrapId,
        /// Second endpoint.
        b: TrapId,
    },
    /// Two moves in one concurrent transport round use the same
    /// shuttle-path segment.
    EdgeInUse {
        /// First endpoint of the contested segment.
        a: TrapId,
        /// Second endpoint of the contested segment.
        b: TrapId,
    },
    /// One ion appears in two moves of the same transport round.
    IonMovedTwice {
        /// The double-booked ion.
        ion: IonId,
    },
    /// A trap's junction hardware is over-subscribed in one round: each
    /// trap supports at most one SPLIT (departure) and one MERGE (arrival)
    /// per round.
    JunctionBusy {
        /// The over-subscribed trap.
        trap: TrapId,
    },
    /// A zone layout has no gate zone at all.
    EmptyGateZone,
    /// A zone layout's gate zone cannot host both operands of a two-qubit
    /// gate at once.
    GateZoneTooSmall {
        /// The offending gate-zone capacity.
        gate: u32,
    },
    /// A zone layout's zones do not sum to the trap's total capacity.
    ZoneCapacityMismatch {
        /// Sum of the layout's zone capacities.
        zones: u32,
        /// The spec's total per-trap capacity.
        total: u32,
    },
    /// The spec reserves more communication slots than the loading zone
    /// holds — shuttled ions arrive in the loading zone, so the reserved
    /// slots must fit there.
    CommExceedsLoadingZone {
        /// The spec's communication capacity.
        comm: u32,
        /// The layout's loading-zone capacity.
        loading: u32,
    },
    /// Applying a round would overfill a trap even after its departures.
    RoundOverfill {
        /// The overfilled trap.
        trap: TrapId,
        /// Occupancy before the round.
        occupancy: u32,
        /// Arrivals scheduled into the trap this round.
        arrivals: u32,
        /// Departures scheduled out of the trap this round.
        departures: u32,
        /// Total trap capacity.
        capacity: u32,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::NoTraps => write!(f, "machine must have at least one trap"),
            MachineError::CommCapacityTooLarge { total, comm } => write!(
                f,
                "communication capacity {comm} must be less than total capacity {total}"
            ),
            MachineError::ZeroCapacity => write!(f, "trap capacity must be positive"),
            MachineError::TooManyIons {
                ions,
                initial_capacity,
            } => write!(
                f,
                "{ions} ions exceed the machine's initial hosting capacity of {initial_capacity}"
            ),
            MachineError::TrapOutOfRange { trap, num_traps } => {
                write!(f, "trap {trap} out of range for machine with {num_traps} traps")
            }
            MachineError::IonOutOfRange { ion, num_ions } => {
                write!(f, "ion {ion} out of range for machine with {num_ions} ions")
            }
            MachineError::NotAdjacent { from, to } => {
                write!(f, "traps {from} and {to} are not connected by a shuttle path")
            }
            MachineError::TrapFull { trap } => {
                write!(f, "trap {trap} has no excess capacity to accept an ion")
            }
            MachineError::SelfShuttle { trap } => {
                write!(f, "shuttle source and destination are both {trap}")
            }
            MachineError::MappingOverfill {
                trap,
                assigned,
                initial_capacity,
            } => write!(
                f,
                "initial mapping assigns {assigned} ions to trap {trap} whose initial capacity is {initial_capacity}"
            ),
            MachineError::WrongSourceTrap {
                ion,
                claimed,
                actual,
            } => write!(f, "{ion} is in {actual}, not in the claimed {claimed}"),
            MachineError::SelfLoopEdge { trap } => {
                write!(f, "custom topology edge connects {trap} to itself")
            }
            MachineError::DuplicateEdge { a, b } => {
                write!(f, "custom topology lists the edge {a} — {b} twice")
            }
            MachineError::EdgeInUse { a, b } => {
                write!(f, "segment {a} — {b} carries two shuttles in one round")
            }
            MachineError::IonMovedTwice { ion } => {
                write!(f, "{ion} appears in two moves of the same round")
            }
            MachineError::JunctionBusy { trap } => write!(
                f,
                "junction at {trap} cannot run two splits or two merges in one round"
            ),
            MachineError::EmptyGateZone => {
                write!(f, "zone layout has no gate zone")
            }
            MachineError::GateZoneTooSmall { gate } => write!(
                f,
                "gate zone of {gate} slot(s) cannot co-locate a two-qubit gate's ions"
            ),
            MachineError::ZoneCapacityMismatch { zones, total } => write!(
                f,
                "zone capacities sum to {zones} but the trap's total capacity is {total}"
            ),
            MachineError::CommExceedsLoadingZone { comm, loading } => write!(
                f,
                "communication capacity {comm} exceeds the loading zone's {loading} slot(s)"
            ),
            MachineError::RoundOverfill {
                trap,
                occupancy,
                arrivals,
                departures,
                capacity,
            } => write!(
                f,
                "round overfills {trap}: {occupancy} ions + {arrivals} arrivals - {departures} departures exceeds capacity {capacity}"
            ),
        }
    }
}

impl Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_entities() {
        let e = MachineError::NotAdjacent {
            from: TrapId(0),
            to: TrapId(3),
        };
        assert_eq!(
            e.to_string(),
            "traps T0 and T3 are not connected by a shuttle path"
        );
        let e = MachineError::TrapFull { trap: TrapId(2) };
        assert!(e.to_string().contains("T2"));
    }
}
