//! Initial ion→trap assignments.

use crate::error::MachineError;
use crate::ids::{IonId, TrapId};
use crate::spec::MachineSpec;
use serde::{Deserialize, Serialize};

/// An initial placement of ions into traps, validated against a
/// [`MachineSpec`]'s initial capacity (`total − communication` per trap).
///
/// The *policy* that chooses a good mapping lives in the compiler crate
/// (greedy interaction-based placement, \[14\] in the paper); this type is the
/// validated result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InitialMapping {
    trap_of: Vec<TrapId>,
}

impl InitialMapping {
    /// Builds a mapping from an explicit per-ion trap list.
    ///
    /// # Errors
    ///
    /// * [`MachineError::TrapOutOfRange`] if a trap id is invalid.
    /// * [`MachineError::MappingOverfill`] if a trap receives more than
    ///   `total − comm` ions.
    pub fn from_traps(spec: &MachineSpec, trap_of: Vec<TrapId>) -> Result<Self, MachineError> {
        let mut loads = vec![0u32; spec.num_traps() as usize];
        for &t in &trap_of {
            spec.check_trap(t)?;
            loads[t.index()] += 1;
        }
        let cap = spec.initial_capacity_per_trap();
        for (i, &load) in loads.iter().enumerate() {
            if load > cap {
                return Err(MachineError::MappingOverfill {
                    trap: TrapId(i as u32),
                    assigned: load,
                    initial_capacity: cap,
                });
            }
        }
        Ok(InitialMapping { trap_of })
    }

    /// Fills traps in order: ions `0..cap` into trap 0, the next `cap` into
    /// trap 1, and so on (`cap = total − comm`). This is the naive placement
    /// both compilers share when no interaction information is used.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::TooManyIons`] if the machine cannot host
    /// `num_ions`.
    pub fn round_robin(spec: &MachineSpec, num_ions: u32) -> Result<Self, MachineError> {
        if num_ions > spec.initial_capacity() {
            return Err(MachineError::TooManyIons {
                ions: num_ions,
                initial_capacity: spec.initial_capacity(),
            });
        }
        let cap = spec.initial_capacity_per_trap();
        let trap_of = (0..num_ions).map(|i| TrapId(i / cap)).collect();
        Ok(InitialMapping { trap_of })
    }

    /// Number of ions mapped.
    pub fn num_ions(&self) -> u32 {
        self.trap_of.len() as u32
    }

    /// The trap assigned to `ion`.
    ///
    /// # Panics
    ///
    /// Panics if `ion` is not part of the mapping.
    pub fn trap_of(&self, ion: IonId) -> TrapId {
        self.trap_of[ion.index()]
    }

    /// Per-ion trap assignments, indexed by ion id.
    pub fn as_slice(&self) -> &[TrapId] {
        &self.trap_of
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_fills_sequentially() {
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let m = InitialMapping::round_robin(&spec, 6).unwrap();
        // cap = 3 per trap: ions 0..3 -> T0, 3..6 -> T1 (matches Fig. 1).
        assert_eq!(m.trap_of(IonId(0)), TrapId(0));
        assert_eq!(m.trap_of(IonId(2)), TrapId(0));
        assert_eq!(m.trap_of(IonId(3)), TrapId(1));
        assert_eq!(m.trap_of(IonId(5)), TrapId(1));
    }

    #[test]
    fn round_robin_rejects_overflow() {
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        assert_eq!(
            InitialMapping::round_robin(&spec, 7).unwrap_err(),
            MachineError::TooManyIons {
                ions: 7,
                initial_capacity: 6
            }
        );
    }

    #[test]
    fn from_traps_validates_capacity() {
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let err =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(0), TrapId(0), TrapId(0)])
                .unwrap_err();
        assert_eq!(
            err,
            MachineError::MappingOverfill {
                trap: TrapId(0),
                assigned: 4,
                initial_capacity: 3
            }
        );
    }

    #[test]
    fn from_traps_validates_trap_ids() {
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        assert!(matches!(
            InitialMapping::from_traps(&spec, vec![TrapId(7)]),
            Err(MachineError::TrapOutOfRange { .. })
        ));
    }
}
