//! Typed identifiers for traps and ions.

use qccd_circuit::Qubit;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a trap (0-based, dense).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TrapId(pub u32);

impl TrapId {
    /// Raw index as `usize`, convenient for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TrapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifier of a physical ion.
///
/// The workspace uses the identity qubit↔ion assignment: `IonId(i)` carries
/// logical [`Qubit`]`(i)`. The *trap* an ion sits in changes over the
/// program; the qubit it carries never does (QCCD machines move ions, they
/// do not relabel them).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct IonId(pub u32);

impl IonId {
    /// Raw index as `usize`, convenient for array indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The logical qubit this ion carries.
    #[inline]
    pub fn qubit(self) -> Qubit {
        Qubit(self.0)
    }
}

impl From<Qubit> for IonId {
    fn from(q: Qubit) -> Self {
        IonId(q.0)
    }
}

impl From<IonId> for Qubit {
    fn from(i: IonId) -> Self {
        Qubit(i.0)
    }
}

impl fmt::Display for IonId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ion{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(TrapId(3).to_string(), "T3");
        assert_eq!(IonId(7).to_string(), "ion7");
    }

    #[test]
    fn qubit_ion_round_trip() {
        let q = Qubit(5);
        let ion: IonId = q.into();
        assert_eq!(ion, IonId(5));
        assert_eq!(ion.qubit(), q);
        let back: Qubit = ion.into();
        assert_eq!(back, q);
    }
}
