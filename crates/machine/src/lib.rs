//! QCCD trapped-ion machine model for the muzzle-shuttle compiler.
//!
//! This crate models the hardware substrate of the paper (§II-B):
//!
//! * [`TrapId`] / [`IonId`] — typed identifiers. One ion carries one logical
//!   qubit, so `IonId(i)` carries `Qubit(i)` throughout the workspace.
//! * [`TrapTopology`] — how traps are interconnected by shuttle paths
//!   (the paper's L6 is [`TrapTopology::linear`]`(6)`).
//! * [`MachineSpec`] — topology + per-trap *total capacity* and
//!   *communication capacity* (§II-B1).
//! * [`MachineState`] — live ion placement: ordered ion chains per trap,
//!   excess-capacity accounting, and the validated one-hop
//!   [`shuttle`](MachineState::shuttle) primitive.
//! * [`Operation`] / [`Schedule`] — the compiled program: gates pinned to
//!   traps interleaved with shuttle hops, plus a full replay validator.
//!
//! # Example
//!
//! ```
//! use qccd_machine::{InitialMapping, IonId, MachineSpec, MachineState, TrapId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Fig. 1 of the paper: 2 traps, capacity 4, comm capacity 1.
//! let spec = MachineSpec::linear(2, 4, 1)?;
//! let mapping = InitialMapping::round_robin(&spec, 6)?;
//! let mut state = MachineState::with_mapping(&spec, &mapping)?;
//! assert_eq!(state.excess_capacity(TrapId(0)), 1);
//! state.shuttle(IonId(2), TrapId(1))?;
//! assert_eq!(state.trap_of(IonId(2)), TrapId(1));
//! # Ok(())
//! # }
//! ```

mod error;
mod ids;
mod mapping;
mod ops;
mod schedule;
mod spec;
mod state;
mod topology;
mod zones;

pub use error::MachineError;
pub use ids::{IonId, TrapId};
pub use mapping::InitialMapping;
pub use ops::{Operation, ShuttleMove};
pub use schedule::{Schedule, ScheduleStats, ValidateScheduleError};
pub use spec::MachineSpec;
pub use state::MachineState;
pub use topology::TrapTopology;
pub use zones::{ZoneLayout, ZoneOccupancy};
