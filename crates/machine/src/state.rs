//! Live machine state: ion chains per trap and the shuttle primitive.

use crate::error::MachineError;
use crate::ids::{IonId, TrapId};
use crate::mapping::InitialMapping;
use crate::ops::ShuttleMove;
use crate::spec::MachineSpec;
use crate::zones::ZoneOccupancy;

/// Live placement of ions in a QCCD machine.
///
/// Tracks the ordered ion chain inside each trap (§II, Fig. 1: "Inside a
/// trap, ions form a chain") and enforces the capacity and adjacency
/// invariants on every [`shuttle`](MachineState::shuttle):
///
/// 1. every ion is in exactly one trap;
/// 2. trap occupancy never exceeds total capacity;
/// 3. shuttles only traverse topology edges into traps with excess capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineState {
    spec: MachineSpec,
    chains: Vec<Vec<IonId>>,
    trap_of: Vec<TrapId>,
}

impl MachineState {
    /// Creates a state from a validated initial mapping.
    ///
    /// Chains are ordered by ion id within each trap, matching the paper's
    /// figures where freshly loaded traps hold consecutive ions.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::MappingOverfill`] if the mapping does not fit
    /// this spec (possible when the mapping was built for a different spec).
    pub fn with_mapping(
        spec: &MachineSpec,
        mapping: &InitialMapping,
    ) -> Result<Self, MachineError> {
        let mut chains: Vec<Vec<IonId>> = vec![Vec::new(); spec.num_traps() as usize];
        let mut trap_of = Vec::with_capacity(mapping.num_ions() as usize);
        for (i, &t) in mapping.as_slice().iter().enumerate() {
            spec.check_trap(t)?;
            chains[t.index()].push(IonId(i as u32));
            trap_of.push(t);
        }
        let cap = spec.initial_capacity_per_trap();
        for (i, chain) in chains.iter().enumerate() {
            if chain.len() as u32 > cap {
                return Err(MachineError::MappingOverfill {
                    trap: TrapId(i as u32),
                    assigned: chain.len() as u32,
                    initial_capacity: cap,
                });
            }
        }
        Ok(MachineState {
            spec: spec.clone(),
            chains,
            trap_of,
        })
    }

    /// The machine specification this state lives on.
    pub fn spec(&self) -> &MachineSpec {
        &self.spec
    }

    /// Number of ions in the machine.
    pub fn num_ions(&self) -> u32 {
        self.trap_of.len() as u32
    }

    /// The trap currently holding `ion`.
    ///
    /// # Panics
    ///
    /// Panics if `ion` is not part of this machine.
    pub fn trap_of(&self, ion: IonId) -> TrapId {
        self.trap_of[ion.index()]
    }

    /// The ordered ion chain inside `trap`.
    ///
    /// # Panics
    ///
    /// Panics if `trap` is out of range.
    pub fn chain(&self, trap: TrapId) -> &[IonId] {
        &self.chains[trap.index()]
    }

    /// Number of ions currently in `trap`.
    ///
    /// # Panics
    ///
    /// Panics if `trap` is out of range.
    pub fn occupancy(&self, trap: TrapId) -> u32 {
        self.chains[trap.index()].len() as u32
    }

    /// Excess capacity of `trap`: `total capacity − occupancy` (§II-B1).
    ///
    /// # Panics
    ///
    /// Panics if `trap` is out of range.
    pub fn excess_capacity(&self, trap: TrapId) -> u32 {
        self.spec.total_capacity() - self.occupancy(trap)
    }

    /// Returns `true` if `trap` cannot accept another ion.
    pub fn is_full(&self, trap: TrapId) -> bool {
        self.excess_capacity(trap) == 0
    }

    /// The occupancy of `trap` broken down by the spec's zone layout: chain
    /// positions fill the gate, storage and loading zones front-to-back
    /// (merges append to the chain end, so arrivals land in the loading
    /// zone).
    ///
    /// # Panics
    ///
    /// Panics if `trap` is out of range.
    pub fn zone_occupancy(&self, trap: TrapId) -> ZoneOccupancy {
        ZoneOccupancy::from_occupancy(self.occupancy(trap), self.spec.zone_layout())
    }

    /// Returns `true` if `ion`'s chain position lies inside its trap's gate
    /// zone — i.e. a gate on it needs no intra-trap zone move first. Always
    /// `true` under the default single-zone layout.
    ///
    /// # Panics
    ///
    /// Panics if `ion` is not part of this machine.
    pub fn in_gate_zone(&self, ion: IonId) -> bool {
        let trap = self.trap_of[ion.index()];
        let pos = self.chains[trap.index()]
            .iter()
            .position(|&i| i == ion)
            .expect("trap_of and chains are kept consistent");
        (pos as u32) < self.spec.zone_layout().gate
    }

    /// Moves `ion` to the front of its chain — the explicit intra-trap zone
    /// reorder that brings a storage/loading-zone ion into the gate zone.
    /// Returns `true` if the ion actually moved (`false` when it was
    /// already gate-ready, in which case no physical operation occurs).
    ///
    /// # Panics
    ///
    /// Panics if `ion` is not part of this machine.
    pub fn promote_to_gate_zone(&mut self, ion: IonId) -> bool {
        if self.in_gate_zone(ion) {
            return false;
        }
        let trap = self.trap_of[ion.index()];
        let chain = &mut self.chains[trap.index()];
        let pos = chain
            .iter()
            .position(|&i| i == ion)
            .expect("trap_of and chains are kept consistent");
        chain.remove(pos);
        chain.insert(0, ion);
        true
    }

    /// Moves `ion` one hop into the adjacent trap `to` (split from its
    /// current chain, traverse the shuttle path, merge at the end of the
    /// destination chain — the SPLIT/MOVE/MERGE sequence of Fig. 3).
    ///
    /// # Errors
    ///
    /// * [`MachineError::IonOutOfRange`] — unknown ion.
    /// * [`MachineError::TrapOutOfRange`] — unknown destination.
    /// * [`MachineError::SelfShuttle`] — `to` equals the current trap.
    /// * [`MachineError::NotAdjacent`] — no shuttle path between the traps.
    /// * [`MachineError::TrapFull`] — destination has no excess capacity.
    pub fn shuttle(&mut self, ion: IonId, to: TrapId) -> Result<(), MachineError> {
        if ion.index() >= self.trap_of.len() {
            return Err(MachineError::IonOutOfRange {
                ion,
                num_ions: self.num_ions(),
            });
        }
        self.spec.check_trap(to)?;
        let from = self.trap_of[ion.index()];
        if from == to {
            return Err(MachineError::SelfShuttle { trap: from });
        }
        if !self.spec.topology().are_adjacent(from, to) {
            return Err(MachineError::NotAdjacent { from, to });
        }
        if self.is_full(to) {
            return Err(MachineError::TrapFull { trap: to });
        }
        let chain = &mut self.chains[from.index()];
        let pos = chain
            .iter()
            .position(|&i| i == ion)
            .expect("trap_of and chains are kept consistent");
        chain.remove(pos);
        self.chains[to.index()].push(ion);
        self.trap_of[ion.index()] = to;
        Ok(())
    }

    /// Applies one concurrent transport round: a set of single-hop shuttle
    /// moves executed simultaneously on pairwise-disjoint shuttle-path
    /// segments.
    ///
    /// Round semantics are *departures-first*: every SPLIT fires before any
    /// MERGE lands, so an ion may enter a trap another ion vacates in the
    /// same round (pipelined corridors, swaps). The per-round legality
    /// rules — the machine's per-edge occupancy and junction bookkeeping —
    /// are:
    ///
    /// 1. every move is a legal hop in isolation (known ion at `from`,
    ///    adjacent in-range destination);
    /// 2. no shuttle-path segment carries two moves (per-edge occupancy);
    /// 3. no ion moves twice;
    /// 4. each trap runs at most one SPLIT and one MERGE (junction
    ///    hardware);
    /// 5. no trap exceeds total capacity after its departures leave.
    ///
    /// On error the state is unchanged.
    ///
    /// # Errors
    ///
    /// The first violated rule, as a [`MachineError`] (`EdgeInUse`,
    /// `IonMovedTwice`, `JunctionBusy`, `RoundOverfill`, or the
    /// single-hop errors of [`shuttle`](MachineState::shuttle)).
    pub fn apply_round(&mut self, moves: &[ShuttleMove]) -> Result<(), MachineError> {
        let num_traps = self.spec.num_traps() as usize;
        let mut arrivals = vec![0u32; num_traps];
        let mut departures = vec![0u32; num_traps];
        let mut segments: Vec<(TrapId, TrapId)> = Vec::with_capacity(moves.len());
        let mut moved: Vec<IonId> = Vec::with_capacity(moves.len());
        for m in moves {
            if m.ion.index() >= self.trap_of.len() {
                return Err(MachineError::IonOutOfRange {
                    ion: m.ion,
                    num_ions: self.num_ions(),
                });
            }
            self.spec.check_trap(m.to)?;
            if self.trap_of[m.ion.index()] != m.from {
                return Err(MachineError::WrongSourceTrap {
                    ion: m.ion,
                    claimed: m.from,
                    actual: self.trap_of[m.ion.index()],
                });
            }
            if m.from == m.to {
                return Err(MachineError::SelfShuttle { trap: m.from });
            }
            if !self.spec.topology().are_adjacent(m.from, m.to) {
                return Err(MachineError::NotAdjacent {
                    from: m.from,
                    to: m.to,
                });
            }
            if moved.contains(&m.ion) {
                return Err(MachineError::IonMovedTwice { ion: m.ion });
            }
            let seg = m.segment();
            if segments.contains(&seg) {
                return Err(MachineError::EdgeInUse { a: seg.0, b: seg.1 });
            }
            if departures[m.from.index()] > 0 || arrivals[m.to.index()] > 0 {
                let trap = if departures[m.from.index()] > 0 {
                    m.from
                } else {
                    m.to
                };
                return Err(MachineError::JunctionBusy { trap });
            }
            moved.push(m.ion);
            segments.push(seg);
            departures[m.from.index()] += 1;
            arrivals[m.to.index()] += 1;
        }
        for t in 0..num_traps {
            let occ = self.chains[t].len() as u32;
            if occ + arrivals[t] > self.spec.total_capacity() + departures[t] {
                return Err(MachineError::RoundOverfill {
                    trap: TrapId(t as u32),
                    occupancy: occ,
                    arrivals: arrivals[t],
                    departures: departures[t],
                    capacity: self.spec.total_capacity(),
                });
            }
        }
        // All checks passed: split every mover out, then merge them in.
        for m in moves {
            let chain = &mut self.chains[m.from.index()];
            let pos = chain
                .iter()
                .position(|&i| i == m.ion)
                .expect("trap_of and chains are kept consistent");
            chain.remove(pos);
        }
        for m in moves {
            self.chains[m.to.index()].push(m.ion);
            self.trap_of[m.ion.index()] = m.to;
        }
        Ok(())
    }

    /// Verifies the internal invariants (ion conservation, capacity,
    /// chain/trap_of consistency). Cheap enough for tests and debug asserts.
    pub fn check_invariants(&self) -> bool {
        let mut seen = vec![false; self.trap_of.len()];
        for (ti, chain) in self.chains.iter().enumerate() {
            if chain.len() as u32 > self.spec.total_capacity() {
                return false;
            }
            for &ion in chain {
                if ion.index() >= seen.len()
                    || seen[ion.index()]
                    || self.trap_of[ion.index()] != TrapId(ti as u32)
                {
                    return false;
                }
                seen[ion.index()] = true;
            }
        }
        seen.into_iter().all(|s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig1_state() -> MachineState {
        // Fig. 1: 2 traps, capacity 4, comm 1, ions 0-2 in T0, 3-5 in T1.
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 6).unwrap();
        MachineState::with_mapping(&spec, &mapping).unwrap()
    }

    #[test]
    fn fig1_excess_capacities() {
        let s = fig1_state();
        assert_eq!(s.excess_capacity(TrapId(0)), 1);
        assert_eq!(s.excess_capacity(TrapId(1)), 1);
        assert_eq!(s.chain(TrapId(0)), &[IonId(0), IonId(1), IonId(2)]);
        assert!(s.check_invariants());
    }

    #[test]
    fn shuttle_moves_ion_and_updates_chains() {
        let mut s = fig1_state();
        s.shuttle(IonId(2), TrapId(1)).unwrap();
        assert_eq!(s.trap_of(IonId(2)), TrapId(1));
        assert_eq!(s.chain(TrapId(0)), &[IonId(0), IonId(1)]);
        assert_eq!(
            s.chain(TrapId(1)),
            &[IonId(3), IonId(4), IonId(5), IonId(2)]
        );
        assert_eq!(s.excess_capacity(TrapId(1)), 0);
        assert!(s.check_invariants());
    }

    #[test]
    fn shuttle_into_full_trap_fails() {
        let mut s = fig1_state();
        s.shuttle(IonId(2), TrapId(1)).unwrap(); // T1 now full
        let err = s.shuttle(IonId(1), TrapId(1)).unwrap_err();
        assert_eq!(err, MachineError::TrapFull { trap: TrapId(1) });
        assert!(s.check_invariants());
    }

    #[test]
    fn shuttle_requires_adjacency() {
        let spec = MachineSpec::linear(3, 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 4).unwrap();
        let mut s = MachineState::with_mapping(&spec, &mapping).unwrap();
        // Ion 0 is in T0; T2 is two hops away.
        let err = s.shuttle(IonId(0), TrapId(2)).unwrap_err();
        assert_eq!(
            err,
            MachineError::NotAdjacent {
                from: TrapId(0),
                to: TrapId(2)
            }
        );
    }

    #[test]
    fn shuttle_rejects_self_and_bad_ids() {
        let mut s = fig1_state();
        assert_eq!(
            s.shuttle(IonId(0), TrapId(0)).unwrap_err(),
            MachineError::SelfShuttle { trap: TrapId(0) }
        );
        assert!(matches!(
            s.shuttle(IonId(99), TrapId(1)),
            Err(MachineError::IonOutOfRange { .. })
        ));
        assert!(matches!(
            s.shuttle(IonId(0), TrapId(9)),
            Err(MachineError::TrapOutOfRange { .. })
        ));
    }

    #[test]
    fn round_trip_shuttle_restores_occupancy() {
        let mut s = fig1_state();
        s.shuttle(IonId(2), TrapId(1)).unwrap();
        s.shuttle(IonId(2), TrapId(0)).unwrap();
        assert_eq!(s.occupancy(TrapId(0)), 3);
        assert_eq!(s.occupancy(TrapId(1)), 3);
        // Merge appends: ion 2 is now at the END of T0's chain.
        assert_eq!(s.chain(TrapId(0)), &[IonId(0), IonId(1), IonId(2)]);
        assert!(s.check_invariants());
    }

    #[test]
    fn zone_tracking_and_promotion() {
        use crate::zones::ZoneLayout;
        // 2 traps, capacity 6 split 2 gate + 2 storage + 2 loading.
        let spec = MachineSpec::linear(2, 6, 2)
            .unwrap()
            .with_zone_layout(ZoneLayout::new(2, 2, 2).unwrap())
            .unwrap();
        let mapping = InitialMapping::from_traps(
            &spec,
            vec![TrapId(0), TrapId(0), TrapId(0), TrapId(0), TrapId(1)],
        )
        .unwrap();
        let mut s = MachineState::with_mapping(&spec, &mapping).unwrap();
        let z = s.zone_occupancy(TrapId(0));
        assert_eq!((z.gate, z.storage, z.loading), (2, 2, 0));
        assert!(s.in_gate_zone(IonId(0)));
        assert!(!s.in_gate_zone(IonId(3)), "position 3 is the storage zone");

        // An arriving ion lands in the chain tail (loading zone).
        s.shuttle(IonId(4), TrapId(0)).unwrap();
        let z = s.zone_occupancy(TrapId(0));
        assert_eq!((z.gate, z.storage, z.loading), (2, 2, 1));
        assert!(!s.in_gate_zone(IonId(4)));

        // Promotion is an explicit reorder; gate-ready ions are no-ops.
        assert!(s.promote_to_gate_zone(IonId(4)));
        assert!(s.in_gate_zone(IonId(4)));
        assert_eq!(s.chain(TrapId(0))[0], IonId(4));
        assert!(!s.promote_to_gate_zone(IonId(4)), "already gate-ready");
        assert!(s.check_invariants());
    }

    #[test]
    fn single_zone_layout_is_always_gate_ready() {
        let s = fig1_state();
        for ion in 0..6 {
            assert!(s.in_gate_zone(IonId(ion)));
        }
    }

    fn mv(ion: u32, from: u32, to: u32) -> ShuttleMove {
        ShuttleMove {
            ion: IonId(ion),
            from: TrapId(from),
            to: TrapId(to),
        }
    }

    #[test]
    fn round_applies_pipelined_moves() {
        // L3: ions 0-2 in T0, 3-5 in T1. Pipeline: ion 3 leaves T1 for T2
        // while ion 2 enters T1 from T0 — disjoint segments, one split and
        // one merge at the junction trap T1.
        let spec = MachineSpec::linear(3, 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 6).unwrap();
        let mut s = MachineState::with_mapping(&spec, &mapping).unwrap();
        s.apply_round(&[mv(3, 1, 2), mv(2, 0, 1)]).unwrap();
        assert_eq!(s.trap_of(IonId(3)), TrapId(2));
        assert_eq!(s.trap_of(IonId(2)), TrapId(1));
        assert!(s.check_invariants());
    }

    #[test]
    fn round_allows_departure_before_arrival() {
        // T1 is full; its departure makes room for the arrival within the
        // same round (departures-first semantics), where a serial shuttle
        // into T1 would be rejected.
        let spec = MachineSpec::linear(3, 2, 0).unwrap();
        let mapping =
            InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(1), TrapId(1), TrapId(2)])
                .unwrap();
        let mut s = MachineState::with_mapping(&spec, &mapping).unwrap();
        assert!(s.is_full(TrapId(1)));
        assert_eq!(
            s.shuttle(IonId(0), TrapId(1)).unwrap_err(),
            MachineError::TrapFull { trap: TrapId(1) }
        );
        s.apply_round(&[mv(0, 0, 1), mv(2, 1, 2)]).unwrap();
        assert_eq!(s.trap_of(IonId(0)), TrapId(1));
        assert_eq!(s.trap_of(IonId(2)), TrapId(2));
        assert!(s.is_full(TrapId(1)));
        assert!(s.check_invariants());
    }

    #[test]
    fn round_rejects_edge_reuse_and_double_move() {
        let spec = MachineSpec::linear(3, 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 6).unwrap();
        let mut s = MachineState::with_mapping(&spec, &mapping).unwrap();
        assert_eq!(
            s.apply_round(&[mv(1, 0, 1), mv(3, 1, 0)]).unwrap_err(),
            MachineError::EdgeInUse {
                a: TrapId(0),
                b: TrapId(1)
            }
        );
        assert_eq!(
            s.apply_round(&[mv(1, 0, 1), mv(1, 0, 1)]).unwrap_err(),
            MachineError::IonMovedTwice { ion: IonId(1) }
        );
        // Failed rounds leave the state untouched.
        assert_eq!(s.trap_of(IonId(1)), TrapId(0));
        assert!(s.check_invariants());
    }

    #[test]
    fn round_rejects_junction_oversubscription() {
        // Two merges into T1 from different edges: junction busy.
        let spec = MachineSpec::linear(3, 6, 1).unwrap();
        let mapping = InitialMapping::from_traps(&spec, vec![TrapId(0), TrapId(2)]).unwrap();
        let mut s = MachineState::with_mapping(&spec, &mapping).unwrap();
        assert_eq!(
            s.apply_round(&[mv(0, 0, 1), mv(1, 2, 1)]).unwrap_err(),
            MachineError::JunctionBusy { trap: TrapId(1) }
        );
    }

    #[test]
    fn round_rejects_overfill_and_wrong_source() {
        let spec = MachineSpec::linear(2, 3, 0).unwrap();
        let mapping = InitialMapping::from_traps(
            &spec,
            vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1), TrapId(1)],
        )
        .unwrap();
        let mut s = MachineState::with_mapping(&spec, &mapping).unwrap();
        assert!(matches!(
            s.apply_round(&[mv(0, 0, 1)]).unwrap_err(),
            MachineError::RoundOverfill {
                trap: TrapId(1),
                ..
            }
        ));
        assert_eq!(
            s.apply_round(&[mv(0, 1, 0)]).unwrap_err(),
            MachineError::WrongSourceTrap {
                ion: IonId(0),
                claimed: TrapId(1),
                actual: TrapId(0)
            }
        );
    }

    #[test]
    fn with_mapping_rejects_overfull() {
        let spec = MachineSpec::linear(2, 4, 1).unwrap();
        let loose = MachineSpec::linear(2, 8, 1).unwrap();
        let mapping = InitialMapping::round_robin(&loose, 8).unwrap();
        assert!(matches!(
            MachineState::with_mapping(&spec, &mapping),
            Err(MachineError::MappingOverfill { .. })
        ));
    }
}
