//! Validated machine specification.

use crate::error::MachineError;
use crate::ids::TrapId;
use crate::topology::TrapTopology;
use crate::zones::ZoneLayout;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A QCCD machine specification: interconnect topology plus per-trap
/// capacities (§II-B1 of the paper).
///
/// * **Total trap capacity** — maximum ions a trap can physically hold.
/// * **Communication capacity** — slots kept *unoccupied* at initial
///   allocation so shuttled ions from other traps can be accepted.
/// * **Zone layout** — how each trap's capacity splits into gate, storage
///   and loading zones ([`ZoneLayout`]; defaults to one homogeneous gate
///   zone, the paper's model).
///
/// The paper's evaluation platform is `MachineSpec::linear(6, 17, 2)`:
/// "the 'L6' trap topology ... 6 traps connected in a linear fashion. Each
/// trap has a total capacity of 17 with a communication capacity of 2 per
/// trap" (§IV-A).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineSpec {
    topology: TrapTopology,
    total_capacity: u32,
    comm_capacity: u32,
    zones: ZoneLayout,
}

impl MachineSpec {
    /// Creates a validated spec from an arbitrary topology.
    ///
    /// # Errors
    ///
    /// * [`MachineError::NoTraps`] if the topology is empty.
    /// * [`MachineError::ZeroCapacity`] if `total_capacity == 0`.
    /// * [`MachineError::CommCapacityTooLarge`] if
    ///   `comm_capacity >= total_capacity`.
    pub fn new(
        topology: TrapTopology,
        total_capacity: u32,
        comm_capacity: u32,
    ) -> Result<Self, MachineError> {
        if topology.num_traps() == 0 {
            return Err(MachineError::NoTraps);
        }
        if total_capacity == 0 {
            return Err(MachineError::ZeroCapacity);
        }
        if comm_capacity >= total_capacity {
            return Err(MachineError::CommCapacityTooLarge {
                total: total_capacity,
                comm: comm_capacity,
            });
        }
        Ok(MachineSpec {
            topology,
            total_capacity,
            comm_capacity,
            zones: ZoneLayout::single(total_capacity),
        })
    }

    /// Replaces the homogeneous default with an explicit multi-zone layout
    /// applied to every trap.
    ///
    /// # Errors
    ///
    /// * [`MachineError::ZoneCapacityMismatch`] — the zones do not sum to
    ///   the trap's total capacity.
    /// * [`MachineError::CommExceedsLoadingZone`] — a multi-zone layout
    ///   whose loading zone cannot host the reserved communication slots
    ///   (shuttled ions arrive in the loading zone).
    pub fn with_zone_layout(mut self, zones: ZoneLayout) -> Result<Self, MachineError> {
        if zones.total() != self.total_capacity {
            return Err(MachineError::ZoneCapacityMismatch {
                zones: zones.total(),
                total: self.total_capacity,
            });
        }
        if !zones.is_single() && self.comm_capacity > zones.loading {
            return Err(MachineError::CommExceedsLoadingZone {
                comm: self.comm_capacity,
                loading: zones.loading,
            });
        }
        self.zones = zones;
        Ok(self)
    }

    /// The per-trap zone layout.
    pub fn zone_layout(&self) -> &ZoneLayout {
        &self.zones
    }

    /// Shorthand for a linear ("Lk") machine.
    ///
    /// # Errors
    ///
    /// Same as [`MachineSpec::new`].
    pub fn linear(
        traps: u32,
        total_capacity: u32,
        comm_capacity: u32,
    ) -> Result<Self, MachineError> {
        MachineSpec::new(TrapTopology::linear(traps), total_capacity, comm_capacity)
    }

    /// The paper's evaluation platform: L6, capacity 17, comm capacity 2.
    pub fn paper_l6() -> Self {
        MachineSpec::linear(6, 17, 2).expect("paper parameters are valid")
    }

    /// The interconnect topology.
    pub fn topology(&self) -> &TrapTopology {
        &self.topology
    }

    /// Number of traps.
    pub fn num_traps(&self) -> u32 {
        self.topology.num_traps()
    }

    /// Maximum ions a single trap can hold.
    pub fn total_capacity(&self) -> u32 {
        self.total_capacity
    }

    /// Slots reserved for incoming shuttled ions at initial allocation.
    pub fn comm_capacity(&self) -> u32 {
        self.comm_capacity
    }

    /// Ions a trap may host at *initial allocation*
    /// (`total − communication`).
    pub fn initial_capacity_per_trap(&self) -> u32 {
        self.total_capacity - self.comm_capacity
    }

    /// Total ions the whole machine may host at initial allocation.
    pub fn initial_capacity(&self) -> u32 {
        self.initial_capacity_per_trap() * self.num_traps()
    }

    /// Validates a trap id against this machine.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::TrapOutOfRange`] for ids beyond the topology.
    pub fn check_trap(&self, t: TrapId) -> Result<(), MachineError> {
        if t.0 >= self.num_traps() {
            return Err(MachineError::TrapOutOfRange {
                trap: t,
                num_traps: self.num_traps(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for MachineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.zones.is_single() {
            write!(
                f,
                "{}(cap {}, comm {})",
                self.topology, self.total_capacity, self.comm_capacity
            )
        } else {
            write!(
                f,
                "{}(cap {}, comm {}, zones {})",
                self.topology, self.total_capacity, self.comm_capacity, self.zones
            )
        }
    }
}

/// Parses the [`Display`](fmt::Display) form back into a validated spec —
/// the round-trip serialisation used by reports and config files (the
/// workspace's serde dependency is a marker stub, so this is the canonical
/// textual codec).
///
/// Grammar: `L6(cap 17, comm 2)`, `R6(cap 17, comm 2)`,
/// `G2x3(cap 17, comm 2)`, optionally with a `, zones 13+2+2` suffix.
/// Custom topologies (`C5e4`) render lossily and cannot be parsed back.
impl FromStr for MachineSpec {
    type Err = String;

    fn from_str(text: &str) -> Result<Self, Self::Err> {
        let bad = || format!("malformed machine spec `{text}`");
        let (topo_text, rest) = text.split_once('(').ok_or_else(bad)?;
        let body = rest.strip_suffix(')').ok_or_else(bad)?;
        let topology = parse_topology_display(topo_text)
            .ok_or_else(|| format!("unparseable topology `{topo_text}` in `{text}`"))?;
        let mut cap = None;
        let mut comm = None;
        let mut zones = None;
        for field in body.split(", ") {
            let (key, value) = field.split_once(' ').ok_or_else(bad)?;
            match key {
                "cap" => cap = Some(value.parse::<u32>().map_err(|_| bad())?),
                "comm" => comm = Some(value.parse::<u32>().map_err(|_| bad())?),
                "zones" => {
                    let mut parts = value.split('+').map(|p| p.parse::<u32>());
                    let (g, s, l) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
                        (Some(Ok(g)), Some(Ok(s)), Some(Ok(l)), None) => (g, s, l),
                        _ => return Err(bad()),
                    };
                    zones = Some(ZoneLayout::new(g, s, l).map_err(|e| e.to_string())?);
                }
                _ => return Err(bad()),
            }
        }
        let spec = MachineSpec::new(topology, cap.ok_or_else(bad)?, comm.ok_or_else(bad)?)
            .map_err(|e| e.to_string())?;
        match zones {
            Some(z) => spec.with_zone_layout(z).map_err(|e| e.to_string()),
            None => Ok(spec),
        }
    }
}

/// Parses a topology's `Display` form (`L6`, `R6`, `G2x3`).
fn parse_topology_display(text: &str) -> Option<TrapTopology> {
    if !text.is_ascii() || text.is_empty() {
        return None;
    }
    let (kind, dims) = text.split_at(1);
    match kind {
        "L" => {
            let n = dims.parse::<u32>().ok().filter(|&n| n > 0)?;
            Some(TrapTopology::linear(n))
        }
        "R" => {
            let n = dims.parse::<u32>().ok().filter(|&n| n >= 3)?;
            Some(TrapTopology::ring(n))
        }
        "G" => {
            let (r, c) = dims.split_once('x')?;
            let rows = r.parse::<u32>().ok().filter(|&n| n > 0)?;
            let cols = c.parse::<u32>().ok().filter(|&n| n > 0)?;
            Some(TrapTopology::grid(rows, cols))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l6_parameters() {
        let m = MachineSpec::paper_l6();
        assert_eq!(m.num_traps(), 6);
        assert_eq!(m.total_capacity(), 17);
        assert_eq!(m.comm_capacity(), 2);
        assert_eq!(m.initial_capacity_per_trap(), 15);
        assert_eq!(m.initial_capacity(), 90); // enough for 78-qubit SquareRoot
        assert_eq!(m.to_string(), "L6(cap 17, comm 2)");
    }

    #[test]
    fn rejects_comm_ge_total() {
        assert_eq!(
            MachineSpec::linear(2, 4, 4).unwrap_err(),
            MachineError::CommCapacityTooLarge { total: 4, comm: 4 }
        );
    }

    #[test]
    fn rejects_zero_capacity_and_no_traps() {
        assert_eq!(
            MachineSpec::linear(2, 0, 0).unwrap_err(),
            MachineError::ZeroCapacity
        );
        assert_eq!(
            MachineSpec::linear(0, 4, 1).unwrap_err(),
            MachineError::NoTraps
        );
    }

    #[test]
    fn default_layout_is_single_gate_zone() {
        let m = MachineSpec::paper_l6();
        assert!(m.zone_layout().is_single());
        assert_eq!(m.zone_layout().gate, 17);
    }

    #[test]
    fn zone_layout_must_sum_to_capacity() {
        let m = MachineSpec::linear(2, 17, 2).unwrap();
        assert_eq!(
            m.clone()
                .with_zone_layout(ZoneLayout::new(10, 2, 2).unwrap())
                .unwrap_err(),
            MachineError::ZoneCapacityMismatch {
                zones: 14,
                total: 17
            }
        );
        let zoned = m
            .with_zone_layout(ZoneLayout::new(13, 2, 2).unwrap())
            .unwrap();
        assert_eq!(zoned.zone_layout().storage, 2);
    }

    #[test]
    fn comm_slots_must_fit_the_loading_zone() {
        // comm 3 > loading 2: arrivals could not be hosted where they land.
        let m = MachineSpec::linear(2, 17, 3).unwrap();
        assert_eq!(
            m.with_zone_layout(ZoneLayout::new(13, 2, 2).unwrap())
                .unwrap_err(),
            MachineError::CommExceedsLoadingZone {
                comm: 3,
                loading: 2
            }
        );
    }

    #[test]
    fn zero_gate_zone_rejected_at_layout_construction() {
        assert_eq!(
            ZoneLayout::new(0, 15, 2).unwrap_err(),
            MachineError::EmptyGateZone
        );
    }

    #[test]
    fn display_round_trips_through_from_str() {
        let plain = MachineSpec::paper_l6();
        assert_eq!(plain.to_string().parse::<MachineSpec>().unwrap(), plain);

        let zoned = MachineSpec::linear(6, 17, 2)
            .unwrap()
            .with_zone_layout(ZoneLayout::new(13, 2, 2).unwrap())
            .unwrap();
        assert_eq!(zoned.to_string(), "L6(cap 17, comm 2, zones 13+2+2)");
        assert_eq!(zoned.to_string().parse::<MachineSpec>().unwrap(), zoned);

        for topology in [TrapTopology::ring(5), TrapTopology::grid(2, 3)] {
            let m = MachineSpec::new(topology, 8, 2).unwrap();
            assert_eq!(m.to_string().parse::<MachineSpec>().unwrap(), m);
        }
    }

    #[test]
    fn from_str_rejects_malformed_and_invalid_specs() {
        for bad in [
            "",
            "L6",
            "L6(cap 17)",                      // missing comm
            "L6(cap 17, comm 17)",             // comm >= total
            "L0(cap 4, comm 1)",               // no traps
            "C5e4(cap 4, comm 1)",             // custom topologies are lossy
            "L6(cap 17, comm 2, zones 1+2+2)", // gate zone too small
            "L6(cap 17, comm 2, zones 13+2)",  // malformed zone triple
            "X6(cap 17, comm 2)",
        ] {
            assert!(bad.parse::<MachineSpec>().is_err(), "`{bad}` should fail");
        }
    }

    #[test]
    fn check_trap_bounds() {
        let m = MachineSpec::linear(3, 4, 1).unwrap();
        assert!(m.check_trap(TrapId(2)).is_ok());
        assert!(m.check_trap(TrapId(3)).is_err());
    }
}
