//! Validated machine specification.

use crate::error::MachineError;
use crate::ids::TrapId;
use crate::topology::TrapTopology;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A QCCD machine specification: interconnect topology plus per-trap
/// capacities (§II-B1 of the paper).
///
/// * **Total trap capacity** — maximum ions a trap can physically hold.
/// * **Communication capacity** — slots kept *unoccupied* at initial
///   allocation so shuttled ions from other traps can be accepted.
///
/// The paper's evaluation platform is `MachineSpec::linear(6, 17, 2)`:
/// "the 'L6' trap topology ... 6 traps connected in a linear fashion. Each
/// trap has a total capacity of 17 with a communication capacity of 2 per
/// trap" (§IV-A).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineSpec {
    topology: TrapTopology,
    total_capacity: u32,
    comm_capacity: u32,
}

impl MachineSpec {
    /// Creates a validated spec from an arbitrary topology.
    ///
    /// # Errors
    ///
    /// * [`MachineError::NoTraps`] if the topology is empty.
    /// * [`MachineError::ZeroCapacity`] if `total_capacity == 0`.
    /// * [`MachineError::CommCapacityTooLarge`] if
    ///   `comm_capacity >= total_capacity`.
    pub fn new(
        topology: TrapTopology,
        total_capacity: u32,
        comm_capacity: u32,
    ) -> Result<Self, MachineError> {
        if topology.num_traps() == 0 {
            return Err(MachineError::NoTraps);
        }
        if total_capacity == 0 {
            return Err(MachineError::ZeroCapacity);
        }
        if comm_capacity >= total_capacity {
            return Err(MachineError::CommCapacityTooLarge {
                total: total_capacity,
                comm: comm_capacity,
            });
        }
        Ok(MachineSpec {
            topology,
            total_capacity,
            comm_capacity,
        })
    }

    /// Shorthand for a linear ("Lk") machine.
    ///
    /// # Errors
    ///
    /// Same as [`MachineSpec::new`].
    pub fn linear(
        traps: u32,
        total_capacity: u32,
        comm_capacity: u32,
    ) -> Result<Self, MachineError> {
        MachineSpec::new(TrapTopology::linear(traps), total_capacity, comm_capacity)
    }

    /// The paper's evaluation platform: L6, capacity 17, comm capacity 2.
    pub fn paper_l6() -> Self {
        MachineSpec::linear(6, 17, 2).expect("paper parameters are valid")
    }

    /// The interconnect topology.
    pub fn topology(&self) -> &TrapTopology {
        &self.topology
    }

    /// Number of traps.
    pub fn num_traps(&self) -> u32 {
        self.topology.num_traps()
    }

    /// Maximum ions a single trap can hold.
    pub fn total_capacity(&self) -> u32 {
        self.total_capacity
    }

    /// Slots reserved for incoming shuttled ions at initial allocation.
    pub fn comm_capacity(&self) -> u32 {
        self.comm_capacity
    }

    /// Ions a trap may host at *initial allocation*
    /// (`total − communication`).
    pub fn initial_capacity_per_trap(&self) -> u32 {
        self.total_capacity - self.comm_capacity
    }

    /// Total ions the whole machine may host at initial allocation.
    pub fn initial_capacity(&self) -> u32 {
        self.initial_capacity_per_trap() * self.num_traps()
    }

    /// Validates a trap id against this machine.
    ///
    /// # Errors
    ///
    /// Returns [`MachineError::TrapOutOfRange`] for ids beyond the topology.
    pub fn check_trap(&self, t: TrapId) -> Result<(), MachineError> {
        if t.0 >= self.num_traps() {
            return Err(MachineError::TrapOutOfRange {
                trap: t,
                num_traps: self.num_traps(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for MachineSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}(cap {}, comm {})",
            self.topology, self.total_capacity, self.comm_capacity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_l6_parameters() {
        let m = MachineSpec::paper_l6();
        assert_eq!(m.num_traps(), 6);
        assert_eq!(m.total_capacity(), 17);
        assert_eq!(m.comm_capacity(), 2);
        assert_eq!(m.initial_capacity_per_trap(), 15);
        assert_eq!(m.initial_capacity(), 90); // enough for 78-qubit SquareRoot
        assert_eq!(m.to_string(), "L6(cap 17, comm 2)");
    }

    #[test]
    fn rejects_comm_ge_total() {
        assert_eq!(
            MachineSpec::linear(2, 4, 4).unwrap_err(),
            MachineError::CommCapacityTooLarge { total: 4, comm: 4 }
        );
    }

    #[test]
    fn rejects_zero_capacity_and_no_traps() {
        assert_eq!(
            MachineSpec::linear(2, 0, 0).unwrap_err(),
            MachineError::ZeroCapacity
        );
        assert_eq!(
            MachineSpec::linear(0, 4, 1).unwrap_err(),
            MachineError::NoTraps
        );
    }

    #[test]
    fn check_trap_bounds() {
        let m = MachineSpec::linear(3, 4, 1).unwrap();
        assert!(m.check_trap(TrapId(2)).is_ok());
        assert!(m.check_trap(TrapId(3)).is_err());
    }
}
