//! Graph substrate for the muzzle-shuttle QCCD compiler.
//!
//! The baseline compiler of Murali et al. (ISCA'20) resolves traffic blocks
//! with a minimum-cost maximum-flow computation over the trap topology; the
//! optimized compiler of the paper replaces the destination search with a
//! nearest-neighbour scan but still needs shortest paths. This crate
//! provides both primitives, self-contained:
//!
//! * [`Adjacency`] — a small undirected graph with BFS shortest paths.
//! * [`FlowNetwork`] / [`min_cost_max_flow`] — successive-shortest-path
//!   min-cost max-flow with non-negative edge costs.
//! * [`route_commodities`] — sequential multi-commodity routing over
//!   shared unit edge capacities: pairwise edge-disjoint paths (so a whole
//!   layer of moves can share transport rounds), with a per-commodity
//!   `None` fallback when the flows conflict.
//!
//! # Example
//!
//! ```
//! use qccd_flow::Adjacency;
//!
//! let line = Adjacency::line(6);
//! assert_eq!(line.shortest_path(0, 5).unwrap(), vec![0, 1, 2, 3, 4, 5]);
//! assert_eq!(line.distance(4, 1), Some(3));
//! ```

mod adjacency;
mod mcmf;
mod multicommodity;

pub use adjacency::Adjacency;
pub use mcmf::{min_cost_max_flow, FlowEdge, FlowNetwork, FlowResult};
pub use multicommodity::{route_commodities, Commodity};
