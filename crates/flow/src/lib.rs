//! Graph substrate for the muzzle-shuttle QCCD compiler.
//!
//! The baseline compiler of Murali et al. (ISCA'20) resolves traffic blocks
//! with a minimum-cost maximum-flow computation over the trap topology; the
//! optimized compiler of the paper replaces the destination search with a
//! nearest-neighbour scan but still needs shortest paths. This crate
//! provides both primitives, self-contained:
//!
//! * [`Adjacency`] — a small undirected graph with BFS shortest paths.
//! * [`FlowNetwork`] / [`min_cost_max_flow`] — successive-shortest-path
//!   min-cost max-flow with non-negative edge costs.
//!
//! # Example
//!
//! ```
//! use qccd_flow::Adjacency;
//!
//! let line = Adjacency::line(6);
//! assert_eq!(line.shortest_path(0, 5).unwrap(), vec![0, 1, 2, 3, 4, 5]);
//! assert_eq!(line.distance(4, 1), Some(3));
//! ```

mod adjacency;
mod mcmf;

pub use adjacency::Adjacency;
pub use mcmf::{min_cost_max_flow, FlowEdge, FlowNetwork, FlowResult};
