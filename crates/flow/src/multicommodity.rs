//! Multi-commodity routing: one unit per commodity over shared edge
//! capacities.
//!
//! The congestion planner prices one move at a time; the batched layer
//! planner in `qccd-pack` instead plans a whole *ready layer* of pending
//! moves together, so a wide QAOA layer's shuttles share transport rounds
//! deliberately. True minimum-cost multi-commodity flow is NP-hard in the
//! integral case; this module implements the standard sequential
//! relaxation on the MCMF substrate: commodities are routed one at a time
//! through a *shared* residual network whose undirected edges carry unit
//! capacity, so the routed paths are pairwise edge-disjoint — exactly the
//! property that lets their k-th hops share the k-th transport round.
//! When the shared network has no remaining path for a commodity (the
//! flows conflict), that commodity falls back to `None` and the caller
//! routes it alone.

use crate::adjacency::Adjacency;
use crate::mcmf::{min_cost_max_flow, FlowNetwork};

/// Commodities handed to [`route_commodities`] across all calls.
static FLOW_COMMODITIES: qccd_obs::Counter = qccd_obs::Counter::new("flow.commodities_routed");
/// Commodities the shared network had no path left for (`None` entries
/// the caller must route alone).
static FLOW_COMMODITY_FALLBACKS: qccd_obs::Counter =
    qccd_obs::Counter::new("flow.commodity_fallbacks");

/// One unit of demand: route an ion from `source` to `sink`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Commodity {
    /// Node the unit starts at.
    pub source: usize,
    /// Node the unit must reach.
    pub sink: usize,
}

/// Routes every commodity over `graph` with pairwise *edge-disjoint*
/// paths, sequentially through a shared unit-capacity network.
///
/// Each undirected edge of `graph` may carry at most one commodity in
/// total (either direction), and each returned path is simple. Commodities
/// are processed in the given order; each is routed by min-cost max-flow
/// over the remaining capacities with `edge_cost(a, b)` pricing the hop
/// `a → b` (costs must be non-negative). The entry for a commodity is
/// `None` when the shared network has no path left for it — the flows
/// conflict — and the caller decides the fallback (typically routing it
/// alone on the raw topology).
///
/// A zero-length commodity (`source == sink`) routes to the trivial
/// one-node path and consumes no capacity.
///
/// # Panics
///
/// Panics if a commodity endpoint is out of range for `graph`.
pub fn route_commodities(
    graph: &Adjacency,
    commodities: &[Commodity],
    mut edge_cost: impl FnMut(usize, usize) -> i64,
) -> Vec<Option<Vec<usize>>> {
    let _phase = qccd_obs::span("flow");
    let n = graph.len();
    // Remaining undirected capacity per (low, high) edge.
    let mut used: Vec<(usize, usize)> = Vec::new();
    let key = |a: usize, b: usize| if a <= b { (a, b) } else { (b, a) };

    commodities
        .iter()
        .map(|c| {
            assert!(
                c.source < n && c.sink < n,
                "commodity endpoint out of range"
            );
            FLOW_COMMODITIES.incr();
            if c.source == c.sink {
                return Some(vec![c.source]);
            }
            // Build the residual network: node-split traps (in/out halves,
            // internal capacity 1) keep paths simple; spent undirected
            // edges are omitted.
            let source = 2 * n;
            let mut net = FlowNetwork::new(2 * n + 1);
            for a in 0..n {
                net.add_edge(2 * a, 2 * a + 1, 1, 0);
                for &b in graph.neighbors(a) {
                    if !used.contains(&key(a, b)) {
                        net.add_edge(2 * a + 1, 2 * b, 1, edge_cost(a, b));
                    }
                }
            }
            net.add_edge(source, 2 * c.source, 1, 0);
            let result = min_cost_max_flow(&mut net, source, 2 * c.sink + 1);
            if result.flow != 1 {
                FLOW_COMMODITY_FALLBACKS.incr();
                return None;
            }
            // Follow the unit of flow through the out-halves.
            let flows = net.forward_flows();
            let mut path = vec![c.source];
            let mut cur = c.source;
            while cur != c.sink {
                let next = flows.iter().find_map(|&(s, t, f)| {
                    (f > 0 && s == 2 * cur + 1 && t % 2 == 0).then_some(t / 2)
                })?;
                path.push(next);
                cur = next;
                if path.len() > n {
                    return None; // defensive: malformed flow
                }
            }
            for w in path.windows(2) {
                used.push(key(w[0], w[1]));
            }
            Some(path)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(source: usize, sink: usize) -> Commodity {
        Commodity { source, sink }
    }

    #[test]
    fn disjoint_demands_route_simultaneously() {
        // Line of 6: 0→2 and 3→5 never touch the same segment.
        let g = Adjacency::line(6);
        let routes = route_commodities(&g, &[c(0, 2), c(3, 5)], |_, _| 1);
        assert_eq!(routes[0], Some(vec![0, 1, 2]));
        assert_eq!(routes[1], Some(vec![3, 4, 5]));
    }

    #[test]
    fn conflicting_demands_take_disjoint_detours() {
        // Ring of 6: 0→3 has two 3-hop routes; two commodities with the
        // same endpoints must split across them.
        let g = Adjacency::ring(6);
        let routes = route_commodities(&g, &[c(0, 3), c(0, 3)], |_, _| 1);
        let a = routes[0].as_ref().unwrap();
        let b = routes[1].as_ref().unwrap();
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 4);
        assert_ne!(a[1], b[1], "the two units must take opposite arcs");
    }

    #[test]
    fn overconstrained_commodity_falls_back_to_none() {
        // Line of 3: both commodities need segment 1—2; the second must
        // report a conflict rather than share the edge.
        let g = Adjacency::line(3);
        let routes = route_commodities(&g, &[c(0, 2), c(1, 2)], |_, _| 1);
        assert_eq!(routes[0], Some(vec![0, 1, 2]));
        assert_eq!(routes[1], None);
    }

    #[test]
    fn zero_length_commodity_is_trivial_and_free() {
        let g = Adjacency::line(3);
        let routes = route_commodities(&g, &[c(1, 1), c(0, 2)], |_, _| 1);
        assert_eq!(routes[0], Some(vec![1]));
        assert_eq!(routes[1], Some(vec![0, 1, 2]), "no capacity was consumed");
    }

    #[test]
    fn edge_costs_steer_route_choice() {
        // Ring of 4: 0→2 via 1 or via 3; price the clockwise arc hot.
        let g = Adjacency::ring(4);
        let hot = |a: usize, b: usize| {
            if (a, b) == (0, 1) || (a, b) == (1, 0) {
                100
            } else {
                1
            }
        };
        let routes = route_commodities(&g, &[c(0, 2)], hot);
        assert_eq!(routes[0], Some(vec![0, 3, 2]));
    }

    #[test]
    fn routed_paths_are_pairwise_edge_disjoint() {
        let g = Adjacency::grid(3, 3);
        let demands = [c(0, 8), c(2, 6), c(1, 7)];
        let routes = route_commodities(&g, &demands, |_, _| 1);
        let mut seen: Vec<(usize, usize)> = Vec::new();
        for route in routes.iter().flatten() {
            for w in route.windows(2) {
                let k = if w[0] <= w[1] {
                    (w[0], w[1])
                } else {
                    (w[1], w[0])
                };
                assert!(!seen.contains(&k), "segment {k:?} used twice");
                seen.push(k);
            }
        }
    }
}
