//! Minimum-cost maximum-flow via successive shortest paths.
//!
//! The baseline QCCD compiler (Murali et al., ISCA'20) formulates trap
//! re-balancing as an MCMF problem: full traps are sources, traps with
//! excess capacity are sinks, and shuttle-path segments carry unit costs.
//! This module implements the classic successive-shortest-path algorithm
//! with Bellman–Ford path selection (costs here are small and non-negative,
//! so SPFA-style relaxation is plenty fast for ≤ dozens of traps).

/// MCMF solves started (one per [`min_cost_max_flow`] call).
static FLOW_SOLVES: qccd_obs::Counter = qccd_obs::Counter::new("flow.solves");
/// Augmenting paths found and applied across all solves.
static FLOW_AUGMENTING_PATHS: qccd_obs::Counter = qccd_obs::Counter::new("flow.augmenting_paths");

/// One directed edge in a [`FlowNetwork`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowEdge {
    /// Edge head (target node).
    pub to: usize,
    /// Remaining capacity.
    pub capacity: i64,
    /// Cost per unit of flow (non-negative).
    pub cost: i64,
    /// Index of the reverse edge in `graph[to]`.
    rev: usize,
    /// `true` for original edges, `false` for residual reverses.
    is_forward: bool,
}

/// A directed flow network on nodes `0..n`.
///
/// # Example
///
/// ```
/// use qccd_flow::{FlowNetwork, min_cost_max_flow};
///
/// let mut net = FlowNetwork::new(4);
/// net.add_edge(0, 1, 2, 1);
/// net.add_edge(0, 2, 1, 2);
/// net.add_edge(1, 3, 2, 1);
/// net.add_edge(2, 3, 1, 2);
/// let result = min_cost_max_flow(&mut net, 0, 3);
/// assert_eq!(result.flow, 3);
/// assert_eq!(result.cost, 2 * 2 + 1 * 4);
/// ```
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    graph: Vec<Vec<FlowEdge>>,
}

impl FlowNetwork {
    /// Creates a network with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        FlowNetwork {
            graph: vec![Vec::new(); n],
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Returns `true` if the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// Adds a directed edge `from → to` with the given capacity and cost.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range, `capacity < 0`, or `cost < 0`.
    pub fn add_edge(&mut self, from: usize, to: usize, capacity: i64, cost: i64) {
        assert!(
            from < self.len() && to < self.len(),
            "endpoint out of range"
        );
        assert!(capacity >= 0, "capacity must be non-negative");
        assert!(cost >= 0, "cost must be non-negative");
        let rev_from = self.graph[to].len();
        let rev_to = self.graph[from].len();
        self.graph[from].push(FlowEdge {
            to,
            capacity,
            cost,
            rev: rev_from,
            is_forward: true,
        });
        self.graph[to].push(FlowEdge {
            to: from,
            capacity: 0,
            cost: -cost,
            rev: rev_to,
            is_forward: false,
        });
    }

    /// Flow currently assigned along each *forward* edge, as
    /// `(from, to, flow)` triples in insertion order.
    pub fn forward_flows(&self) -> Vec<(usize, usize, i64)> {
        let mut out = Vec::new();
        for (from, edges) in self.graph.iter().enumerate() {
            for e in edges {
                if e.is_forward {
                    // Flow pushed = capacity of the residual reverse edge.
                    let flow = self.graph[e.to][e.rev].capacity;
                    out.push((from, e.to, flow));
                }
            }
        }
        out
    }
}

/// The result of a min-cost max-flow computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowResult {
    /// Total flow pushed from source to sink.
    pub flow: i64,
    /// Total cost of that flow.
    pub cost: i64,
}

/// Computes minimum-cost maximum flow from `source` to `sink`, mutating the
/// network's residual capacities in place.
///
/// Runs successive shortest augmenting paths (SPFA); with the unit-ish
/// capacities and ≤ tens of nodes used for trap re-balancing this is
/// effectively instantaneous.
///
/// # Panics
///
/// Panics if `source` or `sink` is out of range.
pub fn min_cost_max_flow(net: &mut FlowNetwork, source: usize, sink: usize) -> FlowResult {
    assert!(source < net.len() && sink < net.len(), "node out of range");
    FLOW_SOLVES.incr();
    let n = net.len();
    let mut total_flow = 0i64;
    let mut total_cost = 0i64;

    loop {
        // SPFA (Bellman–Ford with a queue) over the residual graph.
        let mut dist = vec![i64::MAX; n];
        let mut in_queue = vec![false; n];
        let mut prev: Vec<Option<(usize, usize)>> = vec![None; n]; // (node, edge idx)
        dist[source] = 0;
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(source);
        in_queue[source] = true;
        while let Some(u) = queue.pop_front() {
            in_queue[u] = false;
            let du = dist[u];
            for (ei, e) in net.graph[u].iter().enumerate() {
                if e.capacity > 0 && du != i64::MAX && du + e.cost < dist[e.to] {
                    dist[e.to] = du + e.cost;
                    prev[e.to] = Some((u, ei));
                    if !in_queue[e.to] {
                        queue.push_back(e.to);
                        in_queue[e.to] = true;
                    }
                }
            }
        }
        if dist[sink] == i64::MAX {
            break; // no augmenting path remains
        }
        FLOW_AUGMENTING_PATHS.incr();
        // Find bottleneck along the path.
        let mut bottleneck = i64::MAX;
        let mut v = sink;
        while let Some((u, ei)) = prev[v] {
            bottleneck = bottleneck.min(net.graph[u][ei].capacity);
            v = u;
        }
        // Apply it.
        let mut v = sink;
        while let Some((u, ei)) = prev[v] {
            let rev = net.graph[u][ei].rev;
            net.graph[u][ei].capacity -= bottleneck;
            net.graph[v][rev].capacity += bottleneck;
            v = u;
        }
        total_flow += bottleneck;
        total_cost += bottleneck * dist[sink];
    }

    FlowResult {
        flow: total_flow,
        cost: total_cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_edge() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 5, 3);
        let r = min_cost_max_flow(&mut net, 0, 1);
        assert_eq!(r, FlowResult { flow: 5, cost: 15 });
    }

    #[test]
    fn prefers_cheaper_path() {
        // Two parallel 0→1 routes; cheap one saturates first.
        let mut net = FlowNetwork::new(4);
        net.add_edge(0, 1, 1, 10); // expensive direct
        net.add_edge(0, 2, 1, 1);
        net.add_edge(2, 3, 1, 1);
        net.add_edge(3, 1, 1, 1); // cheap detour, total cost 3
        let r = min_cost_max_flow(&mut net, 0, 1);
        assert_eq!(r.flow, 2);
        assert_eq!(r.cost, 3 + 10);
    }

    #[test]
    fn disconnected_graph_zero_flow() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 4, 1);
        let r = min_cost_max_flow(&mut net, 0, 2);
        assert_eq!(r, FlowResult { flow: 0, cost: 0 });
    }

    #[test]
    fn respects_bottleneck() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 10, 1);
        net.add_edge(1, 2, 3, 1);
        let r = min_cost_max_flow(&mut net, 0, 2);
        assert_eq!(r.flow, 3);
        assert_eq!(r.cost, 6);
    }

    #[test]
    fn forward_flows_report_assignment() {
        let mut net = FlowNetwork::new(3);
        net.add_edge(0, 1, 2, 1);
        net.add_edge(1, 2, 2, 1);
        min_cost_max_flow(&mut net, 0, 2);
        let flows = net.forward_flows();
        assert_eq!(flows, vec![(0, 1, 2), (1, 2, 2)]);
    }

    #[test]
    fn rebalance_shaped_instance_picks_nearest_sink() {
        // Line of 6 traps; trap 4 is full (source); traps 0, 3, 5 have
        // spare capacity. Unit cost per hop. MCMF should route to 3 or 5
        // (cost 1), never to 0 (cost 4).
        let n = 6;
        let src = n; // super-source
        let sink = n + 1; // super-sink
        let mut net = FlowNetwork::new(n + 2);
        for i in 0..n - 1 {
            net.add_edge(i, i + 1, 10, 1);
            net.add_edge(i + 1, i, 10, 1);
        }
        net.add_edge(src, 4, 1, 0); // one ion must leave trap 4
        for free in [0, 3, 5] {
            net.add_edge(free, sink, 1, 0);
        }
        let r = min_cost_max_flow(&mut net, src, sink);
        assert_eq!(r.flow, 1);
        assert_eq!(r.cost, 1, "flow should use a 1-hop route to trap 3 or 5");
    }

    #[test]
    fn flow_conservation_holds() {
        let mut net = FlowNetwork::new(5);
        net.add_edge(0, 1, 3, 2);
        net.add_edge(0, 2, 2, 4);
        net.add_edge(1, 3, 2, 1);
        net.add_edge(2, 3, 2, 1);
        net.add_edge(1, 2, 1, 1);
        net.add_edge(3, 4, 4, 1);
        let r = min_cost_max_flow(&mut net, 0, 4);
        // Conservation: for every interior node, inflow == outflow.
        let flows = net.forward_flows();
        for node in 1..4 {
            let inflow: i64 = flows
                .iter()
                .filter(|(_, t, _)| *t == node)
                .map(|(_, _, f)| f)
                .sum();
            let outflow: i64 = flows
                .iter()
                .filter(|(s, _, _)| *s == node)
                .map(|(_, _, f)| f)
                .sum();
            assert_eq!(inflow, outflow, "node {node}");
        }
        assert!(r.flow >= 3, "expected near-max flow, got {}", r.flow);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-negative")]
    fn rejects_negative_capacity() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, -1, 0);
    }

    #[test]
    #[should_panic(expected = "cost must be non-negative")]
    fn rejects_negative_cost() {
        let mut net = FlowNetwork::new(2);
        net.add_edge(0, 1, 1, -2);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use crate::adjacency::Adjacency;
    use proptest::prelude::*;

    proptest! {
        /// On a unit-cost bidirectional graph, one unit of min-cost flow
        /// costs exactly the BFS distance.
        #[test]
        fn unit_flow_cost_equals_bfs_distance(
            n in 2usize..=8,
            raw_edges in proptest::collection::vec((0usize..8, 0usize..8), 1..16),
            endpoints in (0usize..8, 0usize..8),
        ) {
            let mut adj = Adjacency::new(n);
            for (a, b) in raw_edges {
                let (a, b) = (a % n, b % n);
                if a != b {
                    adj.add_edge(a, b);
                }
            }
            let (src, dst) = (endpoints.0 % n, endpoints.1 % n);
            prop_assume!(src != dst);

            // Super-source limits the flow to one unit.
            let mut net = FlowNetwork::new(n + 1);
            for a in 0..n {
                for &b in adj.neighbors(a) {
                    net.add_edge(a, b, 1, 1);
                }
            }
            net.add_edge(n, src, 1, 0);
            let result = min_cost_max_flow(&mut net, n, dst);
            match adj.distance(src, dst) {
                Some(d) => {
                    prop_assert_eq!(result.flow, 1);
                    prop_assert_eq!(result.cost, d as i64);
                }
                None => prop_assert_eq!(result.flow, 0),
            }
        }

        /// Flow never exceeds the trivial cut bounds (out-degree of source,
        /// in-degree of sink) and cost is non-negative.
        #[test]
        fn flow_respects_degree_bounds(
            n in 2usize..=7,
            raw_edges in proptest::collection::vec((0usize..7, 0usize..7, 1i64..4), 1..20),
        ) {
            let mut net = FlowNetwork::new(n);
            let mut out_cap = vec![0i64; n];
            let mut in_cap = vec![0i64; n];
            for (a, b, cap) in raw_edges {
                let (a, b) = (a % n, b % n);
                if a != b {
                    net.add_edge(a, b, cap, 1);
                    out_cap[a] += cap;
                    in_cap[b] += cap;
                }
            }
            let result = min_cost_max_flow(&mut net, 0, n - 1);
            prop_assert!(result.flow <= out_cap[0]);
            prop_assert!(result.flow <= in_cap[n - 1]);
            prop_assert!(result.cost >= 0);
            prop_assert!(result.flow >= 0);
        }
    }
}
