//! Small undirected graph with BFS shortest paths.

use std::collections::VecDeque;

/// An undirected graph on nodes `0..n`, stored as adjacency lists.
///
/// Used to model trap topologies (the paper's L6 is [`Adjacency::line`]`(6)`)
/// and to answer the shortest-path queries both re-balancing policies need.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Adjacency {
    neighbors: Vec<Vec<usize>>,
}

impl Adjacency {
    /// Creates a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        Adjacency {
            neighbors: vec![Vec::new(); n],
        }
    }

    /// A path graph `0 — 1 — … — n−1` (the paper's "Lk" linear topologies).
    pub fn line(n: usize) -> Self {
        let mut g = Adjacency::new(n);
        for i in 1..n {
            g.add_edge(i - 1, i);
        }
        g
    }

    /// A cycle graph `0 — 1 — … — n−1 — 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n < 3` (a cycle needs at least 3 nodes).
    pub fn ring(n: usize) -> Self {
        assert!(n >= 3, "ring requires at least 3 nodes");
        let mut g = Adjacency::line(n);
        g.add_edge(n - 1, 0);
        g
    }

    /// A `rows × cols` grid graph in row-major node order.
    pub fn grid(rows: usize, cols: usize) -> Self {
        let mut g = Adjacency::new(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                let i = r * cols + c;
                if c + 1 < cols {
                    g.add_edge(i, i + 1);
                }
                if r + 1 < rows {
                    g.add_edge(i, i + cols);
                }
            }
        }
        g
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.neighbors.len()
    }

    /// Returns `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.neighbors.is_empty()
    }

    /// Adds the undirected edge `a — b`. Duplicate edges are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is out of range, or if `a == b` (self-loop).
    pub fn add_edge(&mut self, a: usize, b: usize) {
        assert!(
            a < self.len() && b < self.len(),
            "edge endpoint out of range"
        );
        assert_ne!(a, b, "self-loops are not allowed");
        if !self.neighbors[a].contains(&b) {
            self.neighbors[a].push(b);
            self.neighbors[b].push(a);
        }
    }

    /// Neighbours of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn neighbors(&self, node: usize) -> &[usize] {
        &self.neighbors[node]
    }

    /// Returns `true` if `a — b` is an edge.
    pub fn has_edge(&self, a: usize, b: usize) -> bool {
        a < self.len() && self.neighbors[a].contains(&b)
    }

    /// Total number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.neighbors.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Hop distance between `from` and `to`, or `None` if disconnected.
    pub fn distance(&self, from: usize, to: usize) -> Option<usize> {
        self.bfs(from, to, &|_| true).map(|p| p.len() - 1)
    }

    /// A shortest path from `from` to `to` inclusive, or `None` if
    /// disconnected. Ties are broken toward lower-indexed neighbours.
    pub fn shortest_path(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        self.bfs(from, to, &|_| true)
    }

    /// A shortest path whose *interior* nodes all satisfy `allowed`
    /// (endpoints are always permitted). Used to route shuttles around
    /// full traps.
    pub fn shortest_path_filtered(
        &self,
        from: usize,
        to: usize,
        allowed: impl Fn(usize) -> bool,
    ) -> Option<Vec<usize>> {
        self.bfs(from, to, &allowed)
    }

    fn bfs(
        &self,
        from: usize,
        to: usize,
        interior_allowed: &dyn Fn(usize) -> bool,
    ) -> Option<Vec<usize>> {
        if from >= self.len() || to >= self.len() {
            return None;
        }
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: Vec<Option<usize>> = vec![None; self.len()];
        let mut visited = vec![false; self.len()];
        let mut queue = VecDeque::new();
        visited[from] = true;
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            let mut nbrs = self.neighbors[u].clone();
            nbrs.sort_unstable();
            for v in nbrs {
                if visited[v] {
                    continue;
                }
                if v != to && !interior_allowed(v) {
                    continue;
                }
                visited[v] = true;
                prev[v] = Some(u);
                if v == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while let Some(p) = prev[cur] {
                        path.push(p);
                        cur = p;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(v);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_structure() {
        let g = Adjacency::line(6);
        assert_eq!(g.len(), 6);
        assert_eq!(g.edge_count(), 5);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(4, 5));
        assert!(!g.has_edge(0, 2));
    }

    #[test]
    fn ring_wraps() {
        let g = Adjacency::ring(5);
        assert_eq!(g.edge_count(), 5);
        assert_eq!(g.distance(0, 4), Some(1));
        assert_eq!(g.distance(0, 2), Some(2));
    }

    #[test]
    fn grid_structure() {
        let g = Adjacency::grid(2, 3);
        assert_eq!(g.len(), 6);
        assert_eq!(g.edge_count(), 7);
        assert_eq!(g.distance(0, 5), Some(3));
    }

    #[test]
    fn shortest_path_on_line() {
        let g = Adjacency::line(6);
        assert_eq!(g.shortest_path(3, 5).unwrap(), vec![3, 4, 5]);
        assert_eq!(g.shortest_path(5, 3).unwrap(), vec![5, 4, 3]);
        assert_eq!(g.shortest_path(2, 2).unwrap(), vec![2]);
    }

    #[test]
    fn filtered_path_routes_around_blocked_node() {
        let mut g = Adjacency::ring(6);
        // Direct path 0->1->2; block node 1, must go the long way.
        g.add_edge(0, 2); // add a chord so both routes exist
        let p = g
            .shortest_path_filtered(0, 2, |n| n != 1)
            .expect("path exists via chord");
        assert!(!p[1..p.len() - 1].contains(&1));
    }

    #[test]
    fn filtered_path_none_when_cut() {
        let g = Adjacency::line(4);
        assert_eq!(g.shortest_path_filtered(0, 3, |n| n != 2), None);
    }

    #[test]
    fn disconnected_returns_none() {
        let g = Adjacency::new(3);
        assert_eq!(g.distance(0, 2), None);
        assert_eq!(g.shortest_path(0, 2), None);
    }

    #[test]
    fn out_of_range_queries_return_none() {
        let g = Adjacency::line(3);
        assert_eq!(g.shortest_path(0, 9), None);
        assert_eq!(g.distance(9, 0), None);
    }

    #[test]
    fn duplicate_edges_ignored() {
        let mut g = Adjacency::new(2);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn rejects_self_loop() {
        let mut g = Adjacency::new(2);
        g.add_edge(1, 1);
    }
}

#[cfg(test)]
mod property_tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference all-pairs distances via Floyd–Warshall.
    #[allow(clippy::needless_range_loop)] // index-triple form is the canonical FW presentation
    fn floyd_warshall(g: &Adjacency) -> Vec<Vec<Option<usize>>> {
        let n = g.len();
        let mut d = vec![vec![None; n]; n];
        for i in 0..n {
            d[i][i] = Some(0);
            for &j in g.neighbors(i) {
                d[i][j] = Some(1);
            }
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    if let (Some(a), Some(b)) = (d[i][k], d[k][j]) {
                        if d[i][j].is_none_or(|c| a + b < c) {
                            d[i][j] = Some(a + b);
                        }
                    }
                }
            }
        }
        d
    }

    fn random_graph() -> impl Strategy<Value = Adjacency> {
        (
            2usize..=8,
            proptest::collection::vec((0usize..8, 0usize..8), 0..16),
        )
            .prop_map(|(n, raw_edges)| {
                let mut g = Adjacency::new(n);
                for (a, b) in raw_edges {
                    let (a, b) = (a % n, b % n);
                    if a != b {
                        g.add_edge(a, b);
                    }
                }
                g
            })
    }

    proptest! {
        /// BFS distances agree with the Floyd–Warshall reference on
        /// arbitrary graphs, including disconnected ones.
        #[test]
        #[allow(clippy::needless_range_loop)]
        fn bfs_matches_floyd_warshall(g in random_graph()) {
            let reference = floyd_warshall(&g);
            for i in 0..g.len() {
                for j in 0..g.len() {
                    prop_assert_eq!(g.distance(i, j), reference[i][j], "pair ({}, {})", i, j);
                }
            }
        }

        /// Every returned shortest path is a real path of the right length.
        #[test]
        fn shortest_paths_are_valid_walks(g in random_graph()) {
            for i in 0..g.len() {
                for j in 0..g.len() {
                    if let Some(p) = g.shortest_path(i, j) {
                        prop_assert_eq!(p[0], i);
                        prop_assert_eq!(*p.last().expect("non-empty"), j);
                        for w in p.windows(2) {
                            prop_assert!(g.has_edge(w[0], w[1]));
                        }
                        prop_assert_eq!(Some(p.len() - 1), g.distance(i, j));
                    }
                }
            }
        }
    }
}
