//! The route planner: multi-segment routes over the live machine state,
//! priced with min-cost max-flow.

use crate::policy::RouterPolicy;
use qccd_flow::{min_cost_max_flow, FlowNetwork};
use qccd_machine::{MachineState, TrapId, TrapTopology};

/// Per-segment congestion surcharge cap. Loads are clamped here so the
/// surcharge can only break ties between routes of equal hop count, never
/// lengthen a route (hop costs are scaled to dominate any load sum).
const LOAD_CAP: u32 = 15;

/// Decaying usage counters per directed shuttle segment, maintained by the
/// compiler across a compile and fed to [`plan_route`] as the congestion
/// price of each edge.
///
/// Counters saturate at an internal cap and halve on every [`decay`]
/// (called once per executed gate), so only *recent* traffic is priced.
/// Everything is deterministic.
///
/// [`decay`]: EdgeLoad::decay
#[derive(Debug, Clone)]
pub struct EdgeLoad {
    n: usize,
    counts: Vec<u32>,
}

impl EdgeLoad {
    /// A zero-load table for a machine with `num_traps` traps.
    pub fn new(num_traps: u32) -> Self {
        let n = num_traps as usize;
        EdgeLoad {
            n,
            counts: vec![0; n * n],
        }
    }

    /// Records one shuttle traversing `from → to`.
    pub fn record(&mut self, from: TrapId, to: TrapId) {
        if from.index() < self.n && to.index() < self.n {
            let c = &mut self.counts[from.index() * self.n + to.index()];
            *c = (*c + 1).min(LOAD_CAP);
        }
    }

    /// Current surcharge for `from → to`, in `[0, LOAD_CAP]`.
    pub fn load(&self, from: TrapId, to: TrapId) -> u32 {
        if from.index() < self.n && to.index() < self.n {
            self.counts[from.index() * self.n + to.index()]
        } else {
            0
        }
    }

    /// Halves every counter — call once per executed gate so only recent
    /// traffic is priced.
    pub fn decay(&mut self) {
        for c in &mut self.counts {
            *c /= 2;
        }
    }
}

/// One planned multi-segment route for one ion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlannedRoute {
    /// Trap path `from ..= dest`, inclusive.
    pub path: Vec<TrapId>,
    /// Number of *full* interior traps on the path at plan time — each one
    /// will force a re-balancing eviction when the ion reaches it.
    pub full_interior_traps: usize,
}

impl PlannedRoute {
    /// Hop count of the route.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    fn from_path(state: &MachineState, path: Vec<TrapId>) -> Self {
        let full = if path.len() > 2 {
            path[1..path.len() - 1]
                .iter()
                .filter(|&&t| state.is_full(t))
                .count()
        } else {
            0
        };
        PlannedRoute {
            path,
            full_interior_traps: full,
        }
    }
}

/// The hop budget for moving one ion from `from` to `dest` — the planner's
/// routed-path-length bound that replaces the old ad-hoc
/// `4 × traps + 8` bail-out. The budget is the planned distance plus
/// `2 × traps + 4` slack for re-routes (in the worst case every trap fills
/// up once mid-route and forces one re-plan). Exceeding it means routing
/// cannot make progress and the compiler reports
/// `RouteExhausted` instead of silently capping.
///
/// Returns `None` when `dest` is unreachable from `from`.
pub fn route_budget(topology: &TrapTopology, from: TrapId, dest: TrapId) -> Option<u32> {
    topology
        .distance(from, dest)
        .map(|d| d + 2 * topology.num_traps() + 4)
}

/// Plans a route for one ion currently in `from` toward `dest` over the
/// live `state`.
///
/// * [`RouterPolicy::Serial`] — the paper executor's choice: the shortest
///   path whose interior traps all have room, falling back to the
///   unconditional shortest path (whose full traps the caller re-balances).
/// * [`RouterPolicy::Congestion`] — min-cost max-flow pricing over a
///   node-split network: every segment costs one hop plus the `load`
///   surcharge, and a full interior trap costs `full_trap_penalty` extra
///   hops. The cheapest route wins; hop count strictly dominates the
///   surcharge, so congestion only arbitrates between otherwise-equal
///   routes, and a full-free detour is taken only while it beats evicting
///   through the full trap.
///
/// Returns `None` when `dest` is unreachable.
pub fn plan_route(
    policy: RouterPolicy,
    state: &MachineState,
    from: TrapId,
    dest: TrapId,
    load: &EdgeLoad,
) -> Option<PlannedRoute> {
    plan_route_weighted(policy, state, from, dest, load, None)
}

/// Per-segment weight hook for the priced planner: the relative cost of
/// traversing `from → to`, in abstract units (≥ 1). `None` (or returning
/// 1 everywhere) reproduces unit-hop pricing exactly; a timed-objective
/// compiler passes the timing model's relative hop durations here so
/// junction-heavy segments price by what the hardware actually pays.
/// Weights are scaled above the congestion surcharge, so the cost order
/// is: cheapest weighted distance (+ eviction penalties) first, colder
/// edges second.
pub type EdgeWeightFn<'a> = dyn Fn(TrapId, TrapId) -> u32 + 'a;

/// [`plan_route`] with an optional per-segment [`EdgeWeightFn`] pricing
/// edges by (relative) timed duration rather than unit hops. Only the
/// congestion policy consumes the weights — the serial policy is the
/// paper's executor and stays BFS-shortest by hop count.
pub fn plan_route_weighted(
    policy: RouterPolicy,
    state: &MachineState,
    from: TrapId,
    dest: TrapId,
    load: &EdgeLoad,
    weight: Option<&EdgeWeightFn>,
) -> Option<PlannedRoute> {
    let topology = state.spec().topology();
    if from == dest {
        return Some(PlannedRoute {
            path: vec![from],
            full_interior_traps: 0,
        });
    }
    let filtered = topology.shortest_path_filtered(from, dest, |t| t == dest || !state.is_full(t));
    match policy {
        RouterPolicy::Serial => filtered
            .or_else(|| topology.shortest_path(from, dest))
            .map(|p| PlannedRoute::from_path(state, p)),
        RouterPolicy::Congestion { full_trap_penalty } => {
            let Some(filtered) = filtered else {
                // Every route needs evictions: walk the serial router's
                // eviction path so the two routers share eviction behavior.
                return topology
                    .shortest_path(from, dest)
                    .map(|p| PlannedRoute::from_path(state, p));
            };
            match priced_route(state, from, dest, full_trap_penalty, load, weight) {
                Some(priced) => Some(priced),
                // MCMF found no route (cannot happen while BFS did; be
                // safe): fall back to the full-free detour.
                None => Some(PlannedRoute::from_path(state, filtered)),
            }
        }
    }
}

/// Plans a re-balancing eviction out of the full trap `blocked` under the
/// congestion policy: the destination *and* the route are chosen together
/// on the same priced node-split network [`plan_route`] uses, instead of
/// the paper's nearest-slot policy followed by an unpriced shortest path.
///
/// Every trap with excess capacity (other than `blocked` and the traps in
/// `avoid`) is a candidate sink; each physical segment costs one hop plus
/// its [`EdgeLoad`] surcharge, and crossing a *full* interior trap costs
/// `full_trap_penalty` extra hops. Hop count strictly dominates the
/// surcharge, so the destination is still a nearest non-full trap — but
/// ties break toward cold corridors and routes never thread a full trap
/// when an equal-cost detour exists.
///
/// Returns the chosen destination and the inclusive trap path
/// `blocked ..= destination`, or `None` when no candidate is reachable.
pub fn plan_eviction(
    state: &MachineState,
    blocked: TrapId,
    avoid: &[TrapId],
    load: &EdgeLoad,
    full_trap_penalty: u32,
) -> Option<(TrapId, Vec<TrapId>)> {
    plan_eviction_weighted(state, blocked, avoid, load, full_trap_penalty, None)
}

/// [`plan_eviction`] with an optional [`EdgeWeightFn`] pricing segments by
/// relative timed duration — the clock-objective compiler's eviction
/// planner, steering re-balancing traffic away from junction-heavy
/// corridors that cost more device time than their hop count suggests.
pub fn plan_eviction_weighted(
    state: &MachineState,
    blocked: TrapId,
    avoid: &[TrapId],
    load: &EdgeLoad,
    full_trap_penalty: u32,
    weight: Option<&EdgeWeightFn>,
) -> Option<(TrapId, Vec<TrapId>)> {
    let topology = state.spec().topology();
    let n = topology.num_traps() as usize;
    // One extra node past the trap halves and the source: the super-sink
    // gathering every candidate destination.
    let sink = 2 * n + 1;
    let mut net = priced_network(state, load, full_trap_penalty, |t| t != blocked, 1, weight);
    let mut candidates = 0usize;
    for t in topology.traps() {
        if t != blocked && !avoid.contains(&t) && !state.is_full(t) {
            net.add_edge(2 * t.index() + 1, sink, 1, 0);
            candidates += 1;
        }
    }
    if candidates == 0 {
        return None;
    }
    net.add_edge(2 * n, 2 * blocked.index(), 1, 0);
    let result = min_cost_max_flow(&mut net, 2 * n, sink);
    if result.flow != 1 {
        return None;
    }
    // Follow the unit of flow out-half to out-half until it exits to the
    // super-sink; the trap it exits from is the destination.
    let flows = net.forward_flows();
    let mut path = vec![blocked];
    let mut cur = blocked;
    loop {
        if flows
            .iter()
            .any(|&(s, t, f)| f > 0 && s == 2 * cur.index() + 1 && t == sink)
        {
            return Some((cur, path));
        }
        cur = flow_next_trap(&flows, cur, n)?;
        path.push(cur);
        if path.len() > n {
            return None; // defensive: malformed flow
        }
    }
}

/// Builds the priced node-split network [`priced_route`] and
/// [`plan_eviction`] share: nodes `2t` / `2t+1` are trap `t`'s in/out
/// halves (internal edge: the full-trap penalty when `penalized(t)` and
/// the trap is full, capacity 1 so routes are simple paths); each physical
/// segment costs `hop_scale + load`, where `hop_scale` exceeds any
/// possible load sum so cost order is: fewer `hops + penalty×full-traps`
/// first, colder edges second. Node `2n` is reserved for the caller's
/// super-source; `extra` further nodes follow it.
fn priced_network(
    state: &MachineState,
    load: &EdgeLoad,
    full_trap_penalty: u32,
    penalized: impl Fn(TrapId) -> bool,
    extra: usize,
    weight: Option<&EdgeWeightFn>,
) -> FlowNetwork {
    let topology = state.spec().topology();
    let n = topology.num_traps() as usize;
    // Any load sum is < n * (LOAD_CAP + 1); scale hop costs above it.
    let hop_scale = (n as i64 + 1) * i64::from(LOAD_CAP + 1);
    let mut net = FlowNetwork::new(2 * n + 1 + extra);
    for t in topology.traps() {
        let cost = if penalized(t) && state.is_full(t) {
            i64::from(full_trap_penalty) * hop_scale
        } else {
            0
        };
        net.add_edge(2 * t.index(), 2 * t.index() + 1, 1, cost);
        for nb in topology.neighbors(t) {
            let units = weight.map_or(1, |w| i64::from(w(t, nb).max(1)));
            let cost = units * hop_scale + i64::from(load.load(t, nb));
            net.add_edge(2 * t.index() + 1, 2 * nb.index(), 1, cost);
        }
    }
    net
}

/// Follows one unit of flow from `cur`'s out-half to the next trap's
/// in-half, if any.
fn flow_next_trap(flows: &[(usize, usize, i64)], cur: TrapId, n: usize) -> Option<TrapId> {
    flows.iter().find_map(|&(s, t, f)| {
        (f > 0 && s == 2 * cur.index() + 1 && t % 2 == 0 && t < 2 * n)
            .then_some(TrapId((t / 2) as u32))
    })
}

/// Minimum-cost route from `from` to `dest` on the shared
/// [`priced_network`]; full traps at the route's own endpoints are exempt
/// from the eviction penalty.
fn priced_route(
    state: &MachineState,
    from: TrapId,
    dest: TrapId,
    full_trap_penalty: u32,
    load: &EdgeLoad,
    weight: Option<&EdgeWeightFn>,
) -> Option<PlannedRoute> {
    let n = state.spec().topology().num_traps() as usize;
    let mut net = priced_network(
        state,
        load,
        full_trap_penalty,
        |t| t != from && t != dest,
        0,
        weight,
    );
    net.add_edge(2 * n, 2 * from.index(), 1, 0);
    let result = min_cost_max_flow(&mut net, 2 * n, 2 * dest.index() + 1);
    if result.flow != 1 {
        return None;
    }
    // Follow the unit of flow through the out-halves.
    let flows = net.forward_flows();
    let mut path = vec![from];
    let mut cur = from;
    while cur != dest {
        cur =
            flow_next_trap(&flows, cur, n).expect("flow conservation guarantees an outgoing unit");
        path.push(cur);
        if path.len() > n {
            return None; // defensive: malformed flow
        }
    }
    Some(PlannedRoute::from_path(state, path))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_machine::{InitialMapping, MachineSpec, TrapTopology};

    /// Ring of `n` traps, capacity 3/comm 1, with the given occupancies.
    fn ring_state(n: u32, occupancy: &[u32]) -> MachineState {
        let spec = MachineSpec::new(TrapTopology::ring(n), 3, 1).unwrap();
        let mut traps = Vec::new();
        for (t, &occ) in occupancy.iter().enumerate() {
            for _ in 0..occ.min(2) {
                traps.push(TrapId(t as u32));
            }
        }
        let mapping = InitialMapping::from_traps(&spec, traps).unwrap();
        let mut state = MachineState::with_mapping(&spec, &mapping).unwrap();
        // Top up traps that need to be genuinely full (occupancy 3 >
        // initial capacity 2) by shuttling an ion in from the next trap
        // over; the donor's exact occupancy does not matter to the tests.
        for (t, &occ) in occupancy.iter().enumerate() {
            if occ >= 3 {
                let nb = TrapId(((t + 1) % n as usize) as u32);
                let spare = state.chain(nb)[0];
                state.shuttle(spare, TrapId(t as u32)).unwrap();
            }
        }
        state
    }

    #[test]
    fn serial_prefers_full_free_detour() {
        // Ring of 6; trap 1 full; 0 → 2 must go the long way for serial.
        let state = ring_state(6, &[1, 3, 1, 1, 1, 1]);
        assert!(state.is_full(TrapId(1)));
        let load = EdgeLoad::new(6);
        let r = plan_route(RouterPolicy::Serial, &state, TrapId(0), TrapId(2), &load).unwrap();
        assert_eq!(r.hops(), 4, "0-5-4-3-2 around the full trap");
        assert_eq!(r.full_interior_traps, 0);
    }

    #[test]
    fn congestion_matches_serial_on_cheap_detours() {
        // Detour excess (2 hops) is far below the penalty (6): both
        // routers detour, and the planner reports no eviction needed.
        let state = ring_state(6, &[1, 3, 1, 1, 1, 1]);
        let load = EdgeLoad::new(6);
        let r = plan_route(
            RouterPolicy::congestion(),
            &state,
            TrapId(0),
            TrapId(2),
            &load,
        )
        .unwrap();
        assert_eq!(r.hops(), 4);
        assert_eq!(r.full_interior_traps, 0);
    }

    #[test]
    fn congestion_evicts_through_full_trap_when_detour_is_too_long() {
        // Ring of 16; trap 1 full; 0 → 2. The detour costs 14 hops, the
        // pass-through 2 hops + penalty 6 = 8: the congestion router
        // crosses the full trap (one eviction) where serial would walk the
        // 14-hop detour.
        let mut occ = vec![1u32; 16];
        occ[1] = 3;
        let state = ring_state(16, &occ);
        assert!(state.is_full(TrapId(1)));
        let load = EdgeLoad::new(16);
        let serial = plan_route(RouterPolicy::Serial, &state, TrapId(0), TrapId(2), &load).unwrap();
        assert_eq!(serial.hops(), 14);
        let congestion = plan_route(
            RouterPolicy::congestion(),
            &state,
            TrapId(0),
            TrapId(2),
            &load,
        )
        .unwrap();
        assert_eq!(congestion.hops(), 2, "pass through the full trap");
        assert_eq!(congestion.full_interior_traps, 1);
    }

    #[test]
    fn load_breaks_ties_toward_cold_edges() {
        // Ring of 6, nobody full: 0 → 3 has two 3-hop routes. Heat the
        // clockwise first segment; the planner must take the other one.
        let state = ring_state(6, &[1, 1, 1, 1, 1, 1]);
        let mut load = EdgeLoad::new(6);
        load.record(TrapId(0), TrapId(1));
        let r = plan_route(
            RouterPolicy::congestion(),
            &state,
            TrapId(0),
            TrapId(3),
            &load,
        )
        .unwrap();
        assert_eq!(r.hops(), 3);
        assert_eq!(r.path[1], TrapId(5), "cold counter-clockwise route");
    }

    #[test]
    fn load_never_lengthens_a_route() {
        // Saturate every edge of the short route: the planner still takes
        // it because hop count dominates the surcharge.
        let state = ring_state(6, &[1, 1, 1, 1, 1, 1]);
        let mut load = EdgeLoad::new(6);
        for _ in 0..100 {
            load.record(TrapId(0), TrapId(1));
            load.record(TrapId(1), TrapId(2));
        }
        let r = plan_route(
            RouterPolicy::congestion(),
            &state,
            TrapId(0),
            TrapId(2),
            &load,
        )
        .unwrap();
        assert_eq!(r.hops(), 2, "hot 2-hop route still beats a 4-hop one");
    }

    #[test]
    fn edge_weights_reroute_around_expensive_segments() {
        // Ring of 6, 0 → 3: two 3-hop routes. Weighting the clockwise
        // first segment 4x (a junction-priced corridor) must push the
        // planner counter-clockwise even with zero congestion — and a
        // unit-weight hook must reproduce the unweighted choice exactly.
        let state = ring_state(6, &[1, 1, 1, 1, 1, 1]);
        let load = EdgeLoad::new(6);
        let heavy = |a: TrapId, b: TrapId| -> u32 {
            if (a, b) == (TrapId(0), TrapId(1)) || (a, b) == (TrapId(1), TrapId(0)) {
                4
            } else {
                1
            }
        };
        let r = plan_route_weighted(
            RouterPolicy::congestion(),
            &state,
            TrapId(0),
            TrapId(3),
            &load,
            Some(&heavy),
        )
        .unwrap();
        assert_eq!(r.hops(), 3);
        assert_eq!(r.path[1], TrapId(5), "weighted route avoids the 4x edge");
        let unit = |_: TrapId, _: TrapId| 1u32;
        let plain = plan_route(
            RouterPolicy::congestion(),
            &state,
            TrapId(0),
            TrapId(3),
            &load,
        );
        let unitized = plan_route_weighted(
            RouterPolicy::congestion(),
            &state,
            TrapId(0),
            TrapId(3),
            &load,
            Some(&unit),
        );
        assert_eq!(plain, unitized, "unit weights reproduce unweighted pricing");
    }

    #[test]
    fn edge_load_decays_and_saturates() {
        let mut load = EdgeLoad::new(3);
        for _ in 0..100 {
            load.record(TrapId(0), TrapId(1));
        }
        assert_eq!(load.load(TrapId(0), TrapId(1)), LOAD_CAP);
        load.decay();
        assert_eq!(load.load(TrapId(0), TrapId(1)), LOAD_CAP / 2);
        assert_eq!(load.load(TrapId(1), TrapId(0)), 0);
    }

    #[test]
    fn priced_eviction_picks_nearest_candidate_and_cold_route() {
        // Ring of 6, trap 0 full: both neighbours are 1 hop away. Heating
        // the 0→1 segment must steer the eviction to trap 5.
        let state = ring_state(6, &[3, 1, 1, 1, 1, 1]);
        assert!(state.is_full(TrapId(0)));
        let mut load = EdgeLoad::new(6);
        load.record(TrapId(0), TrapId(1));
        let (dest, route) = plan_eviction(&state, TrapId(0), &[], &load, 6).unwrap();
        assert_eq!(dest, TrapId(5), "cold neighbour wins the tie");
        assert_eq!(route, vec![TrapId(0), TrapId(5)]);
    }

    #[test]
    fn priced_eviction_respects_avoid_and_detours_around_full_traps() {
        // Ring of 8 with comm capacity 0 so traps 0 and 1 start genuinely
        // full; trap 7 is on the avoid list. Clockwise candidates sit
        // behind full trap 1 (2 hops + penalty 6); counter-clockwise,
        // trap 6 is 2 clean hops away *through* avoided trap 7 — avoid
        // only vetoes destinations, not interior crossings.
        let spec = MachineSpec::new(TrapTopology::ring(8), 2, 0).unwrap();
        let mut traps = vec![TrapId(0), TrapId(0), TrapId(1), TrapId(1)];
        traps.extend((2..8).map(TrapId));
        let mapping = InitialMapping::from_traps(&spec, traps).unwrap();
        let state = MachineState::with_mapping(&spec, &mapping).unwrap();
        assert!(state.is_full(TrapId(0)) && state.is_full(TrapId(1)));
        let load = EdgeLoad::new(8);
        let (dest, route) = plan_eviction(&state, TrapId(0), &[TrapId(7)], &load, 6).unwrap();
        assert_eq!(dest, TrapId(6));
        assert_eq!(route, vec![TrapId(0), TrapId(7), TrapId(6)]);
        // No candidate at all: every other trap avoided.
        let all: Vec<TrapId> = (1..8).map(TrapId).collect();
        assert_eq!(plan_eviction(&state, TrapId(0), &all, &load, 6), None);
    }

    #[test]
    fn budget_exceeds_distance() {
        let topo = TrapTopology::linear(6);
        assert_eq!(route_budget(&topo, TrapId(0), TrapId(5)), Some(5 + 12 + 4));
        let disconnected = TrapTopology::try_custom(3, &[(0, 1)]).unwrap();
        assert_eq!(route_budget(&disconnected, TrapId(0), TrapId(2)), None);
    }

    #[test]
    fn unreachable_destination_returns_none() {
        let spec = MachineSpec::new(TrapTopology::try_custom(3, &[(0, 1)]).unwrap(), 3, 1).unwrap();
        let mapping = InitialMapping::from_traps(&spec, vec![TrapId(0)]).unwrap();
        let state = MachineState::with_mapping(&spec, &mapping).unwrap();
        let load = EdgeLoad::new(3);
        for policy in [RouterPolicy::Serial, RouterPolicy::congestion()] {
            assert_eq!(
                plan_route(policy, &state, TrapId(0), TrapId(2), &load),
                None
            );
        }
        // Trivial route: already there.
        let r = plan_route(RouterPolicy::Serial, &state, TrapId(0), TrapId(0), &load).unwrap();
        assert_eq!(r.hops(), 0);
    }
}
