//! Route-selection policies.

use serde::{Deserialize, Serialize};
use std::fmt;

/// How shuttle routes are chosen and how transport is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// The serial-transport executor both the paper and the Murali et al.
    /// baseline assume: one ion moves at a time, hop-by-hop along the
    /// shortest path, detouring around full traps whenever *any* detour
    /// exists and re-balancing otherwise. Transport depth equals shuttle
    /// count. This is the default, preserving paper parity bit-for-bit.
    #[default]
    Serial,
    /// Congestion-aware routing plus concurrent transport:
    ///
    /// * routes are priced with min-cost max-flow — each segment costs one
    ///   hop plus a congestion surcharge from recent use, and passing
    ///   through a full interior trap costs `full_trap_penalty` extra hops
    ///   (an estimate of one re-balancing eviction). The planner detours
    ///   around a full trap only while the detour is cheaper than evicting
    ///   through it; pathologically long detours (longer than
    ///   `full_trap_penalty` extra hops per full trap) fall back to the
    ///   pass-through-and-evict route the serial router would take when no
    ///   detour exists at all.
    /// * the emitted flat schedule is packed into rounds of edge-disjoint
    ///   concurrent shuttles; the round count (transport depth) becomes
    ///   the timing-relevant metric.
    Congestion {
        /// Extra cost, in hops, of crossing one full interior trap —
        /// the planner's price for the re-balancing eviction that crossing
        /// would force. [`RouterPolicy::DEFAULT_FULL_TRAP_PENALTY`] is the
        /// tuned default.
        full_trap_penalty: u32,
    },
}

impl RouterPolicy {
    /// Default eviction-cost estimate: a typical eviction costs one
    /// destination-search plus 1-2 eviction hops and often cascades, so a
    /// detour of up to 6 extra hops is preferred over crossing one full
    /// trap.
    pub const DEFAULT_FULL_TRAP_PENALTY: u32 = 6;

    /// The congestion router with the default full-trap penalty.
    pub fn congestion() -> Self {
        RouterPolicy::Congestion {
            full_trap_penalty: Self::DEFAULT_FULL_TRAP_PENALTY,
        }
    }

    /// Returns `true` for the congestion-aware policy.
    pub fn is_congestion(self) -> bool {
        matches!(self, RouterPolicy::Congestion { .. })
    }
}

impl fmt::Display for RouterPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterPolicy::Serial => write!(f, "serial"),
            RouterPolicy::Congestion { full_trap_penalty } => {
                write!(f, "congestion(penalty={full_trap_penalty})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_serial() {
        assert_eq!(RouterPolicy::default(), RouterPolicy::Serial);
        assert!(!RouterPolicy::Serial.is_congestion());
        assert!(RouterPolicy::congestion().is_congestion());
    }

    #[test]
    fn display_forms() {
        assert_eq!(RouterPolicy::Serial.to_string(), "serial");
        assert_eq!(
            RouterPolicy::congestion().to_string(),
            "congestion(penalty=6)"
        );
    }
}
