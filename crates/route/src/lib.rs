//! Shuttle transport for QCCD machines: route planning and concurrent
//! transport scheduling.
//!
//! The compiler in `qccd-core` decides *which* ion must reach *which* trap;
//! this crate owns *how* it gets there and *when* each hop runs:
//!
//! * [`RouterPolicy`] — the route-selection policy. [`RouterPolicy::Serial`]
//!   reproduces the paper's executor (one ion at a time, hop-by-hop along
//!   the shortest path, detouring around full traps whenever any detour
//!   exists). [`RouterPolicy::Congestion`] prices routes with
//!   `qccd-flow`'s min-cost max-flow: a full interior trap costs a
//!   configurable eviction penalty and recently-used shuttle segments cost
//!   a congestion surcharge, so the planner detours around full traps only
//!   while the detour is cheaper than a re-balancing eviction and spreads
//!   equal-length routes across cold edges.
//! * [`plan_route`] / [`PlannedRoute`] — one multi-segment route for one
//!   ion over the live [`MachineState`](qccd_machine::MachineState).
//! * [`EdgeLoad`] — the decaying per-segment usage counters that feed the
//!   congestion surcharge.
//! * [`TransportSchedule`] — a compiled flat
//!   [`Schedule`](qccd_machine::Schedule) re-expressed as *rounds* of
//!   edge-disjoint concurrent shuttles, with full replay validation
//!   against the machine's per-edge occupancy and junction rules. The
//!   round count is the schedule's *transport depth* — the
//!   timing-relevant shuttle metric once transport runs concurrently.
//!
//! # Example
//!
//! ```
//! use qccd_machine::{InitialMapping, MachineSpec, MachineState, TrapId};
//! use qccd_route::{plan_route, EdgeLoad, RouterPolicy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = MachineSpec::new(qccd_machine::TrapTopology::ring(6), 4, 1)?;
//! let mapping = InitialMapping::round_robin(&spec, 6)?;
//! let state = MachineState::with_mapping(&spec, &mapping)?;
//! let load = EdgeLoad::new(spec.num_traps());
//! let route = plan_route(
//!     RouterPolicy::default(),
//!     &state,
//!     TrapId(0),
//!     TrapId(3),
//!     &load,
//! )
//! .expect("ring is connected");
//! assert_eq!(route.path.first(), Some(&TrapId(0)));
//! assert_eq!(route.path.last(), Some(&TrapId(3)));
//! # Ok(())
//! # }
//! ```

mod backfill;
mod planner;
mod policy;
mod transport;

pub use backfill::{BackfillRules, CreditRule, Placement, RoundBackfill};
pub use planner::{
    plan_eviction, plan_eviction_weighted, plan_route, plan_route_weighted, route_budget, EdgeLoad,
    EdgeWeightFn, PlannedRoute,
};
pub use policy::RouterPolicy;
pub use transport::{TransportError, TransportRound, TransportSchedule};
