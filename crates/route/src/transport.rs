//! Concurrent transport scheduling: packing a flat schedule's shuttle hops
//! into rounds of edge-disjoint simultaneous moves.

use qccd_machine::{
    MachineError, MachineSpec, MachineState, Operation, Schedule, ShuttleMove, TrapId,
};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// One round of concurrent shuttles: every move runs simultaneously, on
/// pairwise-disjoint shuttle-path segments, under the machine's junction
/// rules (see `MachineState::apply_round`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportRound {
    /// The member moves, in the order they appear in the flat schedule.
    pub moves: Vec<ShuttleMove>,
}

/// A compiled schedule's shuttle traffic re-expressed as concurrent
/// transport rounds.
///
/// The rounds partition the flat schedule's shuttle operations *in order*:
/// each round covers a consecutive run of shuttle ops (never spanning a
/// gate), so replaying rounds between the schedule's gates reproduces the
/// serial schedule's final ion placement exactly. The round count
/// ([`depth`](TransportSchedule::depth)) is the schedule's transport depth —
/// the timing-relevant shuttle metric once transport runs concurrently.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportSchedule {
    /// The rounds, in execution order.
    pub rounds: Vec<TransportRound>,
}

impl TransportSchedule {
    /// Number of rounds — the schedule's concurrent transport depth.
    pub fn depth(&self) -> usize {
        self.rounds.len()
    }

    /// Total moves across all rounds (equals the flat shuttle count).
    pub fn num_moves(&self) -> usize {
        self.rounds.iter().map(|r| r.moves.len()).sum()
    }

    /// Widest round — the peak transport parallelism achieved.
    pub fn max_round_width(&self) -> usize {
        self.rounds.iter().map(|r| r.moves.len()).max().unwrap_or(0)
    }

    /// The serial transport schedule: one hop per round (the paper's
    /// one-ion-at-a-time executor). Depth equals shuttle count.
    pub fn pack_serial(schedule: &Schedule) -> Self {
        let rounds = schedule
            .operations
            .iter()
            .filter_map(|op| match *op {
                Operation::Shuttle { ion, from, to } => Some(TransportRound {
                    moves: vec![ShuttleMove { ion, from, to }],
                }),
                Operation::Gate { .. } => None,
            })
            .collect();
        TransportSchedule { rounds }
    }

    /// Greedily packs consecutive shuttle hops into concurrent rounds.
    ///
    /// Walks the flat operation stream replaying the machine state; each
    /// shuttle joins the current round when it is compatible (fresh
    /// segment, fresh ion, free junction, capacity after departures) and
    /// opens a new round otherwise. Gates close the current round — a
    /// round never spans a gate, so gate-time ion placement is untouched.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if `schedule` does not replay legally on
    /// `spec` (compile-validated schedules always do).
    pub fn pack_concurrent(
        schedule: &Schedule,
        spec: &MachineSpec,
    ) -> Result<Self, TransportError> {
        let mut state = MachineState::with_mapping(spec, &schedule.initial_mapping)
            .map_err(TransportError::Machine)?;
        let num_traps = spec.num_traps() as usize;
        let mut rounds: Vec<TransportRound> = Vec::new();
        let mut cur: Vec<ShuttleMove> = Vec::new();
        let mut segments: Vec<(TrapId, TrapId)> = Vec::new();
        let mut arrivals = vec![0u32; num_traps];
        let mut departures = vec![0u32; num_traps];

        let close = |state: &mut MachineState,
                     rounds: &mut Vec<TransportRound>,
                     cur: &mut Vec<ShuttleMove>,
                     segments: &mut Vec<(TrapId, TrapId)>,
                     arrivals: &mut Vec<u32>,
                     departures: &mut Vec<u32>|
         -> Result<(), TransportError> {
            if cur.is_empty() {
                return Ok(());
            }
            state.apply_round(cur).map_err(TransportError::Machine)?;
            rounds.push(TransportRound {
                moves: std::mem::take(cur),
            });
            segments.clear();
            arrivals.iter_mut().for_each(|a| *a = 0);
            departures.iter_mut().for_each(|d| *d = 0);
            Ok(())
        };

        for op in &schedule.operations {
            match *op {
                Operation::Gate { .. } => close(
                    &mut state,
                    &mut rounds,
                    &mut cur,
                    &mut segments,
                    &mut arrivals,
                    &mut departures,
                )?,
                Operation::Shuttle { ion, from, to } => {
                    let m = ShuttleMove { ion, from, to };
                    let seg = m.segment();
                    // Junction rule: at most one merge per trap per round,
                    // so `to` has no other arrivals and the capacity check
                    // only needs this round's departures out of it.
                    let fits = !segments.contains(&seg)
                        && !cur.iter().any(|c| c.ion == ion)
                        && departures[from.index()] == 0
                        && arrivals[to.index()] == 0
                        && state.occupancy(to) < spec.total_capacity() + departures[to.index()];
                    if !fits {
                        close(
                            &mut state,
                            &mut rounds,
                            &mut cur,
                            &mut segments,
                            &mut arrivals,
                            &mut departures,
                        )?;
                    }
                    segments.push(seg);
                    arrivals[to.index()] += 1;
                    departures[from.index()] += 1;
                    cur.push(m);
                }
            }
        }
        close(
            &mut state,
            &mut rounds,
            &mut cur,
            &mut segments,
            &mut arrivals,
            &mut departures,
        )?;
        Ok(TransportSchedule { rounds })
    }

    /// Replay-validates the rounds against the flat `schedule` on `spec`:
    ///
    /// 1. the rounds partition the schedule's shuttle ops in order, never
    ///    spanning a gate;
    /// 2. every round is legal under the machine's concurrent-round rules
    ///    (edge-disjoint segments, junction limits, capacity after
    ///    departures), replayed via `MachineState::apply_round`;
    /// 3. the final ion→trap mapping equals the serial replay's.
    ///
    /// # Errors
    ///
    /// The first violated rule, as a [`TransportError`].
    pub fn validate(&self, schedule: &Schedule, spec: &MachineSpec) -> Result<(), TransportError> {
        let mut state = MachineState::with_mapping(spec, &schedule.initial_mapping)
            .map_err(TransportError::Machine)?;
        let mut serial = state.clone();
        let mut round_idx = 0usize;
        let mut pos = 0usize;
        for (op_index, op) in schedule.operations.iter().enumerate() {
            match *op {
                Operation::Gate { .. } => {
                    if pos != 0 {
                        return Err(TransportError::RoundSpansGate { round: round_idx });
                    }
                }
                Operation::Shuttle { ion, from, to } => {
                    let expected = ShuttleMove { ion, from, to };
                    let round =
                        self.rounds
                            .get(round_idx)
                            .ok_or(TransportError::MoveCountMismatch {
                                rounds: self.num_moves(),
                                schedule: schedule.stats().shuttles,
                            })?;
                    if round.moves.get(pos) != Some(&expected) {
                        return Err(TransportError::MoveMismatch { op_index });
                    }
                    serial.shuttle(ion, to).map_err(TransportError::Machine)?;
                    pos += 1;
                    if pos == round.moves.len() {
                        state
                            .apply_round(&round.moves)
                            .map_err(TransportError::Machine)?;
                        round_idx += 1;
                        pos = 0;
                    }
                }
            }
        }
        if pos != 0 || round_idx != self.rounds.len() {
            return Err(TransportError::MoveCountMismatch {
                rounds: self.num_moves(),
                schedule: schedule.stats().shuttles,
            });
        }
        for ion in 0..state.num_ions() {
            let ion = qccd_machine::IonId(ion);
            if state.trap_of(ion) != serial.trap_of(ion) {
                return Err(TransportError::FinalMappingDiverged { ion });
            }
        }
        Ok(())
    }
}

/// A violated transport-schedule invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// A machine-level rule was violated while replaying.
    Machine(MachineError),
    /// A round's move disagrees with the flat schedule's shuttle op.
    MoveMismatch {
        /// Index of the offending operation in the flat schedule.
        op_index: usize,
    },
    /// The rounds do not cover exactly the schedule's shuttle ops.
    MoveCountMismatch {
        /// Moves in the transport schedule.
        rounds: usize,
        /// Shuttle ops in the flat schedule.
        schedule: usize,
    },
    /// A gate executes in the middle of a round.
    RoundSpansGate {
        /// The interrupted round.
        round: usize,
    },
    /// Concurrent replay ended with an ion in a different trap than the
    /// serial replay.
    FinalMappingDiverged {
        /// The diverged ion.
        ion: qccd_machine::IonId,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Machine(e) => write!(f, "illegal round: {e}"),
            TransportError::MoveMismatch { op_index } => {
                write!(f, "round move disagrees with schedule op {op_index}")
            }
            TransportError::MoveCountMismatch { rounds, schedule } => write!(
                f,
                "transport schedule has {rounds} moves but the schedule has {schedule} shuttles"
            ),
            TransportError::RoundSpansGate { round } => {
                write!(f, "round {round} spans a gate execution")
            }
            TransportError::FinalMappingDiverged { ion } => {
                write!(f, "concurrent replay leaves {ion} in a different trap")
            }
        }
    }
}

impl Error for TransportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransportError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_machine::{InitialMapping, IonId};

    fn sh(ion: u32, from: u32, to: u32) -> Operation {
        Operation::Shuttle {
            ion: IonId(ion),
            from: TrapId(from),
            to: TrapId(to),
        }
    }

    /// L4, capacity 4/comm 1, ions 0-2 in T0, 3-5 in T1, 6-8 in T2.
    fn fixture() -> (MachineSpec, InitialMapping) {
        let spec = MachineSpec::linear(4, 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 9).unwrap();
        (spec, mapping)
    }

    #[test]
    fn serial_packing_is_one_hop_per_round() {
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1), sh(5, 1, 2)]);
        let t = TransportSchedule::pack_serial(&schedule);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.max_round_width(), 1);
        t.validate(&schedule, &spec).unwrap();
    }

    #[test]
    fn concurrent_packing_merges_disjoint_hops() {
        // Segments (0,1), (2,3) and (1,2) are pairwise disjoint with
        // distinct ions and compatible junctions: all three hops share one
        // round. The fourth reuses segment (0,1) and opens a second.
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(
            mapping,
            vec![sh(2, 0, 1), sh(8, 2, 3), sh(5, 1, 2), sh(1, 0, 1)],
        );
        let t = TransportSchedule::pack_concurrent(&schedule, &spec).unwrap();
        assert_eq!(t.num_moves(), 4);
        assert_eq!(t.depth(), 2, "three concurrent hops, then one");
        assert_eq!(t.max_round_width(), 3);
        t.validate(&schedule, &spec).unwrap();
    }

    #[test]
    fn conflicting_hops_stay_serial() {
        // Same segment back-to-back: must split into two rounds.
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1), sh(2, 1, 0)]);
        let t = TransportSchedule::pack_concurrent(&schedule, &spec).unwrap();
        assert_eq!(t.depth(), 2);
        t.validate(&schedule, &spec).unwrap();
    }

    #[test]
    fn gates_close_rounds() {
        use qccd_machine::Operation::Gate;
        use qccd_machine::TrapId;
        let (spec, mapping) = fixture();
        // A gate between two otherwise-compatible hops forces two rounds.
        let ops = vec![
            sh(2, 0, 1),
            Gate {
                gate: qccd_circuit::GateId(0),
                trap: TrapId(1),
            },
            sh(8, 2, 3),
        ];
        let schedule = Schedule::new(mapping, ops);
        let t = TransportSchedule::pack_concurrent(&schedule, &spec).unwrap();
        assert_eq!(t.depth(), 2);
        t.validate(&schedule, &spec).unwrap();
    }

    #[test]
    fn validate_rejects_reordered_moves() {
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1), sh(8, 2, 3)]);
        let t = TransportSchedule {
            rounds: vec![TransportRound {
                moves: vec![
                    ShuttleMove {
                        ion: IonId(8),
                        from: TrapId(2),
                        to: TrapId(3),
                    },
                    ShuttleMove {
                        ion: IonId(2),
                        from: TrapId(0),
                        to: TrapId(1),
                    },
                ],
            }],
        };
        assert_eq!(
            t.validate(&schedule, &spec).unwrap_err(),
            TransportError::MoveMismatch { op_index: 0 }
        );
    }

    #[test]
    fn validate_rejects_missing_rounds() {
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1)]);
        let t = TransportSchedule { rounds: vec![] };
        assert!(matches!(
            t.validate(&schedule, &spec).unwrap_err(),
            TransportError::MoveCountMismatch { .. }
        ));
    }
}
