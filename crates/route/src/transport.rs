//! Concurrent transport scheduling: packing a flat schedule's shuttle hops
//! into rounds of edge-disjoint simultaneous moves.

use qccd_machine::{
    IonId, MachineError, MachineSpec, MachineState, Operation, Schedule, ShuttleMove, TrapId,
};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Width (member moves) of every sealed concurrent round — the
/// parallelism *distribution* behind the mean the depth figure implies
/// (surfaced as p50/p99 in `--profile` reports).
static ROUND_WIDTH: qccd_obs::Histogram = qccd_obs::Histogram::new("route.round_width");

/// One round of concurrent shuttles: every move runs simultaneously, on
/// pairwise-disjoint shuttle-path segments, under the machine's junction
/// rules (see `MachineState::apply_round`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportRound {
    /// The member moves, in the order they appear in the flat schedule.
    pub moves: Vec<ShuttleMove>,
}

/// A compiled schedule's shuttle traffic re-expressed as concurrent
/// transport rounds.
///
/// The rounds partition the flat schedule's shuttle operations *in order*:
/// each round covers a consecutive run of shuttle ops (never spanning a
/// gate), so replaying rounds between the schedule's gates reproduces the
/// serial schedule's final ion placement exactly. The round count
/// ([`depth`](TransportSchedule::depth)) is the schedule's transport depth —
/// the timing-relevant shuttle metric once transport runs concurrently.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransportSchedule {
    /// The rounds, in execution order.
    pub rounds: Vec<TransportRound>,
}

impl TransportSchedule {
    /// Number of rounds — the schedule's concurrent transport depth.
    pub fn depth(&self) -> usize {
        self.rounds.len()
    }

    /// Total moves across all rounds (equals the flat shuttle count).
    pub fn num_moves(&self) -> usize {
        self.rounds.iter().map(|r| r.moves.len()).sum()
    }

    /// Widest round — the peak transport parallelism achieved.
    pub fn max_round_width(&self) -> usize {
        self.rounds.iter().map(|r| r.moves.len()).max().unwrap_or(0)
    }

    /// The serial transport schedule: one hop per round (the paper's
    /// one-ion-at-a-time executor). Depth equals shuttle count.
    pub fn pack_serial(schedule: &Schedule) -> Self {
        let rounds = schedule
            .operations
            .iter()
            .filter_map(|op| match *op {
                Operation::Shuttle { ion, from, to } => Some(TransportRound {
                    moves: vec![ShuttleMove { ion, from, to }],
                }),
                Operation::Gate { .. } => None,
            })
            .collect();
        TransportSchedule { rounds }
    }

    /// Greedily packs consecutive shuttle hops into concurrent rounds.
    ///
    /// Walks the flat operation stream replaying the machine state; each
    /// shuttle joins the current round when it is compatible (fresh
    /// segment, fresh ion, free junction, capacity after departures) and
    /// opens a new round otherwise. Gates close the current round — a
    /// round never spans a gate, so gate-time ion placement is untouched.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if `schedule` does not replay legally on
    /// `spec` (compile-validated schedules always do).
    pub fn pack_concurrent(
        schedule: &Schedule,
        spec: &MachineSpec,
    ) -> Result<Self, TransportError> {
        let state = MachineState::with_mapping(spec, &schedule.initial_mapping)
            .map_err(TransportError::Machine)?;
        Self::pack_concurrent_from(state, &schedule.operations)
    }

    /// [`pack_concurrent`](Self::pack_concurrent) starting from an
    /// arbitrary live [`MachineState`] instead of an initial mapping —
    /// the form a mid-schedule optimizer needs, where trap occupancies can
    /// exceed what an `InitialMapping` may load. `ops` is the operation
    /// stream to pack from that point on; the round-legality rules are
    /// identical.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if `ops` does not replay legally from
    /// `state`.
    pub fn pack_concurrent_from(
        mut state: MachineState,
        ops: &[Operation],
    ) -> Result<Self, TransportError> {
        let spec = state.spec().clone();
        let num_traps = spec.num_traps() as usize;
        let mut rounds: Vec<TransportRound> = Vec::new();
        let mut cur: Vec<ShuttleMove> = Vec::new();
        let mut segments: Vec<(TrapId, TrapId)> = Vec::new();
        let mut arrivals = vec![0u32; num_traps];
        let mut departures = vec![0u32; num_traps];

        let close = |state: &mut MachineState,
                     rounds: &mut Vec<TransportRound>,
                     cur: &mut Vec<ShuttleMove>,
                     segments: &mut Vec<(TrapId, TrapId)>,
                     arrivals: &mut Vec<u32>,
                     departures: &mut Vec<u32>|
         -> Result<(), TransportError> {
            if cur.is_empty() {
                return Ok(());
            }
            state.apply_round(cur).map_err(TransportError::Machine)?;
            ROUND_WIDTH.record(cur.len() as u64);
            rounds.push(TransportRound {
                moves: std::mem::take(cur),
            });
            segments.clear();
            arrivals.iter_mut().for_each(|a| *a = 0);
            departures.iter_mut().for_each(|d| *d = 0);
            Ok(())
        };

        for op in ops {
            match *op {
                Operation::Gate { .. } => close(
                    &mut state,
                    &mut rounds,
                    &mut cur,
                    &mut segments,
                    &mut arrivals,
                    &mut departures,
                )?,
                Operation::Shuttle { ion, from, to } => {
                    let m = ShuttleMove { ion, from, to };
                    let seg = m.segment();
                    // Junction rule: at most one merge per trap per round,
                    // so `to` has no other arrivals and the capacity check
                    // only needs this round's departures out of it.
                    let fits = !segments.contains(&seg)
                        && !cur.iter().any(|c| c.ion == ion)
                        && departures[from.index()] == 0
                        && arrivals[to.index()] == 0
                        && state.occupancy(to) < spec.total_capacity() + departures[to.index()];
                    if !fits {
                        close(
                            &mut state,
                            &mut rounds,
                            &mut cur,
                            &mut segments,
                            &mut arrivals,
                            &mut departures,
                        )?;
                    }
                    segments.push(seg);
                    arrivals[to.index()] += 1;
                    departures[from.index()] += 1;
                    cur.push(m);
                }
            }
        }
        close(
            &mut state,
            &mut rounds,
            &mut cur,
            &mut segments,
            &mut arrivals,
            &mut departures,
        )?;
        Ok(TransportSchedule { rounds })
    }

    /// Packs shuttle hops into rounds with *lookahead backfill*: each hop
    /// is first-fit placed into the earliest compatible round of its
    /// gate-free run, not just the latest one.
    ///
    /// The greedy packer ([`pack_concurrent`](Self::pack_concurrent))
    /// closes a round forever once any hop fails to join it, so a hop
    /// conflicting with round *k* can never ride with round *k − 1* even
    /// when it would fit there. Backfilling re-opens those rounds: a hop
    /// joins round `r` when
    ///
    /// 1. its ion's previous hop sits in an earlier round (per-ion order);
    /// 2. round `r` accepts it under the machine's round rules (fresh
    ///    segment, one split and one merge per trap, capacity after
    ///    departures at round `r`'s occupancy);
    /// 3. every later round of the run stays legal with the ion arriving
    ///    early (destination-trap capacity re-checked downstream).
    ///
    /// Hops are only moved *within* their gate-free run, so gate-time ion
    /// placement is untouched; the result validates under
    /// [`validate_relaxed`](Self::validate_relaxed) (rounds may reorder
    /// hops inside a run) rather than the strict in-order
    /// [`validate`](Self::validate). Falls back to the greedy packing
    /// whenever backfill does not strictly reduce depth.
    ///
    /// Validation happens **once per gate-free run**: closing a run
    /// replays its rounds through [`MachineState::apply_round`], which
    /// enforces every per-round rule and leaves the replayed state equal to
    /// the serial replay's (the rounds are built *from* the schedule's own
    /// hops, so multiset coverage and the final mapping hold by
    /// construction). Callers therefore do not need a second
    /// [`validate_relaxed`](Self::validate_relaxed) pass per compile;
    /// debug builds assert the strict-gain invariant (the chosen packing is
    /// never deeper than greedy) on top.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] if `schedule` does not replay legally on
    /// `spec` (compile-validated schedules always do).
    pub fn pack_lookahead(schedule: &Schedule, spec: &MachineSpec) -> Result<Self, TransportError> {
        let greedy = Self::pack_concurrent(schedule, spec)?;
        let backfilled = Self::pack_lookahead_inner(schedule, spec)?;
        let backfill_wins = backfilled.depth() < greedy.depth();
        let chosen = if backfill_wins { backfilled } else { greedy };
        debug_assert!(
            !backfill_wins || {
                chosen
                    .validate_relaxed(schedule, spec)
                    .map(|()| true)
                    .unwrap_or(false)
            },
            "strict-gain invariant: a winning backfill must replay-validate"
        );
        Ok(chosen)
    }

    fn pack_lookahead_inner(
        schedule: &Schedule,
        spec: &MachineSpec,
    ) -> Result<Self, TransportError> {
        use crate::backfill::{BackfillRules, CreditRule, RoundBackfill};

        let _phase = qccd_obs::span("backfill");
        let mut state = MachineState::with_mapping(spec, &schedule.initial_mapping)
            .map_err(TransportError::Machine)?;
        let num_traps = spec.num_traps() as usize;
        let cap = spec.total_capacity();
        let mut rounds: Vec<TransportRound> = Vec::new();

        // Current gate-free run, as one shared-core backfill seeded with
        // the live occupancies: departure-credit capacity (rounds replay
        // atomically via `apply_round`), no gate fences (the run resets at
        // every gate), unbounded window.
        let mut run: Option<RoundBackfill> = None;
        let close_run = |state: &mut MachineState,
                         rounds: &mut Vec<TransportRound>,
                         run: &mut Option<RoundBackfill>|
         -> Result<(), TransportError> {
            if let Some(bf) = run.take() {
                for moves in bf.into_rounds() {
                    state.apply_round(&moves).map_err(TransportError::Machine)?;
                    ROUND_WIDTH.record(moves.len() as u64);
                    rounds.push(TransportRound { moves });
                }
            }
            Ok(())
        };

        for op in &schedule.operations {
            match *op {
                Operation::Gate { .. } => close_run(&mut state, &mut rounds, &mut run)?,
                Operation::Shuttle { ion, from, to } => {
                    let bf = match run.as_mut() {
                        Some(bf) => bf,
                        None => run.insert(RoundBackfill::new(
                            num_traps,
                            cap,
                            (0..num_traps)
                                .map(|t| state.occupancy(TrapId(t as u32)))
                                .collect(),
                            BackfillRules {
                                credit: CreditRule::DepartureCredit,
                                share_only: false,
                                window: usize::MAX,
                            },
                        )),
                    };
                    bf.place(ShuttleMove { ion, from, to });
                }
            }
        }
        close_run(&mut state, &mut rounds, &mut run)?;
        Ok(TransportSchedule { rounds })
    }

    /// Replay-validates rounds that may *reorder* hops within a gate-free
    /// run (the contract of [`pack_lookahead`](Self::pack_lookahead)):
    ///
    /// 1. the rounds cover exactly the schedule's shuttle ops, run by run
    ///    — each round draws all its moves from one gate-free run;
    /// 2. every round is legal under the machine's concurrent-round rules,
    ///    replayed via `MachineState::apply_round`;
    /// 3. the final ion→trap mapping equals the serial replay's.
    ///
    /// Strictly weaker than [`validate`](Self::validate): any in-order
    /// transport schedule that passes `validate` passes this too.
    ///
    /// # Errors
    ///
    /// The first violated rule, as a [`TransportError`].
    pub fn validate_relaxed(
        &self,
        schedule: &Schedule,
        spec: &MachineSpec,
    ) -> Result<(), TransportError> {
        let mut state = MachineState::with_mapping(spec, &schedule.initial_mapping)
            .map_err(TransportError::Machine)?;
        let mut serial = state.clone();
        let count_mismatch = || TransportError::MoveCountMismatch {
            rounds: self.num_moves(),
            schedule: schedule.stats().shuttles,
        };
        let ops = &schedule.operations;
        let mut round_idx = 0usize;
        let mut i = 0usize;
        while i < ops.len() {
            match ops[i] {
                Operation::Gate { .. } => i += 1,
                Operation::Shuttle { .. } => {
                    // The gate-free run starting here, as a multiset.
                    let run_start = i;
                    let mut remaining: Vec<Option<ShuttleMove>> = Vec::new();
                    while let Some(&Operation::Shuttle { ion, from, to }) = ops.get(i) {
                        remaining.push(Some(ShuttleMove { ion, from, to }));
                        serial.shuttle(ion, to).map_err(TransportError::Machine)?;
                        i += 1;
                    }
                    let mut outstanding = remaining.len();
                    while outstanding > 0 {
                        let round = self.rounds.get(round_idx).ok_or_else(count_mismatch)?;
                        if round.moves.is_empty() {
                            return Err(count_mismatch());
                        }
                        if round.moves.len() > outstanding {
                            return Err(TransportError::RoundSpansGate { round: round_idx });
                        }
                        let run_len = remaining.len();
                        for m in &round.moves {
                            let consumed = run_len - outstanding;
                            let slot = remaining
                                .iter_mut()
                                .find(|slot| slot.as_ref() == Some(m))
                                .ok_or(TransportError::MoveMismatch {
                                op_index: run_start + consumed,
                            })?;
                            *slot = None;
                            outstanding -= 1;
                        }
                        state
                            .apply_round(&round.moves)
                            .map_err(TransportError::Machine)?;
                        round_idx += 1;
                    }
                }
            }
        }
        if round_idx != self.rounds.len() {
            return Err(count_mismatch());
        }
        for ion in 0..state.num_ions() {
            let ion = IonId(ion);
            if state.trap_of(ion) != serial.trap_of(ion) {
                return Err(TransportError::FinalMappingDiverged { ion });
            }
        }
        Ok(())
    }

    /// Replay-validates the rounds against the flat `schedule` on `spec`:
    ///
    /// 1. the rounds partition the schedule's shuttle ops in order, never
    ///    spanning a gate;
    /// 2. every round is legal under the machine's concurrent-round rules
    ///    (edge-disjoint segments, junction limits, capacity after
    ///    departures), replayed via `MachineState::apply_round`;
    /// 3. the final ion→trap mapping equals the serial replay's.
    ///
    /// # Errors
    ///
    /// The first violated rule, as a [`TransportError`].
    pub fn validate(&self, schedule: &Schedule, spec: &MachineSpec) -> Result<(), TransportError> {
        let mut state = MachineState::with_mapping(spec, &schedule.initial_mapping)
            .map_err(TransportError::Machine)?;
        let mut serial = state.clone();
        let mut round_idx = 0usize;
        let mut pos = 0usize;
        for (op_index, op) in schedule.operations.iter().enumerate() {
            match *op {
                Operation::Gate { .. } => {
                    if pos != 0 {
                        return Err(TransportError::RoundSpansGate { round: round_idx });
                    }
                }
                Operation::Shuttle { ion, from, to } => {
                    let expected = ShuttleMove { ion, from, to };
                    let round =
                        self.rounds
                            .get(round_idx)
                            .ok_or(TransportError::MoveCountMismatch {
                                rounds: self.num_moves(),
                                schedule: schedule.stats().shuttles,
                            })?;
                    if round.moves.get(pos) != Some(&expected) {
                        return Err(TransportError::MoveMismatch { op_index });
                    }
                    serial.shuttle(ion, to).map_err(TransportError::Machine)?;
                    pos += 1;
                    if pos == round.moves.len() {
                        state
                            .apply_round(&round.moves)
                            .map_err(TransportError::Machine)?;
                        round_idx += 1;
                        pos = 0;
                    }
                }
            }
        }
        if pos != 0 || round_idx != self.rounds.len() {
            return Err(TransportError::MoveCountMismatch {
                rounds: self.num_moves(),
                schedule: schedule.stats().shuttles,
            });
        }
        for ion in 0..state.num_ions() {
            let ion = qccd_machine::IonId(ion);
            if state.trap_of(ion) != serial.trap_of(ion) {
                return Err(TransportError::FinalMappingDiverged { ion });
            }
        }
        Ok(())
    }
}

/// A violated transport-schedule invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// A machine-level rule was violated while replaying.
    Machine(MachineError),
    /// A round's move disagrees with the flat schedule's shuttle op.
    MoveMismatch {
        /// Index of the offending operation in the flat schedule.
        op_index: usize,
    },
    /// The rounds do not cover exactly the schedule's shuttle ops.
    MoveCountMismatch {
        /// Moves in the transport schedule.
        rounds: usize,
        /// Shuttle ops in the flat schedule.
        schedule: usize,
    },
    /// A gate executes in the middle of a round.
    RoundSpansGate {
        /// The interrupted round.
        round: usize,
    },
    /// Concurrent replay ended with an ion in a different trap than the
    /// serial replay.
    FinalMappingDiverged {
        /// The diverged ion.
        ion: qccd_machine::IonId,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Machine(e) => write!(f, "illegal round: {e}"),
            TransportError::MoveMismatch { op_index } => {
                write!(f, "round move disagrees with schedule op {op_index}")
            }
            TransportError::MoveCountMismatch { rounds, schedule } => write!(
                f,
                "transport schedule has {rounds} moves but the schedule has {schedule} shuttles"
            ),
            TransportError::RoundSpansGate { round } => {
                write!(f, "round {round} spans a gate execution")
            }
            TransportError::FinalMappingDiverged { ion } => {
                write!(f, "concurrent replay leaves {ion} in a different trap")
            }
        }
    }
}

impl Error for TransportError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TransportError::Machine(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qccd_machine::{InitialMapping, IonId};

    fn sh(ion: u32, from: u32, to: u32) -> Operation {
        Operation::Shuttle {
            ion: IonId(ion),
            from: TrapId(from),
            to: TrapId(to),
        }
    }

    /// L4, capacity 4/comm 1, ions 0-2 in T0, 3-5 in T1, 6-8 in T2.
    fn fixture() -> (MachineSpec, InitialMapping) {
        let spec = MachineSpec::linear(4, 4, 1).unwrap();
        let mapping = InitialMapping::round_robin(&spec, 9).unwrap();
        (spec, mapping)
    }

    #[test]
    fn serial_packing_is_one_hop_per_round() {
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1), sh(5, 1, 2)]);
        let t = TransportSchedule::pack_serial(&schedule);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.max_round_width(), 1);
        t.validate(&schedule, &spec).unwrap();
    }

    #[test]
    fn concurrent_packing_merges_disjoint_hops() {
        // Segments (0,1), (2,3) and (1,2) are pairwise disjoint with
        // distinct ions and compatible junctions: all three hops share one
        // round. The fourth reuses segment (0,1) and opens a second.
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(
            mapping,
            vec![sh(2, 0, 1), sh(8, 2, 3), sh(5, 1, 2), sh(1, 0, 1)],
        );
        let t = TransportSchedule::pack_concurrent(&schedule, &spec).unwrap();
        assert_eq!(t.num_moves(), 4);
        assert_eq!(t.depth(), 2, "three concurrent hops, then one");
        assert_eq!(t.max_round_width(), 3);
        t.validate(&schedule, &spec).unwrap();
    }

    #[test]
    fn conflicting_hops_stay_serial() {
        // Same segment back-to-back: must split into two rounds.
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1), sh(2, 1, 0)]);
        let t = TransportSchedule::pack_concurrent(&schedule, &spec).unwrap();
        assert_eq!(t.depth(), 2);
        t.validate(&schedule, &spec).unwrap();
    }

    #[test]
    fn gates_close_rounds() {
        use qccd_machine::Operation::Gate;
        use qccd_machine::TrapId;
        let (spec, mapping) = fixture();
        // A gate between two otherwise-compatible hops forces two rounds.
        let ops = vec![
            sh(2, 0, 1),
            Gate {
                gate: qccd_circuit::GateId(0),
                trap: TrapId(1),
            },
            sh(8, 2, 3),
        ];
        let schedule = Schedule::new(mapping, ops);
        let t = TransportSchedule::pack_concurrent(&schedule, &spec).unwrap();
        assert_eq!(t.depth(), 2);
        t.validate(&schedule, &spec).unwrap();
    }

    #[test]
    fn lookahead_backfills_into_earlier_rounds() {
        // Greedy: h1=(ion2, 0→1) opens round 0; h2=(ion2, 1→0) conflicts
        // (same segment, same ion) and opens round 1; h3=(ion5, 1→2)
        // conflicts with round 1 (ion2 departs T1... no — h2 departs from
        // T1? h2 = 1→0, so departures[1] > 0, blocking h3's departure
        // from T1) and opens round 2. Lookahead backfills h3 into round 0,
        // where T1 only receives.
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1), sh(2, 1, 0), sh(5, 1, 2)]);
        let greedy = TransportSchedule::pack_concurrent(&schedule, &spec).unwrap();
        assert_eq!(greedy.depth(), 3);
        let packed = TransportSchedule::pack_lookahead(&schedule, &spec).unwrap();
        assert_eq!(packed.depth(), 2, "h3 rides with h1");
        assert_eq!(packed.num_moves(), 3);
        assert_eq!(packed.rounds[0].moves.len(), 2);
        packed.validate_relaxed(&schedule, &spec).unwrap();
    }

    #[test]
    fn lookahead_respects_per_ion_hop_order() {
        // ion 2's two hops must stay in distinct, ordered rounds even
        // though their segments are disjoint.
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1), sh(2, 1, 2)]);
        let packed = TransportSchedule::pack_lookahead(&schedule, &spec).unwrap();
        assert_eq!(packed.depth(), 2);
        packed.validate_relaxed(&schedule, &spec).unwrap();
    }

    #[test]
    fn lookahead_never_moves_hops_across_gates() {
        use qccd_machine::Operation::Gate;
        let (spec, mapping) = fixture();
        // The second run's hop would fit round 0, but a gate separates
        // the runs.
        let ops = vec![
            sh(2, 0, 1),
            Gate {
                gate: qccd_circuit::GateId(0),
                trap: TrapId(1),
            },
            sh(8, 2, 3),
        ];
        let schedule = Schedule::new(mapping, ops);
        let packed = TransportSchedule::pack_lookahead(&schedule, &spec).unwrap();
        assert_eq!(packed.depth(), 2);
        packed.validate_relaxed(&schedule, &spec).unwrap();
        packed.validate(&schedule, &spec).unwrap();
    }

    #[test]
    fn lookahead_is_never_deeper_than_greedy() {
        // A mixed workload: every prefix property the packer relies on is
        // replay-checked by apply_round inside close_run.
        let (spec, mapping) = fixture();
        let ops = vec![
            sh(2, 0, 1),
            sh(5, 1, 2),
            sh(2, 1, 0),
            sh(8, 2, 3),
            sh(5, 2, 1),
            sh(1, 0, 1),
        ];
        let schedule = Schedule::new(mapping, ops);
        let greedy = TransportSchedule::pack_concurrent(&schedule, &spec).unwrap();
        let packed = TransportSchedule::pack_lookahead(&schedule, &spec).unwrap();
        assert!(packed.depth() <= greedy.depth());
        assert_eq!(packed.num_moves(), greedy.num_moves());
        packed.validate_relaxed(&schedule, &spec).unwrap();
    }

    #[test]
    fn relaxed_validation_accepts_strictly_ordered_schedules() {
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(
            mapping,
            vec![sh(2, 0, 1), sh(8, 2, 3), sh(5, 1, 2), sh(1, 0, 1)],
        );
        let t = TransportSchedule::pack_concurrent(&schedule, &spec).unwrap();
        t.validate(&schedule, &spec).unwrap();
        t.validate_relaxed(&schedule, &spec).unwrap();
    }

    #[test]
    fn relaxed_validation_rejects_foreign_and_missing_moves() {
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1), sh(8, 2, 3)]);
        // A round with a move the schedule never performs.
        let foreign = TransportSchedule {
            rounds: vec![TransportRound {
                moves: vec![
                    ShuttleMove {
                        ion: IonId(2),
                        from: TrapId(0),
                        to: TrapId(1),
                    },
                    ShuttleMove {
                        ion: IonId(5),
                        from: TrapId(1),
                        to: TrapId(2),
                    },
                ],
            }],
        };
        assert!(matches!(
            foreign.validate_relaxed(&schedule, &spec).unwrap_err(),
            TransportError::MoveMismatch { .. }
        ));
        // Rounds that do not cover every hop.
        let short = TransportSchedule {
            rounds: vec![TransportRound {
                moves: vec![ShuttleMove {
                    ion: IonId(2),
                    from: TrapId(0),
                    to: TrapId(1),
                }],
            }],
        };
        assert!(matches!(
            short.validate_relaxed(&schedule, &spec).unwrap_err(),
            TransportError::MoveCountMismatch { .. }
        ));
    }

    #[test]
    fn validate_rejects_reordered_moves() {
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1), sh(8, 2, 3)]);
        let t = TransportSchedule {
            rounds: vec![TransportRound {
                moves: vec![
                    ShuttleMove {
                        ion: IonId(8),
                        from: TrapId(2),
                        to: TrapId(3),
                    },
                    ShuttleMove {
                        ion: IonId(2),
                        from: TrapId(0),
                        to: TrapId(1),
                    },
                ],
            }],
        };
        assert_eq!(
            t.validate(&schedule, &spec).unwrap_err(),
            TransportError::MoveMismatch { op_index: 0 }
        );
    }

    #[test]
    fn validate_rejects_missing_rounds() {
        let (spec, mapping) = fixture();
        let schedule = Schedule::new(mapping, vec![sh(2, 0, 1)]);
        let t = TransportSchedule { rounds: vec![] };
        assert!(matches!(
            t.validate(&schedule, &spec).unwrap_err(),
            TransportError::MoveCountMismatch { .. }
        ));
    }
}
